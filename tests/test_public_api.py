"""Contract tests for the public API surface."""

import importlib
import pkgutil


import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_present(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_key_entry_points_callable(self):
        assert callable(repro.build_date16_problem)
        assert callable(repro.CoupledSolver)
        assert callable(repro.MonteCarloStudy)

    def test_subpackages_importable(self):
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            assert module is not None

    def test_every_module_documented(self):
        """Every module ships a docstring (the documentation deliverable)."""
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a docstring"

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert getattr(obj, "__doc__", None), name

    def test_error_hierarchy_rooted(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.ReproError), name
