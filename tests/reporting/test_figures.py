"""Tests for the figure-data generators."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.grid.tensor_grid import TensorGrid
from repro.reporting.figures import (
    ascii_heatmap,
    field_slice,
    fig5_data,
    fig7_data,
    fig8_data,
)


class TestFig5:
    def test_fit_parameters(self):
        data = fig5_data()
        assert data["mu"] == pytest.approx(0.17, abs=1e-3)
        assert data["sigma"] == pytest.approx(0.048, abs=1e-3)

    def test_pdf_peak_in_fig5_range(self):
        """Fig. 5 y-axis runs to ~8.5; the fitted peak sits near 8.3."""
        data = fig5_data()
        assert 7.5 < np.max(data["pdf_y"]) < 8.8

    def test_deltas_present(self):
        assert fig5_data()["deltas"].shape == (12,)


class TestFig7:
    def test_band_and_scalars(self):
        times = np.linspace(0.0, 50.0, 51)
        mean = 300.0 + 4.0 * times
        std = 0.1 * np.sqrt(times + 1e-12)
        data = fig7_data(times, mean, std, num_samples=1000)
        assert np.allclose(data["upper"], mean + 6.0 * std)
        assert data["sigma_mc"] == pytest.approx(std[-1])
        assert data["error_mc"] == pytest.approx(std[-1] / np.sqrt(1000))
        assert data["band_crossing_time"] is None  # peaks at 504 K

    def test_crossing_detected(self):
        times = np.linspace(0.0, 50.0, 51)
        mean = 300.0 + 5.0 * times  # reaches 550
        std = np.zeros(51)
        data = fig7_data(times, mean, std, num_samples=100)
        assert data["mean_crossing_time"] == pytest.approx(44.6)

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            fig7_data(np.zeros(3), np.zeros(4), np.zeros(3), 10)


class TestFieldSlice:
    def test_slice_extraction(self):
        grid = TensorGrid.uniform(((0, 1), (0, 2), (0, 3)), (4, 5, 6))
        values = grid.node_coordinates()[:, 2]  # field = z
        xs, ys, cut = field_slice(grid, values, axis="z", position=1.5)
        assert cut.shape == (4, 5)
        # The slice is at the z-plane nearest 1.5.
        nearest = grid.z[np.argmin(np.abs(grid.z - 1.5))]
        assert np.allclose(cut, nearest)

    def test_axis_validation(self):
        grid = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (3, 3, 3))
        with pytest.raises(ReproError):
            field_slice(grid, np.zeros(27), axis="w")


class TestFig8:
    def test_hot_spot_location(self):
        grid = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (5, 5, 5))
        values = np.full(grid.num_nodes, 300.0)
        from repro.grid.indexing import GridIndexing

        indexing = GridIndexing(grid)
        hot = indexing.node_index(2, 3, 1)
        values[hot] = 400.0
        data = fig8_data(grid, values)
        assert data["t_max"] == 400.0
        assert data["hot_spot"] == (
            pytest.approx(0.5), pytest.approx(0.75), pytest.approx(0.25)
        )


class TestAsciiHeatmap:
    def test_shape_and_levels(self):
        values = np.outer(np.arange(4), np.ones(3))
        art = ascii_heatmap(values)
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 4 for line in lines)

    def test_constant_field(self):
        art = ascii_heatmap(np.full((2, 2), 5.0))
        assert set(art.replace("\n", "")) == {" "}

    def test_requires_2d(self):
        with pytest.raises(ReproError):
            ascii_heatmap(np.zeros(5))
