"""Tests for campaign summary tables."""

import pytest

from repro.reporting.campaign import (
    format_campaign_comparison,
    format_campaign_summary,
)

SUMMARY = {
    "campaign": "date16-mc-64",
    "problem": "date16",
    "qoi": "final",
    "num_samples": 64,
    "num_chunks": 16,
    "output_size": 12,
    "mean_max": 352.125,
    "mean_min": 311.5,
    "std_max": 4.6512,
    "error_mc_max": 0.5814,
    "argmax_output": 7,
}


class TestSummaryTable:
    def test_known_rows_in_order(self):
        text = format_campaign_summary(SUMMARY)
        lines = text.splitlines()
        assert lines[0] == "Campaign summary"
        assert "Campaign" in lines[3] and "date16-mc-64" in lines[3]
        assert text.index("Samples M") < text.index("max E [K]")
        assert "4.6512" in text

    def test_extra_keys_appended(self):
        summary = dict(SUMMARY, band_crossing_time=36.0)
        text = format_campaign_summary(summary)
        assert "band_crossing_time" in text
        assert "36" in text

    def test_custom_title(self):
        text = format_campaign_summary(SUMMARY, title="MY CAMPAIGN")
        assert text.startswith("MY CAMPAIGN")


class TestComparisonTable:
    def test_columns_per_campaign(self):
        other = dict(SUMMARY, campaign="date16-mc-128", num_samples=128)
        text = format_campaign_comparison([SUMMARY, other])
        header = text.splitlines()[1]
        assert "date16-mc-64" in header
        assert "date16-mc-128" in header
        assert "128" in text

    def test_missing_keys_render_dash(self):
        partial = {"campaign": "tiny", "num_samples": 4}
        text = format_campaign_comparison([SUMMARY, partial])
        assert " - " in text or "- " in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_campaign_comparison([])


class TestBlockedEvaluationLine:
    @staticmethod
    def _telemetry(counters, gauges=None):
        return {
            "chunks": {
                0: [{"event": "chunk", "chunk": 0, "samples": 8,
                     "wall_s": 0.5, "worker": "w0"}],
            },
            "metrics": {"counters": counters, "gauges": gauges or {}},
        }

    def test_blocked_split_rendered(self):
        from repro.reporting.telemetry import format_timings_report

        report = format_timings_report(self._telemetry(
            {"campaign.blocked_solves": 48, "campaign.loop_solves": 16},
            {"campaign.batch_size": 8},
        ))
        assert "48 samples blocked" in report
        assert "16 per-sample fallback" in report
        assert "75.0% blocked" in report
        assert "last batch size 8" in report

    def test_line_absent_without_counters(self):
        from repro.reporting.telemetry import format_timings_report

        report = format_timings_report(self._telemetry({}))
        assert "Blocked evaluation" not in report

    def test_pure_fallback_campaign(self):
        from repro.reporting.telemetry import format_timings_report

        report = format_timings_report(
            self._telemetry({"campaign.loop_solves": 24})
        )
        assert "0 samples blocked" in report
        assert "24 per-sample fallback" in report
