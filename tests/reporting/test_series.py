"""Tests for CSV export and series formatting."""

import os

import numpy as np
import pytest

from repro.errors import ReproError
from repro.reporting.series import format_series, write_csv, write_series


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out" / "data.csv")
        write_csv(path, ["t", "v"], [np.array([0.0, 1.0]),
                                     np.array([10.0, 20.0])])
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert lines[0] == "t,v"
        assert lines[1] == "0,10"
        assert len(lines) == 3

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "c.csv")
        write_csv(path, ["x"], [np.array([1.0])])
        assert os.path.exists(path)

    def test_mixed_lengths_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_csv(
                str(tmp_path / "x.csv"), ["a", "b"],
                [np.zeros(2), np.zeros(3)],
            )

    def test_header_count_checked(self, tmp_path):
        with pytest.raises(ReproError):
            write_csv(str(tmp_path / "x.csv"), ["a"], [np.zeros(2),
                                                       np.zeros(2)])

    def test_write_series_shortcut(self, tmp_path):
        path = write_series(
            str(tmp_path / "s.csv"), [0.0, 1.0], [300.0, 310.0], "T"
        )
        with open(path, encoding="utf-8") as handle:
            assert handle.readline().strip() == "time_s,T"


class TestFormatSeries:
    def test_subsampling(self):
        times = np.linspace(0.0, 50.0, 51)
        values = np.linspace(300.0, 400.0, 51)
        text = format_series(times, values, max_rows=5)
        lines = text.splitlines()
        assert len(lines) <= 7
        assert "300.0000" in text
        assert "400.0000" in text

    def test_short_series_full(self):
        text = format_series([0.0, 1.0], [1.0, 2.0])
        assert len(text.splitlines()) == 3

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            format_series([0.0], [1.0, 2.0])
