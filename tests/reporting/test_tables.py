"""Tests for table formatting (Tables I and II regeneration)."""

import pytest

from repro.reporting.tables import format_table, format_table1, format_table2


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "|" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        text = format_table(["a"], [["1"]], title="TITLE")
        assert text.splitlines()[0] == "TITLE"

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])


class TestTable1:
    def test_contains_paper_values(self):
        text = format_table1()
        assert "TABLE I" in text
        assert "0.87" in text          # epoxy lambda
        assert "398" in text           # copper lambda
        assert "5.800e+07" in text     # copper sigma
        assert "1.000e-06" in text     # epoxy sigma

    def test_all_four_regions(self):
        text = format_table1()
        for region in ("Compound", "Contact pad", "Chip", "Bonding wire"):
            assert region in text


class TestTable2:
    def test_contains_paper_values(self):
        text = format_table2()
        assert "TABLE II" in text
        assert "40 mV" in text
        assert "50 s" in text
        assert "51" in text
        assert "1000" in text
        assert "25.4 um" in text
        assert "300 K" in text
        assert "0.2475" in text

    def test_average_length_row(self):
        text = format_table2()
        assert "1.56 mm" in text or "1.55 mm" in text
