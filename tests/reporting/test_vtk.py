"""Tests for the legacy VTK exporter."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.grid.tensor_grid import TensorGrid
from repro.reporting.vtk import (
    read_rectilinear_vtk_header,
    write_rectilinear_vtk,
)


@pytest.fixture
def grid():
    return TensorGrid([0.0, 1.0, 2.5], [0.0, 0.5], [0.0, 1.0, 2.0, 3.0])


class TestWriter:
    def test_header_roundtrip(self, grid, tmp_path):
        path = str(tmp_path / "field.vtk")
        write_rectilinear_vtk(
            path, grid, {"temperature": np.full(grid.num_nodes, 300.0)}
        )
        assert read_rectilinear_vtk_header(path) == grid.shape

    def test_structure(self, grid, tmp_path):
        path = str(tmp_path / "field.vtk")
        values = np.arange(grid.num_nodes, dtype=float)
        write_rectilinear_vtk(path, grid, {"T": values, "phi": values * 2})
        with open(path, encoding="ascii") as handle:
            content = handle.read()
        assert content.startswith("# vtk DataFile Version 3.0")
        assert "DATASET RECTILINEAR_GRID" in content
        assert f"POINT_DATA {grid.num_nodes}" in content
        assert "SCALARS T double 1" in content
        assert "SCALARS phi double 1" in content
        assert "X_COORDINATES 3 double" in content

    def test_all_values_written(self, grid, tmp_path):
        path = str(tmp_path / "field.vtk")
        values = np.linspace(300.0, 400.0, grid.num_nodes)
        write_rectilinear_vtk(path, grid, {"T": values})
        with open(path, encoding="ascii") as handle:
            lines = handle.read().splitlines()
        start = lines.index("LOOKUP_TABLE default") + 1
        numbers = []
        for line in lines[start:]:
            numbers.extend(float(token) for token in line.split())
        assert np.allclose(numbers, values)

    def test_spaces_in_names_sanitized(self, grid, tmp_path):
        path = str(tmp_path / "field.vtk")
        write_rectilinear_vtk(
            path, grid, {"wire temp": np.zeros(grid.num_nodes)}
        )
        with open(path, encoding="ascii") as handle:
            assert "SCALARS wire_temp double 1" in handle.read()

    def test_creates_directories(self, grid, tmp_path):
        path = str(tmp_path / "deep" / "dir" / "field.vtk")
        write_rectilinear_vtk(path, grid, {"T": np.zeros(grid.num_nodes)})
        assert read_rectilinear_vtk_header(path) == grid.shape


class TestValidation:
    def test_wrong_size_rejected(self, grid, tmp_path):
        with pytest.raises(ReproError):
            write_rectilinear_vtk(
                str(tmp_path / "x.vtk"), grid, {"T": np.zeros(5)}
            )

    def test_non_finite_rejected(self, grid, tmp_path):
        values = np.zeros(grid.num_nodes)
        values[0] = np.nan
        with pytest.raises(ReproError):
            write_rectilinear_vtk(str(tmp_path / "x.vtk"), grid, {"T": values})

    def test_empty_fields_rejected(self, grid, tmp_path):
        with pytest.raises(ReproError):
            write_rectilinear_vtk(str(tmp_path / "x.vtk"), grid, {})

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.vtk"
        path.write_text("not a vtk file")
        with pytest.raises(ReproError):
            read_rectilinear_vtk_header(str(path))
