"""The devicesim test double: device semantics enforced on a CPU.

Three contracts under test (DESIGN.md "Array backends"):

* separate memory space -- mixing a :class:`DeviceArray` with a host
  ndarray raises instead of silently computing;
* accounted transfers -- the backend's ``transfer_count`` and the
  ``solver.device_transfers`` telemetry counter move in lockstep, so
  "zero unaccounted transfers" is a checkable equality;
* the declared ``rtol`` equivalence tier holds for the gemm-ordered
  blocked path against the per-sample host reference.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends import DeviceArray, get_array_backend
from repro.errors import SolverError
from repro.solvers.woodbury import WoodburySolver
from repro.telemetry import tracing


def _base(n, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n)) * 0.1
    return sp.csc_matrix(dense + dense.T + 10.0 * np.eye(n))


def _stamps(n, k):
    u = np.zeros((n, k))
    for j in range(k):
        u[2 * j, j] = 1.0
        u[2 * j + 1, j] = -1.0
    return u


@pytest.fixture
def backend():
    return get_array_backend("devicesim")


class TestMemorySpace:
    def test_roundtrip_copies(self, backend):
        host = np.arange(4.0)
        device = backend.to_device(host)
        assert isinstance(device, DeviceArray)
        back = backend.from_device(device)
        assert np.array_equal(back, host)
        host[0] = 99.0  # the device copy must not alias host memory
        assert backend.from_device(device)[0] == 0.0

    def test_matmul_with_host_array_refused(self, backend):
        device = backend.to_device(np.eye(3))
        with pytest.raises(SolverError, match="refusing to mix"):
            device @ np.ones(3)
        with pytest.raises(SolverError, match="refusing to mix"):
            np.ones((2, 3)) @ device

    def test_subtraction_with_host_array_refused(self, backend):
        device = backend.to_device(np.ones(3))
        with pytest.raises(SolverError, match="refusing to mix"):
            device - np.ones(3)
        with pytest.raises(SolverError, match="refusing to mix"):
            np.ones(3) - device

    def test_implicit_host_conversion_refused(self, backend):
        device = backend.to_device(np.ones(3))
        with pytest.raises(SolverError, match="from_device"):
            np.asarray(device)

    def test_from_device_rejects_host_arrays(self, backend):
        with pytest.raises(SolverError, match="expected a device array"):
            backend.from_device(np.ones(3))

    def test_device_algebra_works(self, backend):
        a = backend.to_device(np.arange(6.0).reshape(2, 3))
        b = backend.to_device(np.ones((3, 2)))
        product = backend.from_device(a @ b)
        assert product.shape == (2, 2)
        assert a.T.shape == (3, 2)


class TestTransferAccounting:
    def test_counter_and_telemetry_move_in_lockstep(self, backend):
        with tracing.capture() as collector:
            before = backend.transfer_count
            device = backend.to_device(np.ones(5))
            backend.from_device(device)
            moved = backend.transfer_count - before
        assert moved == 2
        assert collector.registry.counter_value(
            "solver.device_transfers"
        ) == moved

    def test_blocked_solve_transfers_fully_accounted(self, backend):
        rng = np.random.default_rng(1)
        n, k, samples = 30, 3, 8
        solver = WoodburySolver(_base(n), _stamps(n, k),
                                backend="devicesim")
        g = rng.uniform(0.5, 5.0, (samples, k))
        rhs = rng.standard_normal(n)
        solver.solve_batch(g, rhs)  # one-time operator uploads
        with tracing.capture() as collector:
            before = backend.transfer_count
            solver.solve_batch(g, rhs)
            moved = backend.transfer_count - before
        # Steady state: RHS up, cores up, solution down -- and every
        # one of them visible in the telemetry counter.
        assert moved == 3
        assert collector.registry.counter_value(
            "solver.device_transfers"
        ) == moved


class TestEquivalenceTier:
    def test_blocked_matches_scalar_within_declared_rtol(self, backend):
        rng = np.random.default_rng(5)
        n, k, samples = 40, 4, 24
        base, u = _base(n), _stamps(n, k)
        reference = WoodburySolver(base, u)
        device = WoodburySolver(base, u, backend="devicesim")
        g = rng.uniform(0.5, 5.0, (samples, k))
        tier = backend.equivalence
        assert tier.kind == "rtol"
        for rhs in (rng.standard_normal(n),
                    rng.standard_normal((n, samples))):
            blocked = device.solve_batch(g, rhs)
            for s in range(samples):
                column_rhs = rhs if rhs.ndim == 1 else rhs[:, s]
                expected = reference.solve(g[s], column_rhs)
                assert np.allclose(
                    blocked[:, s], expected, rtol=tier.rtol, atol=0.0
                )

    def test_heterogeneous_blocks_fall_back_to_host(self, backend):
        # A sample with a dropped stamp (zero conductance) takes the
        # masked host path even under a device backend -- and matches
        # the scalar solver exactly, because it IS the scalar algebra.
        rng = np.random.default_rng(9)
        n, k, samples = 30, 3, 4
        base, u = _base(n), _stamps(n, k)
        solver = WoodburySolver(base, u, backend="devicesim")
        g = rng.uniform(0.5, 5.0, (samples, k))
        g[1, 2] = 0.0
        rhs = rng.standard_normal(n)
        before = backend.transfer_count
        blocked = solver.solve_batch(g, rhs)
        assert backend.transfer_count == before  # never crossed over
        reference = WoodburySolver(base, u)
        for s in range(samples):
            assert np.allclose(
                blocked[:, s], reference.solve(g[s], rhs),
                rtol=1e-12, atol=0.0,
            )

    def test_scalar_solve_stays_on_host(self, backend):
        rng = np.random.default_rng(2)
        n, k = 20, 2
        base, u = _base(n), _stamps(n, k)
        solver = WoodburySolver(base, u, backend="devicesim")
        reference = WoodburySolver(base, u)
        g = rng.uniform(0.5, 5.0, k)
        rhs = rng.standard_normal(n)
        before = backend.transfer_count
        assert np.array_equal(solver.solve(g, rhs),
                              reference.solve(g, rhs))
        assert backend.transfer_count == before
