"""Array-backend protocol, registry and numpy-reference behavior."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends import (
    ArrayBackend,
    EquivalenceTier,
    get_array_backend,
    register_array_backend,
    registered_array_backends,
)
from repro.backends.registry import ENV_DEFAULT, default_array_backend_name
from repro.errors import SolverError
from repro.solvers.woodbury import WoodburySolver


def _base(n, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n)) * 0.1
    matrix = sp.csc_matrix(dense + dense.T + 10.0 * np.eye(n))
    return matrix


def _stamps(n, k):
    u = np.zeros((n, k))
    for j in range(k):
        u[2 * j, j] = 1.0
        u[2 * j + 1, j] = -1.0
    return u


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_array_backends()
        assert {"numpy", "cupy", "devicesim"} <= set(names)
        assert names == sorted(names)

    def test_default_is_numpy(self, monkeypatch):
        # The out-of-the-box default, with no environment override.
        monkeypatch.delenv(ENV_DEFAULT, raising=False)
        backend = get_array_backend(None)
        assert backend.name == "numpy"
        assert get_array_backend() is backend  # process singleton

    def test_instance_passthrough(self):
        backend = get_array_backend("numpy")
        assert get_array_backend(backend) is backend

    def test_unknown_name_lists_registered(self):
        with pytest.raises(SolverError, match="unknown array backend"):
            get_array_backend("tpu")
        with pytest.raises(SolverError, match="numpy"):
            get_array_backend("tpu")

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENV_DEFAULT, "devicesim")
        assert default_array_backend_name() == "devicesim"
        assert get_array_backend(None).name == "devicesim"
        # Explicit selection still wins over the environment.
        assert get_array_backend("numpy").name == "numpy"

    def test_decorator_registration(self):
        @register_array_backend("_test_backend")
        def _factory():
            backend = ArrayBackend()
            backend.name = "_test_backend"
            return backend

        try:
            assert "_test_backend" in registered_array_backends()
            assert get_array_backend("_test_backend").name == "_test_backend"
        finally:
            from repro.backends import registry

            registry._FACTORIES.pop("_test_backend", None)
            registry._INSTANCES.pop("_test_backend", None)


class TestCupyGuard:
    def test_missing_extra_is_a_clear_solver_error(self):
        # The container has no GPU stack; selecting cupy must name the
        # missing [gpu] extra, not die with a raw ImportError.
        try:
            import cupy  # noqa: F401
        except ImportError:
            with pytest.raises(SolverError, match=r"\[gpu\]"):
                get_array_backend("cupy")
            with pytest.raises(SolverError, match="cupy"):
                get_array_backend("cupy")
        else:
            pytest.skip("cupy installed; the guard does not fire")

    def test_registration_never_requires_cupy(self):
        # Listing backends is import-safe without the extra.
        assert "cupy" in registered_array_backends()


class TestDeclaredContracts:
    def test_numpy_is_bitwise_columns(self):
        backend = get_array_backend("numpy")
        assert backend.equivalence.kind == "bitwise"
        assert backend.equivalence.rtol == 0.0
        assert backend.correction_mode == "columns"

    def test_devicesim_declares_rtol_gemm(self):
        backend = get_array_backend("devicesim")
        assert backend.equivalence.kind == "rtol"
        assert backend.equivalence.rtol > 0.0
        assert backend.correction_mode == "gemm"

    def test_equivalence_tier_shape(self):
        tier = EquivalenceTier("rtol", 1e-6)
        assert tier.kind == "rtol"
        assert tier.rtol == 1e-6


class TestNumpyBackendIsTheReferencePath:
    def test_solver_default_backend_bitwise_unchanged(self, monkeypatch):
        # The refactor's acceptance bar: the default backend reproduces
        # the historic blocked path bit for bit.
        monkeypatch.delenv(ENV_DEFAULT, raising=False)
        rng = np.random.default_rng(7)
        n, k, samples = 30, 3, 9
        solver = WoodburySolver(_base(n), _stamps(n, k))
        assert solver.backend.name == "numpy"
        g = rng.uniform(0.5, 5.0, (samples, k))
        rhs = rng.standard_normal(n)
        blocked = solver.solve_batch(g, rhs)
        for s in range(samples):
            assert np.array_equal(blocked[:, s], solver.solve(g[s], rhs))

    def test_batched_core_solve_matches_per_matrix(self):
        backend = get_array_backend("numpy")
        rng = np.random.default_rng(3)
        cores = rng.standard_normal((5, 4, 4)) + 4.0 * np.eye(4)
        rhs = rng.standard_normal((5, 4))
        batched = backend.batched_core_solve(cores, rhs)
        for s in range(5):
            assert np.array_equal(
                batched[s], np.linalg.solve(cores[s], rhs[s])
            )

    def test_transfers_are_identity_and_uncounted(self):
        backend = get_array_backend("numpy")
        before = backend.transfer_count
        array = np.arange(3.0)
        assert backend.from_device(backend.to_device(array)) is not None
        assert backend.transfer_count == before
