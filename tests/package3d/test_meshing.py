"""Tests for the package mesher (Fig. 6)."""

import numpy as np
import pytest

from repro.errors import PackageLayoutError
from repro.package3d.chip_example import date16_layout
from repro.package3d.meshing import build_package_mesh


@pytest.fixture(scope="module")
def coarse_mesh():
    return build_package_mesh(date16_layout(), resolution="coarse")


class TestMeshStructure:
    def test_interfaces_on_grid_lines(self, coarse_mesh):
        """Every pad/chip boundary coincides with a grid plane."""
        layout = coarse_mesh.layout
        grid = coarse_mesh.grid
        required_x = set()
        for pad in layout.pads:
            (x0, x1), _, _ = pad.box(layout)
            required_x.update((x0, x1))
        (cx0, cx1), _, _ = layout.chip.box()
        required_x.update((cx0, cx1))
        for value in required_x:
            assert np.min(np.abs(grid.x - value)) < 1e-12

    def test_volume_fractions(self, coarse_mesh):
        """Copper fraction equals the exact pad+chip volume share."""
        layout = coarse_mesh.layout
        pad_volume = sum(
            (b[0][1] - b[0][0]) * (b[1][1] - b[1][0]) * (b[2][1] - b[2][0])
            for b in (pad.box(layout) for pad in layout.pads)
        )
        (cx, cy, cz) = layout.chip.box()
        chip_volume = (
            (cx[1] - cx[0]) * (cy[1] - cy[0]) * (cz[1] - cz[0])
        )
        total = layout.body_x * layout.body_y * layout.height
        fractions = coarse_mesh.materials.volume_fractions()
        expected = (pad_volume + chip_volume) / total
        assert fractions["copper"] == pytest.approx(expected, rel=1e-9)

    def test_statistics_keys(self, coarse_mesh):
        stats = coarse_mesh.statistics()
        assert stats["nodes"] == coarse_mesh.grid.num_nodes
        assert stats["min_spacing"] > 0.0
        assert "volume_fractions" in stats

    def test_resolutions_ordered(self):
        layout = date16_layout()
        sizes = {}
        for name in ("coarse", "default"):
            sizes[name] = build_package_mesh(layout, name).grid.num_nodes
        assert sizes["coarse"] < sizes["default"]

    def test_explicit_spacing_tuple(self):
        layout = date16_layout()
        mesh = build_package_mesh(layout, resolution=(0.6e-3, 0.3e-3))
        assert mesh.grid.num_nodes > 0

    def test_unknown_preset(self):
        with pytest.raises(PackageLayoutError):
            build_package_mesh(date16_layout(), resolution="ultra")


class TestNodeLookups:
    def test_pec_nodes_on_boundary(self, coarse_mesh):
        grid = coarse_mesh.grid
        for nodes in coarse_mesh.pad_contact_nodes:
            assert nodes.size > 0
            coords = grid.node_coordinates()[nodes]
            on_x = np.isclose(coords[:, 0], 0.0) | np.isclose(
                coords[:, 0], coarse_mesh.layout.body_x
            )
            on_y = np.isclose(coords[:, 1], 0.0) | np.isclose(
                coords[:, 1], coarse_mesh.layout.body_y
            )
            assert np.all(on_x | on_y)

    def test_wire_nodes_distinct(self, coarse_mesh):
        for pad_node, chip_node in coarse_mesh.wire_nodes:
            assert pad_node != chip_node

    def test_wire_nodes_near_endpoints(self, coarse_mesh):
        layout = coarse_mesh.layout
        coords = coarse_mesh.grid.node_coordinates()
        for attachment, (pad_node, chip_node) in zip(
            layout.wires, coarse_mesh.wire_nodes
        ):
            pad_point, chip_point = layout.wire_endpoints(attachment)
            assert np.linalg.norm(coords[pad_node] - pad_point) < 0.3e-3
            assert np.linalg.norm(coords[chip_node] - chip_point) < 0.3e-3

    def test_wire_pad_nodes_unique_per_wire(self, coarse_mesh):
        pad_nodes = [a for a, _ in coarse_mesh.wire_nodes]
        assert len(set(pad_nodes)) == len(pad_nodes)
