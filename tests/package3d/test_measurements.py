"""Tests for the X-ray measurement dataset (Fig. 5 statistics)."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.package3d.measurements import (
    MeasurementDataset,
    WireMeasurement,
    date16_xray_measurements,
)


class TestDate16Dataset:
    def test_counts_match_paper(self):
        dataset = date16_xray_measurements()
        assert dataset.num_wires == 12
        assert dataset.num_bending_measured == 6

    def test_fitted_distribution_matches_fig5(self):
        """The published fit: N(0.17, 0.048^2)."""
        fit = date16_xray_measurements().fit_elongation_distribution()
        assert fit.mu == pytest.approx(0.17, abs=5e-4)
        assert fit.sigma == pytest.approx(0.048, abs=5e-4)

    def test_mean_length_matches_table2(self):
        """Table II: average wire length 1.55 mm."""
        lengths = date16_xray_measurements().lengths()
        assert np.mean(lengths) == pytest.approx(1.55e-3, rel=0.01)

    def test_deltas_in_plausible_range(self):
        deltas = date16_xray_measurements().deltas()
        assert np.all(deltas > 0.0)
        assert np.all(deltas < 0.4)

    def test_direct_distances_match_layout(self):
        """Dataset distances are consistent with the reproduced layout."""
        from repro.package3d.chip_example import date16_layout

        dataset = date16_xray_measurements()
        layout_d = np.sort(date16_layout().all_direct_distances())
        dataset_d = np.sort(dataset.direct_distances())
        assert np.allclose(layout_d, dataset_d, rtol=1e-3)

    def test_histogram_covers_fig5_range(self):
        edges, density = date16_xray_measurements().elongation_histogram()
        assert edges[0] >= 0.0
        assert edges[-1] <= 0.4
        assert np.max(density) > 0.0


class TestImputation:
    def test_unmeasured_get_mean_bending(self):
        dataset = date16_xray_measurements()
        models = dataset.imputed_length_models()
        fallback = dataset.mean_measured_bending()
        for measurement, model in zip(dataset.measurements, models):
            if not measurement.has_bending_measurement:
                assert model.bending == pytest.approx(fallback)
            else:
                assert model.bending == pytest.approx(
                    measurement.bending_elongation
                )

    def test_misplacement_derived_from_offset(self):
        dataset = date16_xray_measurements()
        m = dataset.measurements[0]
        expected = np.hypot(m.direct_distance, m.lateral_offset) - (
            m.direct_distance
        )
        assert m.misplacement_elongation == pytest.approx(expected)

    def test_misplacement_small_compared_to_bending(self):
        """The paper's offsets are tiny: delta_s << delta_h."""
        dataset = date16_xray_measurements()
        models = dataset.imputed_length_models()
        for model in models:
            assert model.misplacement < 0.1 * model.bending


class TestValidation:
    def test_empty_dataset(self):
        with pytest.raises(MeasurementError):
            MeasurementDataset([])

    def test_all_unmeasured_rejected(self):
        measurements = [
            WireMeasurement("w", 1e-3, 0.0, None) for _ in range(3)
        ]
        with pytest.raises(MeasurementError):
            MeasurementDataset(measurements)

    def test_negative_values_rejected(self):
        with pytest.raises(MeasurementError):
            WireMeasurement("w", -1e-3, 0.0)
        with pytest.raises(MeasurementError):
            WireMeasurement("w", 1e-3, -1.0)
        with pytest.raises(MeasurementError):
            WireMeasurement("w", 1e-3, 0.0, -1e-4)

    def test_single_measured_wire_suffices(self):
        measurements = [
            WireMeasurement("a", 1e-3, 0.0, 2e-4),
            WireMeasurement("b", 1e-3, 0.0, None),
        ]
        dataset = MeasurementDataset(measurements)
        models = dataset.imputed_length_models()
        assert models[1].bending == pytest.approx(2e-4)
