"""Tests for the end-to-end uncertainty study (small sample counts)."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.package3d.uq_study import Date16StudyResult, Date16UncertaintyStudy


@pytest.fixture(scope="module")
def study():
    """Module-scoped: the solver setup is reused by every test."""
    return Date16UncertaintyStudy(resolution="coarse", tolerance=1e-3)


@pytest.fixture(scope="module")
def mc_result(study):
    return study.run_monte_carlo(num_samples=8, seed=0)


class TestModelEvaluation:
    def test_trace_shape(self, study):
        traces = study.evaluate_traces(np.full(12, 0.17))
        assert traces.shape == (51, 12)
        assert np.allclose(traces[0], 300.0)

    def test_wrong_dimension(self, study):
        with pytest.raises(SamplingError):
            study.evaluate_traces(np.full(5, 0.17))

    def test_longer_wires_run_cooler(self, study):
        """Sensitivity direction: delta up -> L up -> R up -> less power."""
        hot = study.evaluate_traces(np.full(12, 0.05))
        cool = study.evaluate_traces(np.full(12, 0.35))
        assert np.max(hot[-1]) > np.max(cool[-1])

    def test_scalar_model(self, study):
        value = study.evaluate_end_max(np.full(12, 0.17))
        assert 320.0 < value < 420.0


class TestMonteCarloResult:
    def test_shapes(self, mc_result):
        assert mc_result.mean.shape == (51, 12)
        assert mc_result.std.shape == (51, 12)
        assert mc_result.num_samples == 8

    def test_emax_trace_monotone(self, mc_result):
        emax = mc_result.expectation_max_trace()
        assert emax[0] == pytest.approx(300.0)
        assert np.all(np.diff(emax) > -1e-6)

    def test_hottest_wire_is_a_short_one(self, mc_result):
        """Fig. 8 claim: the shortest (central) wires run hottest."""
        from repro.package3d.chip_example import date16_layout

        directs = date16_layout().all_direct_distances()
        shortest = set(np.nonzero(directs < 1.2e-3)[0])
        assert mc_result.hottest_wire_index in shortest

    def test_error_mc_consistent(self, mc_result):
        assert mc_result.error_mc == pytest.approx(
            mc_result.sigma_mc / np.sqrt(8.0)
        )

    def test_summary_keys(self, mc_result):
        summary = mc_result.summary()
        for key in (
            "hottest_wire", "num_samples", "E_end", "sigma_mc", "error_mc",
            "band_crossing_time", "steady_state_time", "t_critical",
        ):
            assert key in summary
        assert summary["t_critical"] == 523.0

    def test_band_crossing_with_low_threshold(self, mc_result):
        """With an artificially low threshold the band must cross."""
        lowered = Date16StudyResult(
            times=mc_result.times,
            mean=mc_result.mean,
            std=mc_result.std,
            num_samples=mc_result.num_samples,
            t_critical=320.0,
            wire_names=mc_result.wire_names,
        )
        crossing = lowered.band_crossing_time()
        assert crossing is not None
        assert 0.0 < crossing < 50.0

    def test_steady_state_reached_before_end(self, mc_result):
        """Fig. 7 claim: stationary situation after t ~ 50 s."""
        assert mc_result.steady_state_time(tolerance=0.02) <= 50.0


class TestNominalRun:
    def test_nominal_result(self, study):
        result = study.nominal_result()
        assert result.wire_temperatures.shape == (51, 12)
        assert result.final_wire_temperatures().max() > 320.0


class TestCollocationPath:
    def test_level1_single_run(self, study):
        result = study.run_collocation(level=1)
        assert result.num_evaluations == 1
        # The level-1 mean is the nominal trace.
        nominal = study.evaluate_traces(
            np.full(12, study.elongation_distribution.mean)
        )
        assert np.allclose(result.mean, nominal, atol=1e-6)


class TestAdaptiveTimeStepping:
    def test_adaptive_traces_match_fixed_grid(self, study):
        """The golden bound: quantized-adaptive traces, interpolated
        onto the 51-point grid, stay within adaptive_tolerance of the
        fixed-grid traces -- at roughly a third of the solve count."""
        adaptive = Date16UncertaintyStudy(
            resolution="coarse", tolerance=1e-3,
            time_stepping="adaptive", adaptive_tolerance=1.0,
        )
        deltas = np.full(12, 0.17)
        fixed_traces = study.evaluate_traces(deltas)
        adaptive_traces = adaptive.evaluate_traces(deltas)
        assert adaptive_traces.shape == fixed_traces.shape
        assert np.allclose(adaptive_traces[0], 300.0)
        # The controller takes (far) fewer solves than the fixed grid...
        result = adaptive.last_adaptive_result
        assert result is not None
        assert result.num_solves < 26  # fixed grid: 50 coupled solves
        assert result.times[-1] == pytest.approx(
            adaptive.parameters.end_time
        )
        # ...while staying within the local tolerance of the fixed solve.
        assert np.max(np.abs(adaptive_traces - fixed_traces)) < 1.0

    def test_quantization_bounds_factorizations(self):
        """Thermal factorizations stay at the ladder-rung count; the
        raw controller pays one per fresh dt."""
        adaptive = Date16UncertaintyStudy(
            resolution="coarse", tolerance=1e-3, time_stepping="adaptive",
        )
        adaptive.evaluate_traces(np.full(12, 0.17))
        result = adaptive.last_adaptive_result
        stats = result.statistics()
        assert stats["thermal_solver_builds"] == (
            result.num_distinct_solver_dts
        )
        assert stats["thermal_solver_builds"] <= 8  # a handful of rungs
        assert stats["num_solves"] == result.num_solves
        # A second evaluation reuses every per-dt solver, and the
        # attached statistics are that run's delta, not the solver's
        # lifetime totals.
        builds_before = adaptive.solver.thermal_solver_builds
        adaptive.evaluate_traces(np.full(12, 0.17))
        assert adaptive.solver.thermal_solver_builds == builds_before
        warm = adaptive.last_adaptive_result.statistics()
        assert warm["thermal_solver_builds"] == 0
        assert warm["coupled_steps"] == warm["num_solves"]

    def test_raw_adaptive_path_still_available(self):
        adaptive = Date16UncertaintyStudy(
            resolution="coarse", tolerance=1e-3, time_stepping="adaptive",
            quantize_dt=False,
            adaptive_options={"error_estimate": "doubling"},
        )
        traces = adaptive.evaluate_traces(np.full(12, 0.17))
        assert traces.shape == (51, 12)
        result = adaptive.last_adaptive_result
        assert result.num_solves == 3 * (result.accepted + result.rejected)

    def test_unknown_adaptive_option_rejected(self):
        with pytest.raises(SamplingError, match="adaptive_options"):
            Date16UncertaintyStudy(
                resolution="coarse", time_stepping="adaptive",
                adaptive_options={"typo_dt": 1.0},
            )

    def test_invalid_time_stepping_rejected(self):
        with pytest.raises(SamplingError):
            Date16UncertaintyStudy(resolution="coarse",
                                   time_stepping="magic")

    def test_adaptive_refuses_waveform(self):
        from repro.coupled.excitation import StepWaveform

        with pytest.raises(SamplingError):
            Date16UncertaintyStudy(
                resolution="coarse", time_stepping="adaptive",
                waveform=StepWaveform(t_on=1.0, t_off=20.0),
            )

    def test_campaign_scenario_option(self):
        """The ROADMAP item: 'time_stepping': 'adaptive' flows from the
        spec through the registry builder into the study."""
        from repro.campaign.registry import get_problem
        from repro.package3d.scenarios import date16_campaign_spec

        spec = date16_campaign_spec(
            num_samples=2, chunk_size=2, time_stepping="adaptive",
        )
        assert spec.scenario.options["time_stepping"] == "adaptive"
        model = get_problem("date16")(spec.scenario)
        traces = model(np.full(12, 0.17))
        assert traces.shape == (51, 12)

    def test_quantize_and_adaptive_options_thread_through_spec(self):
        """The new options block round-trips through ScenarioSpec JSON
        into the worker-side study."""
        import json

        from repro.campaign.registry import get_problem
        from repro.campaign.spec import CampaignSpec
        from repro.package3d.scenarios import date16_campaign_spec

        spec = date16_campaign_spec(
            num_samples=2, chunk_size=2, time_stepping="adaptive",
            adaptive_tolerance=0.75, quantize_dt=False,
            adaptive_options={"min_dt": 0.25,
                              "error_estimate": "doubling"},
        )
        rebuilt = CampaignSpec.from_json(spec.to_json())
        options = rebuilt.scenario.options
        assert options["quantize_dt"] is False
        assert options["adaptive_tolerance"] == 0.75
        assert options["adaptive_options"]["min_dt"] == 0.25
        assert json.loads(spec.to_json()) == json.loads(rebuilt.to_json())
        model = get_problem("date16")(rebuilt.scenario)
        study = model.__self__
        assert study.quantize_dt is False
        assert study.adaptive_tolerance == 0.75
        assert study.adaptive_options["min_dt"] == 0.25
        assert study.adaptive_options["error_estimate"] == "doubling"


class TestPcePath:
    def test_degree1_surrogate(self, study):
        pce = study.run_pce(degree=1, seed=0)
        # Mean within a kelvin of a direct nominal evaluation.
        nominal = study.evaluate_end_max(np.full(12, 0.17))
        assert pce.mean[0] == pytest.approx(nominal, abs=1.5)
        first, total = pce.sobol_indices()
        # Degree 1 = additive surrogate: first order equals total...
        assert np.allclose(first, total, atol=1e-9)
        # ...indices sum to ~1 and the short wires dominate.
        assert np.sum(first[:, 0]) == pytest.approx(1.0, abs=1e-6)
        from repro.package3d.chip_example import date16_layout

        directs = date16_layout().all_direct_distances()
        short = first[directs < 1.2e-3, 0]
        long_ = first[directs > 1.2e-3, 0]
        assert short.min() > long_.max()


class TestBlockedEvaluation:
    """The sample-blocked fast path of the study (tiny mesh/grid)."""

    @pytest.fixture(scope="class")
    def tiny_study(self):
        from repro.package3d.chip_example import Date16Parameters

        return Date16UncertaintyStudy(
            parameters=Date16Parameters(end_time=10.0, num_time_points=6),
            resolution=(0.9e-3, 0.4e-3),
            tolerance=1e-3,
        )

    def test_supports_block_evaluation(self, tiny_study):
        assert tiny_study.supports_block_evaluation

    def test_adaptive_does_not_support_blocks(self):
        adaptive = Date16UncertaintyStudy(
            resolution="coarse", tolerance=1e-3, time_stepping="adaptive"
        )
        assert not adaptive.supports_block_evaluation
        with pytest.raises(SamplingError, match="block"):
            adaptive.evaluate_traces_block(np.full((2, 12), 0.17))
        # The model factory degrades to the plain per-sample callable.
        model = adaptive.block_model()
        assert getattr(model, "evaluate_block", None) is None

    def test_block_matches_per_sample_loop(self, tiny_study):
        rng = np.random.default_rng(11)
        deltas = rng.uniform(0.05, 0.4, size=(3, 12))
        blocked = tiny_study.evaluate_traces_block(deltas)
        loop = np.stack(
            [tiny_study.evaluate_traces(row) for row in deltas]
        )
        assert blocked.shape == loop.shape
        assert np.array_equal(blocked, loop)

    def test_block_shape_validation(self, tiny_study):
        with pytest.raises(SamplingError):
            tiny_study.evaluate_traces_block(np.full(12, 0.17))
        with pytest.raises(SamplingError):
            tiny_study.evaluate_traces_block(np.full((2, 5), 0.17))

    def test_block_counts_evaluations(self, tiny_study):
        before = tiny_study.evaluations
        tiny_study.evaluate_traces_block(np.full((2, 12), 0.17))
        assert tiny_study.evaluations - before == 2

    def test_block_model_exposes_study(self, tiny_study):
        model = tiny_study.block_model()
        assert callable(model.evaluate_block)
        assert model.__self__ is tiny_study

    def test_run_monte_carlo_block_size(self, tiny_study):
        blocked = tiny_study.run_monte_carlo(
            num_samples=5, seed=3, block_size=2
        )
        plain = tiny_study.run_monte_carlo(num_samples=5, seed=3)
        assert np.array_equal(blocked.mean, plain.mean)
        assert np.array_equal(blocked.std, plain.std)
