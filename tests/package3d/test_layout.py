"""Tests for the parametric package layout."""

import numpy as np
import pytest

from repro.errors import PackageLayoutError
from repro.package3d.chip_example import Date16Parameters, date16_layout
from repro.package3d.layout import (
    ChipDie,
    ContactPad,
    PackageLayout,
    WireAttachment,
)

MM = 1.0e-3


class TestContactPad:
    def test_box_on_each_side(self):
        layout = date16_layout()
        for pad in layout.pads:
            (x0, x1), (y0, y1), (z0, z1) = pad.box(layout)
            assert x1 > x0 and y1 > y0 and z1 > z0

    def test_inner_tip_inside_body(self):
        layout = date16_layout()
        for pad in layout.pads:
            x, y, z = pad.inner_tip(layout)
            assert 0.0 < x < layout.body_x
            assert 0.0 < y < layout.body_y

    def test_outer_face_on_boundary(self):
        layout = date16_layout()
        for pad in layout.pads:
            (x0, x1), (y0, y1), _ = pad.outer_face_box(layout)
            on_x = x0 == x1 and x0 in (0.0, layout.body_x)
            on_y = y0 == y1 and y0 in (0.0, layout.body_y)
            assert on_x or on_y

    def test_invalid_side(self):
        with pytest.raises(PackageLayoutError):
            ContactPad("q-", 1.0, 1.0, 1.0, 1.0, 0.0)

    def test_invalid_dimensions(self):
        with pytest.raises(PackageLayoutError):
            ContactPad("x-", 1.0, -1.0, 1.0, 1.0, 0.0)


class TestChipDie:
    def test_edge_point_clamps_to_rim(self):
        chip = ChipDie(0.0, 0.0, 2.0, 2.0, 0.1, 0.0)
        # A point far to the left maps onto the left edge.
        x, y, z = chip.edge_point_towards(-5.0, 0.3)
        assert x == -1.0
        assert y == pytest.approx(0.3)
        assert z == pytest.approx(0.1)

    def test_diagonal_point_maps_to_nearest_edge(self):
        chip = ChipDie(0.0, 0.0, 2.0, 2.0, 0.1, 0.0)
        x, y, _ = chip.edge_point_towards(-5.0, -4.0)
        # Clamped to the corner region, then projected to the nearer edge.
        assert (x, y) == (-1.0, -1.0)

    def test_interior_point_projected_out(self):
        chip = ChipDie(0.0, 0.0, 2.0, 2.0, 0.1, 0.0)
        x, y, _ = chip.edge_point_towards(0.9, 0.1)
        assert x == 1.0  # nearest edge is x = +1


class TestDate16Layout:
    def test_paper_counts(self):
        layout = date16_layout()
        assert layout.num_pads == 28
        assert layout.num_wires == 12

    def test_pad_dimensions_match_section5a(self):
        layout = date16_layout()
        widths = np.array([pad.width for pad in layout.pads])
        assert np.allclose(widths, 0.311 * MM)
        lengths = np.array(sorted({round(pad.length, 9) for pad in layout.pads}))
        assert np.allclose(lengths, [1.01 * MM, 1.261 * MM])
        long_pads = [p for p in layout.pads if p.length > 1.1 * MM]
        assert len(long_pads) == 4

    def test_wire_direct_distances(self):
        """Short central wires, longer outer wires; mean ~1.3 mm."""
        layout = date16_layout()
        directs = layout.all_direct_distances()
        assert directs.shape == (12,)
        assert directs.min() == pytest.approx(1.0402 * MM, rel=1e-3)
        assert directs.max() == pytest.approx(1.4236 * MM, rel=1e-3)

    def test_mean_nominal_length_matches_table2(self):
        """d / (1 - 0.17) averages to Table II's 1.55 mm."""
        layout = date16_layout()
        lengths = layout.all_direct_distances() / (1.0 - 0.17)
        assert np.mean(lengths) == pytest.approx(1.55e-3, rel=0.01)

    def test_polarity_alternates(self):
        layout = date16_layout()
        polarities = [wire.polarity for wire in layout.wires]
        assert polarities == [+1, -1] * 6

    def test_wire_endpoints_distinct(self):
        layout = date16_layout()
        for wire in layout.wires:
            pad_point, chip_point = layout.wire_endpoints(wire)
            assert not np.allclose(pad_point, chip_point)


class TestValidation:
    def test_pad_leaving_body_rejected(self):
        pads = [ContactPad("x-", 0.1 * MM, 0.3 * MM, 3.0 * MM, 0.05 * MM,
                           0.2 * MM)]
        chip = ChipDie(1.0 * MM, 1.0 * MM, 0.5 * MM, 0.5 * MM, 0.1 * MM,
                       0.2 * MM)
        with pytest.raises(PackageLayoutError):
            PackageLayout(2.0 * MM, 2.0 * MM, 0.5 * MM, pads, chip, [])

    def test_pad_chip_overlap_rejected(self):
        pads = [ContactPad("x-", 1.0 * MM, 0.3 * MM, 1.5 * MM, 0.05 * MM,
                           0.2 * MM)]
        chip = ChipDie(1.0 * MM, 1.0 * MM, 0.8 * MM, 0.8 * MM, 0.1 * MM,
                       0.2 * MM)
        with pytest.raises(PackageLayoutError):
            PackageLayout(2.0 * MM, 2.0 * MM, 0.5 * MM, pads, chip, [])

    def test_wire_pad_reference_checked(self):
        layout = date16_layout()
        with pytest.raises(PackageLayoutError):
            PackageLayout(
                layout.body_x, layout.body_y, layout.height,
                layout.pads, layout.chip,
                [WireAttachment(99, +1)],
            )

    def test_bad_polarity(self):
        with pytest.raises(PackageLayoutError):
            WireAttachment(0, 2)


class TestParameterVariants:
    def test_smaller_package_still_valid(self):
        p = Date16Parameters(body_side=5.0 * MM, chip_size=0.6 * MM)
        layout = date16_layout(p)
        assert layout.num_pads == 28
        assert layout.all_direct_distances().min() > 0.5 * MM
