"""Tests for the assembled DATE'16 problem."""

import numpy as np
import pytest

from repro.errors import PackageLayoutError
from repro.package3d.chip_example import (
    Date16Parameters,
    build_date16_problem,
    date16_layout,
    wire_lengths_from_deltas,
)


@pytest.fixture(scope="module")
def assembled():
    return build_date16_problem(resolution="coarse")


class TestTable2Defaults:
    def test_parameters(self):
        p = Date16Parameters()
        assert p.pair_voltage == pytest.approx(0.040)
        assert p.contact_voltage == pytest.approx(0.020)
        assert p.end_time == 50.0
        assert p.num_time_points == 51
        assert p.num_mc_samples == 1000
        assert p.wire_diameter == pytest.approx(25.4e-6)
        assert p.t_ambient == 300.0
        assert p.heat_transfer_coefficient == 25.0
        assert p.emissivity == pytest.approx(0.2475)

    def test_as_table_rows(self):
        rows = dict(Date16Parameters().as_table())
        assert rows["Bonding wire voltage Vbw"] == "40 mV"
        assert rows["Emissivity"] == "0.2475"


class TestAssembledProblem:
    def test_wire_count_and_materials(self, assembled):
        problem, mesh = assembled
        assert len(problem.wires) == 12
        assert all(w.material.name == "copper" for w in problem.wires)
        assert all(w.diameter == pytest.approx(25.4e-6) for w in problem.wires)

    def test_nominal_lengths(self, assembled):
        problem, _ = assembled
        lengths = np.array([w.length for w in problem.wires])
        directs = date16_layout().all_direct_distances()
        assert np.allclose(lengths, directs / 0.83, rtol=1e-6)

    def test_pec_voltages_balanced(self, assembled):
        problem, _ = assembled
        values = [bc.value for bc in problem.electrical_dirichlet]
        assert sorted(set(values)) == [-0.02, 0.02]
        assert values.count(0.02) == 6
        assert values.count(-0.02) == 6

    def test_boundary_conditions_present(self, assembled):
        problem, _ = assembled
        assert problem.convection is not None
        assert problem.convection.h == 25.0
        assert problem.radiation is not None
        assert problem.radiation.emissivity == pytest.approx(0.2475)

    def test_mesh_reuse(self, assembled):
        """Passing the mesh back in skips remeshing and shares the grid."""
        problem, mesh = assembled
        problem2, mesh2 = build_date16_problem(
            mesh=mesh, wire_deltas=np.full(12, 0.2)
        )
        assert mesh2 is mesh
        assert problem2.grid is problem.grid
        assert problem2.wires[0].length > problem.wires[0].length


class TestWireLengthMapping:
    def test_mean_delta_gives_155(self):
        lengths = wire_lengths_from_deltas(np.full(12, 0.17))
        assert np.mean(lengths) == pytest.approx(1.55e-3, rel=0.01)

    def test_zero_delta_gives_direct(self):
        layout = date16_layout()
        lengths = wire_lengths_from_deltas(np.zeros(12), layout)
        assert np.allclose(lengths, layout.all_direct_distances())

    def test_wrong_count(self):
        with pytest.raises(PackageLayoutError):
            wire_lengths_from_deltas([0.17, 0.17])

    def test_both_lengths_and_deltas_rejected(self):
        with pytest.raises(PackageLayoutError):
            build_date16_problem(
                resolution="coarse",
                wire_lengths=np.full(12, 1.5e-3),
                wire_deltas=np.full(12, 0.17),
            )

    def test_segmented_build(self):
        problem, _ = build_date16_problem(
            resolution="coarse", num_segments=3
        )
        assert problem.topology.num_extra_nodes == 24
