"""Tests for failure assessment and fusing estimates."""

import numpy as np
import pytest

from repro.bondwire.failure import (
    assess_failure,
    first_crossing_time,
    melting_point,
    preece_fusing_current,
)
from repro.errors import BondWireError


class TestFirstCrossing:
    def test_simple_crossing_interpolated(self):
        times = np.array([0.0, 1.0, 2.0])
        temps = np.array([300.0, 400.0, 500.0])
        # Crosses 450 halfway through the second interval.
        assert first_crossing_time(times, temps, 450.0) == pytest.approx(1.5)

    def test_never_crosses(self):
        times = np.array([0.0, 1.0])
        temps = np.array([300.0, 310.0])
        assert first_crossing_time(times, temps, 523.0) is None

    def test_starts_above(self):
        times = np.array([0.0, 1.0])
        temps = np.array([600.0, 650.0])
        assert first_crossing_time(times, temps, 523.0) == 0.0

    def test_exact_hit_at_sample(self):
        times = np.array([0.0, 1.0, 2.0])
        temps = np.array([300.0, 523.0, 600.0])
        assert first_crossing_time(times, temps, 523.0) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(BondWireError):
            first_crossing_time([0.0, 1.0], [300.0], 400.0)


class TestAssessment:
    def test_paper_threshold_default(self):
        times = np.linspace(0.0, 50.0, 51)
        temps = 300.0 + 4.0 * times  # reaches 500 K, stays below 523
        verdict = assess_failure(times, temps)
        assert not verdict.fails
        assert verdict.threshold == 523.0
        assert verdict.margin == pytest.approx(23.0)

    def test_failing_trace(self):
        times = np.linspace(0.0, 50.0, 51)
        temps = 300.0 + 5.0 * times  # reaches 550 K
        verdict = assess_failure(times, temps)
        assert verdict.fails
        assert verdict.crossing_time == pytest.approx(44.6)
        assert verdict.margin < 0.0

    def test_repr_mentions_verdict(self):
        verdict = assess_failure([0.0, 1.0], [300.0, 310.0], label="w3")
        assert "w3" in repr(verdict)
        assert "ok" in repr(verdict)


class TestFusing:
    def test_preece_copper_25um(self):
        """25.4 um copper: the classic ~0.32 A free-air fusing current."""
        current = preece_fusing_current(25.4e-6, "copper")
        assert current == pytest.approx(0.324, rel=0.02)

    def test_preece_scales_with_d_to_1_5(self):
        i1 = preece_fusing_current(25.0e-6)
        i2 = preece_fusing_current(50.0e-6)
        assert i2 / i1 == pytest.approx(2.0**1.5)

    def test_material_ordering(self):
        """Copper fuses at higher current than gold and aluminium."""
        d = 25.4e-6
        assert preece_fusing_current(d, "copper") > preece_fusing_current(
            d, "gold"
        )

    def test_unknown_material(self):
        with pytest.raises(BondWireError):
            preece_fusing_current(25e-6, "mithril")

    def test_invalid_diameter(self):
        with pytest.raises(BondWireError):
            preece_fusing_current(0.0)


class TestMeltingPoints:
    def test_copper(self):
        assert melting_point("copper") == pytest.approx(1357.8)

    def test_alias(self):
        assert melting_point("aluminum") == melting_point("aluminium")

    def test_unknown(self):
        with pytest.raises(BondWireError):
            melting_point("wood")
