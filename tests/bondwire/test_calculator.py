"""Tests for the wire-sizing calculator."""

import pytest

from repro.bondwire.calculator import BondWireCalculator
from repro.errors import BondWireError
from repro.materials.library import copper, gold


@pytest.fixture
def calculator():
    """Paper-like configuration: copper, 1.55 mm, limit 523 K."""
    return BondWireCalculator(copper(), 1.55e-3)


class TestCheck:
    def test_small_current_ok(self, calculator):
        result = calculator.check(25.4e-6, 0.05)
        assert result.satisfied
        assert result.peak_temperature < 523.0

    def test_large_current_fails(self, calculator):
        result = calculator.check(25.4e-6, 2.0)
        assert not result.satisfied

    def test_monotone_in_current(self, calculator):
        temps = [
            calculator.peak_temperature(25.4e-6, i)
            for i in (0.05, 0.1, 0.2, 0.4)
        ]
        assert all(b > a for a, b in zip(temps, temps[1:]))

    def test_monotone_in_diameter(self, calculator):
        """Thicker wire stays cooler at fixed current."""
        temps = [
            calculator.peak_temperature(d, 0.3)
            for d in (20e-6, 25.4e-6, 50e-6)
        ]
        assert all(b < a for a, b in zip(temps, temps[1:]))


class TestAllowableCurrent:
    def test_bracketing_and_bisection(self, calculator):
        allowable = calculator.allowable_current(25.4e-6)
        # At the allowable current the limit is met...
        assert calculator.peak_temperature(
            25.4e-6, allowable * 0.999
        ) <= 523.0
        # ... and 5 % above it is violated.
        assert calculator.peak_temperature(25.4e-6, allowable * 1.05) > 523.0

    def test_thicker_wire_allows_more(self, calculator):
        assert calculator.allowable_current(50e-6) > (
            calculator.allowable_current(25.4e-6)
        )


class TestRequiredDiameter:
    def test_roundtrip_with_allowable(self, calculator):
        current = calculator.allowable_current(25.4e-6)
        required = calculator.required_diameter(current * 0.98)
        assert required <= 25.4e-6 * 1.05

    def test_impossible_current_raises(self, calculator):
        with pytest.raises(BondWireError):
            calculator.required_diameter(1e4, d_max=1e-4)

    def test_tiny_current_returns_minimum(self, calculator):
        assert calculator.required_diameter(1e-6) == pytest.approx(1e-6)


class TestMaterialTradeoff:
    def test_copper_beats_gold(self):
        """Intro of the paper: material choice is a design trade-off.

        Copper's higher sigma*lambda product allows more current at equal
        geometry.
        """
        cu = BondWireCalculator(copper(), 1.55e-3)
        au = BondWireCalculator(gold(), 1.55e-3)
        assert cu.allowable_current(25.4e-6) > au.allowable_current(25.4e-6)


class TestValidation:
    def test_limit_below_contact_rejected(self):
        with pytest.raises(BondWireError):
            BondWireCalculator(copper(), 1e-3, t_contact=600.0, t_limit=523.0)

    def test_bad_length(self):
        with pytest.raises(BondWireError):
            BondWireCalculator(copper(), 0.0)

    def test_sweep(self, calculator):
        results = calculator.sweep_diameters([20e-6, 30e-6], 0.2)
        assert len(results) == 2
        assert results[0].peak_temperature > results[1].peak_temperature
