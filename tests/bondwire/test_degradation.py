"""Tests for the kinetic degradation models."""

import numpy as np
import pytest

from repro.bondwire.degradation import (
    ArrheniusDegradationModel,
    CycleCountingModel,
)
from repro.errors import BondWireError


class TestArrheniusRates:
    def test_reference_normalization(self):
        """Held at T_ref, the wire consumes one lifetime in t_ref."""
        model = ArrheniusDegradationModel(
            reference_temperature=523.0, reference_lifetime=100.0
        )
        assert model.constant_temperature_lifetime(523.0) == pytest.approx(
            100.0
        )
        assert model.damage_rate(523.0) == pytest.approx(0.01)

    def test_rate_increases_with_temperature(self):
        model = ArrheniusDegradationModel()
        rates = model.damage_rate(np.array([400.0, 450.0, 500.0, 550.0]))
        assert np.all(np.diff(rates) > 0.0)

    def test_acceleration_factor_10k_rule(self):
        """0.8 eV near 523 K: roughly 1.3-1.6x per 10 K -- the classic
        reliability rule-of-thumb territory."""
        model = ArrheniusDegradationModel(activation_energy=0.8)
        factor = model.acceleration_factor(533.0, baseline=523.0)
        assert 1.2 < factor < 1.8

    def test_invalid_parameters(self):
        with pytest.raises(BondWireError):
            ArrheniusDegradationModel(activation_energy=0.0)
        with pytest.raises(BondWireError):
            ArrheniusDegradationModel(reference_lifetime=-1.0)
        with pytest.raises(BondWireError):
            ArrheniusDegradationModel().damage_rate(-5.0)


class TestDamageAccumulation:
    def test_constant_trace_linear_damage(self):
        model = ArrheniusDegradationModel(
            reference_temperature=523.0, reference_lifetime=50.0
        )
        times = np.linspace(0.0, 50.0, 101)
        temps = np.full(101, 523.0)
        damage = model.accumulate(times, temps)
        assert damage[0] == 0.0
        assert damage[-1] == pytest.approx(1.0)
        assert np.allclose(np.diff(damage), np.diff(damage)[0])

    def test_damage_monotone(self):
        model = ArrheniusDegradationModel()
        times = np.linspace(0.0, 50.0, 51)
        temps = 300.0 + 150.0 * (1.0 - np.exp(-times / 10.0))
        damage = model.accumulate(times, temps)
        assert np.all(np.diff(damage) > 0.0)

    def test_time_to_failure_interpolated(self):
        model = ArrheniusDegradationModel(
            reference_temperature=500.0, reference_lifetime=10.0
        )
        times = np.linspace(0.0, 40.0, 401)
        temps = np.full(401, 500.0)
        ttf = model.time_to_failure(times, temps)
        assert ttf == pytest.approx(10.0, rel=1e-6)

    def test_cool_trace_never_fails(self):
        model = ArrheniusDegradationModel(
            reference_temperature=523.0, reference_lifetime=1.0
        )
        times = np.linspace(0.0, 50.0, 51)
        temps = np.full(51, 310.0)
        assert model.time_to_failure(times, temps) is None

    def test_hotter_trace_fails_earlier(self):
        model = ArrheniusDegradationModel(
            reference_temperature=450.0, reference_lifetime=20.0
        )
        times = np.linspace(0.0, 100.0, 1001)
        ttf_cool = model.time_to_failure(times, np.full(1001, 450.0))
        ttf_hot = model.time_to_failure(times, np.full(1001, 470.0))
        assert ttf_hot < ttf_cool

    def test_initial_damage_offsets(self):
        model = ArrheniusDegradationModel(
            reference_temperature=500.0, reference_lifetime=10.0
        )
        times = np.linspace(0.0, 10.0, 11)
        temps = np.full(11, 500.0)
        damage = model.accumulate(times, temps, initial_damage=0.5)
        assert damage[0] == 0.5
        assert damage[-1] == pytest.approx(1.5)

    def test_validation(self):
        model = ArrheniusDegradationModel()
        with pytest.raises(BondWireError):
            model.accumulate([0.0, 1.0], [300.0])
        with pytest.raises(BondWireError):
            model.accumulate([1.0, 0.5], [300.0, 300.0])


class TestCycleCounting:
    def test_coffin_manson_scaling(self):
        model = CycleCountingModel(coefficient=1e7, exponent=2.0)
        assert model.cycles_to_failure(100.0) == pytest.approx(1e3)
        assert model.cycles_to_failure(10.0) == pytest.approx(1e5)

    def test_extract_swings_triangle_wave(self):
        model = CycleCountingModel(minimum_swing=1.0)
        trace = np.array([300.0, 350.0, 300.0, 350.0, 300.0])
        swings = model.extract_swings(trace)
        assert np.allclose(swings, 50.0)
        assert swings.size == 4

    def test_small_ripple_ignored(self):
        model = CycleCountingModel(minimum_swing=5.0)
        trace = np.array([300.0, 300.5, 300.0, 300.5, 300.0])
        assert model.extract_swings(trace).size == 0
        assert model.damage(trace) == 0.0

    def test_damage_accumulates_miner(self):
        model = CycleCountingModel(coefficient=1e4, exponent=2.0)
        # Each 100 K swing costs 1/N_f = 1/(1e4 * 1e-4) = 1e-4... compute:
        # N_f(100) = 1e4 * 100^-2 = 1.  One swing = full damage.
        trace = np.array([300.0, 400.0, 300.0])
        assert model.damage(trace) == pytest.approx(2.0)

    def test_monotone_trace_single_swing(self):
        model = CycleCountingModel()
        trace = np.linspace(300.0, 400.0, 50)
        swings = model.extract_swings(trace)
        assert swings.size == 1
        assert swings[0] == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(BondWireError):
            CycleCountingModel(coefficient=0.0)
        with pytest.raises(BondWireError):
            CycleCountingModel().cycles_to_failure(0.0)
