"""Tests for the analytic steady-state wire models."""

import numpy as np
import pytest

from repro.bondwire.models import AnalyticWireModel
from repro.errors import BondWireError
from repro.materials.base import Material
from repro.materials.library import copper


@pytest.fixture
def linear_material():
    """Temperature-independent material for closed-form checks."""
    return Material("lin", 5.8e7, 398.0, 3.4e6)


class TestParabolicProfile:
    def test_peak_matches_closed_form(self, linear_material):
        """No lateral loss, equal ends: peak rise = I^2 L^2 / (8 s l A^2)."""
        model = AnalyticWireModel(linear_material, 25.4e-6, 1.55e-3)
        current = 0.2
        solution = model.solve_current_driven(current, 300.0)
        expected_rise = model.peak_temperature_rise_linear(current)
        assert solution.peak_temperature - 300.0 == pytest.approx(
            expected_rise, rel=1e-6
        )

    def test_profile_symmetric(self, linear_material):
        model = AnalyticWireModel(linear_material, 25.4e-6, 1.0e-3)
        solution = model.solve_current_driven(0.1, 300.0)
        x = np.linspace(0.0, 1.0e-3, 21)
        t = solution.temperature(x)
        assert np.allclose(t, t[::-1], rtol=1e-10)

    def test_ends_clamped(self, linear_material):
        model = AnalyticWireModel(linear_material, 25.4e-6, 1.0e-3)
        solution = model.solve_current_driven(0.15, 320.0, 360.0)
        assert solution.temperature(0.0) == pytest.approx(320.0)
        assert solution.temperature(1.0e-3) == pytest.approx(360.0)

    def test_zero_current_linear_profile(self, linear_material):
        model = AnalyticWireModel(linear_material, 25.4e-6, 1.0e-3)
        solution = model.solve_current_driven(0.0, 300.0, 400.0)
        assert solution.temperature(0.5e-3) == pytest.approx(350.0)
        assert solution.dissipated_power == 0.0

    def test_power_is_i_squared_r(self, linear_material):
        model = AnalyticWireModel(linear_material, 25.4e-6, 1.55e-3)
        solution = model.solve_current_driven(0.3, 300.0)
        assert solution.dissipated_power == pytest.approx(
            0.3**2 * solution.resistance
        )


class TestFinSolution:
    def test_lateral_loss_cools_the_wire(self, linear_material):
        bare = AnalyticWireModel(linear_material, 25.4e-6, 1.55e-3)
        cooled = AnalyticWireModel(
            linear_material, 25.4e-6, 1.55e-3, heat_transfer_coefficient=250.0
        )
        hot = bare.solve_current_driven(0.3, 300.0)
        cool = cooled.solve_current_driven(0.3, 300.0)
        assert cool.peak_temperature < hot.peak_temperature

    def test_long_fin_approaches_free_air_limit(self, linear_material):
        """Far from the ends a long fin sits at T_inf + q' / (h p)."""
        model = AnalyticWireModel(
            linear_material, 100e-6, 0.1,  # 10 cm: effectively infinite
            heat_transfer_coefficient=100.0,
        )
        current = 1.0
        solution = model.solve_current_driven(current, 300.0)
        area = model.area
        q_per_length = current**2 / (5.8e7 * area)
        limit = 300.0 + q_per_length / (100.0 * model.perimeter)
        # End effects decay as exp(-m x); at mid-span of a 10/m-length
        # fin they still leave a ~1 K residue, hence the 0.5 % tolerance.
        assert solution.temperature(0.05) == pytest.approx(limit, rel=5e-3)


class TestNonlinearFeedback:
    def test_voltage_driven_current_drops(self):
        """Hot copper wire under fixed voltage carries less current."""
        model = AnalyticWireModel(copper(), 25.4e-6, 1.55e-3)
        cold_resistance = 1.55e-3 / (5.8e7 * model.area)
        solution = model.solve_voltage_driven(0.1, 300.0)
        assert solution.current < 0.1 / cold_resistance
        assert solution.resistance > cold_resistance

    def test_current_driven_nonlinear_hotter_than_linear(self):
        """With sigma(T) falling, fixed current dissipates more power."""
        nonlinear = AnalyticWireModel(copper(), 25.4e-6, 1.55e-3)
        linear = AnalyticWireModel(
            copper().frozen(300.0), 25.4e-6, 1.55e-3
        )
        i = 0.3
        assert (
            nonlinear.solve_current_driven(i, 300.0).peak_temperature
            > linear.solve_current_driven(i, 300.0).peak_temperature
        )

    def test_consistency_voltage_vs_current(self):
        """Solving with U then re-solving with the resulting I agrees."""
        model = AnalyticWireModel(copper(), 25.4e-6, 1.55e-3)
        by_voltage = model.solve_voltage_driven(0.05, 300.0)
        by_current = model.solve_current_driven(by_voltage.current, 300.0)
        assert by_current.peak_temperature == pytest.approx(
            by_voltage.peak_temperature, rel=1e-6
        )


class TestValidation:
    def test_invalid_geometry(self, linear_material):
        with pytest.raises(BondWireError):
            AnalyticWireModel(linear_material, -1e-6, 1e-3)
        with pytest.raises(BondWireError):
            AnalyticWireModel(linear_material, 1e-6, 0.0)
        with pytest.raises(BondWireError):
            AnalyticWireModel(linear_material, 1e-6, 1e-3,
                              heat_transfer_coefficient=-1.0)

    def test_position_outside_wire(self, linear_material):
        model = AnalyticWireModel(linear_material, 25.4e-6, 1.0e-3)
        solution = model.solve_current_driven(0.1, 300.0)
        with pytest.raises(BondWireError):
            solution.temperature(2.0e-3)

    def test_sample_shape(self, linear_material):
        model = AnalyticWireModel(linear_material, 25.4e-6, 1.0e-3)
        solution = model.solve_current_driven(0.1, 300.0)
        x, t = solution.sample(51)
        assert x.shape == t.shape == (51,)
