"""Tests for the wire length geometry (Fig. 4 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bondwire.geometry import (
    WireLengthModel,
    bending_elongation_arc,
    bending_elongation_triangle,
    length_from_elongation,
    misplacement_elongation,
    relative_elongation,
    total_length,
)
from repro.errors import BondWireError


class TestTotalLength:
    def test_sum(self):
        assert total_length(1.0e-3, 0.1e-3, 0.2e-3) == pytest.approx(1.3e-3)

    def test_negative_rejected(self):
        with pytest.raises(BondWireError):
            total_length(1.0e-3, -0.1e-3)
        with pytest.raises(BondWireError):
            total_length(-1.0e-3)


class TestRelativeElongation:
    def test_paper_mean_case(self):
        """delta = 0.17 corresponds to L = d / 0.83."""
        d = 1.29e-3
        length = d / (1.0 - 0.17)
        assert relative_elongation(d, length) == pytest.approx(0.17)

    def test_no_elongation(self):
        assert relative_elongation(1.0e-3, 1.0e-3) == 0.0

    def test_shorter_than_direct_rejected(self):
        with pytest.raises(BondWireError):
            relative_elongation(1.0e-3, 0.9e-3)

    def test_roundtrip_with_inverse(self):
        d = 1.5e-3
        for delta in (0.0, 0.1, 0.17, 0.4):
            length = length_from_elongation(d, delta)
            assert relative_elongation(d, length) == pytest.approx(delta)

    def test_inverse_clips_negative_delta(self):
        """Geometrically impossible negative deltas map to L = d."""
        assert length_from_elongation(1.0e-3, -0.2) == pytest.approx(1.0e-3)

    def test_inverse_rejects_delta_one(self):
        with pytest.raises(BondWireError):
            length_from_elongation(1.0e-3, 1.0)


class TestMisplacement:
    def test_zero_offset(self):
        assert misplacement_elongation(1.0e-3, 0.0) == 0.0

    def test_pythagoras(self):
        """3-4-5 triangle: d=3, offset=4 -> elongation 2."""
        assert misplacement_elongation(3.0, 4.0) == pytest.approx(2.0)

    def test_small_offset_quadratic(self):
        """For small offsets: delta_s ~ offset^2 / (2 d)."""
        d, offset = 1.0e-3, 1.0e-5
        assert misplacement_elongation(d, offset) == pytest.approx(
            offset**2 / (2 * d), rel=1e-3
        )


class TestBending:
    def test_triangle_zero_height(self):
        assert bending_elongation_triangle(1.0e-3, 0.0) == 0.0

    def test_triangle_345(self):
        """Span 6, height 4 -> two 5-legs -> elongation 4."""
        assert bending_elongation_triangle(6.0, 4.0) == pytest.approx(4.0)

    def test_arc_zero_height(self):
        assert bending_elongation_arc(1.0e-3, 0.0) == 0.0

    def test_arc_semicircle(self):
        """Height = half span: semicircle, length pi R over span 2 R."""
        span = 2.0
        elongation = bending_elongation_arc(span, 1.0)
        assert elongation == pytest.approx(np.pi - 2.0)

    def test_arc_above_triangle(self):
        """The tent is the shortest path through the apex, so the smooth
        arc through the same three points is strictly longer."""
        span, height = 1.0e-3, 0.3e-3
        assert bending_elongation_arc(span, height) > (
            bending_elongation_triangle(span, height)
        )

    def test_invalid_inputs(self):
        with pytest.raises(BondWireError):
            bending_elongation_arc(0.0, 1.0)
        with pytest.raises(BondWireError):
            bending_elongation_triangle(1.0, -1.0)


class TestWireLengthModel:
    def test_composition(self):
        model = WireLengthModel(1.0e-3, 0.05e-3, 0.15e-3, name="w")
        assert model.length == pytest.approx(1.2e-3)
        assert model.delta == pytest.approx(0.2e-3 / 1.2e-3)

    def test_with_delta_overrides_length(self):
        model = WireLengthModel(1.0e-3, 0.05e-3, 0.15e-3)
        resampled = model.with_delta(0.3)
        assert resampled.delta == pytest.approx(0.3)
        assert resampled.direct_distance == model.direct_distance


@given(
    d=st.floats(min_value=1e-4, max_value=1e-2),
    delta=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=50, deadline=None)
def test_property_elongation_roundtrip(d, delta):
    length = length_from_elongation(d, delta)
    assert length >= d
    assert relative_elongation(d, length) == pytest.approx(delta, abs=1e-12)


@given(
    span=st.floats(min_value=1e-4, max_value=1e-2),
    height=st.floats(min_value=0.0, max_value=5e-3),
)
@settings(max_examples=50, deadline=None)
def test_property_bending_non_negative_monotone(span, height):
    """Bending elongation is non-negative and grows with loop height."""
    low = bending_elongation_arc(span, height)
    high = bending_elongation_arc(span, height + 1e-4)
    assert low >= 0.0
    assert high >= low
