"""Tests for the lumped wire element and its FIT stamps (Section III-B)."""

import numpy as np
import pytest

from repro.bondwire.lumped import LumpedBondWire, WireStamp, stamp_conductance_matrix
from repro.circuit.netlist import Netlist
from repro.errors import BondWireError
from repro.materials.library import copper


@pytest.fixture
def paper_wire():
    """Table II wire: copper, 25.4 um diameter, 1.55 mm long."""
    return LumpedBondWire(0, 1, copper(), 25.4e-6, 1.55e-3, name="w")


class TestWireProperties:
    def test_cross_section(self, paper_wire):
        assert paper_wire.cross_section_area == pytest.approx(
            np.pi / 4.0 * (25.4e-6) ** 2
        )

    def test_conductance_at_300k(self, paper_wire):
        """G = sigma A / L with Table I copper: about 19 S."""
        g = paper_wire.electrical_conductance(300.0)
        expected = 5.8e7 * paper_wire.cross_section_area / 1.55e-3
        assert g == pytest.approx(expected)
        assert 15.0 < g < 25.0

    def test_resistance_about_50_mohm(self, paper_wire):
        assert paper_wire.resistance(300.0) == pytest.approx(0.0527, rel=0.01)

    def test_conductance_drops_when_hot(self, paper_wire):
        assert paper_wire.electrical_conductance(500.0) < (
            paper_wire.electrical_conductance(300.0)
        )

    def test_thermal_conductance(self, paper_wire):
        g = paper_wire.thermal_conductance(300.0)
        expected = 398.0 * paper_wire.cross_section_area / 1.55e-3
        assert g == pytest.approx(expected)

    def test_segment_conductance_scales(self, paper_wire):
        chain = paper_wire.with_segments(4)
        assert chain.segment_electrical_conductance(300.0) == pytest.approx(
            4.0 * paper_wire.electrical_conductance(300.0)
        )

    def test_with_length(self, paper_wire):
        longer = paper_wire.with_length(3.1e-3)
        assert longer.electrical_conductance(300.0) == pytest.approx(
            0.5 * paper_wire.electrical_conductance(300.0)
        )
        assert longer.name == paper_wire.name

    def test_validation(self):
        with pytest.raises(BondWireError):
            LumpedBondWire(0, 0, copper(), 1e-6, 1e-3)
        with pytest.raises(BondWireError):
            LumpedBondWire(0, 1, copper(), -1e-6, 1e-3)
        with pytest.raises(BondWireError):
            LumpedBondWire(0, 1, copper(), 1e-6, 0.0)
        with pytest.raises(BondWireError):
            LumpedBondWire(0, 1, "copper", 1e-6, 1e-3)
        with pytest.raises(BondWireError):
            LumpedBondWire(0, 1, copper(), 1e-6, 1e-3, num_segments=0)


class TestWireStamp:
    def test_incidence_vector(self):
        stamp = WireStamp(1, 3, 5)
        p = stamp.incidence_vector()
        assert p[1] == 1.0
        assert p[3] == -1.0
        assert np.sum(np.abs(p)) == 2.0

    def test_averaging_vector_eq5(self):
        """X_j has two 1/2 entries (eq. (5) of the paper)."""
        stamp = WireStamp(1, 3, 5)
        x = stamp.averaging_vector()
        assert x[1] == 0.5
        assert x[3] == 0.5
        assert np.sum(x) == 1.0

    def test_average_value(self):
        stamp = WireStamp(0, 2, 3)
        assert stamp.average_value([300.0, 0.0, 400.0]) == 350.0

    def test_stamp_matrix_pattern(self):
        """G_bw = g [[1, -1], [-1, 1]] at the right positions."""
        stamp = WireStamp(0, 2, 3)
        matrix = stamp.conductance_matrix(5.0).toarray()
        expected = np.array(
            [[5.0, 0.0, -5.0], [0.0, 0.0, 0.0], [-5.0, 0.0, 5.0]]
        )
        assert np.allclose(matrix, expected)

    def test_stamp_matrix_psd(self):
        matrix = WireStamp(0, 2, 4).conductance_matrix(3.0).toarray()
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert np.min(eigenvalues) > -1e-14

    def test_joule_power(self):
        stamp = WireStamp(0, 1, 2)
        phi = np.array([0.02, -0.02, 0.0])
        assert stamp.joule_power(phi, 19.0) == pytest.approx(19.0 * 0.04**2)

    def test_validation(self):
        with pytest.raises(BondWireError):
            WireStamp(0, 0, 3)
        with pytest.raises(BondWireError):
            WireStamp(0, 9, 3)
        with pytest.raises(BondWireError):
            WireStamp(0, 1, 3).conductance_matrix(-1.0)


class TestStampAggregation:
    def test_sum_matches_individual(self):
        stamps = [WireStamp(0, 1, 4), WireStamp(1, 2, 4), WireStamp(2, 3, 4)]
        g = [1.0, 2.0, 3.0]
        total = stamp_conductance_matrix(4, stamps, g).toarray()
        expected = sum(
            s.conductance_matrix(gi).toarray() for s, gi in zip(stamps, g)
        )
        assert np.allclose(total, expected)

    def test_count_mismatch(self):
        with pytest.raises(BondWireError):
            stamp_conductance_matrix(4, [WireStamp(0, 1, 4)], [1.0, 2.0])


class TestAgainstCircuitSolver:
    """Field-circuit consistency: the stamp equals nodal analysis."""

    def test_voltage_divider(self):
        """Two wires in series between +-20 mV match the netlist solution."""
        g1, g2 = 19.0, 9.5
        stamps = [WireStamp(0, 1, 3), WireStamp(1, 2, 3)]
        matrix = stamp_conductance_matrix(3, stamps, [g1, g2]).toarray()
        # Fix node 0 at +0.02, node 2 at -0.02; solve node 1.
        # Row 1: -g1 phi0 + (g1+g2) phi1 - g2 phi2 = 0.
        phi1 = (g1 * 0.02 + g2 * (-0.02)) / (g1 + g2)

        netlist = Netlist()
        netlist.add_conductance("a", "m", g1)
        netlist.add_conductance("m", "b", g2)
        netlist.fix_potential("a", 0.02)
        netlist.fix_potential("b", -0.02)
        solution = netlist.solve()
        assert solution.potential("m") == pytest.approx(phi1)
        # And the matrix row equation holds for that potential.
        phi = np.array([0.02, phi1, -0.02])
        assert matrix[1] @ phi == pytest.approx(0.0, abs=1e-12)
