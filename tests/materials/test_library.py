"""Tests for the material library, pinned to Table I of the paper."""

import pytest

from repro.constants import T_REFERENCE
from repro.errors import MaterialError
from repro.materials.library import (
    MATERIAL_LIBRARY,
    air,
    aluminium,
    copper,
    epoxy_resin,
    get_material,
    gold,
    silicon,
)


class TestTable1Values:
    """The paper's Table I at 300 K, exactly."""

    def test_copper_sigma(self):
        assert copper().electrical_conductivity(T_REFERENCE) == pytest.approx(
            5.80e7
        )

    def test_copper_lambda(self):
        assert copper().thermal_conductivity(T_REFERENCE) == pytest.approx(398.0)

    def test_epoxy_sigma(self):
        assert epoxy_resin().electrical_conductivity(
            T_REFERENCE
        ) == pytest.approx(1.0e-6)

    def test_epoxy_lambda(self):
        assert epoxy_resin().thermal_conductivity(
            T_REFERENCE
        ) == pytest.approx(0.87)


class TestTemperatureBehaviour:
    def test_copper_sigma_decreases(self):
        material = copper()
        assert material.electrical_conductivity(400.0) < 5.80e7

    def test_copper_lambda_mildly_decreases(self):
        material = copper()
        assert material.thermal_conductivity(500.0) < 398.0
        assert material.thermal_conductivity(500.0) > 350.0

    def test_epoxy_constant(self):
        material = epoxy_resin()
        assert material.thermal_conductivity(500.0) == pytest.approx(0.87)

    def test_metal_ordering(self):
        """Conductivity order Cu > Au > Al as in handbooks."""
        sigma = [
            m.electrical_conductivity(T_REFERENCE)
            for m in (copper(), gold(), aluminium())
        ]
        assert sigma[0] > sigma[1] > sigma[2]


class TestLookup:
    def test_all_library_entries_construct(self):
        for name in MATERIAL_LIBRARY:
            material = get_material(name)
            assert material.thermal_conductivity(T_REFERENCE) > 0.0

    def test_case_insensitive(self):
        assert get_material("Copper").name == "copper"

    def test_aliases(self):
        assert get_material("aluminum").name == "aluminium"
        assert get_material("epoxy").name == "epoxy_resin"

    def test_unknown_material(self):
        with pytest.raises(MaterialError):
            get_material("unobtanium")


class TestPlausibility:
    def test_heat_capacities_physical(self):
        """rho*c within the usual solid-state range 1e3..4e6 J/K/m^3."""
        for factory in (copper, gold, aluminium, epoxy_resin, silicon):
            rhoc = factory().volumetric_heat_capacity()
            assert 1.0e5 < rhoc < 5.0e6

    def test_air_weakly_conducting(self):
        assert air().thermal_conductivity(T_REFERENCE) < 0.1
        assert not air().is_electrically_conducting()

    def test_fresh_instances(self):
        """Factories return independent objects (no shared mutable state)."""
        assert copper() is not copper()
        assert copper() == copper()
