"""Tests for the scalar temperature-dependent property models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MaterialError
from repro.materials.temperature_models import (
    ConstantModel,
    InverseLinearModel,
    LinearModel,
    PolynomialModel,
    TabulatedModel,
)


class TestConstantModel:
    def test_scalar_and_array(self):
        model = ConstantModel(5.0)
        assert model(300.0) == 5.0
        values = model(np.array([300.0, 400.0]))
        assert values.shape == (2,)
        assert np.all(values == 5.0)

    def test_zero_derivative(self):
        model = ConstantModel(5.0)
        assert model.derivative(300.0) == 0.0

    def test_rejects_non_finite(self):
        with pytest.raises(MaterialError):
            ConstantModel(np.inf)


class TestLinearModel:
    def test_reference_value(self):
        model = LinearModel(100.0, 0.01, reference=300.0)
        assert model(300.0) == 100.0

    def test_slope(self):
        model = LinearModel(100.0, 0.01, reference=300.0)
        assert np.isclose(model(400.0), 200.0)

    def test_floor_applied(self):
        model = LinearModel(100.0, -0.01, reference=300.0, floor=10.0)
        assert model(5000.0) == 10.0

    def test_rejects_non_positive_reference_value(self):
        with pytest.raises(MaterialError):
            LinearModel(0.0, 0.01)


class TestInverseLinearModel:
    def test_reference_value(self):
        model = InverseLinearModel(5.8e7, 3.93e-3)
        assert np.isclose(model(300.0), 5.8e7)

    def test_decreases_with_temperature(self):
        """The key electrothermal feedback: hotter -> less conductive."""
        model = InverseLinearModel(5.8e7, 3.93e-3)
        assert model(400.0) < model(300.0)
        # At 100 K above reference: sigma0 / (1 + 0.393)
        assert np.isclose(model(400.0), 5.8e7 / 1.393)

    def test_analytic_derivative_matches_fd(self):
        model = InverseLinearModel(5.8e7, 3.93e-3)
        analytic = model.derivative(350.0)
        fd = (model(350.0 + 1e-3) - model(350.0 - 1e-3)) / 2e-3
        assert np.isclose(analytic, fd, rtol=1e-6)

    def test_clamps_below_singularity(self):
        model = InverseLinearModel(1.0, 0.01, reference=300.0)
        # 1 + 0.01 (T - 300) = 0 at T = 200; below, clamp keeps it finite.
        assert np.isfinite(model(100.0))
        assert model(100.0) > 0.0

    def test_rejects_negative_alpha(self):
        with pytest.raises(MaterialError):
            InverseLinearModel(1.0, -0.1)


class TestPolynomialModel:
    def test_quadratic(self):
        model = PolynomialModel([1.0, 2.0, 3.0], reference=0.0)
        assert np.isclose(model(2.0), 1.0 + 4.0 + 12.0)

    def test_floor(self):
        model = PolynomialModel([1.0, -1.0], reference=0.0, floor=0.5)
        assert model(10.0) == 0.5

    def test_empty_coefficients_rejected(self):
        with pytest.raises(MaterialError):
            PolynomialModel([])


class TestTabulatedModel:
    def test_interpolation(self):
        model = TabulatedModel([300.0, 400.0], [1.0, 2.0])
        assert np.isclose(model(350.0), 1.5)

    def test_clamped_extrapolation(self):
        model = TabulatedModel([300.0, 400.0], [1.0, 2.0])
        assert model(200.0) == 1.0
        assert model(500.0) == 2.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(MaterialError):
            TabulatedModel([300.0, 400.0], [1.0])

    def test_rejects_non_increasing(self):
        with pytest.raises(MaterialError):
            TabulatedModel([400.0, 300.0], [1.0, 2.0])


@given(
    sigma0=st.floats(min_value=1.0, max_value=1e8),
    alpha=st.floats(min_value=0.0, max_value=0.01),
    t=st.floats(min_value=250.0, max_value=1000.0),
)
@settings(max_examples=50, deadline=None)
def test_property_inverse_linear_positive(sigma0, alpha, t):
    """Conductivity stays positive over the physical temperature range."""
    model = InverseLinearModel(sigma0, alpha)
    assert model(t) > 0.0


@given(t=st.floats(min_value=250.0, max_value=1500.0))
@settings(max_examples=50, deadline=None)
def test_property_tabulated_within_range(t):
    """Interpolated values never leave the tabulated value range."""
    model = TabulatedModel([300.0, 600.0, 1200.0], [5.0, 3.0, 4.0])
    value = model(t)
    assert 3.0 <= value <= 5.0
