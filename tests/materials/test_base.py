"""Tests for the Material aggregate."""

import numpy as np
import pytest

from repro.errors import MaterialError
from repro.materials.base import Material
from repro.materials.temperature_models import InverseLinearModel


class TestConstruction:
    def test_numbers_become_constant_models(self):
        material = Material("m", 1.0e6, 100.0, 1.0e6)
        assert material.electrical_conductivity(999.0) == 1.0e6
        assert material.thermal_conductivity(999.0) == 100.0
        assert material.volumetric_heat_capacity() == 1.0e6

    def test_model_accepted(self):
        material = Material(
            "m", InverseLinearModel(1.0e6, 1e-3), 100.0, 1.0e6
        )
        assert material.electrical_conductivity(300.0) == pytest.approx(1.0e6)

    def test_rejects_empty_name(self):
        with pytest.raises(MaterialError):
            Material("", 1.0, 1.0, 1.0)

    def test_rejects_negative_property(self):
        with pytest.raises(MaterialError):
            Material("m", -1.0, 1.0, 1.0)

    def test_rejects_garbage_property(self):
        with pytest.raises(MaterialError):
            Material("m", "not-a-number", 1.0, 1.0)


class TestDerivatives:
    def test_constant_derivative_zero(self):
        material = Material("m", 1.0, 1.0, 1.0)
        assert material.electrical_conductivity_derivative(300.0) == 0.0

    def test_inverse_linear_derivative_negative(self):
        material = Material(
            "m", InverseLinearModel(1.0e6, 1e-3), 100.0, 1.0e6
        )
        assert material.electrical_conductivity_derivative(350.0) < 0.0


class TestFrozen:
    def test_frozen_removes_temperature_dependence(self):
        material = Material(
            "m", InverseLinearModel(1.0e6, 3.9e-3), 100.0, 1.0e6
        )
        frozen = material.frozen(400.0)
        value_at_400 = material.electrical_conductivity(400.0)
        assert frozen.electrical_conductivity(300.0) == pytest.approx(value_at_400)
        assert frozen.electrical_conductivity(800.0) == pytest.approx(value_at_400)

    def test_frozen_name_annotated(self):
        material = Material("m", 1.0, 1.0, 1.0)
        assert "400" in material.frozen(400.0).name


class TestEquality:
    def test_equal_materials(self):
        a = Material("m", 1.0, 2.0, 3.0)
        b = Material("m", 1.0, 2.0, 3.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_materials(self):
        a = Material("m", 1.0, 2.0, 3.0)
        b = Material("m", 1.5, 2.0, 3.0)
        assert a != b

    def test_usable_in_sets(self):
        a = Material("m", 1.0, 2.0, 3.0)
        b = Material("m", 1.0, 2.0, 3.0)
        assert len({a, b}) == 1


class TestVectorized:
    def test_array_temperatures(self):
        material = Material(
            "m", InverseLinearModel(1.0e6, 1e-3), 100.0, 1.0e6
        )
        temps = np.array([300.0, 400.0, 500.0])
        sigma = material.electrical_conductivity(temps)
        assert sigma.shape == (3,)
        assert np.all(np.diff(sigma) < 0.0)

    def test_is_electrically_conducting(self):
        metal = Material("metal", 1e7, 100.0, 1e6)
        insulator = Material("ins", 1e-6, 1.0, 1e6)
        assert metal.is_electrically_conducting()
        assert not insulator.is_electrically_conducting()
