"""Tests for Welford running statistics and histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.uq.statistics import RunningStatistics, histogram_data


class TestRunningStatistics:
    def test_matches_numpy(self, rng):
        samples = rng.standard_normal((50, 7))
        stats = RunningStatistics()
        for row in samples:
            stats.update(row)
        assert np.allclose(stats.mean, np.mean(samples, axis=0))
        assert np.allclose(stats.std(), np.std(samples, axis=0, ddof=1))
        assert np.allclose(stats.minimum, np.min(samples, axis=0))
        assert np.allclose(stats.maximum, np.max(samples, axis=0))

    def test_matrix_samples(self, rng):
        """Vector-valued outputs, e.g. (time, wire) trace arrays."""
        samples = rng.uniform(300.0, 500.0, (20, 6, 3))
        stats = RunningStatistics()
        for sample in samples:
            stats.update(sample)
        assert stats.mean.shape == (6, 3)
        assert np.allclose(stats.std(), np.std(samples, axis=0, ddof=1))

    def test_standard_error_eq6(self):
        """error_MC = sigma / sqrt(M) (eq. (6) of the paper)."""
        stats = RunningStatistics()
        for value in (1.0, 2.0, 3.0, 4.0):
            stats.update(np.array([value]))
        expected = np.std([1, 2, 3, 4], ddof=1) / 2.0
        assert stats.standard_error()[0] == pytest.approx(expected)

    def test_paper_error_magnitude(self):
        """sigma = 4.65, M = 1000 -> error 0.147 (Section V-D numbers)."""
        assert 4.65 / np.sqrt(1000) == pytest.approx(0.147, abs=5e-4)

    def test_shape_mismatch_rejected(self):
        stats = RunningStatistics()
        stats.update(np.zeros(3))
        with pytest.raises(SamplingError):
            stats.update(np.zeros(4))

    def test_empty_statistics_rejected(self):
        stats = RunningStatistics()
        with pytest.raises(SamplingError):
            _ = stats.mean
        with pytest.raises(SamplingError):
            stats.std()

    def test_variance_needs_two_samples(self):
        stats = RunningStatistics()
        stats.update(np.array([1.0]))
        with pytest.raises(SamplingError):
            stats.variance()

    def test_numerical_stability_large_offset(self):
        """Welford handles mean >> std without catastrophic cancellation."""
        stats = RunningStatistics()
        rng = np.random.default_rng(0)
        samples = 1.0e9 + rng.standard_normal(500)
        for value in samples:
            stats.update(np.array([value]))
        assert stats.std()[0] == pytest.approx(
            np.std(samples, ddof=1), rel=1e-6
        )


class TestMerge:
    def test_merge_matches_sequential(self, rng):
        """Parallel Welford combination == feeding all samples to one."""
        samples = rng.standard_normal((60, 5))
        whole = RunningStatistics()
        for row in samples:
            whole.update(row)
        left, right = RunningStatistics(), RunningStatistics()
        for row in samples[:23]:
            left.update(row)
        for row in samples[23:]:
            right.update(row)
        left.merge(right)
        assert left.count == whole.count
        assert np.allclose(left.mean, whole.mean, rtol=0, atol=1e-12)
        assert np.allclose(left.std(), whole.std(), rtol=0, atol=1e-12)
        assert np.array_equal(left.minimum, whole.minimum)
        assert np.array_equal(left.maximum, whole.maximum)

    def test_merge_many_partitions(self, rng):
        """The campaign reducer pattern: one accumulator per chunk."""
        samples = rng.uniform(-3.0, 3.0, (64, 4))
        whole = RunningStatistics()
        for row in samples:
            whole.update(row)
        merged = RunningStatistics()
        for start in range(0, 64, 8):
            chunk = RunningStatistics()
            for row in samples[start:start + 8]:
                chunk.update(row)
            merged.merge(chunk)
        assert merged.count == 64
        assert np.allclose(merged.mean, whole.mean, rtol=0, atol=1e-12)
        assert np.allclose(merged.variance(), whole.variance(),
                           rtol=0, atol=1e-12)

    def test_merge_into_empty_and_with_empty(self):
        stats = RunningStatistics()
        other = RunningStatistics()
        other.update(np.array([1.0, 2.0]))
        other.update(np.array([3.0, 4.0]))
        stats.merge(other)
        assert stats.count == 2
        assert np.allclose(stats.mean, [2.0, 3.0])
        # Merging an empty accumulator is a no-op.
        stats.merge(RunningStatistics())
        assert stats.count == 2
        # The merged-from state was copied, not aliased.
        other.update(np.array([100.0, 100.0]))
        assert np.allclose(stats.mean, [2.0, 3.0])

    def test_merge_returns_self(self):
        stats = RunningStatistics()
        assert stats.merge(RunningStatistics()) is stats

    def test_merge_shape_mismatch_rejected(self):
        left, right = RunningStatistics(), RunningStatistics()
        left.update(np.zeros(3))
        right.update(np.zeros(4))
        with pytest.raises(SamplingError):
            left.merge(right)

    def test_merge_wrong_type_rejected(self):
        with pytest.raises(SamplingError):
            RunningStatistics().merge([1.0, 2.0])

    def test_merge_deterministic_order(self, rng):
        """Same partition + same order -> bitwise identical results."""
        samples = rng.standard_normal((32, 3))

        def reduce_chunks():
            merged = RunningStatistics()
            for start in range(0, 32, 4):
                chunk = RunningStatistics()
                for row in samples[start:start + 4]:
                    chunk.update(row)
                merged.merge(chunk)
            return merged

        first, second = reduce_chunks(), reduce_chunks()
        assert np.array_equal(first.mean, second.mean)
        assert np.array_equal(first.std(), second.std())


class TestHistogram:
    def test_density_normalized(self, rng):
        samples = rng.standard_normal(500)
        edges, heights = histogram_data(samples, num_bins=10)
        widths = np.diff(edges)
        assert np.sum(heights * widths) == pytest.approx(1.0)

    def test_counts_mode(self, rng):
        samples = rng.standard_normal(500)
        edges, heights = histogram_data(samples, num_bins=10, density=False)
        assert np.sum(heights) == 500

    def test_empty_rejected(self):
        with pytest.raises(SamplingError):
            histogram_data([])


@given(
    values=st.lists(
        st.floats(min_value=-100.0, max_value=100.0), min_size=2, max_size=60
    )
)
@settings(max_examples=40, deadline=None)
def test_property_welford_equals_numpy(values):
    stats = RunningStatistics()
    for value in values:
        stats.update(np.array([value]))
    assert stats.mean[0] == pytest.approx(np.mean(values), abs=1e-9)
    assert stats.std()[0] == pytest.approx(
        np.std(values, ddof=1), abs=1e-9
    )
