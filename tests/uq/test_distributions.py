"""Tests for the probability distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.uq.distributions import (
    LogNormalDistribution,
    NormalDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
    fit_normal,
)


class TestNormal:
    def test_moments(self):
        dist = NormalDistribution(0.17, 0.048)
        assert dist.mean == 0.17
        assert dist.std == 0.048

    def test_pdf_normalization(self):
        dist = NormalDistribution(0.17, 0.048)
        x = np.linspace(-0.3, 0.7, 20001)
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        integral = trapezoid(dist.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-8)

    def test_pdf_peak_value(self):
        """Fig. 5: the fitted pdf peaks at ~8.3 at delta = 0.17."""
        dist = NormalDistribution(0.17, 0.048)
        peak = dist.pdf(0.17)
        assert peak == pytest.approx(1.0 / (0.048 * np.sqrt(2 * np.pi)))
        assert 8.0 < peak < 8.6

    def test_cdf_symmetry(self):
        dist = NormalDistribution(0.17, 0.048)
        assert dist.cdf(0.17) == pytest.approx(0.5)
        assert dist.cdf(0.17 + 0.048) + dist.cdf(0.17 - 0.048) == (
            pytest.approx(1.0)
        )

    def test_ppf_inverts_cdf(self):
        dist = NormalDistribution(0.17, 0.048)
        for q in (0.01, 0.25, 0.5, 0.75, 0.99):
            assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-12)

    def test_ppf_domain(self):
        dist = NormalDistribution(0.0, 1.0)
        with pytest.raises(DistributionError):
            dist.ppf(0.0)
        with pytest.raises(DistributionError):
            dist.ppf(1.0)

    def test_sampling_statistics(self, rng):
        dist = NormalDistribution(0.17, 0.048)
        samples = dist.sample(20_000, rng)
        assert np.mean(samples) == pytest.approx(0.17, abs=0.002)
        assert np.std(samples) == pytest.approx(0.048, abs=0.002)

    def test_invalid_sigma(self):
        with pytest.raises(DistributionError):
            NormalDistribution(0.0, 0.0)


class TestTruncatedNormal:
    def test_support(self):
        dist = TruncatedNormalDistribution(0.17, 0.048, 0.0, 0.9)
        assert dist.pdf(-0.1) == 0.0
        assert dist.pdf(0.95) == 0.0
        assert dist.pdf(0.17) > 0.0

    def test_barely_truncated_matches_normal(self):
        """Truncating at +-10 sigma changes nothing measurable."""
        base = NormalDistribution(0.17, 0.048)
        trunc = TruncatedNormalDistribution(0.17, 0.048, -0.31, 0.65)
        assert trunc.mean == pytest.approx(base.mean, abs=1e-10)
        assert trunc.std == pytest.approx(base.std, rel=1e-6)
        assert trunc.ppf(0.3) == pytest.approx(base.ppf(0.3), abs=1e-10)

    def test_half_truncation_shifts_mean(self):
        dist = TruncatedNormalDistribution(0.0, 1.0, 0.0, 10.0)
        # Half-normal mean = sqrt(2/pi).
        assert dist.mean == pytest.approx(np.sqrt(2.0 / np.pi), rel=1e-6)

    def test_samples_respect_bounds(self, rng):
        dist = TruncatedNormalDistribution(0.17, 0.048, 0.1, 0.2)
        samples = dist.sample(2000, rng)
        assert np.all(samples >= 0.1)
        assert np.all(samples <= 0.2)

    def test_invalid_interval(self):
        with pytest.raises(DistributionError):
            TruncatedNormalDistribution(0.0, 1.0, 2.0, 1.0)


class TestUniform:
    def test_moments(self):
        dist = UniformDistribution(2.0, 4.0)
        assert dist.mean == 3.0
        assert dist.std == pytest.approx(2.0 / np.sqrt(12.0))

    def test_ppf_linear(self):
        dist = UniformDistribution(0.0, 10.0)
        assert dist.ppf(0.35) == pytest.approx(3.5)

    def test_pdf_box(self):
        dist = UniformDistribution(0.0, 2.0)
        assert dist.pdf(1.0) == 0.5
        assert dist.pdf(3.0) == 0.0


class TestLogNormal:
    def test_positive_support(self, rng):
        dist = LogNormalDistribution(-1.8, 0.3)
        samples = dist.sample(1000, rng)
        assert np.all(samples > 0.0)

    def test_mean_formula(self):
        dist = LogNormalDistribution(-1.8, 0.3)
        assert dist.mean == pytest.approx(np.exp(-1.8 + 0.5 * 0.09))

    def test_pdf_zero_for_negative(self):
        dist = LogNormalDistribution(0.0, 1.0)
        assert dist.pdf(-1.0) == 0.0
        assert dist.cdf(-1.0) == 0.0


class TestFitNormal:
    def test_paper_fit(self):
        """The statistics-matched dataset yields the Fig. 5 parameters."""
        from repro.package3d.measurements import date16_xray_measurements

        fit = fit_normal(date16_xray_measurements().deltas())
        assert fit.mu == pytest.approx(0.17, abs=1e-3)
        assert fit.sigma == pytest.approx(0.048, abs=1e-3)

    def test_recovers_known_parameters(self, rng):
        samples = NormalDistribution(5.0, 2.0).sample(50_000, rng)
        fit = fit_normal(samples)
        assert fit.mu == pytest.approx(5.0, abs=0.05)
        assert fit.sigma == pytest.approx(2.0, abs=0.05)

    def test_too_few_samples(self):
        with pytest.raises(DistributionError):
            fit_normal([1.0])

    def test_degenerate_samples(self):
        with pytest.raises(DistributionError):
            fit_normal([2.0, 2.0, 2.0])


@given(
    mu=st.floats(min_value=-5.0, max_value=5.0),
    sigma=st.floats(min_value=0.01, max_value=3.0),
    q=st.floats(min_value=0.001, max_value=0.999),
)
@settings(max_examples=60, deadline=None)
def test_property_normal_ppf_cdf_roundtrip(mu, sigma, q):
    dist = NormalDistribution(mu, sigma)
    assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-9)


@given(
    q1=st.floats(min_value=0.01, max_value=0.99),
    q2=st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=40, deadline=None)
def test_property_ppf_monotone(q1, q2):
    dist = NormalDistribution(0.17, 0.048)
    if q1 < q2:
        assert dist.ppf(q1) <= dist.ppf(q2)
    elif q1 > q2:
        assert dist.ppf(q1) >= dist.ppf(q2)
