"""Tests for Sobol sensitivity indices."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.uq.distributions import NormalDistribution, UniformDistribution
from repro.uq.sensitivity import (
    jansen_bootstrap,
    jansen_indices,
    saltelli_sample,
    sobol_indices,
)


class TestSaltelliDesign:
    def test_shapes(self):
        a, b, ab = saltelli_sample(16, 3, seed=0)
        assert a.shape == (16, 3)
        assert b.shape == (16, 3)
        assert ab.shape == (3, 16, 3)

    def test_ab_swaps_single_column(self):
        a, b, ab = saltelli_sample(8, 3, seed=1)
        for i in range(3):
            for j in range(3):
                if i == j:
                    assert np.allclose(ab[i][:, j], b[:, j])
                else:
                    assert np.allclose(ab[i][:, j], a[:, j])

    def test_invalid_count(self):
        with pytest.raises(SamplingError):
            saltelli_sample(1, 2)


class TestSobolIndices:
    def test_additive_linear_model(self):
        """f = 2 x1 + 1 x2 of iid normals: S_i = w_i^2 / sum w^2 exactly."""
        def model(parameters):
            return 2.0 * parameters[0] + 1.0 * parameters[1]

        dist = NormalDistribution(0.0, 1.0)
        indices = sobol_indices(model, dist, 2, num_base_samples=4096, seed=0)
        assert indices.first_order[0] == pytest.approx(0.8, abs=0.05)
        assert indices.first_order[1] == pytest.approx(0.2, abs=0.05)
        # Additive model: total == first order.
        assert np.allclose(indices.total, indices.first_order, atol=0.05)

    def test_irrelevant_input_scores_zero(self):
        def model(parameters):
            return parameters[0]

        dist = UniformDistribution(0.0, 1.0)
        indices = sobol_indices(model, dist, 3, num_base_samples=2048, seed=1)
        assert indices.first_order[0] == pytest.approx(1.0, abs=0.05)
        assert indices.total[1] == pytest.approx(0.0, abs=0.02)
        assert indices.total[2] == pytest.approx(0.0, abs=0.02)

    def test_interaction_shows_in_total(self):
        """f = x1 * x2 (zero-mean inputs): no first-order, all interaction."""
        def model(parameters):
            return parameters[0] * parameters[1]

        dist = NormalDistribution(0.0, 1.0)
        indices = sobol_indices(model, dist, 2, num_base_samples=4096, seed=2)
        assert indices.first_order[0] < 0.1
        assert indices.total[0] > 0.8

    def test_ranking(self):
        def model(parameters):
            return 3.0 * parameters[2] + 1.0 * parameters[0]

        dist = NormalDistribution(0.0, 1.0)
        indices = sobol_indices(model, dist, 3, num_base_samples=1024, seed=3)
        assert indices.ranking()[0] == 2

    def test_constant_model_rejected(self):
        with pytest.raises(SamplingError):
            sobol_indices(
                lambda p: 1.0, UniformDistribution(0, 1), 2,
                num_base_samples=64,
            )

    def test_evaluation_budget(self):
        calls = []

        def model(parameters):
            calls.append(1)
            return parameters[0]

        sobol_indices(model, UniformDistribution(0, 1), 3,
                      num_base_samples=32, seed=0)
        assert len(calls) == 32 * (3 + 2)

    def test_vector_model_raises_clear_error(self):
        """The in-process driver is scalar-only; the message points at
        the sensitivity campaign instead of an opaque TypeError."""
        def model(parameters):
            return np.array([parameters[0], parameters[1]])

        with pytest.raises(SamplingError, match="sensitivity campaign"):
            sobol_indices(model, UniformDistribution(0, 1), 2,
                          num_base_samples=8, seed=0)

    def test_first_order_never_exceeds_total(self):
        """S_i > ST_i is a finite-M artifact; estimates are clipped."""
        def model(parameters):
            return 2.0 * parameters[0] + parameters[1]

        indices = sobol_indices(
            model, NormalDistribution(0.0, 1.0), 2,
            num_base_samples=16, seed=4,
        )
        assert np.all(indices.first_order <= indices.total + 1e-15)


def _saltelli_evaluations(model, num_base_samples, dimension, seed):
    """Evaluate a vector model on the full Saltelli design."""
    a, b, ab = saltelli_sample(num_base_samples, dimension, seed=seed)
    f_a = np.stack([np.asarray(model(row), dtype=float) for row in a])
    f_b = np.stack([np.asarray(model(row), dtype=float) for row in b])
    f_ab = np.stack([
        np.stack([np.asarray(model(row), dtype=float) for row in ab[i]])
        for i in range(dimension)
    ])
    return f_a, f_b, f_ab


class TestJansenCore:
    def test_analytic_linear_additive_model(self):
        """f = 3 x1 + 2 x2 + x3 of iid U(0,1): S_i = ST_i = w_i^2/14."""
        weights = np.array([3.0, 2.0, 1.0])

        def model(point):
            return float(weights @ point)

        f_a, f_b, f_ab = _saltelli_evaluations(model, 8192, 3, seed=0)
        indices = jansen_indices(f_a, f_b, f_ab)
        expected = weights ** 2 / np.sum(weights ** 2)
        assert np.allclose(indices.first_order, expected, atol=0.02)
        assert np.allclose(indices.total, expected, atol=0.02)
        assert indices.num_evaluations == 8192 * 5

    def test_vector_components_reduce_independently(self):
        """Each output column must match its own scalar reduction."""
        def vector_model(point):
            return np.array([2.0 * point[0] + point[1],
                             point[1] - 3.0 * point[2]])

        f_a, f_b, f_ab = _saltelli_evaluations(vector_model, 256, 3, seed=1)
        vector = jansen_indices(f_a, f_b, f_ab)
        assert vector.first_order.shape == (3, 2)
        assert np.asarray(vector.variance).shape == (2,)
        for component in range(2):
            scalar = jansen_indices(
                f_a[:, component], f_b[:, component], f_ab[:, :, component]
            )
            assert np.array_equal(vector.first_order[:, component],
                                  scalar.first_order)
            assert np.array_equal(vector.total[:, component], scalar.total)

    def test_matrix_output_shape_preserved(self):
        """A (2, 2)-shaped QoI (e.g. traces) keeps its shape in S/ST."""
        def matrix_model(point):
            return np.outer(point[:2], [1.0, 2.0])

        f_a, f_b, f_ab = _saltelli_evaluations(matrix_model, 64, 2, seed=2)
        indices = jansen_indices(f_a, f_b, f_ab)
        assert indices.first_order.shape == (2, 2, 2)
        assert np.asarray(indices.variance).shape == (2, 2)

    def test_clipping_to_total_is_flagged(self):
        """Constructed case with raw S_1 = 1 > ST_1: clipped and marked."""
        f_a = np.array([0.0, 2.0])
        f_b = np.array([1.0, 1.0])
        f_ab = f_b[np.newaxis, :]  # f_AB0 == f_B => raw S_0 = 1
        indices = jansen_indices(f_a, f_b, f_ab)
        assert indices.total[0] == pytest.approx(0.75)
        assert indices.first_order[0] == pytest.approx(0.75)
        assert indices.clipped[0]
        assert indices.num_clipped == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SamplingError):
            jansen_indices(np.zeros(4), np.zeros(5), np.zeros((2, 4)))
        with pytest.raises(SamplingError):
            jansen_indices(np.zeros(4), np.zeros(4), np.zeros((2, 5)))

    def test_zero_variance_scalar_rejected(self):
        with pytest.raises(SamplingError):
            jansen_indices(np.ones(4), np.ones(4), np.ones((2, 4)))

    def test_constant_vector_component_flagged_not_fatal(self):
        """Trace QoIs hold a constant initial row: that component must
        report NaN indices while the varying components still reduce."""
        def padded_model(point):
            return np.array([2.0 * point[0] + point[1], 42.0])

        f_a, f_b, f_ab = _saltelli_evaluations(padded_model, 64, 2, seed=6)
        padded = jansen_indices(f_a, f_b, f_ab)
        assert np.all(np.isnan(padded.first_order[:, 1]))
        assert np.all(np.isnan(padded.total[:, 1]))
        assert np.asarray(padded.variance)[1] == 0.0
        scalar = jansen_indices(f_a[:, 0], f_b[:, 0], f_ab[:, :, 0])
        assert np.array_equal(padded.first_order[:, 0], scalar.first_order)
        assert np.array_equal(padded.total[:, 0], scalar.total)
        # Bootstrap degrades the same way instead of raising.
        interval = jansen_bootstrap(f_a, f_b, f_ab, num_replicates=20,
                                    seed=6)
        assert np.all(np.isnan(interval.total_lower[:, 1]))
        assert np.all(np.isfinite(interval.total_lower[:, 0]))

    def test_all_constant_vector_rejected(self):
        f_a = np.ones((4, 2))
        with pytest.raises(SamplingError):
            jansen_indices(f_a, f_a, np.ones((3, 4, 2)))


class TestJansenBootstrap:
    def test_interval_brackets_point_estimate(self):
        def model(point):
            return 2.0 * point[0] + point[1]

        f_a, f_b, f_ab = _saltelli_evaluations(model, 512, 2, seed=3)
        indices = jansen_indices(f_a, f_b, f_ab)
        interval = jansen_bootstrap(f_a, f_b, f_ab, num_replicates=200,
                                    seed=3)
        assert interval.num_replicates == 200
        assert np.all(interval.first_order_lower
                      <= indices.first_order + 1e-12)
        assert np.all(indices.first_order
                      <= interval.first_order_upper + 1e-12)
        assert np.all(interval.total_lower <= interval.total_upper)

    def test_deterministic_per_seed(self):
        def model(point):
            return point[0] + 0.5 * point[1]

        f_a, f_b, f_ab = _saltelli_evaluations(model, 64, 2, seed=5)
        one = jansen_bootstrap(f_a, f_b, f_ab, num_replicates=50, seed=9)
        two = jansen_bootstrap(f_a, f_b, f_ab, num_replicates=50, seed=9)
        other = jansen_bootstrap(f_a, f_b, f_ab, num_replicates=50, seed=10)
        assert np.array_equal(one.total_lower, two.total_lower)
        assert not np.array_equal(one.total_lower, other.total_lower)

    def test_invalid_arguments(self):
        f_a, f_b, f_ab = np.zeros(4), np.ones(4), np.zeros((1, 4))
        with pytest.raises(SamplingError):
            jansen_bootstrap(f_a, f_b, f_ab, num_replicates=0)
        with pytest.raises(SamplingError):
            jansen_bootstrap(f_a, f_b, f_ab, confidence=1.5)
