"""Tests for Sobol sensitivity indices."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.uq.distributions import NormalDistribution, UniformDistribution
from repro.uq.sensitivity import saltelli_sample, sobol_indices


class TestSaltelliDesign:
    def test_shapes(self):
        a, b, ab = saltelli_sample(16, 3, seed=0)
        assert a.shape == (16, 3)
        assert b.shape == (16, 3)
        assert ab.shape == (3, 16, 3)

    def test_ab_swaps_single_column(self):
        a, b, ab = saltelli_sample(8, 3, seed=1)
        for i in range(3):
            for j in range(3):
                if i == j:
                    assert np.allclose(ab[i][:, j], b[:, j])
                else:
                    assert np.allclose(ab[i][:, j], a[:, j])

    def test_invalid_count(self):
        with pytest.raises(SamplingError):
            saltelli_sample(1, 2)


class TestSobolIndices:
    def test_additive_linear_model(self):
        """f = 2 x1 + 1 x2 of iid normals: S_i = w_i^2 / sum w^2 exactly."""
        def model(parameters):
            return 2.0 * parameters[0] + 1.0 * parameters[1]

        dist = NormalDistribution(0.0, 1.0)
        indices = sobol_indices(model, dist, 2, num_base_samples=4096, seed=0)
        assert indices.first_order[0] == pytest.approx(0.8, abs=0.05)
        assert indices.first_order[1] == pytest.approx(0.2, abs=0.05)
        # Additive model: total == first order.
        assert np.allclose(indices.total, indices.first_order, atol=0.05)

    def test_irrelevant_input_scores_zero(self):
        def model(parameters):
            return parameters[0]

        dist = UniformDistribution(0.0, 1.0)
        indices = sobol_indices(model, dist, 3, num_base_samples=2048, seed=1)
        assert indices.first_order[0] == pytest.approx(1.0, abs=0.05)
        assert indices.total[1] == pytest.approx(0.0, abs=0.02)
        assert indices.total[2] == pytest.approx(0.0, abs=0.02)

    def test_interaction_shows_in_total(self):
        """f = x1 * x2 (zero-mean inputs): no first-order, all interaction."""
        def model(parameters):
            return parameters[0] * parameters[1]

        dist = NormalDistribution(0.0, 1.0)
        indices = sobol_indices(model, dist, 2, num_base_samples=4096, seed=2)
        assert indices.first_order[0] < 0.1
        assert indices.total[0] > 0.8

    def test_ranking(self):
        def model(parameters):
            return 3.0 * parameters[2] + 1.0 * parameters[0]

        dist = NormalDistribution(0.0, 1.0)
        indices = sobol_indices(model, dist, 3, num_base_samples=1024, seed=3)
        assert indices.ranking()[0] == 2

    def test_constant_model_rejected(self):
        with pytest.raises(SamplingError):
            sobol_indices(
                lambda p: 1.0, UniformDistribution(0, 1), 2,
                num_base_samples=64,
            )

    def test_evaluation_budget(self):
        calls = []

        def model(parameters):
            calls.append(1)
            return parameters[0]

        sobol_indices(model, UniformDistribution(0, 1), 3,
                      num_base_samples=32, seed=0)
        assert len(calls) == 32 * (3 + 2)
