"""Tests for the sample-stream generators."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.uq.distributions import NormalDistribution, UniformDistribution
from repro.uq.sampling import (
    halton_sequence,
    latin_hypercube,
    map_to_distributions,
    random_sampler,
    sobol_sequence,
)


class TestRandomSampler:
    def test_shape_and_range(self):
        points = random_sampler(100, 12, seed=0)
        assert points.shape == (100, 12)
        assert np.all((points >= 0.0) & (points < 1.0))

    def test_seed_reproducible(self):
        assert np.array_equal(
            random_sampler(10, 3, seed=7), random_sampler(10, 3, seed=7)
        )

    def test_invalid_arguments(self):
        with pytest.raises(SamplingError):
            random_sampler(0, 3)
        with pytest.raises(SamplingError):
            random_sampler(10, 0)


class TestLatinHypercube:
    def test_stratification(self):
        """Exactly one sample falls in each of the M row-strata per dim."""
        points = latin_hypercube(20, 4, seed=1)
        for d in range(4):
            strata = np.floor(points[:, d] * 20).astype(int)
            assert np.array_equal(np.sort(strata), np.arange(20))

    def test_mean_closer_than_random(self):
        """LHS estimates the mean of x better than iid sampling (usually)."""
        lhs = latin_hypercube(64, 1, seed=3)
        assert abs(np.mean(lhs) - 0.5) < 0.02


class TestHalton:
    def test_deterministic(self):
        assert np.array_equal(halton_sequence(32, 3), halton_sequence(32, 3))

    def test_range(self):
        points = halton_sequence(100, 5)
        assert np.all((points >= 0.0) & (points < 1.0))

    def test_base2_values(self):
        """First dimension is the base-2 van der Corput sequence."""
        points = halton_sequence(4, 1, skip=0)
        # indices 1..4 in base 2: 0.5, 0.25, 0.75, 0.125
        assert np.allclose(points[:, 0], [0.5, 0.25, 0.75, 0.125])

    def test_low_discrepancy_beats_random_worst_case(self):
        """Halton fills the unit square more evenly than a bad iid draw."""
        points = halton_sequence(256, 2)
        # Quadrant counts should each be close to 64.
        quadrant = (points[:, 0] > 0.5).astype(int) * 2 + (
            points[:, 1] > 0.5
        ).astype(int)
        counts = np.bincount(quadrant, minlength=4)
        assert np.all(np.abs(counts - 64) <= 4)

    def test_dimension_limit(self):
        with pytest.raises(SamplingError):
            halton_sequence(10, 100)

    def test_seed_selects_distinct_streams(self):
        """The seed must matter: seeded campaigns may never collide."""
        base = halton_sequence(32, 3)
        one = halton_sequence(32, 3, seed=1)
        two = halton_sequence(32, 3, seed=2)
        assert not np.array_equal(one, two)
        assert not np.array_equal(one, base)
        assert np.array_equal(one, halton_sequence(32, 3, seed=1))

    def test_seeded_points_stay_in_unit_cube(self):
        points = halton_sequence(128, 4, seed=123)
        assert np.all((points >= 0.0) & (points < 1.0))


class TestSobol:
    def test_shape(self):
        points = sobol_sequence(64, 12, seed=0)
        assert points.shape == (64, 12)
        assert np.all((points >= 0.0) & (points < 1.0))

    def test_seed_selects_distinct_streams(self):
        one = sobol_sequence(32, 4, seed=1)
        two = sobol_sequence(32, 4, seed=2)
        assert not np.array_equal(one, two)
        assert np.array_equal(one, sobol_sequence(32, 4, seed=1))


class TestMapping:
    def test_single_distribution_broadcast(self):
        dist = UniformDistribution(10.0, 20.0)
        points = np.full((5, 3), 0.5)
        mapped = map_to_distributions(points, dist)
        assert np.allclose(mapped, 15.0)

    def test_per_dimension_distributions(self):
        dists = [UniformDistribution(0.0, 1.0), UniformDistribution(0.0, 10.0)]
        points = np.full((4, 2), 0.25)
        mapped = map_to_distributions(points, dists)
        assert np.allclose(mapped[:, 0], 0.25)
        assert np.allclose(mapped[:, 1], 2.5)

    def test_normal_mapping_statistics(self):
        dist = NormalDistribution(0.17, 0.048)
        points = random_sampler(20_000, 1, seed=5)
        mapped = map_to_distributions(points, dist)
        assert np.mean(mapped) == pytest.approx(0.17, abs=0.002)

    def test_extreme_points_stay_finite(self):
        """0 and 1 in the stream map to finite values via clipping."""
        dist = NormalDistribution(0.0, 1.0)
        points = np.array([[0.0], [1.0]])
        mapped = map_to_distributions(points, dist)
        assert np.all(np.isfinite(mapped))

    def test_count_mismatch(self):
        with pytest.raises(SamplingError):
            map_to_distributions(
                np.zeros((3, 2)), [UniformDistribution(0, 1)]
            )

    def test_requires_2d(self):
        with pytest.raises(SamplingError):
            map_to_distributions(np.zeros(5), UniformDistribution(0, 1))
