"""Tests for Gauss-Hermite rules and Smolyak collocation."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.uq.collocation import (
    StochasticCollocation,
    gauss_hermite_rule,
    smolyak_nodes,
)
from repro.uq.distributions import NormalDistribution, UniformDistribution


class TestGaussHermite:
    def test_weights_sum_to_one(self):
        for order in (1, 2, 3, 5, 8):
            _, weights = gauss_hermite_rule(order)
            assert np.sum(weights) == pytest.approx(1.0)

    def test_gaussian_moments_exact(self):
        """Order-n rule integrates polynomials up to degree 2n-1 exactly."""
        nodes, weights = gauss_hermite_rule(4)
        # Standard normal moments: E[z^2]=1, E[z^4]=3, E[z^6]=15.
        assert np.dot(weights, nodes**2) == pytest.approx(1.0)
        assert np.dot(weights, nodes**4) == pytest.approx(3.0)
        assert np.dot(weights, nodes**6) == pytest.approx(15.0)

    def test_odd_moments_vanish(self):
        nodes, weights = gauss_hermite_rule(5)
        assert np.dot(weights, nodes) == pytest.approx(0.0, abs=1e-12)
        assert np.dot(weights, nodes**3) == pytest.approx(0.0, abs=1e-10)

    def test_invalid_order(self):
        with pytest.raises(SamplingError):
            gauss_hermite_rule(0)


class TestSmolyak:
    def test_level1_is_mean_point(self):
        nodes, weights = smolyak_nodes(12, 1)
        assert nodes.shape == (1, 12)
        assert np.allclose(nodes, 0.0)
        assert weights[0] == pytest.approx(1.0)

    def test_level2_size(self):
        """Linear growth level 2: 2d + 1 nodes."""
        for d in (2, 5, 12):
            nodes, _ = smolyak_nodes(d, 2)
            assert nodes.shape[0] == 2 * d + 1

    def test_weights_sum_to_one(self):
        for d, level in ((2, 2), (3, 2), (12, 2), (2, 3)):
            _, weights = smolyak_nodes(d, level)
            assert np.sum(weights) == pytest.approx(1.0)

    def test_second_moment_exact_at_level2(self):
        """Level-2 Smolyak integrates sum(z_i^2) exactly."""
        nodes, weights = smolyak_nodes(4, 2)
        value = np.dot(weights, np.sum(nodes**2, axis=1))
        assert value == pytest.approx(4.0)

    def test_invalid_arguments(self):
        with pytest.raises(SamplingError):
            smolyak_nodes(0, 1)
        with pytest.raises(SamplingError):
            smolyak_nodes(2, 0)


class TestCollocationEstimator:
    def test_linear_model_exact(self):
        """Linear-in-inputs model: level 2 gives exact mean and std."""
        dimension = 5
        weights_vec = np.arange(1.0, dimension + 1)

        def model(parameters):
            return np.array([np.dot(weights_vec, parameters)])

        dist = NormalDistribution(0.17, 0.048)
        collocation = StochasticCollocation(model, dist, dimension, level=2)
        result = collocation.run()
        assert result.mean[0] == pytest.approx(0.17 * np.sum(weights_vec))
        assert result.std[0] == pytest.approx(
            0.048 * np.linalg.norm(weights_vec), rel=1e-10
        )
        assert result.num_evaluations == 2 * dimension + 1

    def test_quadratic_model_mean_exact_at_level3(self):
        def model(parameters):
            return np.array([np.sum(parameters**2)])

        dist = NormalDistribution(0.0, 1.0)
        collocation = StochasticCollocation(model, dist, 3, level=3)
        result = collocation.run()
        assert result.mean[0] == pytest.approx(3.0)

    def test_matches_monte_carlo_on_smooth_model(self):
        """Collocation and a large MC agree on a mildly nonlinear model."""
        def model(parameters):
            return np.array([np.exp(0.1 * np.sum(parameters))])

        dist = NormalDistribution(0.0, 0.5)
        collocation = StochasticCollocation(model, dist, 2, level=4)
        from repro.uq.monte_carlo import MonteCarloStudy

        mc = MonteCarloStudy(model, dist, 2).run(20_000, seed=0)
        result = collocation.run()
        assert result.mean[0] == pytest.approx(mc.mean[0], rel=0.01)
        assert result.std[0] == pytest.approx(mc.std[0], rel=0.1)

    def test_non_normal_marginals(self):
        """Uniform inputs map through ppf(Phi(z))."""
        def model(parameters):
            return np.array([np.sum(parameters)])

        dist = UniformDistribution(0.0, 1.0)
        collocation = StochasticCollocation(model, dist, 2, level=4)
        result = collocation.run()
        assert result.mean[0] == pytest.approx(1.0, abs=0.02)

    def test_distribution_count_mismatch(self):
        with pytest.raises(SamplingError):
            StochasticCollocation(
                lambda p: p, [NormalDistribution(0, 1)], 3
            )
