"""Analytic golden tests: Jansen estimates vs closed-form Sobol indices.

The Ishigami function and the Sobol g-function have exact Sobol indices
of every order, so these tests pin the estimator core -- first-order,
total, closed second-order, interaction and grouped indices, for scalar
and vector quantities of interest -- against ground truth instead of
against itself.  Point estimates must land within a sampling tolerance
AND the seeded bootstrap confidence intervals must bracket the truth;
the ``slow``-marked convergence tests tighten the tolerance with the
sample count for the nightly run.
"""

import numpy as np
import pytest

from repro.campaign import ScenarioSpec, SensitivitySpec, run_sensitivity_campaign
from repro.uq.analytic import (
    ishigami,
    ishigami_distribution,
    ishigami_indices,
    sobol_g,
    sobol_g_indices,
)
from repro.uq.sampling import random_sampler
from repro.uq.sensitivity import (
    all_pairs,
    jansen_bootstrap,
    jansen_group_indices,
    jansen_indices,
    jansen_second_order,
)

# Zero-variance handling must stay warning-free: any escaped division
# warning fails these tests.
pytestmark = pytest.mark.filterwarnings("error")

_G_COEFFICIENTS = np.array([0.0, 0.5, 3.0, 9.0])


def _saltelli_blocks(function, num_base_samples, dimension, seed,
                     lower, upper, pairs=None, groups=None):
    """Evaluate ``function`` on the full extended Saltelli design."""
    stream = random_sampler(2 * num_base_samples, dimension, seed)
    scale = upper - lower
    a_unit = stream[:num_base_samples]
    b_unit = stream[num_base_samples:]

    def evaluate(unit):
        return np.asarray(function(lower + scale * unit), dtype=float)

    def hybrid(columns):
        block = a_unit.copy()
        block[:, list(columns)] = b_unit[:, list(columns)]
        return evaluate(block)

    f_a = evaluate(a_unit)
    f_b = evaluate(b_unit)
    f_ab = np.stack([hybrid((i,)) for i in range(dimension)])
    f_ab_pairs = None
    if pairs is not None:
        f_ab_pairs = np.stack([hybrid(pair) for pair in pairs])
    f_ab_groups = None
    if groups is not None:
        f_ab_groups = np.stack([hybrid(group) for group in groups])
    return f_a, f_b, f_ab, f_ab_pairs, f_ab_groups


def _assert_within_interval(truth, lower, upper, label):
    assert lower <= truth <= upper, (
        f"{label}: closed form {truth:.4f} outside bootstrap CI "
        f"[{lower:.4f}, {upper:.4f}]"
    )


class TestIshigamiClosedForm:
    def test_decomposition_sums_to_one(self):
        truth = ishigami_indices()
        total_mass = (
            float(np.sum(truth["first_order"]))
            + sum(truth["second_order"].values())
        )
        assert total_mass == pytest.approx(1.0)

    def test_total_equals_first_plus_interactions(self):
        truth = ishigami_indices()
        assert truth["total"][0] == pytest.approx(
            truth["first_order"][0] + truth["second_order"][(0, 2)]
        )
        assert truth["total"][1] == pytest.approx(truth["first_order"][1])

    def test_group_helpers_consistent(self):
        truth = ishigami_indices()
        # The full set explains everything.
        assert truth["group_closed"]((0, 1, 2)) == pytest.approx(1.0)
        assert truth["group_total"]((0, 1, 2)) == pytest.approx(1.0)
        # x2 is additive: closed == total for {x1, x2}'s complement.
        assert truth["group_total"]((1,)) == pytest.approx(
            truth["first_order"][1]
        )


class TestSobolGClosedForm:
    def test_decomposition_bounds(self):
        truth = sobol_g_indices(_G_COEFFICIENTS)
        assert float(np.sum(truth["first_order"])) < 1.0
        assert np.all(truth["total"] >= truth["first_order"])
        # Interactions are products: the strongest pair is (0, 1).
        strongest = max(truth["second_order"],
                        key=truth["second_order"].get)
        assert strongest == (0, 1)

    def test_group_closed_matches_pair_closed(self):
        truth = sobol_g_indices(_G_COEFFICIENTS)
        assert truth["group_closed"]((0, 1)) == pytest.approx(
            truth["closed_second_order"][(0, 1)]
        )


class TestIshigamiGolden:
    M = 2048
    SEED = 0

    @pytest.fixture(scope="class")
    def blocks(self):
        return _saltelli_blocks(
            ishigami, self.M, 3, self.SEED, -np.pi, np.pi,
            pairs=all_pairs(3), groups=[(0, 2), (1,)],
        )

    @pytest.fixture(scope="class")
    def truth(self):
        return ishigami_indices()

    def test_first_and_total_near_closed_form(self, blocks, truth):
        f_a, f_b, f_ab, _, _ = blocks
        indices = jansen_indices(f_a, f_b, f_ab)
        assert np.allclose(indices.first_order, truth["first_order"],
                           atol=0.05)
        assert np.allclose(indices.total, truth["total"], atol=0.05)

    def test_second_order_near_closed_form(self, blocks, truth):
        f_a, f_b, f_ab, f_ab_pairs, _ = blocks
        second = jansen_second_order(f_a, f_b, f_ab, f_ab_pairs)
        assert second.pairs == all_pairs(3)
        for position, pair in enumerate(second.pairs):
            assert second.closed[position] == pytest.approx(
                truth["closed_second_order"][pair], abs=0.05
            )
            assert second.interaction[position] == pytest.approx(
                truth["second_order"][pair], abs=0.05
            )

    def test_group_indices_near_closed_form(self, blocks, truth):
        f_a, f_b, _, _, f_ab_groups = blocks
        groups = [(0, 2), (1,)]
        result = jansen_group_indices(f_a, f_b, f_ab_groups, groups,
                                      dimension=3)
        for position, group in enumerate(groups):
            assert result.closed[position] == pytest.approx(
                truth["group_closed"](group), abs=0.05
            )
            assert result.total[position] == pytest.approx(
                truth["group_total"](group), abs=0.05
            )

    def test_bootstrap_interval_brackets_truth(self, blocks, truth):
        """First-, second- and total-order closed forms all land inside
        the seeded 95% bootstrap CIs."""
        f_a, f_b, f_ab, f_ab_pairs, f_ab_groups = blocks
        interval = jansen_bootstrap(
            f_a, f_b, f_ab, num_replicates=200, seed=self.SEED,
            f_ab_pairs=f_ab_pairs, f_ab_groups=f_ab_groups,
            groups=[(0, 2), (1,)],
        )
        for i in range(3):
            _assert_within_interval(
                truth["first_order"][i], interval.first_order_lower[i],
                interval.first_order_upper[i], f"S_{i}",
            )
            _assert_within_interval(
                truth["total"][i], interval.total_lower[i],
                interval.total_upper[i], f"ST_{i}",
            )
        for position, pair in enumerate(all_pairs(3)):
            _assert_within_interval(
                truth["second_order"][pair],
                interval.second_order_lower[position],
                interval.second_order_upper[position],
                f"S_{pair}",
            )
            _assert_within_interval(
                truth["closed_second_order"][pair],
                interval.closed_second_order_lower[position],
                interval.closed_second_order_upper[position],
                f"S^c_{pair}",
            )
        for position, group in enumerate([(0, 2), (1,)]):
            _assert_within_interval(
                truth["group_total"](group),
                interval.group_total_lower[position],
                interval.group_total_upper[position],
                f"ST_{group}",
            )


class TestSobolGGolden:
    M = 4096
    SEED = 3

    @pytest.fixture(scope="class")
    def blocks(self):
        return _saltelli_blocks(
            lambda x: sobol_g(x, _G_COEFFICIENTS), self.M, 4, self.SEED,
            0.0, 1.0, pairs=all_pairs(4),
        )

    @pytest.fixture(scope="class")
    def truth(self):
        return sobol_g_indices(_G_COEFFICIENTS)

    def test_first_and_total_near_closed_form(self, blocks, truth):
        f_a, f_b, f_ab, _, _ = blocks
        indices = jansen_indices(f_a, f_b, f_ab)
        assert np.allclose(indices.first_order, truth["first_order"],
                           atol=0.05)
        assert np.allclose(indices.total, truth["total"], atol=0.05)

    def test_second_order_near_closed_form(self, blocks, truth):
        f_a, f_b, f_ab, f_ab_pairs, _ = blocks
        second = jansen_second_order(f_a, f_b, f_ab, f_ab_pairs)
        for position, pair in enumerate(second.pairs):
            assert second.closed[position] == pytest.approx(
                truth["closed_second_order"][pair], abs=0.05
            )
            assert second.interaction[position] == pytest.approx(
                truth["second_order"][pair], abs=0.05
            )
        # The ranking finds the dominant interaction.
        assert second.ranking()[0] == second.pairs.index((0, 1))


class TestVectorQoIGolden:
    """Vector outputs reduce per component, including the degenerate
    zero-variance (NaN) contract -- with no escaped warnings."""

    M = 512
    SEED = 7

    @pytest.fixture(scope="class")
    def scalar_and_vector(self):
        weights = np.array([1.0, 2.0, 0.0])

        def vector_model(x):
            return ishigami(x)[..., np.newaxis] * weights

        scalar = _saltelli_blocks(
            ishigami, self.M, 3, self.SEED, -np.pi, np.pi,
            pairs=all_pairs(3),
        )
        vector = _saltelli_blocks(
            vector_model, self.M, 3, self.SEED, -np.pi, np.pi,
            pairs=all_pairs(3),
        )
        return scalar, vector

    def test_weighted_components_match_scalar_bitwise(
            self, scalar_and_vector):
        """Weight 1 is exact and weight 2 a power of two: both
        components must reproduce the scalar reduction bit for bit."""
        scalar, vector = scalar_and_vector
        s = jansen_second_order(scalar[0], scalar[1], scalar[2], scalar[3])
        v = jansen_second_order(vector[0], vector[1], vector[2], vector[3])
        for component in (0, 1):
            assert np.array_equal(v.closed[:, component], s.closed)
            assert np.array_equal(v.interaction[:, component],
                                  s.interaction)
            assert np.array_equal(v.total[:, component], s.total)

    def test_zero_weight_component_reports_nan(self, scalar_and_vector):
        _, vector = scalar_and_vector
        second = jansen_second_order(vector[0], vector[1], vector[2],
                                     vector[3])
        assert np.all(np.isnan(second.closed[:, 2]))
        assert np.all(np.isnan(second.interaction[:, 2]))
        assert np.all(np.isnan(second.total[:, 2]))
        assert np.asarray(second.variance)[2] == 0.0

    def test_zero_weight_component_bootstrap_nan(self, scalar_and_vector):
        _, vector = scalar_and_vector
        interval = jansen_bootstrap(
            vector[0], vector[1], vector[2], num_replicates=25,
            seed=self.SEED, f_ab_pairs=vector[3],
        )
        assert np.all(np.isnan(interval.second_order_lower[:, 2]))
        assert np.all(np.isnan(interval.closed_second_order_upper[:, 2]))
        assert np.all(np.isfinite(interval.second_order_lower[:, 0]))


class TestCampaignAcceptance:
    """The PR acceptance criterion: a second-order campaign on the
    Ishigami fixture recovers every closed-form S_ij within the seeded
    bootstrap 95% CI."""

    def _spec(self, **overrides):
        settings = dict(
            name="ishigami-acceptance",
            scenario=ScenarioSpec(problem="ishigami",
                                  module="repro.uq.analytic"),
            distribution=ishigami_distribution(),
            dimension=3,
            num_base_samples=1024,
            seed=2,
            chunk_size=640,
            sampler="random",
            second_order=True,
            num_bootstrap=100,
        )
        settings.update(overrides)
        return SensitivitySpec(**settings)

    def test_second_order_campaign_recovers_closed_form(self):
        result = run_sensitivity_campaign(self._spec())
        truth = ishigami_indices()
        summary = result.summary()
        for position, pair in enumerate(result.second_order.pairs):
            _assert_within_interval(
                truth["second_order"][pair],
                summary["second_order_lower"][position],
                summary["second_order_upper"][position],
                f"S_{pair}",
            )
            assert result.second_order.interaction[position] == (
                pytest.approx(truth["second_order"][pair], abs=0.07)
            )
        for i in range(3):
            _assert_within_interval(
                truth["first_order"][i],
                summary["first_order_lower"][i],
                summary["first_order_upper"][i],
                f"S_{i}",
            )

    def test_vector_campaign_recovers_closed_form(self):
        """The same acceptance with a vector QoI: every finite component
        carries the same closed forms."""
        spec = self._spec(
            name="ishigami-acceptance-vector",
            scenario=ScenarioSpec(
                problem="ishigami",
                options={"weights": [1.0, 2.0]},
                module="repro.uq.analytic",
            ),
            num_base_samples=512,
            num_bootstrap=0,
        )
        result = run_sensitivity_campaign(spec)
        truth = ishigami_indices()
        for component in (0, 1):
            assert np.allclose(
                result.first_order[:, component], truth["first_order"],
                atol=0.08,
            )
            for position, pair in enumerate(result.second_order.pairs):
                assert result.second_order.interaction[
                    position, component
                ] == pytest.approx(truth["second_order"][pair], abs=0.08)


@pytest.mark.slow
class TestConvergenceNightly:
    """Error shrinks with M and the largest run is tight (nightly)."""

    def test_ishigami_second_order_convergence(self):
        truth = ishigami_indices()
        errors = []
        for m in (512, 4096, 32768):
            f_a, f_b, f_ab, f_ab_pairs, _ = _saltelli_blocks(
                ishigami, m, 3, 19, -np.pi, np.pi, pairs=all_pairs(3)
            )
            second = jansen_second_order(f_a, f_b, f_ab, f_ab_pairs)
            first = jansen_indices(f_a, f_b, f_ab)
            error = max(
                float(np.max(np.abs(
                    first.first_order - truth["first_order"]
                ))),
                float(np.max(np.abs(first.total - truth["total"]))),
                max(abs(second.interaction[p] - truth["second_order"][pair])
                    for p, pair in enumerate(second.pairs)),
            )
            errors.append(error)
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.02

    def test_sobol_g_group_convergence(self):
        truth = sobol_g_indices(_G_COEFFICIENTS)
        groups = [(0, 1), (2, 3)]
        errors = []
        for m in (512, 4096, 32768):
            f_a, f_b, _, _, f_ab_groups = _saltelli_blocks(
                lambda x: sobol_g(x, _G_COEFFICIENTS), m, 4, 23,
                0.0, 1.0, groups=groups,
            )
            result = jansen_group_indices(f_a, f_b, f_ab_groups, groups,
                                          dimension=4)
            error = max(
                max(abs(result.closed[p] - truth["group_closed"](group))
                    for p, group in enumerate(groups)),
                max(abs(result.total[p] - truth["group_total"](group))
                    for p, group in enumerate(groups)),
            )
            errors.append(error)
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.02
