"""Streaming-equivalence property tests for the Jansen accumulator.

The :class:`~repro.uq.sensitivity.StreamingJansenAccumulator` is the
canonical reduction: feeding the Saltelli stream in chunks of any size
must reproduce the in-memory ``jansen_indices`` /
``jansen_second_order`` / ``jansen_group_indices`` results bit for bit,
because both paths execute the same row-order operations.  These tests
sweep chunk sizes (including 1 and the whole stream), vector and scalar
quantities of interest and the degenerate-component NaN contract.
"""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.uq.analytic import sobol_g
from repro.uq.sampling import random_sampler
from repro.uq.sensitivity import (
    StreamingJansenAccumulator,
    all_pairs,
    jansen_group_indices,
    jansen_indices,
    jansen_second_order,
)

pytestmark = pytest.mark.filterwarnings("error")

M = 64
DIMENSION = 3
PAIRS = all_pairs(DIMENSION)
GROUPS = [(0, 2)]
#: Weight 0 makes a constant output component (the NaN contract).
WEIGHTS = np.array([1.0, 3.0, 0.0])
CHUNK_SIZES = (1, 7, 64, None)  # None = the whole stream at once


def _stream(vector=True):
    """The full extended Saltelli evaluation stream, in global order."""
    a_coefficients = np.array([0.0, 1.0, 4.5])
    stream = random_sampler(2 * M, DIMENSION, 5)
    a_unit, b_unit = stream[:M], stream[M:]

    def evaluate(unit):
        values = sobol_g(unit, a_coefficients)
        if vector:
            return values[:, np.newaxis] * WEIGHTS
        return values

    def hybrid(columns):
        block = a_unit.copy()
        block[:, list(columns)] = b_unit[:, list(columns)]
        return evaluate(block)

    blocks = [evaluate(a_unit), evaluate(b_unit)]
    blocks += [hybrid((i,)) for i in range(DIMENSION)]
    blocks += [hybrid(pair) for pair in PAIRS]
    blocks += [hybrid(group) for group in GROUPS]
    return blocks


def _in_memory_reference(blocks):
    f_a, f_b = blocks[0], blocks[1]
    f_ab = np.stack(blocks[2:2 + DIMENSION])
    f_ab_pairs = np.stack(
        blocks[2 + DIMENSION:2 + DIMENSION + len(PAIRS)]
    )
    f_ab_groups = np.stack(blocks[2 + DIMENSION + len(PAIRS):])
    return (
        jansen_indices(f_a, f_b, f_ab),
        jansen_second_order(f_a, f_b, f_ab, f_ab_pairs),
        jansen_group_indices(f_a, f_b, f_ab_groups, GROUPS,
                             dimension=DIMENSION),
    )


def _fold_chunked(blocks, chunk_size):
    accumulator = StreamingJansenAccumulator(
        M, DIMENSION, pairs=PAIRS, groups=GROUPS
    )
    outputs = np.concatenate(blocks)
    total = outputs.shape[0]
    if chunk_size is None:
        chunk_size = total
    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        accumulator.add(np.arange(start, stop), outputs[start:stop])
    return accumulator.finalize()


class TestChunkSizeInvariance:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_vector_qoi_bitwise(self, chunk_size):
        """Every chunk size reproduces the in-memory reduction bit for
        bit -- including the NaN entries of the constant component."""
        blocks = _stream(vector=True)
        first, second, groups = _in_memory_reference(blocks)
        estimates = _fold_chunked(blocks, chunk_size)
        assert np.array_equal(estimates.first_order.first_order,
                              first.first_order, equal_nan=True)
        assert np.array_equal(estimates.first_order.total, first.total,
                              equal_nan=True)
        assert np.array_equal(estimates.first_order.clipped, first.clipped)
        assert np.array_equal(np.asarray(estimates.first_order.variance),
                              np.asarray(first.variance))
        assert np.array_equal(estimates.second_order.closed, second.closed,
                              equal_nan=True)
        assert np.array_equal(estimates.second_order.interaction,
                              second.interaction, equal_nan=True)
        assert np.array_equal(estimates.second_order.total, second.total,
                              equal_nan=True)
        assert np.array_equal(estimates.groups.closed, groups.closed,
                              equal_nan=True)
        assert np.array_equal(estimates.groups.total, groups.total,
                              equal_nan=True)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_scalar_qoi_bitwise(self, chunk_size):
        """The scalar fast path is chunk-size invariant too."""
        blocks = _stream(vector=False)
        first, second, groups = _in_memory_reference(blocks)
        estimates = _fold_chunked(blocks, chunk_size)
        assert np.array_equal(estimates.first_order.first_order,
                              first.first_order)
        assert np.array_equal(estimates.first_order.total, first.total)
        assert estimates.first_order.variance == first.variance
        assert np.array_equal(estimates.second_order.interaction,
                              second.interaction)
        assert np.array_equal(estimates.groups.total, groups.total)

    def test_scalar_matches_vector_component_bitwise(self):
        """Scalar fast path == unit-weight vector component, bitwise."""
        scalar = _fold_chunked(_stream(vector=False), 7)
        vector = _fold_chunked(_stream(vector=True), 7)
        assert np.array_equal(vector.first_order.first_order[:, 0],
                              scalar.first_order.first_order)
        assert np.array_equal(vector.second_order.closed[:, 0],
                              scalar.second_order.closed)


class TestAccumulatorContract:
    def _accumulator(self):
        return StreamingJansenAccumulator(4, 2)

    def test_counts(self):
        accumulator = StreamingJansenAccumulator(
            4, 3, pairs=[(0, 1)], groups=[(0, 1, 2)]
        )
        assert accumulator.num_blocks == 2 + 3 + 1 + 1
        assert accumulator.num_evaluations == 4 * 7
        assert accumulator.num_folded == 0

    def test_out_of_order_chunk_rejected(self):
        accumulator = self._accumulator()
        accumulator.add(np.arange(4), np.zeros(4))
        with pytest.raises(SamplingError, match="global-index order"):
            accumulator.add(np.arange(8, 12), np.ones(4))

    def test_non_contiguous_chunk_rejected(self):
        accumulator = self._accumulator()
        with pytest.raises(SamplingError, match="global-index order"):
            accumulator.add(np.array([0, 2, 1, 3]), np.zeros(4))

    def test_overflowing_chunk_rejected(self):
        accumulator = self._accumulator()
        with pytest.raises(SamplingError, match="global-index order"):
            accumulator.add(np.arange(17), np.zeros(17))

    def test_incomplete_finalize_rejected(self):
        accumulator = self._accumulator()
        accumulator.add(np.arange(4), np.ones(4))
        with pytest.raises(SamplingError, match="incomplete"):
            accumulator.finalize()

    def test_output_shape_change_rejected(self):
        accumulator = self._accumulator()
        accumulator.add(np.arange(4), np.zeros((4, 2)))
        with pytest.raises(SamplingError, match="does not match"):
            accumulator.add(np.arange(4, 8), np.zeros((4, 3)))

    def test_empty_chunk_is_noop(self):
        accumulator = self._accumulator()
        accumulator.add(np.empty(0, dtype=int), np.empty((0,)))
        assert accumulator.num_folded == 0

    def test_mismatched_lengths_rejected(self):
        accumulator = self._accumulator()
        with pytest.raises(SamplingError):
            accumulator.add(np.arange(3), np.zeros(4))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SamplingError):
            StreamingJansenAccumulator(1, 2)
        with pytest.raises(SamplingError):
            StreamingJansenAccumulator(4, 0)
        with pytest.raises(SamplingError):
            StreamingJansenAccumulator(4, 2, pairs=[(1, 1)])
        with pytest.raises(SamplingError):
            StreamingJansenAccumulator(4, 2, pairs=[(0, 3)])
        with pytest.raises(SamplingError):
            StreamingJansenAccumulator(4, 2, groups=[()])
        with pytest.raises(SamplingError):
            StreamingJansenAccumulator(4, 2, groups=[(0,), (0,)])
        with pytest.raises(SamplingError):
            StreamingJansenAccumulator(4, 2, include_first_order=False)

    def test_group_only_accumulator(self):
        """``include_first_order=False`` reduces just the group blocks."""
        blocks = _stream(vector=False)
        f_a, f_b = blocks[0], blocks[1]
        group_block = blocks[2 + DIMENSION + len(PAIRS)]
        accumulator = StreamingJansenAccumulator(
            M, DIMENSION, groups=GROUPS, include_first_order=False
        )
        accumulator.add(np.arange(M), f_a)
        accumulator.add(np.arange(M, 2 * M), f_b)
        accumulator.add(np.arange(2 * M, 3 * M), group_block)
        estimates = accumulator.finalize()
        assert estimates.first_order is None
        assert estimates.second_order is None
        reference = jansen_group_indices(
            f_a, f_b, group_block[np.newaxis], GROUPS,
            dimension=DIMENSION,
        )
        assert np.array_equal(estimates.groups.closed, reference.closed)
        assert np.array_equal(estimates.groups.total, reference.total)

    def test_repr(self):
        accumulator = self._accumulator()
        assert "folded=0/16" in repr(accumulator)


class TestDegenerateContract:
    def test_all_constant_scalar_raises(self):
        accumulator = StreamingJansenAccumulator(4, 2)
        accumulator.add(np.arange(16), np.ones(16))
        with pytest.raises(SamplingError, match="zero variance"):
            accumulator.finalize()

    def test_all_constant_vector_raises(self):
        accumulator = StreamingJansenAccumulator(4, 2)
        accumulator.add(np.arange(16), np.ones((16, 3)))
        with pytest.raises(SamplingError, match="zero variance"):
            accumulator.finalize()

    def test_second_order_requires_matching_pairs(self):
        blocks = _stream(vector=False)
        f_a, f_b = blocks[0], blocks[1]
        f_ab = np.stack(blocks[2:2 + DIMENSION])
        f_ab_pairs = np.stack(
            blocks[2 + DIMENSION:2 + DIMENSION + len(PAIRS)]
        )
        with pytest.raises(SamplingError, match="pair blocks"):
            jansen_second_order(f_a, f_b, f_ab, f_ab_pairs,
                                pairs=[(0, 1)])

    def test_group_function_requires_matching_groups(self):
        blocks = _stream(vector=False)
        f_a, f_b = blocks[0], blocks[1]
        group_block = blocks[-1][np.newaxis]
        with pytest.raises(SamplingError, match="group blocks"):
            jansen_group_indices(f_a, f_b, group_block,
                                 [(0, 1), (2,)], dimension=DIMENSION)

    def test_bootstrap_rejects_subsets_without_blocks(self):
        """pairs=/groups= without their evaluation blocks is an error,
        not a silent no-op."""
        from repro.uq.sensitivity import jansen_bootstrap

        blocks = _stream(vector=False)
        f_a, f_b = blocks[0], blocks[1]
        f_ab = np.stack(blocks[2:2 + DIMENSION])
        with pytest.raises(SamplingError, match="f_ab_pairs"):
            jansen_bootstrap(f_a, f_b, f_ab, num_replicates=5,
                             pairs=PAIRS)
        with pytest.raises(SamplingError, match="f_ab_groups"):
            jansen_bootstrap(f_a, f_b, f_ab, num_replicates=5,
                             groups=GROUPS)
