"""Tests for the polynomial chaos expansion surrogate."""

import math

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.uq.distributions import NormalDistribution, UniformDistribution
from repro.uq.pce import (
    PolynomialChaosExpansion,
    hermite_normalized,
    total_degree_multi_indices,
)


class TestMultiIndices:
    def test_counts(self):
        """binomial(d + p, p) terms."""
        assert len(total_degree_multi_indices(3, 2)) == math.comb(5, 2)
        assert len(total_degree_multi_indices(12, 2)) == math.comb(14, 2)

    def test_zero_first(self):
        indices = total_degree_multi_indices(4, 3)
        assert indices[0] == (0, 0, 0, 0)

    def test_degrees_bounded(self):
        for alpha in total_degree_multi_indices(3, 2):
            assert sum(alpha) <= 2

    def test_validation(self):
        with pytest.raises(SamplingError):
            total_degree_multi_indices(0, 2)


class TestHermiteBasis:
    def test_orthonormality_by_quadrature(self):
        """<He_m, He_n>/sqrt(m! n!) = delta_mn under N(0,1)."""
        nodes, weights = np.polynomial.hermite_e.hermegauss(20)
        weights = weights / np.sqrt(2.0 * np.pi)
        for m in range(4):
            for n in range(4):
                inner = np.dot(
                    weights,
                    hermite_normalized(m, nodes) * hermite_normalized(n, nodes),
                )
                expected = 1.0 if m == n else 0.0
                assert inner == pytest.approx(expected, abs=1e-10)

    def test_first_polynomials(self):
        z = np.array([0.0, 1.0, 2.0])
        assert np.allclose(hermite_normalized(0, z), 1.0)
        assert np.allclose(hermite_normalized(1, z), z)
        assert np.allclose(
            hermite_normalized(2, z), (z**2 - 1.0) / np.sqrt(2.0)
        )


class TestFitAndStatistics:
    def test_linear_model_exact(self):
        weights = np.array([2.0, -1.0, 0.5])

        def model(parameters):
            return np.array([np.dot(weights, parameters)])

        dist = NormalDistribution(0.17, 0.048)
        pce = PolynomialChaosExpansion(model, dist, 3, degree=1).fit(seed=0)
        assert pce.mean[0] == pytest.approx(0.17 * np.sum(weights), abs=1e-10)
        assert pce.std[0] == pytest.approx(
            0.048 * np.linalg.norm(weights), rel=1e-8
        )

    def test_quadratic_model_exact_at_degree2(self):
        def model(parameters):
            return np.array([parameters[0] ** 2 + parameters[1]])

        dist = NormalDistribution(0.0, 1.0)
        pce = PolynomialChaosExpansion(model, dist, 2, degree=2).fit(
            num_samples=60, seed=1
        )
        # E[z^2 + z] = 1; Var = Var(z^2) + Var(z) = 2 + 1 = 3.
        assert pce.mean[0] == pytest.approx(1.0, abs=1e-8)
        assert pce.variance[0] == pytest.approx(3.0, rel=1e-6)

    def test_sobol_indices_additive(self):
        weights = np.array([3.0, 1.0])

        def model(parameters):
            return np.array([np.dot(weights, parameters)])

        dist = NormalDistribution(0.0, 1.0)
        pce = PolynomialChaosExpansion(model, dist, 2, degree=2).fit(
            num_samples=50, seed=2
        )
        first, total = pce.sobol_indices()
        assert first[0, 0] == pytest.approx(0.9, abs=1e-6)
        assert first[1, 0] == pytest.approx(0.1, abs=1e-6)
        assert np.allclose(total[:, 0], first[:, 0], atol=1e-6)

    def test_sobol_interaction_in_total_only(self):
        def model(parameters):
            return np.array([parameters[0] * parameters[1]])

        dist = NormalDistribution(0.0, 1.0)
        pce = PolynomialChaosExpansion(model, dist, 2, degree=2).fit(
            num_samples=80, seed=3
        )
        first, total = pce.sobol_indices()
        assert first[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert total[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_surrogate_evaluation_matches_model(self):
        def model(parameters):
            return np.array([1.0 + 2.0 * parameters[0]])

        dist = NormalDistribution(0.5, 0.1)
        pce = PolynomialChaosExpansion(model, dist, 1, degree=1).fit(seed=4)
        point = np.array([0.63])
        assert pce(point)[0] == pytest.approx(model(point)[0], abs=1e-9)

    def test_vector_output(self):
        def model(parameters):
            return np.array([parameters[0], 2.0 * parameters[0], 1.0])

        dist = NormalDistribution(0.0, 1.0)
        pce = PolynomialChaosExpansion(model, dist, 1, degree=1).fit(seed=5)
        assert pce.mean.shape == (3,)
        assert pce.std[2] == pytest.approx(0.0, abs=1e-9)

    def test_non_normal_marginals(self):
        def model(parameters):
            return np.array([np.sum(parameters)])

        dist = UniformDistribution(0.0, 2.0)
        pce = PolynomialChaosExpansion(model, dist, 2, degree=3).fit(
            num_samples=200, seed=6
        )
        assert pce.mean[0] == pytest.approx(2.0, abs=0.02)

    def test_unfitted_raises(self):
        pce = PolynomialChaosExpansion(
            lambda p: p, NormalDistribution(0, 1), 1
        )
        with pytest.raises(SamplingError):
            _ = pce.mean

    def test_too_few_samples(self):
        pce = PolynomialChaosExpansion(
            lambda p: np.array([p[0]]), NormalDistribution(0, 1), 2, degree=2
        )
        with pytest.raises(SamplingError):
            pce.fit(num_samples=3)
