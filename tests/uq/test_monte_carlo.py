"""Tests for the Monte Carlo driver on cheap surrogate models."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.uq.monte_carlo import MonteCarloStudy, monte_carlo_error
from repro.uq.distributions import NormalDistribution, UniformDistribution
from repro.uq.sampling import latin_hypercube


def _linear_model(parameters):
    """Cheap stand-in: weighted sum of the inputs."""
    weights = np.arange(1, parameters.size + 1, dtype=float)
    return np.array([np.dot(weights, parameters)])


class TestErrorEstimator:
    def test_eq6(self):
        assert monte_carlo_error(4.65, 1000) == pytest.approx(0.147, abs=5e-4)

    def test_vector_std(self):
        errors = monte_carlo_error(np.array([1.0, 2.0]), 4)
        assert np.allclose(errors, [0.5, 1.0])

    def test_invalid_count(self):
        with pytest.raises(SamplingError):
            monte_carlo_error(1.0, 0)


class TestStudy:
    def test_linear_gaussian_closed_form(self):
        """Linear model of iid normals: mean and variance are exact."""
        dimension = 3
        dist = NormalDistribution(2.0, 0.5)
        study = MonteCarloStudy(_linear_model, dist, dimension)
        result = study.run(4000, seed=0)
        weights = np.arange(1, dimension + 1, dtype=float)
        expected_mean = 2.0 * np.sum(weights)
        expected_std = 0.5 * np.linalg.norm(weights)
        assert result.mean[0] == pytest.approx(expected_mean, rel=0.01)
        assert result.std[0] == pytest.approx(expected_std, rel=0.05)

    def test_error_decreases_with_m(self):
        dist = UniformDistribution(0.0, 1.0)
        study = MonteCarloStudy(_linear_model, dist, 2)
        small = study.run(100, seed=0)
        large = study.run(1600, seed=0)
        assert large.error()[0] < small.error()[0]
        # error ~ 1/sqrt(M): factor 4 between M=100 and M=1600.
        assert small.error()[0] / large.error()[0] == pytest.approx(
            4.0, rel=0.35
        )

    def test_keep_samples_enables_quantiles(self):
        dist = UniformDistribution(0.0, 1.0)
        study = MonteCarloStudy(_linear_model, dist, 1)
        result = study.run(500, seed=1, keep_samples=True)
        median = result.quantiles(0.5)
        assert median[0] == pytest.approx(0.5, abs=0.05)

    def test_quantiles_without_samples_rejected(self):
        study = MonteCarloStudy(_linear_model, UniformDistribution(0, 1), 1)
        result = study.run(10, seed=0)
        with pytest.raises(SamplingError):
            result.quantiles(0.5)

    def test_confidence_band(self):
        study = MonteCarloStudy(_linear_model, UniformDistribution(0, 1), 1)
        result = study.run(100, seed=0)
        lower, upper = result.confidence_band(6.0)
        assert np.all(upper - lower == pytest.approx(12.0 * result.std))

    def test_external_uniform_points(self):
        """LHS stream plugs into the same driver (sampling ablation)."""
        study = MonteCarloStudy(_linear_model, UniformDistribution(0, 1), 2)
        points = latin_hypercube(64, 2, seed=0)
        result = study.run(None, uniform_points=points)
        assert result.num_samples == 64

    def test_callback_invoked(self):
        calls = []
        study = MonteCarloStudy(_linear_model, UniformDistribution(0, 1), 1)
        study.run(5, seed=0, callback=lambda i, p, o: calls.append(i))
        assert calls == [0, 1, 2, 3, 4]

    def test_wrong_point_shape(self):
        study = MonteCarloStudy(_linear_model, UniformDistribution(0, 1), 2)
        with pytest.raises(SamplingError):
            study.run(None, uniform_points=np.zeros((10, 3)))

    def test_model_must_be_callable(self):
        with pytest.raises(SamplingError):
            MonteCarloStudy("model", UniformDistribution(0, 1), 1)


class TestConvergenceTrace:
    def test_checkpoints_monotone(self):
        study = MonteCarloStudy(_linear_model, UniformDistribution(0, 1), 2)
        counts, means, stds = study.convergence_trace(200, seed=0)
        assert np.all(np.diff(counts) > 0)
        assert counts[-1] == 200
        assert means.shape == (counts.size, 1)

    def test_estimates_stabilize(self):
        study = MonteCarloStudy(_linear_model, UniformDistribution(0, 1), 1)
        counts, means, _ = study.convergence_trace(
            2000, seed=3, checkpoints=[50, 2000]
        )
        exact = 0.5
        assert abs(means[-1, 0] - exact) < abs(means[0, 0] - exact) + 0.02


def _linear_block(parameters_block):
    return np.stack([_linear_model(row) for row in parameters_block])


class TestBlockedEvaluation:
    def test_block_size_matches_per_sample_run(self):
        from repro.uq.monte_carlo import BlockedModel

        dist = UniformDistribution(0.0, 1.0)
        model = BlockedModel(_linear_model, _linear_block)
        blocked = MonteCarloStudy(model, dist, 3)
        plain = MonteCarloStudy(_linear_model, dist, 3)
        a = blocked.run(50, seed=5, block_size=8, keep_samples=True)
        b = plain.run(50, seed=5, keep_samples=True)
        assert np.array_equal(a.samples, b.samples)
        assert np.array_equal(a.mean, b.mean)

    def test_uneven_tail_block(self):
        from repro.uq.monte_carlo import BlockedModel

        model = BlockedModel(_linear_model, _linear_block)
        study = MonteCarloStudy(model, UniformDistribution(0, 1), 2)
        result = study.run(7, seed=0, block_size=3, keep_samples=True)
        assert result.samples.shape == (7, 1)

    def test_callback_sees_sample_order(self):
        from repro.uq.monte_carlo import BlockedModel

        calls = []
        model = BlockedModel(_linear_model, _linear_block)
        study = MonteCarloStudy(model, UniformDistribution(0, 1), 1)
        study.run(5, seed=0, block_size=2,
                  callback=lambda i, p, o: calls.append(i))
        assert calls == [0, 1, 2, 3, 4]

    def test_block_size_requires_evaluate_block(self):
        study = MonteCarloStudy(_linear_model, UniformDistribution(0, 1), 1)
        with pytest.raises(SamplingError, match="evaluate_block"):
            study.run(4, seed=0, block_size=2)

    def test_block_size_validated(self):
        from repro.uq.monte_carlo import BlockedModel

        model = BlockedModel(_linear_model, _linear_block)
        study = MonteCarloStudy(model, UniformDistribution(0, 1), 1)
        with pytest.raises(SamplingError, match="block_size"):
            study.run(4, seed=0, block_size=0)

    def test_block_size_rejected_with_executor(self):
        from repro.campaign.executor import SerialExecutor
        from repro.uq.monte_carlo import BlockedModel

        model = BlockedModel(_linear_model, _linear_block)
        study = MonteCarloStudy(model, UniformDistribution(0, 1), 1)
        with pytest.raises(SamplingError, match="executor"):
            study.run(4, seed=0, block_size=2, executor=SerialExecutor())

    def test_wrong_output_count_rejected(self):
        from repro.uq.monte_carlo import BlockedModel

        model = BlockedModel(
            _linear_model, lambda block: _linear_block(block)[:-1]
        )
        study = MonteCarloStudy(model, UniformDistribution(0, 1), 1)
        with pytest.raises(SamplingError, match="outputs"):
            study.run(4, seed=0, block_size=4)

    def test_blocked_model_validates_callables(self):
        from repro.uq.monte_carlo import BlockedModel

        with pytest.raises(SamplingError):
            BlockedModel("model", _linear_block)
        with pytest.raises(SamplingError):
            BlockedModel(_linear_model, "block")
