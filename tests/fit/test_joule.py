"""Tests for the Joule heating bridge (field power bookkeeping)."""

import numpy as np
import pytest

from repro.fit.assembly import FITDiscretization
from repro.fit.joule import (
    exact_discrete_power,
    joule_cell_power_density,
    joule_node_power,
    total_joule_power,
)
from repro.fit.material_field import MaterialField
from repro.grid.tensor_grid import TensorGrid
from repro.materials.base import Material


@pytest.fixture
def bar():
    """Unit-conductivity 2 x 1 x 1 bar with a few cells."""
    grid = TensorGrid.uniform(((0, 2.0), (0, 1.0), (0, 1.0)), (5, 3, 3))
    field = MaterialField(grid, Material("unit", 1.0, 1.0, 1.0))
    return FITDiscretization(grid, field)


class TestUniformField:
    def test_density_of_uniform_field(self, bar):
        """Phi = -E0 x gives sigma E0^2 everywhere."""
        coords = bar.grid.node_coordinates()
        e0 = 10.0
        phi = -e0 * coords[:, 0]
        density = joule_cell_power_density(bar, phi)
        assert np.allclose(density, e0 * e0)

    def test_total_power_uniform(self, bar):
        coords = bar.grid.node_coordinates()
        phi = -10.0 * coords[:, 0]
        total = total_joule_power(bar, phi)
        # P = sigma E^2 V = 1 * 100 * 2
        assert np.isclose(total, 200.0)

    def test_node_power_sums_to_total(self, bar):
        coords = bar.grid.node_coordinates()
        phi = -10.0 * coords[:, 0]
        node_power = joule_node_power(bar, phi)
        assert np.isclose(np.sum(node_power), total_joule_power(bar, phi))

    def test_exact_discrete_power_matches_on_uniform_field(self, bar):
        coords = bar.grid.node_coordinates()
        phi = -10.0 * coords[:, 0]
        assert np.isclose(
            exact_discrete_power(bar, phi), total_joule_power(bar, phi)
        )


class TestNonuniformField:
    def test_reconstruction_bounded_by_exact(self, bar, rng):
        """The averaged reconstruction never exceeds the energy-exact form.

        The 4-edge mean satisfies (mean e)^2 <= mean(e^2) (Jensen), so the
        reconstructed power is a lower bound; for rough random fields the
        gap is large, which is fine -- smooth fields are covered below.
        """
        phi = rng.standard_normal(bar.grid.num_nodes)
        reconstructed = total_joule_power(bar, phi)
        exact = exact_discrete_power(bar, phi)
        assert 0.0 < reconstructed <= exact + 1e-12

    def test_reconstruction_accurate_for_smooth_field(self, bar):
        """For a smooth quadratic potential the two forms agree to a few %."""
        coords = bar.grid.node_coordinates()
        phi = coords[:, 0] ** 2 + 0.5 * coords[:, 1] * coords[:, 0]
        reconstructed = total_joule_power(bar, phi)
        exact = exact_discrete_power(bar, phi)
        assert reconstructed == pytest.approx(exact, rel=0.05)

    def test_convergence_under_refinement(self):
        """The two power expressions converge under mesh refinement.

        Potential phi = x^2 on a unit-conductivity cube; the continuous
        dissipation integral over (0,1)^3 is int 4 x^2 = 4/3.
        """
        errors = []
        for n in (3, 5, 9):
            grid = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (n, n, n))
            field = MaterialField(grid, Material("unit", 1.0, 1.0, 1.0))
            disc = FITDiscretization(grid, field)
            coords = grid.node_coordinates()
            phi = coords[:, 0] ** 2
            errors.append(abs(total_joule_power(disc, phi) - 4.0 / 3.0))
        assert errors[2] < errors[0]
        assert errors[2] < 0.05


class TestTemperatureDependentJoule:
    def test_hot_copper_dissipates_less_at_fixed_field(self):
        from repro.materials.library import copper

        grid = TensorGrid.uniform(((0, 1e-3), (0, 1e-3), (0, 1e-3)), (3, 3, 3))
        field = MaterialField(grid, copper())
        disc = FITDiscretization(grid, field)
        coords = grid.node_coordinates()
        phi = -1.0 * coords[:, 0]
        cold = np.full(grid.num_cells, 300.0)
        hot = np.full(grid.num_cells, 500.0)
        p_cold = total_joule_power(disc, phi, cold)
        p_hot = total_joule_power(disc, phi, hot)
        assert p_hot < p_cold
