"""Tests for Dirichlet reduction, convection and radiation BCs."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.constants import STEFAN_BOLTZMANN
from repro.errors import BoundaryConditionError
from repro.fit.boundary import (
    ConvectionBC,
    DirichletBC,
    RadiationBC,
    apply_dirichlet,
    combine_dirichlet,
)
from repro.grid.dual import DualGeometry


class TestDirichletBC:
    def test_deduplicates_nodes(self):
        bc = DirichletBC([3, 1, 3], 1.0)
        assert np.array_equal(bc.nodes, [1, 3])

    def test_empty_rejected(self):
        with pytest.raises(BoundaryConditionError):
            DirichletBC([], 1.0)

    def test_conflicting_values_rejected(self):
        bcs = [DirichletBC([0], 1.0), DirichletBC([0], 2.0)]
        with pytest.raises(BoundaryConditionError):
            combine_dirichlet(bcs, 5)

    def test_agreeing_overlap_merged(self):
        bcs = [DirichletBC([0, 1], 1.0), DirichletBC([1, 2], 1.0)]
        fixed, values = combine_dirichlet(bcs, 5)
        assert np.array_equal(fixed, [0, 1, 2])
        assert np.allclose(values, 1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(BoundaryConditionError):
            combine_dirichlet([DirichletBC([10], 1.0)], 5)


class TestApplyDirichlet:
    def test_1d_laplace_linear_solution(self):
        """Five-node 1D Laplacian with ends fixed -> linear interior."""
        n = 5
        main = 2.0 * np.ones(n)
        off = -np.ones(n - 1)
        matrix = sp.diags([off, main, off], [-1, 0, 1]).tocsr()
        rhs = np.zeros(n)
        bcs = [DirichletBC([0], 0.0), DirichletBC([n - 1], 4.0)]
        reduced = apply_dirichlet(matrix, rhs, bcs)
        import scipy.sparse.linalg as spla

        solution = reduced.expand(
            spla.spsolve(reduced.matrix.tocsc(), reduced.rhs)
        )
        assert np.allclose(solution, [0.0, 1.0, 2.0, 3.0, 4.0])

    def test_reduction_preserves_symmetry(self, rng):
        n = 8
        raw = rng.standard_normal((n, n))
        symmetric = sp.csr_matrix(raw + raw.T + 10 * np.eye(n))
        reduced = apply_dirichlet(
            symmetric, np.zeros(n), [DirichletBC([0, 3], 1.0)]
        )
        dense = reduced.matrix.toarray()
        assert np.allclose(dense, dense.T)

    def test_expand_restrict_roundtrip(self):
        matrix = sp.identity(4, format="csr")
        reduced = apply_dirichlet(
            matrix, np.zeros(4), [DirichletBC([1], 7.0)]
        )
        full = reduced.expand(np.array([1.0, 2.0, 3.0]))
        assert full[1] == 7.0
        assert np.allclose(reduced.restrict(full), [1.0, 2.0, 3.0])

    def test_wrong_rhs_size(self):
        matrix = sp.identity(4, format="csr")
        with pytest.raises(BoundaryConditionError):
            apply_dirichlet(matrix, np.zeros(3), [DirichletBC([0], 1.0)])


class TestConvection:
    def test_total_conductance(self, small_grid):
        dual = DualGeometry(small_grid)
        bc = ConvectionBC(25.0, 300.0)
        conductance = bc.node_conductances(dual)
        (x0, x1), (y0, y1), (z0, z1) = small_grid.extent
        lx, ly, lz = x1 - x0, y1 - y0, z1 - z0
        surface = 2.0 * (lx * ly + ly * lz + lx * lz)
        assert np.isclose(np.sum(conductance), 25.0 * surface)

    def test_rhs_is_conductance_times_ambient(self, small_grid):
        dual = DualGeometry(small_grid)
        bc = ConvectionBC(25.0, 300.0)
        diag, rhs = bc.contributions(dual)
        assert np.allclose(rhs, diag * 300.0)

    def test_power_at_ambient_is_zero(self, small_grid):
        dual = DualGeometry(small_grid)
        bc = ConvectionBC(25.0, 300.0)
        t = np.full(small_grid.num_nodes, 300.0)
        assert bc.power(dual, t) == pytest.approx(0.0)

    def test_power_sign(self, small_grid):
        dual = DualGeometry(small_grid)
        bc = ConvectionBC(25.0, 300.0)
        hot = np.full(small_grid.num_nodes, 350.0)
        assert bc.power(dual, hot) > 0.0

    def test_selected_faces_only(self, small_grid):
        dual = DualGeometry(small_grid)
        bc = ConvectionBC(25.0, 300.0, faces=("z+",))
        conductance = bc.node_conductances(dual)
        (x0, x1), (y0, y1), _ = small_grid.extent
        assert np.isclose(
            np.sum(conductance), 25.0 * (x1 - x0) * (y1 - y0)
        )

    def test_negative_h_rejected(self):
        with pytest.raises(BoundaryConditionError):
            ConvectionBC(-1.0, 300.0)

    def test_unknown_face_rejected(self):
        with pytest.raises(BoundaryConditionError):
            ConvectionBC(1.0, 300.0, faces=("q-",))


class TestRadiation:
    def test_emissivity_range(self):
        with pytest.raises(BoundaryConditionError):
            RadiationBC(1.5, 300.0)
        with pytest.raises(BoundaryConditionError):
            RadiationBC(-0.1, 300.0)

    def test_linearization_consistent_at_expansion_point(self, small_grid):
        """Linearized flux equals the exact quartic at T = T*."""
        dual = DualGeometry(small_grid)
        bc = RadiationBC(0.2475, 300.0)
        t_star = np.full(small_grid.num_nodes, 380.0)
        diag, rhs = bc.linearized_contributions(dual, t_star)
        linear_out = diag * t_star - rhs
        coefficient = bc.node_coefficients(dual)
        exact_out = coefficient * (t_star**4 - 300.0**4)
        assert np.allclose(linear_out, exact_out)

    def test_power_stefan_boltzmann(self, small_grid):
        dual = DualGeometry(small_grid)
        bc = RadiationBC(1.0, 0.0)  # black body into 0 K background
        t = np.full(small_grid.num_nodes, 400.0)
        (x0, x1), (y0, y1), (z0, z1) = small_grid.extent
        lx, ly, lz = x1 - x0, y1 - y0, z1 - z0
        surface = 2.0 * (lx * ly + ly * lz + lx * lz)
        expected = STEFAN_BOLTZMANN * surface * 400.0**4
        assert np.isclose(bc.power(dual, t), expected, rtol=1e-12)

    def test_equilibrium_power_zero(self, small_grid):
        dual = DualGeometry(small_grid)
        bc = RadiationBC(0.5, 350.0)
        t = np.full(small_grid.num_nodes, 350.0)
        assert bc.power(dual, t) == pytest.approx(0.0)
