"""Tests for the FITDiscretization assembly object."""

import numpy as np
import pytest

from repro.errors import AssemblyError
from repro.fit.assembly import FITDiscretization
from repro.fit.material_field import MaterialField
from repro.grid.tensor_grid import TensorGrid
from repro.materials.base import Material


@pytest.fixture
def unit_disc(small_grid):
    field = MaterialField(small_grid, Material("unit", 1.0, 1.0, 1.0))
    return FITDiscretization(small_grid, field)


class TestStiffness:
    def test_symmetric(self, unit_disc):
        k = unit_disc.electrical_stiffness()
        assert abs(k - k.T).max() < 1e-14

    def test_positive_semidefinite_with_constant_kernel(self, unit_disc):
        k = unit_disc.electrical_stiffness().toarray()
        eigenvalues = np.linalg.eigvalsh(k)
        assert eigenvalues[0] > -1e-10
        constant = np.ones(k.shape[0])
        assert np.allclose(k @ constant, 0.0)

    def test_wrong_diagonal_size_rejected(self, unit_disc):
        with pytest.raises(AssemblyError):
            unit_disc.stiffness_from_diagonal(np.ones(3))

    def test_laplacian_of_linear_field_zero_inside(self, unit_disc):
        """K applied to a linear potential vanishes at interior nodes."""
        grid = unit_disc.grid
        coords = grid.node_coordinates()
        field = 2.0 * coords[:, 0] + 1.0 * coords[:, 1]
        residual = unit_disc.electrical_stiffness() @ field
        from repro.grid.indexing import GridIndexing

        indexing = GridIndexing(grid)
        interior = indexing.node_index(1, 1, 1)
        assert abs(residual[interior]) < 1e-12


class TestTransfer:
    def test_cell_temperatures_of_constant(self, unit_disc):
        t = np.full(unit_disc.grid.num_nodes, 321.0)
        assert np.allclose(unit_disc.cell_temperatures(t), 321.0)

    def test_cell_temperatures_of_linear(self, unit_disc):
        """Linear nodal field -> exact cell-center values."""
        grid = unit_disc.grid
        coords = grid.node_coordinates()
        t = 5.0 * coords[:, 0]
        cell_t = unit_disc.cell_temperatures(t)
        centers = grid.cell_centers()
        assert np.allclose(cell_t, 5.0 * centers[:, 0])

    def test_node_power_conservation(self, unit_disc, rng):
        density = rng.uniform(0.5, 2.0, unit_disc.grid.num_cells)
        node_power = unit_disc.node_power_from_cells(density)
        assert np.isclose(
            np.sum(node_power), np.dot(density, unit_disc.cell_volumes)
        )

    def test_wrong_size_rejected(self, unit_disc):
        with pytest.raises(AssemblyError):
            unit_disc.cell_temperatures(np.zeros(3))


class TestFieldReconstruction:
    def test_uniform_field_exact(self, unit_disc):
        """Phi = -E0 x reproduces E = (E0, 0, 0) in every cell."""
        grid = unit_disc.grid
        coords = grid.node_coordinates()
        e0 = 123.0
        phi = -e0 * coords[:, 0]
        ex, ey, ez = unit_disc.cell_field_components(phi)
        assert np.allclose(ex, e0)
        assert np.allclose(ey, 0.0, atol=1e-9)
        assert np.allclose(ez, 0.0, atol=1e-9)

    def test_oblique_uniform_field(self, unit_disc):
        grid = unit_disc.grid
        coords = grid.node_coordinates()
        phi = -(1.0 * coords[:, 0] + 2.0 * coords[:, 1] + 3.0 * coords[:, 2])
        ex, ey, ez = unit_disc.cell_field_components(phi)
        assert np.allclose(ex, 1.0)
        assert np.allclose(ey, 2.0)
        assert np.allclose(ez, 3.0)


class TestMismatchedField:
    def test_foreign_grid_rejected(self, small_grid):
        other = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (3, 3, 3))
        field = MaterialField(other, Material("unit", 1.0, 1.0, 1.0))
        with pytest.raises(AssemblyError):
            FITDiscretization(small_grid, field)
