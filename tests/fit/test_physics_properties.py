"""Hypothesis property tests on the discretized physics.

These run the assembly on randomized grids and material layouts and check
structural properties that must hold regardless of the configuration:
symmetry, positive (semi-)definiteness, conservation, and boundedness.
"""

import numpy as np
import pytest
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fit.assembly import FITDiscretization
from repro.fit.boundary import DirichletBC, apply_dirichlet
from repro.fit.material_field import MaterialField
from repro.grid.indexing import GridIndexing
from repro.grid.tensor_grid import TensorGrid
from repro.materials.base import Material


def _random_setup(seed, nx, ny, nz):
    rng = np.random.default_rng(seed)

    def axis(n):
        return np.concatenate(
            [[0.0], np.cumsum(rng.uniform(0.2, 1.5, n - 1))]
        ) * 1e-3

    grid = TensorGrid(axis(nx), axis(ny), axis(nz))
    background = Material("bg", 10.0 ** rng.uniform(-6, 0), 1.0, 1e6)
    field = MaterialField(grid, background)
    # Claim a random sub-box with a second material.
    inclusion = Material("inc", 10.0 ** rng.uniform(2, 7), 100.0, 3e6)
    (x0, x1), (y0, y1), (z0, z1) = grid.extent
    lo = rng.uniform(0.0, 0.5)
    hi = rng.uniform(0.5, 1.0)
    field.fill_box(
        (
            (x0 + lo * (x1 - x0), x0 + hi * (x1 - x0)),
            (y0, y1),
            (z0, z1),
        ),
        inclusion,
    )
    return grid, field


@given(
    seed=st.integers(min_value=0, max_value=200),
    nx=st.integers(min_value=3, max_value=5),
    ny=st.integers(min_value=2, max_value=4),
    nz=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_property_stiffness_spsd_any_materials(seed, nx, ny, nz):
    """K is symmetric positive semi-definite for any material layout."""
    grid, field = _random_setup(seed, nx, ny, nz)
    disc = FITDiscretization(grid, field)
    k = disc.electrical_stiffness().toarray()
    assert np.allclose(k, k.T, atol=1e-10 * np.max(np.abs(k)))
    eigenvalues = np.linalg.eigvalsh(k)
    assert eigenvalues[0] > -1e-9 * max(eigenvalues[-1], 1.0)


@given(
    seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=15, deadline=None)
def test_property_dirichlet_solution_bounded(seed):
    """Discrete maximum principle: solution within the contact values."""
    grid, field = _random_setup(seed, 4, 3, 3)
    disc = FITDiscretization(grid, field)
    indexing = GridIndexing(grid)
    matrix = disc.electrical_stiffness()
    bcs = [
        DirichletBC(indexing.boundary_nodes("x-"), 1.0),
        DirichletBC(indexing.boundary_nodes("x+"), -1.0),
    ]
    reduced = apply_dirichlet(matrix, np.zeros(grid.num_nodes), bcs)
    solution = reduced.expand(
        spla.spsolve(reduced.matrix.tocsc(), reduced.rhs)
    )
    assert np.max(solution) <= 1.0 + 1e-9
    assert np.min(solution) >= -1.0 - 1e-9


@given(
    seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=15, deadline=None)
def test_property_current_conservation(seed):
    """Total injected current vanishes for any layout (Kirchhoff)."""
    grid, field = _random_setup(seed, 4, 3, 3)
    disc = FITDiscretization(grid, field)
    indexing = GridIndexing(grid)
    matrix = disc.electrical_stiffness()
    bcs = [
        DirichletBC(indexing.boundary_nodes("y-"), 0.5),
        DirichletBC(indexing.boundary_nodes("y+"), -0.5),
    ]
    reduced = apply_dirichlet(matrix, np.zeros(grid.num_nodes), bcs)
    solution = reduced.expand(
        spla.spsolve(reduced.matrix.tocsc(), reduced.rhs)
    )
    residual = matrix @ solution
    injected = sum(float(np.sum(residual[bc.nodes])) for bc in bcs)
    scale = float(np.max(np.abs(residual))) or 1.0
    assert abs(injected) < 1e-8 * scale


@given(
    seed=st.integers(min_value=0, max_value=100),
    power=st.floats(min_value=1e-6, max_value=1e-2),
)
@settings(max_examples=15, deadline=None)
def test_property_capacitance_partition(seed, power):
    """Lumping any cell power to nodes conserves the total exactly."""
    grid, field = _random_setup(seed, 4, 3, 3)
    disc = FITDiscretization(grid, field)
    rng = np.random.default_rng(seed)
    density = rng.uniform(0.0, power, grid.num_cells)
    node_power = disc.node_power_from_cells(density)
    assert np.sum(node_power) == pytest.approx(
        np.dot(density, disc.cell_volumes), rel=1e-12
    )
    assert np.all(node_power >= 0.0)
