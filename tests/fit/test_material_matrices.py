"""Tests for the diagonal FIT material matrices."""

import numpy as np
import pytest

from repro.fit.material_matrices import (
    averaged_edge_values,
    conductance_diagonal,
    electrical_conductance_diagonal,
    thermal_capacitance_diagonal,
    thermal_conductance_diagonal,
)
from repro.fit.material_field import MaterialField
from repro.grid.dual import DualGeometry
from repro.grid.operators import edge_lengths
from repro.grid.tensor_grid import TensorGrid
from repro.materials.base import Material
from repro.materials.library import copper, epoxy_resin


@pytest.fixture
def homogeneous(small_grid):
    field = MaterialField(small_grid, Material("unit", 2.0, 3.0, 4.0))
    return DualGeometry(small_grid), field


class TestHomogeneous:
    def test_edge_averaging_recovers_constant(self, homogeneous):
        dual, field = homogeneous
        weighted = averaged_edge_values(dual, field.sigma_cells())
        areas = dual.dual_facet_areas()
        assert np.allclose(weighted / areas, 2.0)

    def test_conductance_formula(self, homogeneous):
        """M_sigma[i,i] = sigma A_i / l_i for a homogeneous medium."""
        dual, field = homogeneous
        diag = conductance_diagonal(dual, field.sigma_cells())
        expected = 2.0 * dual.dual_facet_areas() / edge_lengths(dual.grid)
        assert np.allclose(diag, expected)

    def test_capacitance_total(self, homogeneous):
        """Total heat capacity equals rho*c times the volume, exactly."""
        dual, field = homogeneous
        diag = thermal_capacitance_diagonal(dual, field)
        assert np.isclose(np.sum(diag), 4.0 * dual.grid.total_volume)

    def test_all_diagonals_positive(self, homogeneous):
        dual, field = homogeneous
        assert np.all(electrical_conductance_diagonal(dual, field) > 0.0)
        assert np.all(thermal_conductance_diagonal(dual, field) > 0.0)
        assert np.all(thermal_capacitance_diagonal(dual, field) > 0.0)


class TestInterfaceAveraging:
    def test_edge_on_interface_sees_area_weighted_mean(self):
        """An edge on a 50/50 material interface averages the sigmas."""
        grid = TensorGrid.uniform(((0, 2), (0, 2), (0, 2)), (3, 3, 3))
        field = MaterialField(grid, Material("a", 1.0, 1.0, 1.0))
        # Fill the y-upper half with material b.
        field.fill_box(((0.0, 2.0), (1.0, 2.0), (0.0, 2.0)),
                       Material("b", 3.0, 3.0, 3.0))
        dual = DualGeometry(grid)
        diag = conductance_diagonal(dual, field.sigma_cells())
        lengths = edge_lengths(grid)
        areas = dual.dual_facet_areas()
        sigma_effective = diag * lengths / areas
        # x-directed edges at y=1 (the interface) see the 50/50 mean of 1, 3.

        # First x-edge block is ordered (i, j, k); pick i=0, j=1, k=1:
        # flat index within x-edges = i + (nx-1) * (j + ny * k).
        nx, ny, nz = grid.shape
        interface_edge = 0 + (nx - 1) * (1 + ny * 1)
        assert np.isclose(sigma_effective[interface_edge], 2.0)
        # Edges fully inside material a keep sigma 1.
        bulk_edge = 0 + (nx - 1) * (0 + ny * 0)
        assert np.isclose(sigma_effective[bulk_edge], 1.0)


class TestSeriesResistance:
    def test_two_layer_bar_resistance(self):
        """Two materials in series along x: conductances combine in series.

        For a 2-cell bar (unit cross-section), each half-length L/2 with
        sigma_1 and sigma_2, the exact resistance is
        R = (L/2)/sigma_1 + (L/2)/sigma_2; the FIT edge conductances must
        reproduce it since grid planes align with the interface.
        """
        grid = TensorGrid([0.0, 1.0, 2.0], [0.0, 1.0], [0.0, 1.0])
        field = MaterialField(grid, Material("a", 4.0, 4.0, 1.0))
        field.fill_box(((1.0, 2.0), (0.0, 1.0), (0.0, 1.0)),
                       Material("b", 1.0, 1.0, 1.0))
        dual = DualGeometry(grid)
        diag = conductance_diagonal(dual, field.sigma_cells())
        n_ex = grid.num_edges_per_direction[0]
        nx = grid.shape[0]
        # x-edges are ordered i + (nx-1)(j + ny k): each (j, k) pair is a
        # parallel path of two edges in series.
        paths = diag[:n_ex].reshape(-1, nx - 1)
        total_conductance = np.sum(1.0 / np.sum(1.0 / paths, axis=1))
        assert np.isclose(1.0 / total_conductance, 1.25)


class TestTemperatureDependence:
    def test_copper_conductance_drops_when_hot(self, small_grid):
        field = MaterialField(small_grid, copper())
        dual = DualGeometry(small_grid)
        cold = np.full(small_grid.num_cells, 300.0)
        hot = np.full(small_grid.num_cells, 500.0)
        diag_cold = electrical_conductance_diagonal(dual, field, cold)
        diag_hot = electrical_conductance_diagonal(dual, field, hot)
        assert np.all(diag_hot < diag_cold)

    def test_epoxy_insensitive(self, small_grid):
        field = MaterialField(small_grid, epoxy_resin())
        dual = DualGeometry(small_grid)
        cold = np.full(small_grid.num_cells, 300.0)
        hot = np.full(small_grid.num_cells, 500.0)
        assert np.allclose(
            thermal_conductance_diagonal(dual, field, cold),
            thermal_conductance_diagonal(dual, field, hot),
        )
