"""Tests for the cell material assignment."""

import numpy as np
import pytest

from repro.errors import AssemblyError, MaterialError
from repro.fit.material_field import MaterialField
from repro.materials.library import copper, epoxy_resin, gold


class TestFill:
    def test_background_everywhere(self, small_grid):
        field = MaterialField(small_grid, epoxy_resin())
        assert field.volume_fractions()["epoxy_resin"] == pytest.approx(1.0)

    def test_fill_box_claims_cells(self, small_grid):
        field = MaterialField(small_grid, epoxy_resin())
        claimed = field.fill_box(
            ((0.0, 2.0e-3), (0.0, 1.0e-3), (0.0, 0.5e-3)), copper()
        )
        assert claimed == small_grid.num_cells // 2
        fractions = field.volume_fractions()
        assert fractions["copper"] == pytest.approx(0.5)
        assert fractions["epoxy_resin"] == pytest.approx(0.5)

    def test_fill_missing_box_claims_nothing(self, small_grid):
        field = MaterialField(small_grid, epoxy_resin())
        claimed = field.fill_box(
            ((10.0, 11.0), (10.0, 11.0), (10.0, 11.0)), copper()
        )
        assert claimed == 0

    def test_fill_cells_out_of_range(self, small_grid):
        field = MaterialField(small_grid, epoxy_resin())
        with pytest.raises(AssemblyError):
            field.fill_cells([10**6], copper())

    def test_same_material_not_duplicated(self, small_grid):
        field = MaterialField(small_grid, epoxy_resin())
        field.fill_cells([0], copper())
        field.fill_cells([1], copper())
        assert field.material_names().count("copper") == 1

    def test_rejects_non_material_background(self, small_grid):
        with pytest.raises(MaterialError):
            MaterialField(small_grid, "copper")


class TestEvaluation:
    def test_sigma_without_temperature(self, mixed_field):
        sigma = mixed_field.sigma_cells()
        assert sigma.shape == (mixed_field.grid.num_cells,)
        assert np.max(sigma) == pytest.approx(5.8e7)
        assert np.min(sigma) == pytest.approx(1.0e-6)

    def test_sigma_with_temperature(self, mixed_field):
        hot = np.full(mixed_field.grid.num_cells, 400.0)
        cold = np.full(mixed_field.grid.num_cells, 300.0)
        sigma_hot = mixed_field.sigma_cells(hot)
        sigma_cold = mixed_field.sigma_cells(cold)
        copper_mask = sigma_cold > 1.0
        assert np.all(sigma_hot[copper_mask] < sigma_cold[copper_mask])
        epoxy_mask = ~copper_mask
        assert np.allclose(sigma_hot[epoxy_mask], sigma_cold[epoxy_mask])

    def test_mixed_cell_temperatures(self, mixed_field):
        """Per-cell temperatures are routed to the right material."""
        temps = np.linspace(300.0, 500.0, mixed_field.grid.num_cells)
        sigma = mixed_field.sigma_cells(temps)
        assert sigma.shape == temps.shape

    def test_rhoc_positive(self, mixed_field):
        assert np.all(mixed_field.rhoc_cells() > 0.0)


class TestFrozen:
    def test_frozen_field(self, mixed_field):
        frozen = mixed_field.frozen(450.0)
        hot = np.full(mixed_field.grid.num_cells, 450.0)
        assert np.allclose(
            frozen.sigma_cells(), mixed_field.sigma_cells(hot)
        )
        # And the frozen field ignores temperature entirely.
        arbitrary = np.full(mixed_field.grid.num_cells, 900.0)
        assert np.allclose(
            frozen.sigma_cells(arbitrary), frozen.sigma_cells()
        )

    def test_frozen_preserves_assignment(self, mixed_field):
        frozen = mixed_field.frozen(450.0)
        assert np.array_equal(frozen.cell_material, mixed_field.cell_material)


class TestThreeMaterials:
    def test_three_way_split(self, small_grid):
        field = MaterialField(small_grid, epoxy_resin())
        field.fill_box(
            ((0.0, 1.0e-3), (0.0, 1.0e-3), (0.0, 1.0e-3)), copper()
        )
        field.fill_box(
            ((1.0e-3, 2.0e-3), (0.0, 1.0e-3), (0.0, 0.5e-3)), gold()
        )
        fractions = field.volume_fractions()
        assert set(fractions) == {"epoxy_resin", "copper", "gold"}
        assert sum(fractions.values()) == pytest.approx(1.0)
