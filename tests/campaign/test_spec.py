"""Tests for the declarative spec layer and its registries."""

import numpy as np
import pytest

from repro.campaign import CampaignSpec, ScenarioSpec
from repro.campaign.registry import (
    build_distribution,
    build_waveform,
    distribution_to_spec,
    get_problem,
    get_qoi,
    registered_problems,
    registered_qois,
    waveform_to_spec,
)
from repro.coupled.excitation import PulseTrainWaveform, StepWaveform
from repro.errors import CampaignError
from repro.uq.distributions import (
    NormalDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
)

from .conftest import make_toy_spec
from .toy_problem import PROBLEM_NAME


class TestScenarioSpec:
    def test_round_trip(self):
        scenario = ScenarioSpec(
            problem="date16",
            qoi="final",
            options={"resolution": "coarse"},
            waveform={"kind": "step", "t_on": 1.0, "t_off": 30.0,
                      "scale": 1.0},
        )
        rebuilt = ScenarioSpec.from_dict(scenario.to_dict())
        assert rebuilt.to_dict() == scenario.to_dict()

    def test_waveform_instance_is_serialized(self):
        scenario = ScenarioSpec(
            problem="date16", waveform=StepWaveform(t_on=2.0, t_off=10.0)
        )
        assert scenario.waveform == {
            "kind": "step", "t_on": 2.0, "t_off": 10.0, "scale": 1.0,
        }
        assert isinstance(scenario.build_waveform(), StepWaveform)

    def test_unknown_field_rejected(self):
        with pytest.raises(CampaignError):
            ScenarioSpec.from_dict({"problem": "date16", "nope": 1})

    def test_invalid_waveform_dict_fails_at_construction(self):
        """A typo'd kind must fail at spec load, not inside a worker."""
        with pytest.raises(CampaignError):
            ScenarioSpec(problem="date16", waveform={"kind": "stp"})
        with pytest.raises(CampaignError):
            ScenarioSpec(problem="date16",
                         waveform={"kind": "step", "freq": 50.0})

    def test_missing_problem_rejected(self):
        with pytest.raises(CampaignError):
            ScenarioSpec.from_dict({"qoi": "identity"})

    def test_build_model_composes_qoi(self):
        scenario = ScenarioSpec(
            problem=PROBLEM_NAME,
            qoi="test-first-entry",
            module="tests.campaign.toy_problem",
        )
        model = scenario.build_model()
        output = model(np.array([1.0, 2.0, 3.0, 4.0]))
        assert output.shape == (1,)
        assert output[0] == pytest.approx(10.0)

    def test_qoi_wrapper_forwards_evaluate_block(self):
        """A blocked raw model keeps its fast path through the QoI."""
        from repro.campaign import registry

        def build_blocked(scenario):
            def model(parameters):
                return np.asarray(parameters, dtype=float) * 2.0

            model.evaluate_block = lambda block: np.asarray(
                block, dtype=float
            ) * 2.0
            return model

        registry.register_problem("test-blocked-spec", build_blocked)
        scenario = ScenarioSpec(
            problem="test-blocked-spec", qoi="test-first-entry",
            module="tests.campaign.toy_problem",
        )
        model = scenario.build_model()
        block = np.arange(6.0).reshape(3, 2)
        outputs = model.evaluate_block(block)
        expected = np.stack([model(row) for row in block])
        assert np.array_equal(outputs, expected)
        assert outputs.shape == (3, 1)

    def test_identity_qoi_keeps_raw_blocked_model(self):
        from repro.campaign import registry

        def build_blocked(scenario):
            def model(parameters):
                return np.asarray(parameters, dtype=float)

            model.evaluate_block = lambda block: np.asarray(
                block, dtype=float
            )
            return model

        registry.register_problem("test-blocked-identity", build_blocked)
        scenario = ScenarioSpec(problem="test-blocked-identity")
        model = scenario.build_model()
        assert callable(model.evaluate_block)


class TestCampaignSpec:
    def test_json_round_trip(self, toy_spec):
        rebuilt = CampaignSpec.from_json(toy_spec.to_json())
        assert rebuilt.to_dict() == toy_spec.to_dict()

    def test_save_load(self, toy_spec, tmp_path):
        path = toy_spec.save(tmp_path / "spec.json")
        assert CampaignSpec.load(path).to_dict() == toy_spec.to_dict()

    def test_chunk_arithmetic(self):
        spec = make_toy_spec(num_samples=22, chunk_size=5)
        assert spec.num_chunks == 5
        assert list(spec.chunk_indices(0)) == [0, 1, 2, 3, 4]
        assert list(spec.chunk_indices(4)) == [20, 21]
        with pytest.raises(CampaignError):
            spec.chunk_indices(5)

    def test_validation(self):
        with pytest.raises(CampaignError):
            make_toy_spec(num_samples=0)
        with pytest.raises(CampaignError):
            make_toy_spec(chunk_size=0)
        with pytest.raises(CampaignError):
            make_toy_spec(sampler="not-a-sampler")

    def test_distribution_list_round_trip(self):
        spec = CampaignSpec(
            name="mixed",
            scenario=ScenarioSpec(problem=PROBLEM_NAME),
            distribution=[
                {"kind": "normal", "mu": 0.0, "sigma": 1.0},
                {"kind": "uniform", "lower": -1.0, "upper": 1.0},
            ],
            dimension=2,
            num_samples=4,
        )
        marginals = spec.build_distribution()
        assert isinstance(marginals[0], NormalDistribution)
        assert isinstance(marginals[1], UniformDistribution)

    def test_unknown_field_rejected(self, toy_spec):
        data = toy_spec.to_dict()
        data["surprise"] = True
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(data)


class TestRegistryConversions:
    def test_distribution_round_trip(self):
        original = TruncatedNormalDistribution(0.17, 0.048, 0.0, 0.9)
        spec = distribution_to_spec(original)
        rebuilt = build_distribution(spec)
        grid = np.linspace(0.01, 0.99, 17)
        assert np.allclose(rebuilt.ppf(grid), original.ppf(grid))

    def test_unknown_distribution_kind(self):
        with pytest.raises(CampaignError):
            build_distribution({"kind": "cauchy", "x0": 0.0})

    def test_waveform_round_trip(self):
        original = PulseTrainWaveform(period=4.0, duty=0.25, scale=2.0)
        rebuilt = build_waveform(waveform_to_spec(original))
        times = np.linspace(0.0, 12.0, 25)
        assert np.array_equal(rebuilt.sample(times), original.sample(times))

    def test_waveform_none_passes_through(self):
        assert build_waveform(None) is None
        assert waveform_to_spec(None) is None

    def test_unknown_waveform_field(self):
        with pytest.raises(CampaignError):
            build_waveform({"kind": "step", "frequency": 50.0})

    def test_builtins_are_registered(self):
        assert "date16" in registered_problems()
        assert {"identity", "final", "max"} <= set(registered_qois())
        assert callable(get_problem("date16"))
        assert callable(get_qoi("date16_end_temperatures"))

    def test_unknown_names_raise(self):
        with pytest.raises(CampaignError):
            get_problem("no-such-problem")
        with pytest.raises(CampaignError):
            get_qoi("no-such-qoi")
