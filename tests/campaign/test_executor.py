"""Tests for executor backends, the futures adapter and model resolution."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.campaign import (
    FuturesExecutor,
    ParallelExecutor,
    SerialExecutor,
    WorkChunk,
    make_executor,
    register_backend,
    registered_backends,
)
from repro.campaign.executor import resolve_model
from repro.campaign.runner import campaign_chunks
from repro.errors import CampaignError



def _module_model(parameters):
    """Picklable plain-callable model for executor.map tests."""
    p = np.asarray(parameters, dtype=float)
    return np.array([p.sum(), p.min()])


class TestResolveModel:
    def test_plain_callable_passes_through(self):
        assert resolve_model(_module_model) is _module_model

    def test_build_model_is_called(self, toy_spec):
        model = resolve_model(toy_spec.scenario)
        output = model(np.zeros(4))
        assert output.shape == (3,)

    def test_invalid_source_rejected(self):
        with pytest.raises(CampaignError):
            resolve_model(42)


class TestWorkChunk:
    def test_shape_validation(self):
        with pytest.raises(CampaignError):
            WorkChunk(0, [0, 1], np.zeros((3, 2)))
        with pytest.raises(CampaignError):
            WorkChunk(0, [0, 1], np.zeros(4))


class TestSerialExecutor:
    def test_map_preserves_order(self):
        parameters = np.arange(12.0).reshape(6, 2)
        outputs = list(SerialExecutor().map(_module_model, parameters))
        assert len(outputs) == 6
        assert outputs[3][0] == pytest.approx(6.0 + 7.0)

    def test_run_chunks(self, toy_spec):
        chunks = campaign_chunks(toy_spec)
        results = list(
            SerialExecutor().run_chunks(toy_spec.scenario, chunks)
        )
        assert [r.chunk_index for r in results] == list(
            range(toy_spec.num_chunks)
        )
        total = sum(r.outputs.shape[0] for r in results)
        assert total == toy_spec.num_samples


class TestParallelExecutor:
    def test_map_matches_serial(self):
        parameters = np.random.default_rng(0).random((8, 3))
        serial = SerialExecutor().map(_module_model, parameters)
        parallel = ParallelExecutor(num_workers=2).map(
            _module_model, parameters
        )
        assert all(
            np.array_equal(a, b) for a, b in zip(serial, parallel)
        )

    def test_run_chunks_covers_all_chunks(self, toy_spec):
        chunks = campaign_chunks(toy_spec)
        results = list(
            ParallelExecutor(num_workers=3).run_chunks(
                toy_spec.scenario, chunks
            )
        )
        assert sorted(r.chunk_index for r in results) == list(
            range(toy_spec.num_chunks)
        )

    def test_empty_chunk_list(self, toy_spec):
        results = list(
            ParallelExecutor(num_workers=2).run_chunks(toy_spec.scenario, [])
        )
        assert results == []

    def test_invalid_worker_count(self):
        with pytest.raises(CampaignError):
            ParallelExecutor(num_workers=0)


class TestMakeExecutor:
    def test_kinds(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)
        parallel = make_executor("parallel", num_workers=3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.num_workers == 3
        process = make_executor("process", num_workers=2)
        assert isinstance(process, ParallelExecutor)
        thread = make_executor("thread", num_workers=2)
        assert isinstance(thread, FuturesExecutor)
        assert thread.name == "thread"

    def test_instance_passes_through(self):
        executor = SerialExecutor()
        assert make_executor(executor) is executor

    def test_instance_with_workers_rejected(self):
        with pytest.raises(CampaignError):
            make_executor(SerialExecutor(), num_workers=2)

    def test_unknown_kind(self):
        with pytest.raises(CampaignError, match="registered"):
            make_executor("gpu")

    def test_serial_with_workers_is_an_error(self):
        """The --workers footgun: silently ignoring the flag is worse
        than refusing it."""
        with pytest.raises(CampaignError, match="serial"):
            make_executor("serial", num_workers=4)
        with pytest.raises(CampaignError):
            make_executor(None, num_workers=4)


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"serial", "process", "parallel", "thread"} <= set(
            registered_backends()
        )

    def test_custom_backend_registrable(self, toy_spec):
        @register_backend("test-backend")
        def _factory(num_workers=None):
            return SerialExecutor()

        try:
            assert isinstance(
                make_executor("test-backend"), SerialExecutor
            )
        finally:
            from repro.campaign import executor as executor_module

            executor_module._BACKENDS.pop("test-backend", None)


class TestFuturesExecutor:
    def test_run_chunks_matches_serial(self, toy_spec):
        chunks = campaign_chunks(toy_spec)
        serial = {
            r.chunk_index: r.outputs
            for r in SerialExecutor().run_chunks(toy_spec.scenario, chunks)
        }
        with ThreadPoolExecutor(max_workers=3) as pool:
            adapted = {
                r.chunk_index: r.outputs
                for r in FuturesExecutor(pool).run_chunks(
                    toy_spec.scenario, chunks
                )
            }
        assert serial.keys() == adapted.keys()
        for index in serial:
            assert np.array_equal(serial[index], adapted[index])

    def test_factory_lifecycle(self, toy_spec):
        """A zero-arg factory builds one pool per run and shuts it down."""
        created = []

        def factory():
            pool = ThreadPoolExecutor(max_workers=2)
            created.append(pool)
            return pool

        executor = FuturesExecutor(factory, build_per_worker=True)
        chunks = campaign_chunks(toy_spec)
        results = list(executor.run_chunks(toy_spec.scenario, chunks))
        assert len(results) == toy_spec.num_chunks
        assert len(created) == 1
        assert created[0]._shutdown

    def test_map_preserves_order(self):
        parameters = np.arange(12.0).reshape(6, 2)
        with ThreadPoolExecutor(max_workers=2) as pool:
            outputs = FuturesExecutor(pool).map(_module_model, parameters)
        assert len(outputs) == 6
        assert outputs[3][0] == pytest.approx(6.0 + 7.0)

    def test_process_pool_tasks_serialize(self, toy_spec):
        """The adapter's task must survive pickling backends: a raw
        ProcessPoolExecutor (no initializer hook) reproduces serial."""
        chunks = campaign_chunks(toy_spec)
        serial = {
            r.chunk_index: r.outputs
            for r in SerialExecutor().run_chunks(toy_spec.scenario, chunks)
        }
        with ProcessPoolExecutor(max_workers=2) as pool:
            adapted = {
                r.chunk_index: r.outputs
                for r in FuturesExecutor(pool).run_chunks(
                    toy_spec.scenario, chunks
                )
            }
        assert serial.keys() == adapted.keys()
        for index in serial:
            assert np.array_equal(serial[index], adapted[index])

    def test_rejects_non_executor(self):
        with pytest.raises(CampaignError):
            FuturesExecutor(42)

    def test_empty_chunk_list(self, toy_spec):
        with ThreadPoolExecutor(max_workers=2) as pool:
            assert list(
                FuturesExecutor(pool).run_chunks(toy_spec.scenario, [])
            ) == []


def _block_model(parameters):
    p = np.asarray(parameters, dtype=float)
    return np.array([p.sum()])


_block_model.evaluate_block = lambda block: np.asarray(
    block, dtype=float
).sum(axis=1, keepdims=True)


class TestBlockedChunkEvaluation:
    def _chunk(self, num_samples=4, capture=False):
        parameters = np.arange(num_samples * 2.0).reshape(num_samples, 2)
        return WorkChunk(0, np.arange(num_samples), parameters,
                         capture_telemetry=capture)

    def test_block_interface_detected(self):
        from repro.campaign.executor import evaluate_chunk

        chunk = self._chunk()
        result = evaluate_chunk(_block_model, chunk)
        expected = np.stack([_block_model(row) for row in chunk.parameters])
        assert np.array_equal(result.outputs, expected)

    def test_plain_callable_falls_back_to_row_loop(self):
        from repro.campaign.executor import evaluate_chunk

        chunk = self._chunk()
        result = evaluate_chunk(_module_model, chunk)
        assert result.outputs.shape == (4, 2)

    def test_blocked_and_loop_outputs_match(self):
        from repro.campaign.executor import evaluate_chunk

        chunk = self._chunk(num_samples=6)
        blocked = evaluate_chunk(_block_model, chunk)
        plain = evaluate_chunk(
            lambda row: _block_model(row), self._chunk(num_samples=6)
        )
        assert np.array_equal(blocked.outputs, plain.outputs)

    def test_wrong_block_output_count_rejected(self):
        from repro.campaign.executor import evaluate_chunk

        def bad(parameters):
            return np.array([0.0])

        bad.evaluate_block = lambda block: np.zeros((1, 1))
        with pytest.raises(CampaignError, match="outputs"):
            evaluate_chunk(bad, self._chunk(num_samples=3))

    def test_blocked_telemetry_record(self):
        from repro.campaign.executor import evaluate_chunk

        result = evaluate_chunk(_block_model, self._chunk(capture=True))
        record = result.telemetry
        assert record is not None
        counters = record["metrics"]["counters"]
        assert counters["campaign.blocked_solves"] == 4
        assert "campaign.loop_solves" not in counters
        assert record["metrics"]["gauges"]["campaign.batch_size"] == 4
        histogram = record["metrics"]["histograms"][
            "campaign.sample_amortized_s"
        ]
        assert histogram["count"] == 1
        spans = [e for e in record["events"] if e.get("event") == "span"]
        assert any(e["name"] == "block" for e in spans)
        assert not any(e["name"] == "sample" for e in spans)

    def test_loop_telemetry_record(self):
        from repro.campaign.executor import evaluate_chunk

        result = evaluate_chunk(_module_model, self._chunk(capture=True))
        counters = result.telemetry["metrics"]["counters"]
        assert counters["campaign.loop_solves"] == 4
        assert "campaign.blocked_solves" not in counters
        spans = [
            e for e in result.telemetry["events"]
            if e.get("event") == "span" and e["name"] == "sample"
        ]
        assert len(spans) == 4
