"""A deterministically failing registered problem for fault-injection
tests.

Importing this module registers ``"test-flaky"``.  The model computes
the same outputs as a clean run of itself without failure options, so a
campaign that retries/quarantines around the injected failures can be
compared bitwise against a failure-free reference campaign.

Failure injection is driven by scenario options:

``poison_sample``
    Global sample index whose evaluation *always* raises -- the
    permanently poisoned row that must end up quarantined.
``transient_sample``
    Global sample index that fails the first ``fail_attempts`` times it
    is evaluated, then succeeds -- the transient failure that a retry
    policy must heal.  Attempt counts are marker files under
    ``state_dir`` so they survive worker death and process boundaries.
``fail_attempts``
    How many evaluations of the transient sample fail (default 1).
``mode``
    ``"raise"`` (default) raises from the model; ``"kill"`` terminates
    the whole worker process with ``os._exit(1)`` -- the
    ``BrokenProcessPool`` path that forces a pool rebuild.
``slow_sample`` / ``slow_s``
    Global sample index whose first ``fail_attempts`` evaluations sleep
    ``slow_s`` seconds before answering -- the straggler that a chunk
    timeout must speculatively re-submit.
``state_dir``
    Directory for the attempt marker files (required with
    ``transient_sample`` / ``slow_sample``).

The model never sees global sample indices, only parameter rows, so the
target samples are identified by *recomputing* their deterministic
parameter rows (same counter-based seeding as the runner) and matching
exactly.  Options must therefore carry the campaign's ``seed`` and
``dimension`` (and the normal distribution's ``mu``/``sigma`` when not
standard).
"""

import os
import time

import numpy as np

from repro.campaign.registry import build_distribution, register_problem
from repro.campaign.runner import unit_sample
from repro.uq.sampling import map_to_distributions

PROBLEM_NAME = "test-flaky"
MODULE = "tests.campaign.flaky_problem"


def target_row(options, sample_index):
    """The exact parameter row of one global sample index."""
    distribution = build_distribution({
        "kind": "normal",
        "mu": float(options.get("mu", 0.0)),
        "sigma": float(options.get("sigma", 1.0)),
    })
    unit = unit_sample(
        int(options["seed"]), int(sample_index), int(options["dimension"])
    )
    return map_to_distributions(unit[None, :], distribution)[0]


def _count_attempt(state_dir, tag):
    """Persistently count one more evaluation attempt of ``tag``.

    One marker file per attempt, created with ``O_EXCL`` so concurrent
    attempts never collide; the count survives worker death because the
    marker lands on disk *before* the failure is raised.
    """
    attempt = 1
    while True:
        path = os.path.join(state_dir, f"{tag}.{attempt}")
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            attempt += 1
            continue
        return attempt


def build_flaky(scenario):
    options = scenario.options
    poison = options.get("poison_sample")
    transient = options.get("transient_sample")
    fail_attempts = int(options.get("fail_attempts", 1))
    mode = options.get("mode", "raise")
    state_dir = options.get("state_dir")
    slow = options.get("slow_sample")
    slow_s = float(options.get("slow_s", 0.0))
    poison_row = (
        None if poison is None else target_row(options, int(poison))
    )
    transient_row = (
        None if transient is None else target_row(options, int(transient))
    )
    slow_row = None if slow is None else target_row(options, int(slow))

    def model(parameters):
        p = np.asarray(parameters, dtype=float)
        if poison_row is not None and np.array_equal(p, poison_row):
            raise ValueError(f"poisoned sample {int(poison)}")
        if slow_row is not None and np.array_equal(p, slow_row):
            attempt = _count_attempt(state_dir, f"slow_{int(slow)}")
            if attempt <= fail_attempts:
                time.sleep(slow_s)
        if transient_row is not None and np.array_equal(p, transient_row):
            attempt = _count_attempt(
                state_dir, f"transient_{int(transient)}"
            )
            if attempt <= fail_attempts:
                if mode == "kill":
                    os._exit(1)
                raise RuntimeError(
                    f"transient failure of sample {int(transient)} "
                    f"(attempt {attempt})"
                )
        return np.array([p.sum(), p.max(), (p * p).sum()])

    return model


register_problem(PROBLEM_NAME, build_flaky)
