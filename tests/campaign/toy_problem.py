"""A cheap registered problem for campaign tests.

Importing this module registers ``"test-polynomial"``; campaign specs
reference it via ``ScenarioSpec(module="tests.campaign.toy_problem")``
so resolution also works inside worker processes.
"""

import numpy as np

from repro.campaign.registry import register_problem, register_qoi

PROBLEM_NAME = "test-polynomial"
MODULE = "tests.campaign.toy_problem"


def build_polynomial(scenario):
    """Deterministic vector model: cheap but parameter-sensitive."""
    coefficient = float(scenario.options.get("coefficient", 1.0))

    def model(parameters):
        p = np.asarray(parameters, dtype=float)
        return np.array([coefficient * p.sum(), p.max(), (p * p).sum()])

    return model


register_problem(PROBLEM_NAME, build_polynomial)
register_qoi("test-first-entry", lambda output: output[:1])
# Truly scalar QoI (0-d), matching what the legacy in-process
# sobol_indices driver evaluates -- the bit-for-bit equivalence anchor.
register_qoi("test-scalar-sum", lambda output: output[0])
# Vector QoI with a constant component, like the t=0 row of a
# temperature trace: the reduction must flag it, not crash.
register_qoi("test-constant-pad",
             lambda output: np.array([output[0], 42.0]))
