"""A cheap registered problem for campaign tests.

Importing this module registers ``"test-polynomial"``; campaign specs
reference it via ``ScenarioSpec(module="tests.campaign.toy_problem")``
so resolution also works inside worker processes.
"""

import numpy as np

from repro.campaign.registry import register_problem, register_qoi

PROBLEM_NAME = "test-polynomial"
MODULE = "tests.campaign.toy_problem"


def build_polynomial(scenario):
    """Deterministic vector model: cheap but parameter-sensitive."""
    coefficient = float(scenario.options.get("coefficient", 1.0))

    def model(parameters):
        p = np.asarray(parameters, dtype=float)
        return np.array([coefficient * p.sum(), p.max(), (p * p).sum()])

    return model


register_problem(PROBLEM_NAME, build_polynomial)
register_qoi("test-first-entry", lambda output: output[:1])
