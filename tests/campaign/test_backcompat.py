"""PR-2/PR-3 era specs and stores keep working through the unified path.

The checked-in fixtures (``tests/campaign/fixtures/``; see
``make_fixtures.py`` there) freeze the historic serialization: spec JSON
without a ``reducer`` field and an on-disk store without provenance or
reducer state.  They must load, resume, and report unchanged -- and
round-trip byte-identically, so new fields never leak into old formats.
"""

import json
import os
import shutil
import warnings

import numpy as np
import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignSpec,
    SensitivityResult,
    SensitivitySpec,
    resume_campaign,
    resume_sensitivity_campaign,
    run_campaign,
    run_sensitivity_campaign,
)
from repro.campaign.sensitivity import _reset_deprecation_warnings

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture(name):
    return os.path.join(FIXTURES, name)


class TestSpecCompatibility:
    def test_pr1_campaign_spec_round_trips_byte_identically(self):
        path = _fixture("pr1_campaign_spec.json")
        spec = CampaignSpec.load(path)
        assert type(spec) is CampaignSpec
        assert spec.reducer is None
        with open(path, "r", encoding="utf-8") as handle:
            on_disk = handle.read()
        assert spec.to_json() + "\n" == on_disk

    def test_pr2_sensitivity_spec_round_trips_byte_identically(self):
        path = _fixture("pr2_sensitivity_spec.json")
        spec = CampaignSpec.load(path)
        assert isinstance(spec, SensitivitySpec)
        assert spec.reducer is None
        assert not spec.second_order and not spec.groups
        with open(path, "r", encoding="utf-8") as handle:
            on_disk = handle.read()
        assert spec.to_json() + "\n" == on_disk

    def test_pr3_second_order_spec_round_trips_byte_identically(self):
        path = _fixture("pr3_sensitivity_spec.json")
        spec = CampaignSpec.load(path)
        assert isinstance(spec, SensitivitySpec)
        assert spec.second_order
        assert spec.groups == [(0, 1), (2, 3)]
        with open(path, "r", encoding="utf-8") as handle:
            on_disk = handle.read()
        assert spec.to_json() + "\n" == on_disk

    def test_pr1_spec_runs_through_unified_path(self):
        spec = CampaignSpec.load(_fixture("pr1_campaign_spec.json"))
        result = run_campaign(spec)
        assert result.num_samples == spec.num_samples

    def test_pr2_spec_runs_through_unified_path(self):
        spec = CampaignSpec.load(_fixture("pr2_sensitivity_spec.json"))
        result = run_campaign(spec)
        assert isinstance(result, SensitivityResult)
        assert result.interval is not None


class TestStoreCompatibility:
    @pytest.fixture
    def pr3_store(self, tmp_path):
        """A writable copy of the checked-in partial PR-3 store."""
        target = tmp_path / "pr3_store"
        shutil.copytree(_fixture("pr3_store"), target)
        return ArtifactStore(str(target))

    def test_manifest_without_provenance_loads(self, pr3_store):
        assert pr3_store.read_provenance() is None
        spec = pr3_store.load_spec()
        assert isinstance(spec, SensitivitySpec)
        assert pr3_store.read_reducer_state() is None

    def test_resume_completes_and_matches_fresh_run(self, pr3_store):
        """Resuming the historic store through the unified path finishes
        only the missing chunks and reproduces a from-scratch run of its
        pinned spec bit for bit."""
        spec = pr3_store.load_spec()
        fresh = run_campaign(spec)
        completed_before = set(pr3_store.completed_chunks())
        resumed = resume_campaign(pr3_store)
        assert isinstance(resumed, SensitivityResult)
        expected = sum(
            len(spec.chunk_indices(index))
            for index in range(spec.num_chunks)
            if index not in completed_before
        )
        assert resumed.num_evaluated == expected
        assert pr3_store.completed_chunks() == list(range(spec.num_chunks))
        assert np.array_equal(resumed.first_order, fresh.first_order)
        assert np.array_equal(resumed.total, fresh.total)
        assert np.array_equal(resumed.second_order.interaction,
                              fresh.second_order.interaction)
        assert np.array_equal(resumed.group_indices.total,
                              fresh.group_indices.total)
        assert np.array_equal(resumed.interval.total_lower,
                              fresh.interval.total_lower)

    def test_report_of_resumed_store(self, pr3_store, capsys):
        from repro.campaign.cli import main

        assert main(["resume", pr3_store.path, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["report", pr3_store.path]) == 0
        out = capsys.readouterr().out
        assert "Sobol indices" in out
        # The historic manifest carries no provenance record and the
        # report must not invent one.
        assert "provenance:" not in out

    def test_manifest_bytes_untouched_by_resume(self, pr3_store):
        with open(pr3_store.manifest_path, "rb") as handle:
            before = handle.read()
        resume_campaign(pr3_store)
        with open(pr3_store.manifest_path, "rb") as handle:
            after = handle.read()
        assert before == after


class TestDeprecationShims:
    @pytest.fixture(autouse=True)
    def fresh_warning_state(self):
        _reset_deprecation_warnings()
        yield
        _reset_deprecation_warnings()

    def test_run_shim_warns_exactly_once(self):
        spec = CampaignSpec.load(_fixture("pr2_sensitivity_spec.json"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = run_sensitivity_campaign(spec, num_bootstrap=0)
            second = run_sensitivity_campaign(spec, num_bootstrap=0)
        deprecations = [
            entry for entry in caught
            if issubclass(entry.category, DeprecationWarning)
            and "run_sensitivity_campaign" in str(entry.message)
        ]
        assert len(deprecations) == 1
        assert np.array_equal(first.first_order, second.first_order)

    def test_resume_shim_warns_exactly_once(self, tmp_path):
        spec = CampaignSpec.load(_fixture("pr2_sensitivity_spec.json"))
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resume_sensitivity_campaign(store)
            resume_sensitivity_campaign(store)
        deprecations = [
            entry for entry in caught
            if issubclass(entry.category, DeprecationWarning)
            and "resume_sensitivity_campaign" in str(entry.message)
        ]
        assert len(deprecations) == 1

    def test_shims_reproduce_unified_path_bitwise(self):
        spec = CampaignSpec.load(_fixture("pr2_sensitivity_spec.json"))
        shim = run_sensitivity_campaign(spec)
        unified = run_campaign(spec)
        assert np.array_equal(shim.first_order, unified.first_order)
        assert np.array_equal(shim.total, unified.total)
        assert np.array_equal(shim.interval.first_order_upper,
                              unified.interval.first_order_upper)
