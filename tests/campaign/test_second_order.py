"""Tests for second-order / grouped Sobol campaigns and the streaming
reduction: extended plan layout, spec round-trips (including legacy
PR-2 specs), executor/chunking/kill-resume bitwise equivalence and the
CLI flags."""

import json

import numpy as np
import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignSpec,
    ParallelExecutor,
    SaltelliPlan,
    SensitivitySpec,
    SerialExecutor,
    resume_sensitivity_campaign,
    run_sensitivity_campaign,
)
from repro.campaign.executor import evaluate_chunk, resolve_model
from repro.campaign.runner import campaign_chunks, campaign_parameters
from repro.errors import CampaignError
from repro.uq.sensitivity import all_pairs

from .conftest import make_toy_sensitivity_spec

GROUPS = [[0, 1], [2, 3]]


def make_extended_spec(num_base_samples=8, chunk_size=7, **overrides):
    settings = dict(
        num_base_samples=num_base_samples,
        chunk_size=chunk_size,
        second_order=True,
        groups=GROUPS,
        qoi="identity",
    )
    settings.update(overrides)
    return make_toy_sensitivity_spec(**settings)


class TestExtendedPlanLayout:
    def test_block_counts_and_labels(self):
        plan = SaltelliPlan(8, 3, second_order=True, groups=[(0, 2)])
        assert plan.num_pairs == 3
        assert plan.num_groups == 1
        assert plan.num_blocks == 2 + 3 + 3 + 1
        assert plan.num_evaluations == 8 * 9
        assert plan.block_label(0) == "A"
        assert plan.block_label(4) == "AB_2"
        assert plan.block_label(5) == "AB_0_1"
        assert plan.block_label(7) == "AB_1_2"
        assert plan.block_label(8) == "G0"
        assert plan.pairs == all_pairs(3)

    def test_swap_columns(self):
        plan = SaltelliPlan(4, 3, second_order=True, groups=[(0, 1, 2)])
        assert plan.swap_columns(0) == ()
        assert plan.swap_columns(1) == (0, 1, 2)
        assert plan.swap_columns(2) == (0,)
        assert plan.swap_columns(5) == (0, 1)
        assert plan.swap_columns(8) == (0, 1, 2)

    def test_every_index_covered_once(self):
        plan = SaltelliPlan(4, 2, second_order=True, groups=[(0, 1)])
        covered = [g for block in range(plan.num_blocks)
                   for g in plan.block_range(block)]
        assert sorted(covered) == list(range(plan.num_evaluations))

    def test_compose_pair_and_group_blocks(self):
        m, d = 6, 3
        base = np.arange(2 * m * d, dtype=float).reshape(2 * m, d)
        a, b = base[:m], base[m:]
        plan = SaltelliPlan(m, d, second_order=True, groups=[(1, 2)])
        pair_block = plan.compose(
            base, plan.block_range(2 + d)  # AB_01
        )
        assert np.array_equal(pair_block[:, 0], b[:, 0])
        assert np.array_equal(pair_block[:, 1], b[:, 1])
        assert np.array_equal(pair_block[:, 2], a[:, 2])
        group_block = plan.compose(
            base, plan.block_range(plan.num_blocks - 1)
        )
        assert np.array_equal(group_block[:, 0], a[:, 0])
        assert np.array_equal(group_block[:, 1:], b[:, 1:])

    def test_plan_without_extensions_unchanged(self):
        """No extensions -> the original M (d + 2) layout and dict."""
        plan = SaltelliPlan(8, 3)
        assert plan.num_blocks == 5
        assert plan.to_dict() == {"num_base_samples": 8, "dimension": 3}

    def test_plan_dict_roundtrip(self):
        plan = SaltelliPlan(8, 4, second_order=True, groups=[(0, 3)])
        loaded = SaltelliPlan.from_dict(plan.to_dict())
        assert loaded.to_dict() == plan.to_dict()
        assert loaded.pairs == plan.pairs
        assert loaded.groups == plan.groups

    def test_invalid_groups_rejected(self):
        with pytest.raises(CampaignError):
            SaltelliPlan(4, 3, groups=[(0, 5)])
        with pytest.raises(CampaignError):
            SaltelliPlan(4, 3, groups=[()])
        with pytest.raises(CampaignError):
            SaltelliPlan(4, 3, groups=[(1, 1)])

    def test_non_integer_group_entries_rejected_cleanly(self):
        """Hand-written spec JSON with bad group entries must fail with
        the spec-level error, not a raw ValueError or a silently
        truncated float."""
        with pytest.raises(CampaignError, match="not an integer"):
            SaltelliPlan(4, 3, groups=[["x", 1]])
        with pytest.raises(CampaignError, match="not an integer"):
            SaltelliPlan(4, 3, groups=[[0, 1.5]])
        data = make_extended_spec().to_dict()
        data["groups"] = [[0, 1.5]]
        with pytest.raises(CampaignError, match="not an integer"):
            CampaignSpec.from_dict(data)


class TestSpecRoundTrip:
    def test_legacy_spec_dict_loads_unchanged(self, toy_sensitivity_spec):
        """A PR-2 spec dict (no second-order/group keys) still loads,
        runs, and re-serializes without the new keys."""
        legacy = toy_sensitivity_spec.to_dict()
        assert "second_order" not in legacy
        assert "groups" not in legacy
        loaded = CampaignSpec.from_dict(json.loads(json.dumps(legacy)))
        assert isinstance(loaded, SensitivitySpec)
        assert loaded.to_dict() == legacy
        assert loaded.plan.num_blocks == loaded.dimension + 2
        result = run_sensitivity_campaign(loaded, num_bootstrap=0)
        assert result.second_order is None
        assert result.group_indices is None

    def test_extended_spec_roundtrip(self):
        spec = make_extended_spec()
        data = spec.to_dict()
        assert data["second_order"] is True
        assert data["groups"] == GROUPS
        loaded = CampaignSpec.from_json(spec.to_json())
        assert isinstance(loaded, SensitivitySpec)
        assert loaded.to_dict() == data
        assert loaded.plan.pairs == all_pairs(4)
        assert loaded.num_samples == 8 * (2 + 4 + 6 + 2)

    def test_extended_spec_survives_store_reload(self, tmp_path):
        spec = make_extended_spec()
        store = ArtifactStore(tmp_path / "store").initialize(spec)
        reloaded = store.load_spec()
        assert isinstance(reloaded, SensitivitySpec)
        assert reloaded.to_dict() == spec.to_dict()
        assert reloaded.groups == spec.groups
        # The pinned-spec equality check still accepts the spec.
        store.initialize(spec)

    def test_evaluation_budget_includes_extensions(self):
        spec = make_extended_spec()
        plan = spec.plan
        assert plan.num_pairs == 6
        assert plan.num_groups == 2
        assert spec.num_samples == plan.num_evaluations

    def test_unit_points_partition_independent(self):
        for sampler in ("random", "counter", "halton"):
            spec = make_extended_spec(sampler=sampler)
            full = campaign_parameters(spec)
            picks = [0, 17, 33, spec.num_samples - 1]
            subset = campaign_parameters(spec, picks)
            assert np.array_equal(subset, full[picks])

    def test_counter_sampler_swaps_pair_columns(self):
        spec = make_extended_spec(sampler="counter")
        full = campaign_parameters(spec)
        m, d = spec.num_base_samples, spec.dimension
        a = full[:m]
        b = full[m:2 * m]
        # First pair block AB_01 sits right after the AB_i blocks.
        block = full[(2 + d) * m:(3 + d) * m]
        assert np.array_equal(block[:, :2], b[:, :2])
        assert np.array_equal(block[:, 2:], a[:, 2:])
        # Last group block swaps columns 2 and 3.
        group_block = full[-m:]
        assert np.array_equal(group_block[:, 2:], b[:, 2:])
        assert np.array_equal(group_block[:, :2], a[:, :2])


class TestStreamingCampaignEquivalence:
    def test_streaming_matches_in_memory_bitwise(self):
        spec = make_extended_spec()
        in_memory = run_sensitivity_campaign(
            spec, num_bootstrap=0, streaming=False
        )
        streamed = run_sensitivity_campaign(
            spec, num_bootstrap=0, streaming=True
        )
        assert streamed.streamed and not in_memory.streamed
        _assert_results_equal(streamed, in_memory)

    @pytest.mark.parametrize("chunk_size", (1, 7, 64, None))
    def test_chunk_sizes_bitwise(self, chunk_size):
        """Chunk sizes 1, 7, 64 and M(d+2+p+g) (one chunk) all match."""
        reference = run_sensitivity_campaign(
            make_extended_spec(chunk_size=112), num_bootstrap=0
        )
        spec = make_extended_spec(
            chunk_size=chunk_size if chunk_size else 112
        )
        result = run_sensitivity_campaign(spec, num_bootstrap=0)
        _assert_results_equal(result, reference)

    @pytest.mark.parametrize("workers", (1, 4))
    def test_worker_counts_bitwise(self, workers):
        spec = make_extended_spec()
        serial = run_sensitivity_campaign(
            spec, executor=SerialExecutor(), num_bootstrap=0
        )
        parallel = run_sensitivity_campaign(
            spec, executor=ParallelExecutor(num_workers=workers),
            num_bootstrap=0,
        )
        _assert_results_equal(parallel, serial)

    def test_kill_resume_at_every_chunk_boundary(self, tmp_path):
        """Killing after k completed chunks and resuming (streaming)
        reproduces the uninterrupted reduction bit for bit, for every
        k."""
        spec = make_extended_spec()
        uninterrupted = run_sensitivity_campaign(spec, num_bootstrap=0)
        model = resolve_model(spec.scenario)
        for completed in range(spec.num_chunks + 1):
            store = ArtifactStore(
                tmp_path / f"store-{completed}"
            ).initialize(spec)
            for chunk in campaign_chunks(spec, range(completed)):
                store.write_chunk(evaluate_chunk(model, chunk))
            resumed = resume_sensitivity_campaign(
                store, num_bootstrap=0, streaming=True
            )
            expected_remaining = spec.num_samples - min(
                completed * spec.chunk_size, spec.num_samples
            )
            assert resumed.num_evaluated == expected_remaining
            _assert_results_equal(resumed, uninterrupted)

    def test_bootstrap_intervals_cover_extensions_and_resume(
            self, tmp_path):
        spec = make_extended_spec()
        store = ArtifactStore(tmp_path / "store")
        result = run_sensitivity_campaign(spec, store=store,
                                          num_bootstrap=25)
        interval = result.interval
        assert interval.has_second_order
        assert interval.has_groups
        assert interval.second_order_lower.shape == \
            result.second_order.interaction.shape
        assert interval.group_total_upper.shape == \
            result.group_indices.total.shape
        resumed = resume_sensitivity_campaign(store, num_bootstrap=25)
        assert np.array_equal(interval.second_order_lower,
                              resumed.interval.second_order_lower,
                              equal_nan=True)
        assert np.array_equal(interval.group_total_upper,
                              resumed.interval.group_total_upper,
                              equal_nan=True)

    def test_streaming_with_bootstrap_rejected(self):
        spec = make_extended_spec()
        with pytest.raises(CampaignError, match="streaming"):
            run_sensitivity_campaign(spec, num_bootstrap=10,
                                     streaming=True)

    def test_default_streams_only_without_bootstrap(self):
        spec = make_extended_spec()
        assert run_sensitivity_campaign(spec, num_bootstrap=0).streamed
        assert not run_sensitivity_campaign(spec, num_bootstrap=5).streamed

    @pytest.mark.filterwarnings("error")
    def test_zero_variance_pair_components_flagged_not_warned(self):
        """The toy constant-pad QoI exercises the NaN contract through
        the full campaign: pair/group indices report NaN for the
        constant component and no division warning escapes."""
        spec = make_extended_spec(qoi="test-constant-pad")
        result = run_sensitivity_campaign(spec, num_bootstrap=10)
        assert np.all(np.isnan(result.second_order.closed[:, 1]))
        assert np.all(np.isnan(result.second_order.interaction[:, 1]))
        assert np.all(np.isnan(result.group_indices.total[:, 1]))
        assert np.all(np.isfinite(result.second_order.closed[:, 0]))
        assert np.all(
            np.isnan(result.interval.second_order_lower[:, 1])
        )


class TestExtendedSummaryAndReport:
    def test_summary_carries_extension_tables(self):
        spec = make_extended_spec()
        result = run_sensitivity_campaign(spec, num_bootstrap=10)
        summary = result.summary()
        assert summary["pairs"] == [list(p) for p in all_pairs(4)]
        assert len(summary["second_order"]) == 6
        assert len(summary["closed_second_order"]) == 6
        assert summary["groups"] == GROUPS
        assert len(summary["group_total"]) == 2
        assert "second_order_lower" in summary
        assert "group_total_upper" in summary
        assert summary["interaction_ranking"][0] == int(np.argmax(
            np.asarray(summary["second_order"])
        ))
        # Everything JSON-serializable (the store summary contract).
        json.dumps(summary)

    def test_report_renders_interaction_and_group_tables(self):
        from repro.reporting.sensitivity import format_sensitivity_summary

        spec = make_extended_spec()
        result = run_sensitivity_campaign(spec, num_bootstrap=10)
        text = format_sensitivity_summary(result.summary())
        assert "Pair interactions" in text
        assert "S_ij" in text
        assert "Factor groups" in text
        assert "{x02,x03}" in text
        assert "Pair blocks AB_ij" in text

    def test_report_without_extensions_unchanged(self,
                                                 toy_sensitivity_spec):
        from repro.reporting.sensitivity import format_sensitivity_summary

        result = run_sensitivity_campaign(toy_sensitivity_spec,
                                          num_bootstrap=0)
        text = format_sensitivity_summary(result.summary())
        assert "Pair interactions" not in text
        assert "Factor groups" not in text


class TestSecondOrderCli:
    def test_sobol_spec_flags(self, tmp_path, capsys):
        from repro.campaign.cli import main

        out = tmp_path / "d16.json"
        assert main(["sobol", "spec", "date16", "--samples", "4",
                     "--second-order", "--groups", "0,1,2,3,4,5;6,7,8,9,10,11",
                     "-o", str(out)]) == 0
        loaded = CampaignSpec.load(out)
        assert isinstance(loaded, SensitivitySpec)
        assert loaded.second_order
        assert loaded.groups == [tuple(range(6)), tuple(range(6, 12))]
        assert loaded.num_samples == 4 * (2 + 12 + 66 + 2)
        assert "wrote" in capsys.readouterr().out

    def test_sobol_spec_bad_groups(self, tmp_path, capsys):
        from repro.campaign.cli import main

        assert main(["sobol", "spec", "date16", "--groups", "0,x",
                     "-o", str(tmp_path / "x.json")]) == 1
        assert "invalid factor group" in capsys.readouterr().err

    def test_sobol_run_streaming_flag(self, tmp_path, capsys):
        from repro.campaign.cli import main

        spec = make_extended_spec()
        path = str(spec.save(tmp_path / "sens.json"))
        store = str(tmp_path / "store")
        assert main(["sobol", "run", path, "--store", store,
                     "--streaming", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "Pair interactions" in output
        assert "Factor groups" in output
        # --streaming implied --bootstrap 0: no CI columns.
        assert "CI" not in output
        assert main(["sobol", "report", store]) == 0
        assert capsys.readouterr().out == output

    def test_sobol_run_streaming_with_bootstrap_rejected(
            self, tmp_path, capsys):
        from repro.campaign.cli import main

        path = str(make_extended_spec().save(tmp_path / "sens.json"))
        assert main(["sobol", "run", path, "--streaming",
                     "--bootstrap", "10", "--quiet"]) == 1
        assert "streaming" in capsys.readouterr().err

    def test_sobol_resume_streaming(self, tmp_path, capsys):
        from repro.campaign.cli import main

        spec = make_extended_spec()
        store = ArtifactStore(str(tmp_path / "store")).initialize(spec)
        model = resolve_model(spec.scenario)
        for chunk in campaign_chunks(spec, [0, 2]):
            store.write_chunk(evaluate_chunk(model, chunk))
        assert main(["sobol", "resume", store.path, "--streaming",
                     "--quiet"]) == 0
        assert store.completed_chunks() == list(range(spec.num_chunks))
        assert "Pair interactions" in capsys.readouterr().out


def _assert_results_equal(result, reference):
    assert np.array_equal(result.first_order, reference.first_order,
                          equal_nan=True)
    assert np.array_equal(result.total, reference.total, equal_nan=True)
    assert np.array_equal(np.asarray(result.variance),
                          np.asarray(reference.variance))
    assert np.array_equal(result.second_order.closed,
                          reference.second_order.closed, equal_nan=True)
    assert np.array_equal(result.second_order.interaction,
                          reference.second_order.interaction,
                          equal_nan=True)
    assert np.array_equal(result.second_order.total,
                          reference.second_order.total, equal_nan=True)
    assert np.array_equal(result.group_indices.closed,
                          reference.group_indices.closed, equal_nan=True)
    assert np.array_equal(result.group_indices.total,
                          reference.group_indices.total, equal_nan=True)
    assert np.array_equal(result.parameters, reference.parameters)
