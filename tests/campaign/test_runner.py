"""Tests for deterministic sampling, execution, reduction and resume."""

import numpy as np
import pytest

from repro.campaign import (
    ArtifactStore,
    ParallelExecutor,
    SerialExecutor,
    resume_campaign,
    run_campaign,
)
from repro.campaign.executor import evaluate_chunk, resolve_model
from repro.campaign.runner import (
    campaign_chunks,
    campaign_parameters,
    unit_sample,
)
from repro.errors import CampaignError

from .conftest import make_toy_spec


class TestDeterministicSampling:
    def test_unit_sample_is_reproducible(self):
        first = unit_sample(7, 13, 5)
        second = unit_sample(7, 13, 5)
        assert np.array_equal(first, second)
        assert not np.array_equal(first, unit_sample(7, 14, 5))
        assert not np.array_equal(first, unit_sample(8, 13, 5))

    def test_parameters_independent_of_partition(self, toy_spec):
        """Row i is the same whether generated alone or in the full set."""
        full = campaign_parameters(toy_spec)
        assert full.shape == (toy_spec.num_samples, toy_spec.dimension)
        subset = campaign_parameters(toy_spec, [3, 11, 17])
        assert np.array_equal(subset, full[[3, 11, 17]])

    def test_stream_sampler_slicing_is_consistent(self):
        spec = make_toy_spec(sampler="lhs")
        full = campaign_parameters(spec)
        subset = campaign_parameters(spec, [0, 5, 9])
        assert np.array_equal(subset, full[[0, 5, 9]])

    def test_out_of_range_indices_rejected(self, toy_spec):
        with pytest.raises(CampaignError):
            campaign_parameters(toy_spec, [toy_spec.num_samples])

    def test_chunks_cover_every_sample_once(self, toy_spec):
        chunks = campaign_chunks(toy_spec)
        covered = np.concatenate([c.indices for c in chunks])
        assert np.array_equal(np.sort(covered),
                              np.arange(toy_spec.num_samples))


class TestSeedSensitivity:
    """Two campaigns differing only in their seed must differ -- for
    EVERY sampler kind (the halton entry used to drop the seed
    entirely, and sobol's ``seed or 0`` collapsed None and 0)."""

    ALL_SAMPLERS = ("counter", "random", "lhs", "halton", "sobol")

    @pytest.mark.parametrize("sampler", ALL_SAMPLERS)
    def test_different_seeds_give_different_parameters(self, sampler):
        first = campaign_parameters(make_toy_spec(seed=1, sampler=sampler))
        second = campaign_parameters(make_toy_spec(seed=2, sampler=sampler))
        assert first.shape == second.shape
        assert not np.array_equal(first, second)

    @pytest.mark.parametrize("sampler", ALL_SAMPLERS)
    def test_same_seed_reproduces_parameters(self, sampler):
        first = campaign_parameters(make_toy_spec(seed=5, sampler=sampler))
        second = campaign_parameters(make_toy_spec(seed=5, sampler=sampler))
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("sampler", ALL_SAMPLERS)
    def test_sensitivity_campaigns_are_seed_sensitive(self, sampler):
        from .conftest import make_toy_sensitivity_spec

        first = campaign_parameters(
            make_toy_sensitivity_spec(seed=1, sampler=sampler)
        )
        second = campaign_parameters(
            make_toy_sensitivity_spec(seed=2, sampler=sampler)
        )
        assert not np.array_equal(first, second)


class TestRunCampaign:
    def test_in_memory_run_matches_direct_loop(self, toy_spec):
        result = run_campaign(toy_spec)
        model = resolve_model(toy_spec.scenario)
        parameters = campaign_parameters(toy_spec)
        outputs = np.stack([model(row) for row in parameters])
        assert result.num_samples == toy_spec.num_samples
        assert np.allclose(result.mean, outputs.mean(axis=0),
                           rtol=0, atol=1e-12)
        assert np.allclose(result.std, outputs.std(axis=0, ddof=1),
                           rtol=0, atol=1e-12)
        assert np.array_equal(result.parameters, parameters)

    def test_serial_and_parallel_are_bit_identical(self, toy_spec):
        serial = run_campaign(toy_spec, executor=SerialExecutor())
        parallel = run_campaign(
            toy_spec, executor=ParallelExecutor(num_workers=4)
        )
        assert np.array_equal(serial.mean, parallel.mean)
        assert np.array_equal(serial.std, parallel.std)
        assert np.array_equal(serial.minimum, parallel.minimum)
        assert np.array_equal(serial.maximum, parallel.maximum)

    def test_progress_callback(self, toy_spec):
        seen = []
        run_campaign(toy_spec, progress=lambda done, total:
                     seen.append((done, total)))
        assert seen[-1] == (toy_spec.num_chunks, toy_spec.num_chunks)
        assert len(seen) == toy_spec.num_chunks

    def test_store_checkpoints_every_chunk(self, toy_spec, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        result = run_campaign(toy_spec, store=store)
        assert store.completed_chunks() == list(range(toy_spec.num_chunks))
        assert store.read_summary() == result.summary()

    def test_error_summary_is_eq6(self, toy_spec):
        result = run_campaign(toy_spec)
        assert np.allclose(
            result.error(),
            result.std / np.sqrt(result.num_samples),
            rtol=0, atol=1e-15,
        )

    def test_invalid_spec_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign({"name": "nope"})


class TestResume:
    def test_resume_reproduces_uninterrupted_run(self, toy_spec, tmp_path):
        """The acceptance property: kill -> resume == one uninterrupted run."""
        uninterrupted = run_campaign(toy_spec)

        # Simulate a killed run: only chunks 0 and 2 were checkpointed.
        store = ArtifactStore(tmp_path / "store").initialize(toy_spec)
        model = resolve_model(toy_spec.scenario)
        for chunk in campaign_chunks(toy_spec, [0, 2]):
            store.write_chunk(evaluate_chunk(model, chunk))

        resumed = resume_campaign(
            store, executor=ParallelExecutor(num_workers=2)
        )
        expected_evaluated = toy_spec.num_samples - sum(
            len(toy_spec.chunk_indices(i)) for i in (0, 2)
        )
        assert resumed.num_evaluated == expected_evaluated
        assert np.array_equal(resumed.mean, uninterrupted.mean)
        assert np.array_equal(resumed.std, uninterrupted.std)
        assert np.array_equal(resumed.parameters, uninterrupted.parameters)

    def test_resume_of_complete_store_recomputes_nothing(self, toy_spec,
                                                         tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = run_campaign(toy_spec, store=store)
        again = resume_campaign(store)
        assert again.num_evaluated == 0
        assert np.array_equal(first.mean, again.mean)
        assert np.array_equal(first.std, again.std)

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(CampaignError):
            resume_campaign(tmp_path / "empty")


class TestExecutorInjectionIntoUQ:
    def test_monte_carlo_with_executor_matches_inline(self):
        from repro.uq.distributions import NormalDistribution
        from repro.uq.monte_carlo import MonteCarloStudy

        def model(parameters):
            return np.array([np.sum(parameters ** 2)])

        study = MonteCarloStudy(model, NormalDistribution(0.0, 1.0), 3)
        inline = study.run(16, seed=5)
        injected = study.run(16, seed=5, executor=SerialExecutor())
        assert np.array_equal(inline.mean, injected.mean)
        assert np.array_equal(inline.std, injected.std)

    def test_collocation_with_executor_matches_inline(self):
        from repro.uq.collocation import StochasticCollocation
        from repro.uq.distributions import NormalDistribution

        def model(parameters):
            return np.array([np.sum(parameters) + np.prod(parameters)])

        collocation = StochasticCollocation(
            model, NormalDistribution(0.0, 1.0), 3, level=2
        )
        inline = collocation.run()
        injected = collocation.run(executor=SerialExecutor())
        assert np.array_equal(inline.mean, injected.mean)
        assert np.array_equal(inline.std, injected.std)
