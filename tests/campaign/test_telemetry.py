"""Campaign telemetry: persisted event logs, kill/resume, progress."""

import os

import numpy as np
import pytest

from repro import telemetry
from repro.campaign import (
    ArtifactStore,
    ParallelExecutor,
    SerialExecutor,
    resume_campaign,
    run_campaign,
)
from repro.telemetry import MetricsRegistry, validate_events

from .conftest import make_toy_spec


@pytest.fixture
def restore_enabled_flag():
    was_enabled = telemetry.enabled()
    yield
    telemetry.enable() if was_enabled else telemetry.disable()


def _event_signature(events):
    """Timing-free structural signature of a chunk's event list."""
    signature = []
    for event in events:
        if event["event"] == "chunk":
            signature.append(("chunk", event["chunk"], event["samples"]))
        elif event["event"] == "span":
            attrs = tuple(sorted((event.get("attrs") or {}).items()))
            signature.append(("span", event["name"], event["parent"],
                              attrs))
        else:
            signature.append((event["event"],))
    return signature


def _store_signatures(store):
    data = store.read_telemetry()
    return {index: _event_signature(events)
            for index, events in data["chunks"].items()}


class TestPersistedTelemetry:
    def test_serial_run_populates_store(self, toy_spec, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run_campaign(toy_spec, store=store, telemetry=True)

        assert store.telemetry_chunks() == list(range(toy_spec.num_chunks))
        data = store.read_telemetry()
        for index, events in data["chunks"].items():
            validate_events(events)
            head = events[0]
            assert head["event"] == "chunk"
            assert head["chunk"] == index
            assert head["samples"] == len(toy_spec.chunk_indices(index))
            assert head["wall_s"] >= 0.0
            # One chunk span + one span per sample.
            spans = [e for e in events if e["event"] == "span"]
            samples = [e for e in spans if e["name"] == "sample"]
            assert len(samples) == head["samples"]
            assert all(e["parent"] == "chunk" for e in samples)

        run_events = data["run"]
        validate_events(run_events)
        kinds = [e["event"] for e in run_events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_complete"
        assert kinds.count("chunk_complete") == toy_spec.num_chunks
        assert kinds.count("fold") == toy_spec.num_chunks

    def test_process_pool_run_populates_store(self, tmp_path):
        """The acceptance path: a 4-worker process campaign transports
        each worker's capture back and persists it."""
        spec = make_toy_spec(num_samples=16, chunk_size=2)
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store,
                     executor=ParallelExecutor(num_workers=4),
                     telemetry=True)
        assert store.telemetry_chunks() == list(range(spec.num_chunks))
        data = store.read_telemetry()
        heads = [events[0] for events in data["chunks"].values()]
        for head in heads:
            validate_events([head])
            # Workers stamp pid:thread labels; pool chunks report the
            # time they waited between dispatch and pickup.
            assert ":" in head["worker"]
            assert head["queue_wait_s"] >= 0.0

    def test_merged_metrics_json(self, toy_spec, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run_campaign(toy_spec, store=store, telemetry=True)
        metrics = store.read_telemetry_metrics()
        assert metrics is not None
        merged = MetricsRegistry.from_dict(metrics)
        wall = merged.histogram_stats("chunk.wall_s")
        assert wall["count"] == toy_spec.num_chunks
        assert wall["min"] >= 0.0

    def test_results_identical_with_and_without_telemetry(self, toy_spec):
        on = run_campaign(toy_spec, telemetry=True)
        off = run_campaign(toy_spec, telemetry=False)
        assert np.array_equal(on.mean, off.mean)
        assert np.array_equal(on.std, off.std)

    def test_disabled_run_writes_nothing(self, toy_spec, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run_campaign(toy_spec, store=store, telemetry=False)
        assert store.telemetry_chunks() == []
        assert store.read_run_events() == []
        assert store.read_telemetry_metrics() is None

    def test_global_disable_is_the_default_gate(self, toy_spec, tmp_path,
                                                restore_enabled_flag):
        telemetry.disable()
        store = ArtifactStore(tmp_path / "store")
        run_campaign(toy_spec, store=store)
        assert store.telemetry_chunks() == []
        # telemetry=True overrides the global flag.
        store2 = ArtifactStore(tmp_path / "store2")
        run_campaign(toy_spec, store=store2, telemetry=True)
        assert store2.telemetry_chunks() != []


class TestKillResume:
    def test_resume_preserves_and_completes_telemetry(self, tmp_path):
        spec = make_toy_spec(num_samples=12, chunk_size=4)  # 3 chunks

        reference = ArtifactStore(tmp_path / "reference")
        run_campaign(spec, store=reference, telemetry=True)

        interrupted = ArtifactStore(tmp_path / "interrupted")
        run_campaign(spec, store=interrupted, telemetry=True)
        # Simulate a kill between the telemetry write and the chunk
        # write of chunk 1 (the documented write ordering): the chunk
        # npz is gone, the orphan telemetry file may remain.
        os.remove(interrupted.chunk_path(1))
        with open(interrupted.chunk_telemetry_path(0), "rb") as handle:
            survivor_bytes = handle.read()

        resumed = resume_campaign(interrupted, telemetry=True)
        assert resumed.num_evaluated == 4

        # Completed chunks were never recomputed: their telemetry files
        # are byte-identical to before the kill.
        with open(interrupted.chunk_telemetry_path(0), "rb") as handle:
            assert handle.read() == survivor_bytes
        # The final chunk-ordered event set matches an uninterrupted
        # run structurally (timings differ, structure must not).
        assert _store_signatures(interrupted) == \
            _store_signatures(reference)

    def test_run_log_accumulates_across_resumes(self, tmp_path):
        spec = make_toy_spec(num_samples=12, chunk_size=4)
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store, telemetry=True)
        resume_campaign(store, telemetry=True)
        kinds = [e["event"] for e in store.read_run_events()]
        assert kinds.count("run_start") == 2
        assert kinds.count("run_complete") == 2
        # The resume had nothing to evaluate.
        assert kinds.count("chunk_complete") == spec.num_chunks


class TestProgressStyles:
    def test_legacy_two_argument_callback(self, toy_spec):
        seen = []
        run_campaign(toy_spec, telemetry=False,
                     progress=lambda done, total: seen.append((done,
                                                               total)))
        assert seen == [(i + 1, toy_spec.num_chunks)
                        for i in range(toy_spec.num_chunks)]

    def test_event_style_callback_gets_heartbeats(self, toy_spec):
        events = []
        run_campaign(toy_spec, telemetry=False,
                     progress=lambda event: events.append(event))
        assert len(events) == toy_spec.num_chunks
        validate_events(events)
        last = events[-1]
        assert last["event"] == "heartbeat"
        assert last["done"] == last["total"] == toy_spec.num_chunks
        assert last["rate_per_s"] > 0.0
        assert all(e["eta_s"] is not None for e in events[:-1])

    def test_callable_object_without_signature_defaults_legacy(self,
                                                               toy_spec):
        calls = []
        run_campaign(toy_spec, telemetry=False,
                     progress=lambda *args: calls.append(args))
        assert all(len(call) == 2 for call in calls)

    def test_progress_fires_regardless_of_telemetry(self, toy_spec):
        seen = []
        run_campaign(toy_spec, telemetry=True,
                     progress=lambda e: seen.append(e))
        assert len(seen) == toy_spec.num_chunks


class TestExecutorEquivalence:
    def test_serial_and_parallel_telemetry_structure_match(self, tmp_path):
        spec = make_toy_spec(num_samples=8, chunk_size=2)
        serial = ArtifactStore(tmp_path / "serial")
        parallel = ArtifactStore(tmp_path / "parallel")
        run_campaign(spec, store=serial, executor=SerialExecutor(),
                     telemetry=True)
        run_campaign(spec, store=parallel,
                     executor=ParallelExecutor(num_workers=4),
                     telemetry=True)
        serial_sig = _store_signatures(serial)
        parallel_sig = _store_signatures(parallel)
        # Drop the chunk head (worker/queue fields legitimately differ
        # in presence); spans must match one for one.
        assert {k: v[1:] for k, v in serial_sig.items()} == \
            {k: v[1:] for k, v in parallel_sig.items()}
