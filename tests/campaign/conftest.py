"""Shared campaign test fixtures."""

import pytest

from repro.campaign import CampaignSpec, ScenarioSpec

from .toy_problem import MODULE, PROBLEM_NAME


def make_toy_spec(num_samples=24, chunk_size=5, seed=7, sampler="counter",
                  qoi="identity", options=None):
    """A cheap fully-specified campaign over the registered toy problem."""
    return CampaignSpec(
        name=f"toy-{num_samples}",
        scenario=ScenarioSpec(
            problem=PROBLEM_NAME,
            qoi=qoi,
            options=options or {},
            module=MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=4,
        num_samples=num_samples,
        seed=seed,
        chunk_size=chunk_size,
        sampler=sampler,
    )


@pytest.fixture
def toy_spec():
    return make_toy_spec()
