"""Shared campaign test fixtures."""

import pytest

from repro.campaign import CampaignSpec, ScenarioSpec, SensitivitySpec

from .toy_problem import MODULE, PROBLEM_NAME


def make_toy_spec(num_samples=24, chunk_size=5, seed=7, sampler="counter",
                  qoi="identity", options=None):
    """A cheap fully-specified campaign over the registered toy problem."""
    return CampaignSpec(
        name=f"toy-{num_samples}",
        scenario=ScenarioSpec(
            problem=PROBLEM_NAME,
            qoi=qoi,
            options=options or {},
            module=MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=4,
        num_samples=num_samples,
        seed=seed,
        chunk_size=chunk_size,
        sampler=sampler,
    )


def make_toy_sensitivity_spec(num_base_samples=16, chunk_size=7, seed=3,
                              sampler="random", qoi="test-scalar-sum",
                              options=None, second_order=False,
                              groups=None):
    """A cheap Sobol sensitivity campaign over the registered toy problem."""
    return SensitivitySpec(
        name=f"toy-sobol-{num_base_samples}",
        scenario=ScenarioSpec(
            problem=PROBLEM_NAME,
            qoi=qoi,
            options=options or {},
            module=MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=4,
        num_base_samples=num_base_samples,
        seed=seed,
        chunk_size=chunk_size,
        sampler=sampler,
        second_order=second_order,
        groups=groups,
    )


@pytest.fixture
def toy_spec():
    return make_toy_spec()


@pytest.fixture
def toy_sensitivity_spec():
    return make_toy_sensitivity_spec()
