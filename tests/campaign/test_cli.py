"""Tests for the repro-campaign command line interface."""


import pytest

from repro.campaign import ArtifactStore, CampaignSpec
from repro.campaign.cli import main

from .conftest import make_toy_spec


@pytest.fixture
def toy_spec_path(tmp_path):
    spec = make_toy_spec(num_samples=12, chunk_size=4)
    return str(spec.save(tmp_path / "spec.json"))


class TestSpecCommand:
    def test_writes_date16_template(self, tmp_path, capsys):
        out = tmp_path / "date16.json"
        code = main(["spec", "date16", "--samples", "16",
                     "--chunk-size", "4", "-o", str(out)])
        assert code == 0
        spec = CampaignSpec.load(out)
        assert spec.scenario.problem == "date16"
        assert spec.num_samples == 16
        assert spec.dimension == 12
        assert "wrote" in capsys.readouterr().out

    def test_unknown_problem_fails(self, tmp_path, capsys):
        code = main(["spec", "mystery", "-o", str(tmp_path / "x.json")])
        assert code == 2
        assert "no spec template" in capsys.readouterr().err


class TestRunCommand:
    def test_run_without_store(self, toy_spec_path, capsys):
        code = main(["run", toy_spec_path, "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Campaign summary" in out
        assert "Samples M" in out

    def test_run_with_store_then_report(self, toy_spec_path, tmp_path,
                                        capsys):
        store_dir = str(tmp_path / "store")
        assert main(["run", toy_spec_path, "--store", store_dir,
                     "--quiet"]) == 0
        run_output = capsys.readouterr().out
        assert main(["report", store_dir]) == 0
        report_output = capsys.readouterr().out
        assert report_output == run_output
        summary = ArtifactStore(store_dir).read_summary()
        assert summary["num_samples"] == 12

    def test_progress_lines_on_stderr(self, toy_spec_path, tmp_path,
                                      capsys):
        assert main(["run", toy_spec_path, "--store",
                     str(tmp_path / "s")]) == 0
        captured = capsys.readouterr()
        assert "chunk 3/3 complete" in captured.err


class TestResumeCommand:
    def test_resume_completes_partial_store(self, toy_spec_path, tmp_path,
                                            capsys):
        from repro.campaign.executor import evaluate_chunk, resolve_model
        from repro.campaign.runner import campaign_chunks

        spec = CampaignSpec.load(toy_spec_path)
        store_dir = str(tmp_path / "store")
        store = ArtifactStore(store_dir).initialize(spec)
        model = resolve_model(spec.scenario)
        for chunk in campaign_chunks(spec, [1]):
            store.write_chunk(evaluate_chunk(model, chunk))

        assert main(["resume", store_dir, "--quiet"]) == 0
        assert store.completed_chunks() == [0, 1, 2]
        capsys.readouterr()
        # An immediately repeated resume recomputes nothing and reports
        # the identical summary.
        assert main(["resume", store_dir, "--quiet"]) == 0
        assert "Campaign summary" in capsys.readouterr().out


class TestReportCommand:
    def test_report_without_summary_fails_cleanly(self, toy_spec_path,
                                                  tmp_path, capsys):
        spec = CampaignSpec.load(toy_spec_path)
        store_dir = str(tmp_path / "store")
        ArtifactStore(store_dir).initialize(spec)
        assert main(["report", store_dir]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestParallelCli:
    def test_parallel_run_matches_serial(self, toy_spec_path, tmp_path,
                                         capsys):
        serial_store = str(tmp_path / "serial")
        parallel_store = str(tmp_path / "parallel")
        assert main(["run", toy_spec_path, "--store", serial_store,
                     "--quiet"]) == 0
        assert main(["run", toy_spec_path, "--store", parallel_store,
                     "--executor", "parallel", "--workers", "2",
                     "--quiet"]) == 0
        capsys.readouterr()
        serial = ArtifactStore(serial_store).read_summary()
        parallel = ArtifactStore(parallel_store).read_summary()
        assert serial == parallel
