"""Tests for the repro-campaign command line interface."""


import pytest

from repro.campaign import ArtifactStore, CampaignSpec
from repro.campaign.cli import main

from .conftest import make_toy_spec


@pytest.fixture
def toy_spec_path(tmp_path):
    spec = make_toy_spec(num_samples=12, chunk_size=4)
    return str(spec.save(tmp_path / "spec.json"))


class TestSpecCommand:
    def test_writes_date16_template(self, tmp_path, capsys):
        out = tmp_path / "date16.json"
        code = main(["spec", "date16", "--samples", "16",
                     "--chunk-size", "4", "-o", str(out)])
        assert code == 0
        spec = CampaignSpec.load(out)
        assert spec.scenario.problem == "date16"
        assert spec.num_samples == 16
        assert spec.dimension == 12
        assert "wrote" in capsys.readouterr().out

    def test_unknown_problem_fails(self, tmp_path, capsys):
        code = main(["spec", "mystery", "-o", str(tmp_path / "x.json")])
        assert code == 2
        assert "no spec template" in capsys.readouterr().err

    def test_adaptive_stepping_flags(self, tmp_path):
        out = tmp_path / "adaptive.json"
        code = main(["spec", "date16", "--time-stepping", "adaptive",
                     "--adaptive-tolerance", "0.75", "--no-quantize-dt",
                     "-o", str(out)])
        assert code == 0
        options = CampaignSpec.load(out).scenario.options
        assert options["time_stepping"] == "adaptive"
        assert options["adaptive_tolerance"] == 0.75
        assert options["quantize_dt"] is False

    def test_adaptive_flags_require_adaptive_stepping(self, tmp_path,
                                                      capsys):
        code = main(["spec", "date16", "--quantize-dt",
                     "-o", str(tmp_path / "x.json")])
        assert code == 1
        assert "--time-stepping adaptive" in capsys.readouterr().err


class TestRunCommand:
    def test_run_without_store(self, toy_spec_path, capsys):
        code = main(["run", toy_spec_path, "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Campaign summary" in out
        assert "Samples M" in out

    def test_run_with_store_then_report(self, toy_spec_path, tmp_path,
                                        capsys):
        store_dir = str(tmp_path / "store")
        assert main(["run", toy_spec_path, "--store", store_dir,
                     "--quiet"]) == 0
        run_output = capsys.readouterr().out
        assert main(["report", store_dir]) == 0
        report_output = capsys.readouterr().out
        assert report_output == run_output
        summary = ArtifactStore(store_dir).read_summary()
        assert summary["num_samples"] == 12

    def test_progress_lines_on_stderr(self, toy_spec_path, tmp_path,
                                      capsys):
        assert main(["run", toy_spec_path, "--store",
                     str(tmp_path / "s")]) == 0
        captured = capsys.readouterr()
        assert "chunk 3/3 complete" in captured.err


class TestResumeCommand:
    def test_resume_completes_partial_store(self, toy_spec_path, tmp_path,
                                            capsys):
        from repro.campaign.executor import evaluate_chunk, resolve_model
        from repro.campaign.runner import campaign_chunks

        spec = CampaignSpec.load(toy_spec_path)
        store_dir = str(tmp_path / "store")
        store = ArtifactStore(store_dir).initialize(spec)
        model = resolve_model(spec.scenario)
        for chunk in campaign_chunks(spec, [1]):
            store.write_chunk(evaluate_chunk(model, chunk))

        assert main(["resume", store_dir, "--quiet"]) == 0
        assert store.completed_chunks() == [0, 1, 2]
        capsys.readouterr()
        # An immediately repeated resume recomputes nothing and reports
        # the identical summary.
        assert main(["resume", store_dir, "--quiet"]) == 0
        assert "Campaign summary" in capsys.readouterr().out


class TestReportCommand:
    def test_report_without_summary_fails_cleanly(self, toy_spec_path,
                                                  tmp_path, capsys):
        spec = CampaignSpec.load(toy_spec_path)
        store_dir = str(tmp_path / "store")
        ArtifactStore(store_dir).initialize(spec)
        assert main(["report", store_dir]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestParallelCli:
    def test_parallel_run_matches_serial(self, toy_spec_path, tmp_path,
                                         capsys):
        serial_store = str(tmp_path / "serial")
        parallel_store = str(tmp_path / "parallel")
        assert main(["run", toy_spec_path, "--store", serial_store,
                     "--quiet"]) == 0
        assert main(["run", toy_spec_path, "--store", parallel_store,
                     "--executor", "parallel", "--workers", "2",
                     "--quiet"]) == 0
        capsys.readouterr()
        serial = ArtifactStore(serial_store).read_summary()
        parallel = ArtifactStore(parallel_store).read_summary()
        assert serial == parallel


class TestExecutorBackendCli:
    def test_thread_backend_matches_serial(self, toy_spec_path, tmp_path,
                                           capsys):
        serial_store = str(tmp_path / "serial")
        thread_store = str(tmp_path / "thread")
        assert main(["run", toy_spec_path, "--store", serial_store,
                     "--quiet"]) == 0
        assert main(["run", toy_spec_path, "--store", thread_store,
                     "--executor", "thread", "--workers", "2",
                     "--quiet"]) == 0
        capsys.readouterr()
        assert ArtifactStore(serial_store).read_summary() == \
            ArtifactStore(thread_store).read_summary()

    def test_workers_with_serial_executor_errors(self, toy_spec_path,
                                                 capsys):
        """The --workers footgun: refused, not silently ignored."""
        assert main(["run", toy_spec_path, "--workers", "4",
                     "--quiet"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "serial" in err

    def test_unknown_backend_lists_registered(self, toy_spec_path,
                                              capsys):
        assert main(["run", toy_spec_path, "--executor", "gpu",
                     "--quiet"]) == 1
        err = capsys.readouterr().err
        assert "unknown executor backend" in err
        assert "serial" in err and "process" in err


class TestReducerCli:
    def test_pce_run_and_report(self, tmp_path, capsys):
        spec = make_toy_spec(num_samples=32, chunk_size=8)
        spec.distribution = {"kind": "uniform", "lower": -1.0,
                             "upper": 1.0}
        path = str(spec.save(tmp_path / "spec.json"))
        store = str(tmp_path / "store")
        assert main(["run", path, "--store", store, "--reducer", "pce",
                     "--pce-degree", "2", "--quiet"]) == 0
        run_output = capsys.readouterr().out
        assert "PCE surrogate campaign" in run_output
        assert main(["report", store]) == 0
        assert capsys.readouterr().out == run_output

    def test_pce_reduce_of_existing_store(self, toy_spec_path, tmp_path,
                                          capsys):
        """resume --reducer pce refits from checkpoints, no new solves."""
        store = str(tmp_path / "store")
        assert main(["run", toy_spec_path, "--store", store,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["resume", store, "--reducer", "pce",
                     "--pce-degree", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "PCE surrogate campaign" in out

    def test_bootstrap_flag_rejected_for_moments(self, toy_spec_path,
                                                 capsys):
        assert main(["run", toy_spec_path, "--bootstrap", "10",
                     "--quiet"]) == 1
        assert "jansen" in capsys.readouterr().err

    def test_pce_degree_requires_pce(self, toy_spec_path, capsys):
        assert main(["run", toy_spec_path, "--pce-degree", "3",
                     "--quiet"]) == 1
        assert "pce" in capsys.readouterr().err


class TestProvenance:
    def test_report_prints_provenance_line(self, toy_spec_path, tmp_path,
                                           capsys):
        store = str(tmp_path / "store")
        assert main(["run", toy_spec_path, "--store", store,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["report", store]) == 0
        out = capsys.readouterr().out
        assert "provenance: repro-date16" in out
        assert "reducer=moments" in out
        assert "executor=serial" in out

    def test_provenance_names_reducer_and_backend(self, tmp_path, capsys):
        from .conftest import make_toy_sensitivity_spec

        spec = make_toy_sensitivity_spec(num_base_samples=8, chunk_size=6)
        path = str(spec.save(tmp_path / "sens.json"))
        store = str(tmp_path / "store")
        assert main(["run", path, "--store", store, "--executor",
                     "process", "--workers", "2", "--quiet"]) == 0
        capsys.readouterr()
        provenance = ArtifactStore(store).read_provenance()
        assert provenance["reducer"] == "jansen"
        assert provenance["executor"] == "process"
        assert provenance["package_version"]


class TestTelemetryCli:
    @pytest.fixture
    def telemetry_store(self, toy_spec_path, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", toy_spec_path, "--store", store,
                     "--telemetry", "--quiet"]) == 0
        capsys.readouterr()
        return store

    def test_report_timings_renders_tables(self, telemetry_store, capsys):
        assert main(["report", telemetry_store, "--timings"]) == 0
        out = capsys.readouterr().out
        assert "Per-chunk timings" in out
        assert "Worker utilization" in out
        assert "straggler ratio" in out

    def test_report_timings_without_telemetry_degrades(self, toy_spec_path,
                                                       tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", toy_spec_path, "--store", store,
                     "--no-telemetry", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["report", store, "--timings"]) == 0
        assert "No telemetry recorded" in capsys.readouterr().out

    def test_trace_summary(self, telemetry_store, capsys):
        assert main(["trace", telemetry_store]) == 0
        out = capsys.readouterr().out
        assert "Event inventory" in out
        assert "Span durations" in out
        assert "run_complete" in out

    def test_trace_validate(self, telemetry_store, capsys):
        assert main(["trace", telemetry_store, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "validated" in out
        assert "3 chunk logs" in out

    def test_trace_validate_fails_without_telemetry(self, toy_spec_path,
                                                    tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", toy_spec_path, "--store", store,
                     "--no-telemetry", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["trace", store, "--validate"]) == 1
        assert "no-telemetry" in capsys.readouterr().err

    def test_trace_dump_is_machine_readable(self, telemetry_store, capsys):
        import json

        assert main(["trace", telemetry_store, "--dump"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert len(events) > 0
        kinds = {event["event"] for event in events}
        assert {"run_start", "chunk", "span", "run_complete"} <= kinds

    def test_no_telemetry_flag_leaves_store_clean(self, toy_spec_path,
                                                  tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", toy_spec_path, "--store", store,
                     "--no-telemetry", "--quiet"]) == 0
        capsys.readouterr()
        assert ArtifactStore(store).telemetry_chunks() == []
