"""Fault injection: retry, quarantine, crash-safe stores, timeouts.

The flaky fixture model (``tests.campaign.flaky_problem``) fails
deterministically -- a permanently poisoned sample, a transient sample
that heals after K attempts (optionally by killing its whole worker
process), a straggler that sleeps -- so every recovery path can be
proven against a bitwise-identical failure-free reference campaign.
"""

import json
import os

import numpy as np
import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignSpec,
    ChunkEvaluationError,
    ChunkFailure,
    MomentsReducer,
    RetryPolicy,
    ScenarioSpec,
    run_campaign,
    resume_campaign,
)
from repro.campaign.cli import main
from repro.campaign.executor import (
    _FUTURES_MODELS,
    _FUTURES_MODELS_MAX,
    WorkChunk,
    _futures_evaluate_chunk,
)
from repro.errors import CampaignError

from .flaky_problem import MODULE, PROBLEM_NAME

DIMENSION = 4
SEED = 7


def make_flaky_spec(num_samples=20, chunk_size=5, seed=SEED,
                    options=None):
    """A campaign over the flaky problem; no options -> never fails."""
    scenario_options = {"seed": seed, "dimension": DIMENSION}
    scenario_options.update(options or {})
    return CampaignSpec(
        name=f"flaky-{num_samples}",
        scenario=ScenarioSpec(
            problem=PROBLEM_NAME,
            qoi="identity",
            options=scenario_options,
            module=MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=DIMENSION,
        num_samples=num_samples,
        seed=seed,
        chunk_size=chunk_size,
    )


def clean_reference(tmp_path, num_samples=20, chunk_size=5):
    """The failure-free campaign every recovery must reproduce bitwise."""
    store = ArtifactStore(tmp_path / "reference")
    result = run_campaign(
        make_flaky_spec(num_samples, chunk_size), store=store
    )
    return result, store


def assert_successful_chunks_identical(store, reference_store,
                                       skip_chunks=()):
    indices = reference_store.completed_chunks()
    for chunk_index in indices:
        if chunk_index in skip_chunks:
            continue
        _, _, outputs = store.read_chunk(chunk_index)
        _, _, expected = reference_store.read_chunk(chunk_index)
        assert np.array_equal(outputs, expected), f"chunk {chunk_index}"


class TestRetryPolicy:
    def test_normalize_accepts_none_int_dict_policy(self):
        assert RetryPolicy.normalize(None) is None
        policy = RetryPolicy.normalize(3)
        assert policy.max_retries == 3
        policy = RetryPolicy.normalize(
            {"max_retries": 2, "backoff_s": 0.5}
        )
        assert policy.max_retries == 2
        assert policy.backoff_s == 0.5
        same = RetryPolicy(max_retries=1)
        assert RetryPolicy.normalize(same) is same

    def test_normalize_rejects_bool_and_garbage(self):
        with pytest.raises(CampaignError):
            RetryPolicy.normalize(True)
        with pytest.raises(CampaignError):
            RetryPolicy.normalize("twice")
        with pytest.raises(CampaignError):
            RetryPolicy.normalize({"max_retries": 1, "bogus": 2})

    def test_invalid_fields_rejected(self):
        with pytest.raises(CampaignError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(CampaignError):
            RetryPolicy(backoff_s=-0.5)
        with pytest.raises(CampaignError):
            RetryPolicy(timeout_s=0)

    def test_backoff_is_exponential_jittered_deterministic(self):
        policy = RetryPolicy(max_retries=3, backoff_s=1.0, seed=11)
        first = policy.delay_s(chunk_index=2, attempt=1)
        second = policy.delay_s(chunk_index=2, attempt=2)
        # Jitter keeps each delay inside [0.5, 1.5) x the exponential
        # base, and the schedule is a pure function of its inputs.
        assert 0.5 <= first < 1.5
        assert 1.0 <= second < 3.0
        assert first == policy.delay_s(chunk_index=2, attempt=1)
        other_chunk = policy.delay_s(chunk_index=3, attempt=1)
        assert first != other_chunk  # de-synchronized chunks
        assert RetryPolicy(backoff_s=0.0).delay_s(0, 1) == 0.0


class TestEvaluationErrorContext:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_fail_fast_error_names_chunk_samples_worker(
            self, tmp_path, executor):
        spec = make_flaky_spec(options={"poison_sample": 7})
        with pytest.raises(ChunkEvaluationError) as excinfo:
            run_campaign(spec, executor=executor)
        error = excinfo.value
        # Sample 7 lives in chunk 1 (samples 5..9 at chunk_size 5).
        assert "chunk 1" in str(error)
        assert "samples 5..9" in str(error)
        assert error.chunk_index == 1
        assert tuple(error.sample_indices) == (5, 6, 7, 8, 9)
        assert error.worker  # survives pool pickling too
        assert "poisoned sample 7" in error.cause_repr


class TestRetryThenSucceed:
    @pytest.mark.parametrize("executor,mode", [
        ("serial", "raise"),
        ("process", "raise"),
        ("process", "kill"),  # worker death -> pool rebuild
    ])
    def test_transient_heals_and_is_bitwise_clean(
            self, tmp_path, executor, mode):
        reference, reference_store = clean_reference(tmp_path)
        state = tmp_path / "state"
        state.mkdir()
        spec = make_flaky_spec(options={
            "transient_sample": 12,
            "fail_attempts": 1,
            "mode": mode,
            "state_dir": str(state),
        })
        store = ArtifactStore(tmp_path / "store")
        result = run_campaign(
            spec, store=store, executor=executor, retry=2
        )
        assert result.quarantine is None
        assert not os.path.isfile(store.quarantine_path)
        assert result.num_samples == spec.num_samples
        assert np.array_equal(result.mean, reference.mean)
        assert np.array_equal(result.std, reference.std)
        assert_successful_chunks_identical(store, reference_store)
        # The transient sample really did fail once before healing.
        markers = [name for name in os.listdir(state)
                   if name.startswith("transient_12.")]
        assert len(markers) >= 2


class TestQuarantine:
    def test_poisoned_chunk_quarantined_campaign_completes(
            self, tmp_path):
        reference, reference_store = clean_reference(tmp_path)
        spec = make_flaky_spec(options={"poison_sample": 7})
        store = ArtifactStore(tmp_path / "store")
        result = run_campaign(
            spec, store=store, retry=RetryPolicy(max_retries=1)
        )
        assert set(result.quarantine) == {1}
        record = result.quarantine[1]
        assert record["indices"] == [5, 6, 7, 8, 9]
        assert record["attempts"] == 2
        assert "poisoned sample 7" in record["error"]
        # On-disk record matches the in-memory one.
        assert store.read_quarantine() == result.quarantine
        with open(store.quarantine_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert set(payload["chunks"]) == {"1"}
        # The reduction completed over the surviving samples only...
        assert result.num_samples == spec.num_samples - 5
        summary = store.read_summary()
        assert summary["num_quarantined_chunks"] == 1
        assert summary["num_quarantined_samples"] == 5
        # ...and the successful chunks are bitwise the clean run's.
        assert_successful_chunks_identical(
            store, reference_store, skip_chunks={1}
        )

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_serial_process_quarantine_equivalence(
            self, tmp_path, executor):
        """Both backends quarantine the same chunk and reduce to the
        same statistics, bit for bit."""
        spec = make_flaky_spec(options={"poison_sample": 7})
        store = ArtifactStore(tmp_path / f"store-{executor}")
        result = run_campaign(
            spec, store=store, executor=executor, retry=1
        )
        reference_store = ArtifactStore(tmp_path / "store-reference")
        reference = run_campaign(
            spec, store=reference_store, executor="serial", retry=1
        )
        assert set(result.quarantine) == set(reference.quarantine) == {1}
        assert (result.quarantine[1]["indices"]
                == reference.quarantine[1]["indices"])
        assert np.array_equal(result.mean, reference.mean)
        assert np.array_equal(result.std, reference.std)
        assert result.num_samples == reference.num_samples

    def test_all_quarantined_raises(self, tmp_path):
        # Every chunk poisoned: sample i fails for every i -> nothing
        # left to reduce.
        spec = make_flaky_spec(num_samples=5, chunk_size=5,
                               options={"poison_sample": 2})
        with pytest.raises(CampaignError, match="quarantine"):
            run_campaign(
                spec, store=ArtifactStore(tmp_path / "store"), retry=0
            )

    def test_intolerant_reducer_refuses_quarantine(self, tmp_path):
        class StrictMoments(MomentsReducer):
            tolerates_missing_samples = False

        spec = make_flaky_spec(options={"poison_sample": 7})
        with pytest.raises(CampaignError, match="every sample"):
            run_campaign(
                spec, store=ArtifactStore(tmp_path / "store"),
                reducer=StrictMoments(), retry=0,
            )

    def test_memory_only_run_quarantines_without_store(self):
        spec = make_flaky_spec(options={"poison_sample": 7})
        result = run_campaign(spec, retry=0)
        assert set(result.quarantine) == {1}
        assert result.num_samples == spec.num_samples - 5

    def test_chunk_failed_events_and_metrics_recorded(self, tmp_path):
        spec = make_flaky_spec(options={"poison_sample": 7})
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store, retry=1, telemetry=True)
        failed = [event for event in store.read_run_events()
                  if event["event"] == "chunk_failed"]
        assert len(failed) == 1
        assert failed[0]["chunk"] == 1
        assert failed[0]["attempts"] == 2
        assert "poisoned" in failed[0]["error"]
        counters = store.read_telemetry_metrics()["counters"]
        assert counters["campaign.chunks_quarantined"] == 1
        assert counters["campaign.chunk_retries"] == 1


class TestResumeQuarantine:
    def test_resume_retries_and_heals_quarantined_chunk(self, tmp_path):
        reference, reference_store = clean_reference(tmp_path)
        state = tmp_path / "state"
        state.mkdir()
        spec = make_flaky_spec(options={
            "transient_sample": 12,
            "fail_attempts": 1,
            "state_dir": str(state),
        })
        store = ArtifactStore(tmp_path / "store")
        first = run_campaign(spec, store=store, retry=0)
        assert set(first.quarantine) == {2}  # sample 12 -> chunk 2
        assert store.read_quarantine()

        resumed = resume_campaign(store)
        assert resumed.quarantine is None
        assert not os.path.isfile(store.quarantine_path)
        assert resumed.num_samples == spec.num_samples
        assert np.array_equal(resumed.mean, reference.mean)
        assert np.array_equal(resumed.std, reference.std)
        assert_successful_chunks_identical(store, reference_store)
        summary = store.read_summary()
        assert "num_quarantined_chunks" not in summary

    def test_no_retry_quarantined_reduces_around(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        spec = make_flaky_spec(options={
            "transient_sample": 12,
            "fail_attempts": 1,
            "state_dir": str(state),
        })
        store = ArtifactStore(tmp_path / "store")
        first = run_campaign(spec, store=store, retry=0)
        assert set(first.quarantine) == {2}

        resumed = resume_campaign(store, retry_quarantined=False)
        # Still quarantined: the transient was never re-attempted.
        assert set(resumed.quarantine) == {2}
        assert store.read_quarantine() == resumed.quarantine
        assert resumed.num_samples == spec.num_samples - 5
        assert np.array_equal(resumed.mean, first.mean)
        assert np.array_equal(resumed.std, first.std)

    def test_kill_resume_with_quarantine_bit_identical(self, tmp_path):
        """A kill after quarantine + resume reproduces the
        uninterrupted quarantined campaign exactly."""
        spec = make_flaky_spec(options={"poison_sample": 7})
        uninterrupted_store = ArtifactStore(tmp_path / "uninterrupted")
        uninterrupted = run_campaign(
            spec, store=uninterrupted_store, retry=0
        )

        store = ArtifactStore(tmp_path / "interrupted")
        run_campaign(spec, store=store, retry=0)
        # Simulate a kill after the quarantine landed: later chunks,
        # the summary and the reduction snapshot are gone.
        os.remove(store.chunk_path(3))
        os.remove(store.summary_path)
        if os.path.isfile(store.reducer_state_path):
            os.remove(store.reducer_state_path)

        resumed = resume_campaign(store, retry=0)
        assert set(resumed.quarantine) == {1}
        assert (resumed.quarantine[1]["indices"]
                == uninterrupted.quarantine[1]["indices"])
        assert np.array_equal(resumed.mean, uninterrupted.mean)
        assert np.array_equal(resumed.std, uninterrupted.std)
        assert_successful_chunks_identical(
            store, uninterrupted_store, skip_chunks={1}
        )


class TestStoreCrashSafety:
    def test_initialize_sweeps_stale_temp_files(self, tmp_path):
        spec = make_flaky_spec()
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store)
        # Plant the leaks a kill between mkstemp and os.replace leaves.
        stale = [
            os.path.join(store.chunk_dir, "chunk_000001.abc123.tmp"),
            os.path.join(store.path, "reducer_state.xyz789.tmp"),
            os.path.join(store.telemetry_dir, "chunk_000001.def.tmp"),
        ]
        os.makedirs(store.telemetry_dir, exist_ok=True)
        for path in stale:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("torn")
        store.initialize(spec)
        for path in stale:
            assert not os.path.exists(path)
        # The real artifacts survived the sweep.
        assert store.completed_chunks() == [0, 1, 2, 3]

    def test_corrupt_chunk_read_raises_campaign_error(self, tmp_path):
        spec = make_flaky_spec()
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store)
        path = store.chunk_path(2)
        with open(path, "r+b") as handle:
            handle.truncate(10)  # torn by a full disk
        with pytest.raises(CampaignError, match="corrupt or truncated"):
            store.read_chunk(2)
        # The name-based scan still lists it; the validating scan drops
        # it so resume recomputes instead of crashing.
        assert 2 in store.completed_chunks()
        assert 2 not in store.completed_chunks(validate=True)

    def test_resume_recomputes_corrupt_chunk(self, tmp_path):
        spec = make_flaky_spec()
        store = ArtifactStore(tmp_path / "store")
        first = run_campaign(spec, store=store)
        expected = store.read_chunk(2)
        with open(store.chunk_path(2), "r+b") as handle:
            handle.truncate(10)
        os.remove(store.summary_path)
        if os.path.isfile(store.reducer_state_path):
            os.remove(store.reducer_state_path)
        resumed = resume_campaign(store)
        assert np.array_equal(resumed.mean, first.mean)
        recomputed = store.read_chunk(2)
        for regenerated, original in zip(recomputed, expected):
            assert np.array_equal(regenerated, original)

    def test_quarantine_roundtrip_and_discard(self, tmp_path):
        spec = make_flaky_spec()
        store = ArtifactStore(tmp_path / "store").initialize(spec)
        record = {"chunk": 3, "indices": [15, 16], "error": "boom",
                  "attempts": 2}
        store.quarantine_chunk(3, record)
        store.quarantine_chunk(1, {"chunk": 1, "indices": [5],
                                   "error": "pow", "attempts": 1})
        assert set(store.read_quarantine()) == {1, 3}
        assert store.read_quarantine()[3] == record
        store.discard_quarantined([3])
        assert set(store.read_quarantine()) == {1}
        store.discard_quarantined([1])
        assert store.read_quarantine() == {}
        # Fully healed: the file itself is gone.
        assert not os.path.isfile(store.quarantine_path)


class TestChunkTimeout:
    def test_straggler_speculatively_resubmitted(self, tmp_path):
        reference, reference_store = clean_reference(tmp_path)
        state = tmp_path / "state"
        state.mkdir()
        spec = make_flaky_spec(options={
            "slow_sample": 12,
            "slow_s": 4.0,
            "fail_attempts": 1,
            "state_dir": str(state),
        })
        store = ArtifactStore(tmp_path / "store")
        # Two workers: the straggler parks on one while its speculative
        # replacement completes on the other (the pool's shutdown still
        # waits out the abandoned sleep at the end).
        from repro.campaign.executor import ParallelExecutor

        result = run_campaign(
            spec, store=store,
            executor=ParallelExecutor(num_workers=2),
            retry=RetryPolicy(max_retries=2, timeout_s=0.75),
        )
        assert result.quarantine is None
        assert result.num_samples == spec.num_samples
        assert np.array_equal(result.mean, reference.mean)
        assert_successful_chunks_identical(store, reference_store)


class TestFuturesModelCache:
    def test_model_cache_is_bounded_lru(self):
        class Source:
            def __init__(self, index):
                self.index = index

            def to_dict(self):
                return {"kind": "test-lru", "index": self.index}

            def build_model(self):
                return lambda p: np.asarray(p, dtype=float)

        _FUTURES_MODELS.clear()
        chunk = WorkChunk(0, [0], np.zeros((1, 2)))
        for index in range(3 * _FUTURES_MODELS_MAX):
            _futures_evaluate_chunk(Source(index), chunk)
        assert len(_FUTURES_MODELS) == _FUTURES_MODELS_MAX
        # Most-recently-used survive; the oldest were evicted.
        survivors = {json.loads(key)["index"] for key in _FUTURES_MODELS}
        assert survivors == set(range(2 * _FUTURES_MODELS_MAX,
                                      3 * _FUTURES_MODELS_MAX))
        _FUTURES_MODELS.clear()


class TestLegacyExecutorCompatibility:
    def test_policy_with_two_argument_executor_is_an_error(self):
        from repro.campaign.executor import SerialExecutor

        class LegacyExecutor(SerialExecutor):
            def run_chunks(self, model_source, chunks):
                return super().run_chunks(model_source, chunks)

        spec = make_flaky_spec(num_samples=5, chunk_size=5)
        # Without a policy the legacy signature keeps working...
        result = run_campaign(spec, executor=LegacyExecutor())
        assert result.num_samples == 5
        # ...but asking it for retries is a pointed error.
        with pytest.raises(CampaignError, match="retry policy"):
            run_campaign(spec, executor=LegacyExecutor(), retry=1)


class TestCLIFaultInjection:
    """The acceptance scenario, end to end through the CLI."""

    @pytest.mark.parametrize("executor,mode", [
        ("serial", "raise"),
        ("process", "kill"),  # injected worker crash
    ])
    def test_64_sample_campaign_with_poison_and_transient(
            self, tmp_path, capsys, executor, mode):
        state = tmp_path / "state"
        state.mkdir()
        # Poison sample 9 -> chunk 1; transient sample 35 -> chunk 4.
        spec = make_flaky_spec(
            num_samples=64, chunk_size=8,
            options={
                "poison_sample": 9,
                "transient_sample": 35,
                "fail_attempts": 1,
                "mode": mode,
                "state_dir": str(state),
            },
        )
        spec_path = tmp_path / "campaign.json"
        spec.save(spec_path)
        store_path = tmp_path / "store"
        code = main([
            "run", str(spec_path), "--store", str(store_path),
            "--executor", executor, "--max-retries", "2", "--quiet",
        ])
        assert code == 0
        store = ArtifactStore(store_path)
        # The transient chunk healed on retry; only the poisoned chunk
        # is quarantined.
        quarantine = store.read_quarantine()
        assert set(quarantine) == {1}
        assert quarantine[1]["indices"] == list(range(8, 16))
        summary = store.read_summary()
        assert summary["num_quarantined_chunks"] == 1
        assert summary["num_quarantined_samples"] == 8
        assert summary["num_samples"] == 64 - 8
        capsys.readouterr()

        # report states the quarantined counts.
        assert main(["report", str(store_path)]) == 0
        report = capsys.readouterr().out
        assert "Quarantined chunks" in report
        assert "quarantined: 1 chunk(s) / 8 sample(s)" in report

        # resume retries the quarantined chunk (still poisoned -> it is
        # re-quarantined, campaign stays complete).
        code = main([
            "resume", str(store_path), "--executor", executor,
            "--max-retries", "2", "--quiet",
        ])
        assert code == 0
        requarantined = store.read_quarantine()
        assert set(requarantined) == {1}
        capsys.readouterr()

        # Successful samples are bitwise identical to a failure-free
        # run of the same campaign.
        clean_spec = make_flaky_spec(num_samples=64, chunk_size=8)
        clean_path = tmp_path / "clean.json"
        clean_spec.save(clean_path)
        clean_store_path = tmp_path / "clean-store"
        assert main([
            "run", str(clean_path), "--store", str(clean_store_path),
            "--quiet",
        ]) == 0
        capsys.readouterr()
        assert_successful_chunks_identical(
            store, ArtifactStore(clean_store_path), skip_chunks={1}
        )
        clean_summary = ArtifactStore(clean_store_path).read_summary()
        assert clean_summary["num_samples"] == 64
