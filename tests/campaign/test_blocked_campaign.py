"""Cross-layer equivalence: sample-blocked campaigns vs per-sample goldens.

The blocked fast path restructures the Monte Carlo hot loop from one
coupled transient per sample into batched multi-RHS linear algebra.
These tests pin the contract: a blocked campaign reproduces the
per-sample study bitwise where the batched operations preserve the
scalar summation order (small blocks, and every chunking at rtol=1e-12
once SuperLU's blocked multi-RHS kernels kick in), and the campaign
engine's determinism guarantees (serial == process, kill/resume) stay
bit-identical with blocking on.

Golden-vs-blocked assertions are tier-aware: under a device backend
(``REPRO_ARRAY_BACKEND=devicesim`` in CI) the per-sample golden stays
on the host path while the blocked campaign takes the gemm-ordered
device path, so those comparisons relax to the backend's declared
``rtol`` tier. Same-backend determinism stays bitwise on every tier.
"""

import numpy as np
import pytest

from repro.backends import get_array_backend

from repro.campaign import (
    ArtifactStore,
    ParallelExecutor,
    SerialExecutor,
    resume_campaign,
    run_campaign,
)
from repro.campaign.executor import evaluate_chunk, resolve_model
from repro.campaign.runner import campaign_chunks
from repro.package3d.chip_example import Date16Parameters
from repro.package3d.scenarios import date16_campaign_spec
from repro.package3d.uq_study import Date16UncertaintyStudy

#: Tiny mesh + short transient: every matrix cell stays test-suite fast.
_TINY = {
    "parameters": Date16Parameters(end_time=10.0, num_time_points=6),
    "resolution": (0.9e-3, 0.4e-3),
}


def _assert_tier_close(actual, expected, rtol, atol=0.0, scale=None):
    """Golden comparison at ``rtol`` -- relaxed to the declared tier of
    the active backend when it is not bitwise-equivalent.

    ``scale`` sets the magnitude the tier's absolute floor is taken
    against; it defaults to ``max|expected|``, but quantities formed by
    cancellation (a standard deviation of ~322 K temperatures) must
    pass the magnitude of the raw outputs instead.
    """
    tier = get_array_backend(None).equivalence
    if tier.kind != "bitwise":
        if scale is None:
            scale = float(np.max(np.abs(expected))) if np.size(expected) else 1.0
        rtol = max(rtol, tier.rtol)
        atol = max(atol, tier.rtol * max(scale, 1.0))
    assert np.allclose(actual, expected, rtol=rtol, atol=atol)


def _tiny_spec(num_samples=14, chunk_size=7, **kwargs):
    return date16_campaign_spec(
        num_samples=num_samples,
        chunk_size=chunk_size,
        qoi="final",
        seed=5,
        **_TINY,
        **kwargs,
    )


@pytest.fixture(scope="module")
def golden():
    """Per-sample study outputs for the module's 14-sample design."""
    spec = _tiny_spec()
    parameters = np.stack([
        np.asarray(spec.unit_points([index]))[0]
        for index in range(spec.num_samples)
    ])
    from repro.uq.sampling import map_to_distributions

    deltas = map_to_distributions(parameters, spec.build_distribution())
    study = Date16UncertaintyStudy(tolerance=1e-3, **_TINY)
    outputs = np.stack(
        [study.evaluate_traces(row)[-1] for row in deltas]
    )
    return deltas, outputs


class TestChunkSizeMatrix:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_blocked_matches_per_sample_golden(self, chunk_size, golden,
                                               tmp_path):
        deltas, outputs = golden
        spec = _tiny_spec(chunk_size=chunk_size)
        store = ArtifactStore(tmp_path / "store")
        result = run_campaign(spec, store=store)
        assert np.array_equal(result.parameters, deltas)
        # Statistics are folded chunk-by-chunk (Welford), so they can
        # never be bit-identical to numpy's pairwise mean -- rtol=1e-12
        # with a matching absolute floor is the contract.
        mean = outputs.mean(axis=0)
        _assert_tier_close(result.mean, mean, rtol=1e-12,
                           atol=1e-12 * np.abs(mean).max())
        _assert_tier_close(result.std, outputs.std(axis=0, ddof=1),
                           rtol=1e-12, atol=1e-12,
                           scale=float(np.abs(outputs).max()))
        # The per-sample outputs themselves are checkpointed: compare
        # those against the golden rows directly.
        stored = np.concatenate([
            store.read_chunk(index)[2] for index in range(spec.num_chunks)
        ])
        bitwise = get_array_backend(None).equivalence.kind == "bitwise"
        if chunk_size == 1 and bitwise:
            # Single-sample blocks preserve the scalar operation order
            # exactly -- the equivalence is bitwise, not approximate.
            assert np.array_equal(stored, outputs)
        else:
            # Wider blocks route through SuperLU's multi-RHS backsolve,
            # whose blocked kernels may reorder sums (rtol=1e-12); a
            # device backend's gemm path relaxes to its declared tier.
            _assert_tier_close(stored, outputs, rtol=1e-12)


class TestBackendDeterminism:
    def test_serial_and_process_bitwise(self, tmp_path):
        spec = _tiny_spec()
        serial = run_campaign(spec, store=tmp_path / "serial",
                              executor=SerialExecutor())
        parallel = run_campaign(spec, store=tmp_path / "parallel",
                                executor=ParallelExecutor(num_workers=2))
        assert np.array_equal(serial.mean, parallel.mean)
        assert np.array_equal(serial.std, parallel.std)

    def test_kill_resume_at_chunk_boundary_bitwise(self, tmp_path):
        spec = _tiny_spec()
        reference = run_campaign(spec, store=tmp_path / "reference")

        store = ArtifactStore(tmp_path / "resumed").initialize(spec)
        model = resolve_model(spec.scenario)
        for chunk in campaign_chunks(spec, [0]):
            store.write_chunk(evaluate_chunk(model, chunk))
        resumed = resume_campaign(store)
        assert resumed.num_evaluated == spec.num_samples - spec.chunk_size
        assert np.array_equal(resumed.mean, reference.mean)
        assert np.array_equal(resumed.std, reference.std)


class TestArrayBackendThreading:
    """run_campaign(array_backend=...) pins the selection end to end."""

    def test_selection_pinned_into_manifest_not_caller_spec(self, tmp_path):
        spec = _tiny_spec(num_samples=2, chunk_size=2)
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store, array_backend="devicesim")
        # The caller's spec is never mutated -- pinning happens on a copy.
        assert "array_backend" not in spec.scenario.options
        pinned = store.load_spec()
        assert pinned.scenario.options["array_backend"] == "devicesim"

    def test_unknown_backend_fails_before_any_evaluation(self, tmp_path):
        from repro.errors import SolverError

        spec = _tiny_spec(num_samples=2, chunk_size=2)
        with pytest.raises(SolverError, match="unknown array backend"):
            run_campaign(spec, store=tmp_path / "store",
                         array_backend="tpu")
        assert not (tmp_path / "store").exists()

    def test_resume_under_different_backend_refused(self, tmp_path):
        from repro.errors import CampaignError

        spec = _tiny_spec(num_samples=4, chunk_size=2)
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store, array_backend="devicesim")
        # Re-stating the pinned backend is a no-op ...
        resume_campaign(store, array_backend="devicesim")
        # ... naming a different one would mix equivalence tiers.
        with pytest.raises(CampaignError, match="different spec"):
            resume_campaign(store, array_backend="numpy")

    def test_job_manager_accepts_array_backend_option(self, tmp_path):
        from repro.service.manager import JOB_OPTIONS, JobManager

        assert "array_backend" in JOB_OPTIONS
        manager = JobManager(tmp_path / "jobs", array_backend="devicesim")
        assert manager.defaults["array_backend"] == "devicesim"


class TestAdaptiveFallback:
    def test_adaptive_scenario_has_no_block_interface(self):
        spec = _tiny_spec(num_samples=2, chunk_size=2,
                          time_stepping="adaptive")
        model = resolve_model(spec.scenario)
        assert getattr(model, "evaluate_block", None) is None

    def test_adaptive_campaign_runs_on_the_row_loop(self, tmp_path):
        spec = _tiny_spec(num_samples=2, chunk_size=2,
                          time_stepping="adaptive")
        store = ArtifactStore(tmp_path / "store")
        result = run_campaign(spec, store=store, telemetry=True)
        assert result.mean.shape == (12,)
        counters = store.read_telemetry()["metrics"]["counters"]
        assert counters.get("campaign.loop_solves") == 2
        assert "campaign.blocked_solves" not in counters

    def test_fixed_campaign_records_blocked_counters(self, tmp_path):
        spec = _tiny_spec(num_samples=4, chunk_size=2)
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store, telemetry=True)
        data = store.read_telemetry()
        counters = data["metrics"]["counters"]
        assert counters.get("campaign.blocked_solves") == 4
        assert "campaign.loop_solves" not in counters
        assert data["metrics"]["gauges"]["campaign.batch_size"] == 2
