"""Regenerate the checked-in backward-compatibility fixtures.

The JSON spec files mirror the exact serialization of the PR-1/PR-2 era
(no ``reducer`` field, no store provenance); the ``pr3_store`` directory
is a partially evaluated PR-3 era second-order sensitivity campaign
(manifest + 3 of 5 chunk files, no reducer state, no summary) over the
registered toy problem.  Run from the repository root::

    PYTHONPATH=src python tests/campaign/fixtures/make_fixtures.py

The fixtures are committed; regenerate only when the *historic* formats
themselves need re-expressing (they should never change).
"""

import os
import shutil

from repro.campaign import ArtifactStore
from repro.campaign.executor import evaluate_chunk, resolve_model
from repro.campaign.runner import campaign_chunks

HERE = os.path.dirname(os.path.abspath(__file__))


def pr1_campaign_spec():
    from tests.campaign.conftest import make_toy_spec

    return make_toy_spec(num_samples=12, chunk_size=4, seed=7)


def pr2_sensitivity_spec():
    from tests.campaign.conftest import make_toy_sensitivity_spec

    return make_toy_sensitivity_spec(num_base_samples=8, chunk_size=6,
                                     seed=3)


def pr3_sensitivity_spec():
    from tests.campaign.conftest import make_toy_sensitivity_spec

    return make_toy_sensitivity_spec(
        num_base_samples=4, chunk_size=7, seed=5,
        second_order=True, groups=[[0, 1], [2, 3]],
    )


def main():
    pr1_campaign_spec().save(os.path.join(HERE, "pr1_campaign_spec.json"))
    pr2_sensitivity_spec().save(
        os.path.join(HERE, "pr2_sensitivity_spec.json")
    )

    spec = pr3_sensitivity_spec()
    spec.save(os.path.join(HERE, "pr3_sensitivity_spec.json"))
    store_path = os.path.join(HERE, "pr3_store")
    if os.path.isdir(store_path):
        shutil.rmtree(store_path)
    store = ArtifactStore(store_path).initialize(spec)
    model = resolve_model(spec.scenario)
    for chunk in campaign_chunks(spec, [0, 2, 3]):
        store.write_chunk(evaluate_chunk(model, chunk))
    print(f"wrote fixtures under {HERE}")


if __name__ == "__main__":
    main()
