"""Tests for the pluggable Reducer protocol and the unified runner.

The acceptance matrix of the API redesign: the unified
``run_campaign`` + ``JansenReducer`` reproduces the dedicated
sensitivity path bit for bit across the ``serial`` / ``process`` /
``futures``-adapter backends and kill/resume at chunk boundaries; the
``pce`` reducer fits the surrogate from checkpointed chunks alone.
"""

import math
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignSpec,
    FuturesExecutor,
    JansenReducer,
    MomentsReducer,
    PCEReducer,
    ParallelExecutor,
    Reducer,
    ScenarioSpec,
    SensitivityResult,
    SurrogateResult,
    make_executor,
    register_reducer,
    registered_reducers,
    resolve_reducer,
    resume_campaign,
    run_campaign,
)
from repro.campaign.executor import evaluate_chunk, resolve_model
from repro.campaign.runner import campaign_chunks
from repro.errors import CampaignError
from repro.uq.analytic import ishigami_distribution, ishigami_indices

from .conftest import make_toy_sensitivity_spec, make_toy_spec


class TestReducerRegistry:
    def test_builtins_registered(self):
        assert {"moments", "jansen", "pce"} <= set(registered_reducers())

    def test_unknown_kind_lists_registered(self, toy_spec):
        with pytest.raises(CampaignError, match="unknown reducer"):
            resolve_reducer(toy_spec, "mystery")

    def test_defaults_follow_spec_kind(self, toy_spec,
                                       toy_sensitivity_spec):
        assert isinstance(resolve_reducer(toy_spec, None), MomentsReducer)
        assert isinstance(
            resolve_reducer(toy_sensitivity_spec, None), JansenReducer
        )

    def test_spec_reducer_field_wins_over_default(self):
        spec = make_toy_spec()
        spec.reducer = {"kind": "pce", "degree": 1}
        reducer = resolve_reducer(spec, None)
        assert isinstance(reducer, PCEReducer)
        assert reducer.degree == 1

    def test_pce_underdetermined_campaign_rejected_early(self):
        """The basis-vs-samples check fires at reducer construction,
        before any solve is paid."""
        spec = make_toy_spec(num_samples=10)
        with pytest.raises(CampaignError, match="basis terms"):
            resolve_reducer(spec, {"kind": "pce", "degree": 3})

    def test_argument_wins_over_spec_field(self):
        spec = make_toy_spec()
        spec.reducer = {"kind": "pce"}
        assert isinstance(
            resolve_reducer(spec, "moments"), MomentsReducer
        )

    def test_invalid_options_rejected(self, toy_spec):
        with pytest.raises(CampaignError, match="invalid options"):
            resolve_reducer(toy_spec, {"kind": "moments", "bogus": 1})

    def test_custom_reducer_registrable(self, toy_spec):
        @register_reducer("test-count")
        class CountReducer(Reducer):
            kind = "test-count"

            def __init__(self, spec):
                self.count = 0

            def fold(self, indices, outputs):
                self.count += len(indices)

            def finalize(self, spec, parameters, num_evaluated):
                return self.count

        try:
            assert run_campaign(toy_spec, reducer="test-count") == \
                toy_spec.num_samples
        finally:
            from repro.campaign import reducer as reducer_module

            reducer_module._REDUCERS.pop("test-count", None)

    def test_jansen_requires_sensitivity_spec(self, toy_spec):
        with pytest.raises(CampaignError, match="SensitivitySpec"):
            JansenReducer(toy_spec)

    def test_spec_reducer_field_serializes_only_when_set(self):
        spec = make_toy_spec()
        assert "reducer" not in spec.to_dict()
        pinned = CampaignSpec.from_dict(
            {**spec.to_dict(), "reducer": {"kind": "pce", "degree": 4}}
        )
        assert pinned.to_dict()["reducer"] == {"kind": "pce", "degree": 4}
        round_trip = CampaignSpec.from_json(pinned.to_json())
        assert round_trip.reducer == {"kind": "pce", "degree": 4}


class TestStateRoundTrip:
    def test_moments_state_continues_bitwise(self, toy_spec):
        chunks = [
            evaluate_chunk(resolve_model(toy_spec.scenario), chunk)
            for chunk in campaign_chunks(toy_spec)
        ]
        reference = MomentsReducer(toy_spec)
        for chunk in chunks:
            reference.fold(chunk.indices, chunk.outputs)

        half = MomentsReducer(toy_spec)
        for chunk in chunks[:2]:
            half.fold(chunk.indices, chunk.outputs)
        restored = MomentsReducer(toy_spec)
        restored.load_state_dict(half.state_dict())
        for chunk in chunks[2:]:
            restored.fold(chunk.indices, chunk.outputs)
        assert np.array_equal(reference.statistics.mean,
                              restored.statistics.mean)
        assert np.array_equal(reference.statistics.std(),
                              restored.statistics.std())

    @pytest.mark.parametrize("qoi", ["test-scalar-sum", "identity"])
    def test_jansen_state_continues_bitwise(self, qoi):
        """Both accumulator representations (scalar fast path and the
        vector arrays) snapshot and continue exactly."""
        spec = make_toy_sensitivity_spec(qoi=qoi)
        chunks = [
            evaluate_chunk(resolve_model(spec.scenario), chunk)
            for chunk in campaign_chunks(spec)
        ]
        reference = JansenReducer(spec, num_bootstrap=0)
        for chunk in chunks:
            reference.fold(chunk.indices, chunk.outputs)

        half = JansenReducer(spec, num_bootstrap=0)
        for chunk in chunks[:3]:
            half.fold(chunk.indices, chunk.outputs)
        restored = JansenReducer(spec, num_bootstrap=0)
        restored.load_state_dict(half.state_dict())
        for chunk in chunks[3:]:
            restored.fold(chunk.indices, chunk.outputs)

        parameters = np.empty((spec.num_samples, spec.dimension))
        a = reference.finalize(spec, parameters, 0)
        b = restored.finalize(spec, parameters, 0)
        assert np.array_equal(a.first_order, b.first_order)
        assert np.array_equal(a.total, b.total)

    def test_merge_contract(self, toy_spec, toy_sensitivity_spec):
        first = MomentsReducer(toy_spec).fold([0], np.ones((1, 2)))
        second = MomentsReducer(toy_spec).fold([1], 3 * np.ones((1, 2)))
        merged = first.merge(second)
        assert merged.statistics.count == 2
        with pytest.raises(CampaignError, match="fixed order"):
            JansenReducer(toy_sensitivity_spec).merge(
                JansenReducer(toy_sensitivity_spec)
            )


class TestUnifiedEquivalenceMatrix:
    """Acceptance: one runner, every backend, bit for bit."""

    def _reference(self, spec):
        return run_campaign(spec, executor="serial")

    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_backends_match_serial_bitwise(self, backend):
        spec = make_toy_sensitivity_spec()
        reference = self._reference(spec)
        result = run_campaign(spec, executor=make_executor(backend, 4))
        assert np.array_equal(reference.first_order, result.first_order)
        assert np.array_equal(reference.total, result.total)
        assert np.array_equal(reference.parameters, result.parameters)
        assert np.array_equal(reference.interval.total_lower,
                              result.interval.total_lower)
        assert np.array_equal(reference.interval.first_order_upper,
                              result.interval.first_order_upper)

    def test_futures_adapter_instance_matches_serial(self):
        """A caller-owned concurrent.futures executor ducks in through
        the generic adapter and reproduces serial bit for bit."""
        spec = make_toy_sensitivity_spec()
        reference = self._reference(spec)
        with ThreadPoolExecutor(max_workers=4) as pool:
            result = run_campaign(
                spec, executor=FuturesExecutor(pool)
            )
        assert np.array_equal(reference.first_order, result.first_order)
        assert np.array_equal(reference.interval.total_upper,
                              result.interval.total_upper)

    def test_kill_resume_at_chunk_boundaries(self, tmp_path):
        """Every partial prefix of checkpointed chunks resumes to the
        uninterrupted result, across backends."""
        spec = make_toy_sensitivity_spec(num_base_samples=8, chunk_size=9)
        reference = self._reference(spec)
        model = resolve_model(spec.scenario)
        for boundary in range(spec.num_chunks):
            store = ArtifactStore(tmp_path / f"kill-{boundary}")
            store.initialize(spec)
            for chunk in campaign_chunks(spec, range(boundary)):
                store.write_chunk(evaluate_chunk(model, chunk))
            resumed = resume_campaign(
                store,
                executor=ParallelExecutor(num_workers=2)
                if boundary % 2 else None,
            )
            assert isinstance(resumed, SensitivityResult)
            assert np.array_equal(reference.first_order,
                                  resumed.first_order)
            assert np.array_equal(reference.total, resumed.total)
            assert np.array_equal(reference.interval.total_lower,
                                  resumed.interval.total_lower)

    def test_moments_campaign_unchanged_by_redesign(self, toy_spec):
        """The unified path reproduces the classic per-chunk Welford +
        ordered Chan merge reduction exactly."""
        from repro.uq.statistics import RunningStatistics

        result = run_campaign(toy_spec)
        statistics = RunningStatistics()
        for chunk in campaign_chunks(toy_spec):
            outputs = evaluate_chunk(
                resolve_model(toy_spec.scenario), chunk
            ).outputs
            chunk_statistics = RunningStatistics()
            for row in range(outputs.shape[0]):
                chunk_statistics.update(outputs[row])
            statistics.merge(chunk_statistics)
        assert np.array_equal(result.mean, statistics.mean)
        assert np.array_equal(result.std, statistics.std())


class TestReducerCheckpoint:
    def test_streaming_reduction_is_checkpointed(self, tmp_path):
        spec = make_toy_sensitivity_spec()
        store = ArtifactStore(tmp_path / "store")
        result = run_campaign(spec, store=store,
                              reducer={"kind": "jansen",
                                       "num_bootstrap": 0})
        meta, arrays = store.read_reducer_state()
        assert meta["next_chunk"] == spec.num_chunks
        assert meta["reducer"]["kind"] == "jansen"

        # The snapshot alone reconstructs the reduction bit for bit.
        restored = JansenReducer(spec, num_bootstrap=0)
        restored.load_state_dict({
            key: value for key, value in arrays.items()
            if key != "__parameters__"
        })
        finalized = restored.finalize(
            spec, arrays["__parameters__"], 0
        )
        assert np.array_equal(result.first_order, finalized.first_order)
        assert np.array_equal(result.total, finalized.total)
        assert np.array_equal(result.parameters, arrays["__parameters__"])

    def test_resume_restores_reduction_without_rereading_chunks(
            self, tmp_path, monkeypatch):
        spec = make_toy_sensitivity_spec()
        store = ArtifactStore(tmp_path / "store")
        reducer = {"kind": "jansen", "num_bootstrap": 0}
        first = run_campaign(spec, store=store, reducer=reducer)

        reads = []
        original = ArtifactStore.read_chunk

        def counting_read(self, chunk_index):
            reads.append(chunk_index)
            return original(self, chunk_index)

        monkeypatch.setattr(ArtifactStore, "read_chunk", counting_read)
        again = resume_campaign(store, reducer=reducer)
        assert reads == []  # the reduction came from the snapshot
        assert again.num_evaluated == 0
        assert np.array_equal(first.first_order, again.first_order)

    def test_mismatched_checkpoint_is_ignored(self, tmp_path):
        """A snapshot from a different reducer config never leaks into
        the reduction -- the chunks are re-folded instead."""
        spec = make_toy_sensitivity_spec()
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store,
                     reducer={"kind": "jansen", "num_bootstrap": 0})
        reference = run_campaign(spec)  # default: bootstrap from spec
        resumed = resume_campaign(store)  # config differs from snapshot
        assert resumed.interval is not None
        assert np.array_equal(reference.first_order, resumed.first_order)
        assert np.array_equal(reference.interval.total_lower,
                              resumed.interval.total_lower)

    def test_bootstrap_reducer_not_checkpointed(self, tmp_path):
        spec = make_toy_sensitivity_spec()
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store)  # spec default: bootstrap on
        assert store.read_reducer_state() is None


class TestPCEReducer:
    def _uniform_spec(self, **kwargs):
        """Toy campaign over uniform inputs: the Legendre germ equals a
        linear map of the parameters, so low-degree polynomials are
        represented exactly."""
        return make_toy_spec(
            options=None, qoi="test-first-entry", **kwargs
        )

    def test_linear_model_recovers_equal_shares(self):
        spec = make_toy_spec(num_samples=64, qoi="test-first-entry")
        spec.distribution = {"kind": "uniform", "lower": -1.0,
                             "upper": 1.0}
        result = run_campaign(spec, reducer={"kind": "pce", "degree": 2})
        assert isinstance(result, SurrogateResult)
        # f = sum(p): each of the 4 iid inputs carries exactly 1/4.
        assert np.allclose(result.first_order.ravel(), 0.25, atol=1e-8)
        assert np.allclose(result.total.ravel(), 0.25, atol=1e-8)
        assert result.num_evaluated == spec.num_samples

    def test_surrogate_is_callable(self):
        spec = make_toy_spec(num_samples=64, qoi="test-first-entry")
        spec.distribution = {"kind": "uniform", "lower": -1.0,
                             "upper": 1.0}
        result = run_campaign(spec, reducer={"kind": "pce", "degree": 2})
        point = np.array([0.3, -0.2, 0.1, 0.4])
        assert result(point) == pytest.approx(point.sum(), abs=1e-8)

    def test_refit_from_existing_store_without_solves(self, tmp_path):
        """The ROADMAP surrogate mode: a PCE re-reduce of an existing
        campaign store performs zero fresh evaluations."""
        spec = make_toy_spec(num_samples=64, qoi="test-first-entry")
        store = ArtifactStore(tmp_path / "store")
        run_campaign(spec, store=store)  # moments campaign fills chunks
        surrogate = resume_campaign(
            store, reducer={"kind": "pce", "degree": 2}
        )
        assert isinstance(surrogate, SurrogateResult)
        assert surrogate.num_evaluated == 0
        summary = store.read_summary()
        assert summary["kind"] == "pce"

    def test_incomplete_stream_rejected(self, toy_spec):
        reducer = PCEReducer(toy_spec, degree=1)
        reducer.fold([0, 1], np.ones((2, 3)))
        with pytest.raises(CampaignError, match="incomplete"):
            reducer.finalize(toy_spec, None, 0)

    def test_invalid_degree_rejected(self, toy_spec):
        with pytest.raises(CampaignError):
            PCEReducer(toy_spec, degree=0)

    def test_ishigami_indices_within_bootstrap_intervals(self):
        """Acceptance: the surrogate's analytic Sobol indices land
        inside the seeded 95% bootstrap CIs of the Saltelli campaign on
        the Ishigami fixture -- at a fraction of its solve count."""
        scenario = ScenarioSpec(
            problem="ishigami", qoi="identity",
            module="repro.uq.analytic",
        )
        from repro.campaign.sensitivity import SensitivitySpec

        saltelli = SensitivitySpec(
            name="ishigami-jansen", scenario=scenario,
            distribution=ishigami_distribution(), dimension=3,
            num_base_samples=256, seed=11, chunk_size=256,
            num_bootstrap=200,
        )
        jansen = run_campaign(saltelli)

        pce_spec = CampaignSpec(
            name="ishigami-pce", scenario=scenario,
            distribution=ishigami_distribution(), dimension=3,
            num_samples=330, seed=11, chunk_size=64, sampler="random",
            reducer={"kind": "pce", "degree": 8},
        )
        surrogate = run_campaign(pce_spec)
        assert pce_spec.num_samples < saltelli.num_samples / 3

        truth = ishigami_indices()
        # Accurate against ground truth...
        assert np.allclose(surrogate.first_order,
                           truth["first_order"], atol=0.02)
        assert np.allclose(surrogate.total, truth["total"], atol=0.02)
        # ...and inside the Saltelli campaign's seeded bootstrap CIs.
        interval = jansen.interval
        assert np.all(surrogate.first_order
                      >= interval.first_order_lower - 1e-12)
        assert np.all(surrogate.first_order
                      <= interval.first_order_upper + 1e-12)
        assert np.all(surrogate.total >= interval.total_lower - 1e-12)
        assert np.all(surrogate.total <= interval.total_upper + 1e-12)

    def test_summary_and_report(self, capsys):
        from repro.reporting import format_pce_summary

        spec = make_toy_spec(num_samples=64, qoi="test-first-entry")
        spec.distribution = {"kind": "uniform", "lower": 0.0,
                             "upper": 1.0}
        result = run_campaign(spec, reducer={"kind": "pce", "degree": 2})
        summary = result.summary()
        assert summary["kind"] == "pce"
        assert summary["degree"] == 2
        assert len(summary["first_order"]) == spec.dimension
        text = format_pce_summary(summary)
        assert "PCE surrogate campaign" in text
        assert "Surrogate Sobol indices" in text

    def test_vector_qoi_per_component(self):
        spec = make_toy_spec(num_samples=80, qoi="identity")
        spec.distribution = {"kind": "uniform", "lower": -1.0,
                             "upper": 1.0}
        result = run_campaign(spec, reducer={"kind": "pce", "degree": 3})
        assert result.first_order.shape == (spec.dimension, 3)
        with pytest.raises(CampaignError):
            result.ranking()
        assert len(result.ranking(component=0)) == spec.dimension


class TestIshigamiScenarioSanity:
    def test_closed_forms_are_finite(self):
        truth = ishigami_indices()
        assert math.isclose(float(np.sum(truth["first_order"])
                                  + truth["second_order"][(0, 2)]), 1.0,
                            rel_tol=1e-12)
