"""Campaigns over the real Date16 problem.

The quick test keeps the default suite fast; the ``slow``-marked test is
the PR acceptance campaign (64 samples, 4 workers, kill + resume), run
with ``pytest -m slow tests/campaign/test_date16_campaign.py``.
"""

import numpy as np
import pytest

from repro.campaign import (
    ArtifactStore,
    ParallelExecutor,
    SerialExecutor,
    resume_campaign,
    run_campaign,
)
from repro.campaign.executor import evaluate_chunk, resolve_model
from repro.campaign.runner import campaign_chunks
from repro.package3d.scenarios import date16_campaign_spec
from repro.package3d.uq_study import Date16UncertaintyStudy


def test_parameter_overrides_reach_the_worker_model():
    """Custom Date16Parameters shape the built problem, not just sampling."""
    from repro.package3d.chip_example import Date16Parameters
    from repro.package3d.scenarios import build_date16_model

    custom = Date16Parameters(pair_voltage=0.08)
    spec = date16_campaign_spec(num_samples=2, parameters=custom)
    assert spec.scenario.options["parameters"]["pair_voltage"] == 0.08
    # The spec round-trips through JSON with the overrides intact.
    import json

    rebuilt = json.loads(spec.to_json())
    assert rebuilt["scenario"]["options"]["parameters"]["pair_voltage"] == 0.08

    model = build_date16_model(spec.scenario)
    study = model.__self__
    assert study.parameters.pair_voltage == 0.08


def test_small_serial_campaign_matches_study(tmp_path):
    """A 3-sample campaign equals the in-process study on the same deltas."""
    spec = date16_campaign_spec(num_samples=3, chunk_size=2, qoi="final")
    result = run_campaign(spec, store=tmp_path / "store")

    study = Date16UncertaintyStudy(resolution="coarse", tolerance=1e-3)
    outputs = np.stack(
        [study.evaluate_traces(row)[-1] for row in result.parameters]
    )
    assert result.mean.shape == (12,)
    assert np.allclose(result.mean, outputs.mean(axis=0), rtol=0, atol=1e-9)
    assert np.allclose(result.std, outputs.std(axis=0, ddof=1),
                       rtol=0, atol=1e-9)
    # Sanity: the wires heat up from ambient.
    assert np.all(result.mean > 300.0)


@pytest.mark.slow
def test_acceptance_64_samples_parallel_and_resume(tmp_path):
    """The PR acceptance criterion, end to end."""
    spec = date16_campaign_spec(num_samples=64, chunk_size=4, qoi="final")

    serial = run_campaign(spec, store=tmp_path / "serial",
                          executor=SerialExecutor())
    parallel = run_campaign(spec, store=tmp_path / "parallel",
                            executor=ParallelExecutor(num_workers=4))
    assert np.allclose(serial.mean, parallel.mean, rtol=0, atol=1e-12)
    assert np.allclose(serial.std, parallel.std, rtol=0, atol=1e-12)

    # Killed-then-resumed: checkpoint 5 of 16 chunks, then resume.
    store = ArtifactStore(tmp_path / "resumed").initialize(spec)
    model = resolve_model(spec.scenario)
    for chunk in campaign_chunks(spec, [0, 3, 7, 11, 15]):
        store.write_chunk(evaluate_chunk(model, chunk))
    resumed = resume_campaign(store, executor=ParallelExecutor(num_workers=4))
    assert resumed.num_evaluated == 44
    assert np.array_equal(resumed.mean, serial.mean)
    assert np.array_equal(resumed.std, serial.std)


def test_adaptive_campaign_bit_identical_across_backends(tmp_path):
    """Adaptive-scenario campaigns stay deterministic: serial and
    process backends agree bitwise, and a killed-then-resumed run
    reproduces the uninterrupted statistics exactly."""
    spec = date16_campaign_spec(
        num_samples=4, chunk_size=2, qoi="final",
        time_stepping="adaptive",
    )
    serial = run_campaign(spec, store=tmp_path / "serial",
                          executor=SerialExecutor())
    parallel = run_campaign(spec, store=tmp_path / "parallel",
                            executor=ParallelExecutor(num_workers=2))
    assert np.array_equal(serial.mean, parallel.mean)
    assert np.array_equal(serial.std, parallel.std)

    # Kill after the first chunk, then resume.
    store = ArtifactStore(tmp_path / "resumed").initialize(spec)
    model = resolve_model(spec.scenario)
    for chunk in campaign_chunks(spec, [0]):
        store.write_chunk(evaluate_chunk(model, chunk))
    resumed = resume_campaign(store, executor=SerialExecutor())
    assert resumed.num_evaluated == 2
    assert np.array_equal(resumed.mean, serial.mean)
    assert np.array_equal(resumed.std, serial.std)

    # Adaptive really ran: the wires still heat up from ambient and the
    # result is close to (but cheaper than) the fixed-grid campaign.
    assert np.all(serial.mean > 300.0)
