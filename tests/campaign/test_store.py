"""Tests for the resumable artifact store."""

import os

import numpy as np
import pytest

from repro.campaign import ArtifactStore
from repro.campaign.executor import ChunkResult
from repro.errors import CampaignError

from .conftest import make_toy_spec


def _chunk(index, rows=3, dim=4, width=3):
    rng = np.random.default_rng(index)
    return ChunkResult(
        index,
        np.arange(index * rows, (index + 1) * rows),
        rng.random((rows, dim)),
        rng.random((rows, width)),
    )


class TestLifecycle:
    def test_initialize_creates_manifest(self, tmp_path, toy_spec):
        store = ArtifactStore(tmp_path / "store")
        assert not store.exists()
        store.initialize(toy_spec)
        assert store.exists()
        assert store.load_spec().to_dict() == toy_spec.to_dict()

    def test_initialize_is_idempotent(self, tmp_path, toy_spec):
        store = ArtifactStore(tmp_path / "store")
        store.initialize(toy_spec)
        store.initialize(toy_spec)  # same spec: fine
        assert store.completed_chunks() == []

    def test_spec_mismatch_refused(self, tmp_path, toy_spec):
        store = ArtifactStore(tmp_path / "store")
        store.initialize(toy_spec)
        different = make_toy_spec(num_samples=99)
        with pytest.raises(CampaignError):
            store.initialize(different)

    def test_non_spec_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            ArtifactStore(tmp_path / "s").initialize({"name": "nope"})


class TestChunks:
    def test_write_read_round_trip(self, tmp_path, toy_spec):
        store = ArtifactStore(tmp_path / "store").initialize(toy_spec)
        original = _chunk(2)
        store.write_chunk(original)
        indices, parameters, outputs = store.read_chunk(2)
        assert np.array_equal(indices, original.indices)
        assert np.array_equal(parameters, original.parameters)
        assert np.array_equal(outputs, original.outputs)

    def test_completed_chunks_sorted(self, tmp_path, toy_spec):
        store = ArtifactStore(tmp_path / "store").initialize(toy_spec)
        for index in (4, 0, 2):
            store.write_chunk(_chunk(index))
        assert store.completed_chunks() == [0, 2, 4]

    def test_no_partial_chunk_left_behind(self, tmp_path, toy_spec):
        """Atomicity: the chunk dir never contains stray .tmp files."""
        store = ArtifactStore(tmp_path / "store").initialize(toy_spec)
        store.write_chunk(_chunk(0))
        names = os.listdir(store.chunk_dir)
        assert names == ["chunk_000000.npz"]

    def test_missing_chunk_raises(self, tmp_path, toy_spec):
        store = ArtifactStore(tmp_path / "store").initialize(toy_spec)
        with pytest.raises(CampaignError):
            store.read_chunk(0)

    def test_foreign_files_ignored(self, tmp_path, toy_spec):
        store = ArtifactStore(tmp_path / "store").initialize(toy_spec)
        with open(os.path.join(store.chunk_dir, "notes.txt"), "w") as fh:
            fh.write("not a chunk\n")
        with open(os.path.join(store.chunk_dir, "chunk_bad.npz"), "w") as fh:
            fh.write("")
        assert store.completed_chunks() == []


class TestSummary:
    def test_round_trip(self, tmp_path, toy_spec):
        store = ArtifactStore(tmp_path / "store").initialize(toy_spec)
        payload = {"campaign": "toy", "num_samples": 24, "mean_max": 1.5}
        store.write_summary(payload)
        assert store.read_summary() == payload

    def test_missing_summary_raises(self, tmp_path, toy_spec):
        store = ArtifactStore(tmp_path / "store").initialize(toy_spec)
        with pytest.raises(CampaignError):
            store.read_summary()

    def test_corrupt_manifest_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        os.makedirs(store.path, exist_ok=True)
        with open(store.manifest_path, "w") as fh:
            fh.write("{not json")
        with pytest.raises(CampaignError):
            store.load_spec()
