"""Tests for the distributed Sobol sensitivity campaign subsystem."""

import numpy as np
import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignSpec,
    ParallelExecutor,
    SaltelliPlan,
    SensitivityResult,
    SensitivitySpec,
    SerialExecutor,
    resume_campaign,
    resume_sensitivity_campaign,
    run_campaign,
    run_sensitivity_campaign,
)
from repro.campaign.executor import evaluate_chunk, resolve_model
from repro.campaign.runner import campaign_chunks, campaign_parameters
from repro.errors import CampaignError
from repro.uq.sensitivity import saltelli_sample, sobol_indices

from .conftest import make_toy_sensitivity_spec


class TestSaltelliPlan:
    def test_layout(self):
        plan = SaltelliPlan(8, 3)
        assert plan.num_blocks == 5
        assert plan.num_evaluations == 40
        assert plan.block_of(0) == 0
        assert plan.block_of(8) == 1
        assert plan.block_of(16) == 2
        assert plan.row_of(17) == 1
        assert list(plan.block_range(1)) == list(range(8, 16))
        assert plan.block_label(0) == "A"
        assert plan.block_label(1) == "B"
        assert plan.block_label(4) == "AB_2"

    def test_every_index_covered_once(self):
        plan = SaltelliPlan(4, 2)
        covered = [g for block in range(plan.num_blocks)
                   for g in plan.block_range(block)]
        assert sorted(covered) == list(range(plan.num_evaluations))

    def test_compose_matches_saltelli_sample_bitwise(self):
        """The plan reproduces the in-process design from the same stream."""
        m, d = 8, 3
        a, b, ab = saltelli_sample(m, d, seed=11)
        base = np.concatenate([a, b])
        plan = SaltelliPlan(m, d)
        assert np.array_equal(
            plan.compose(base, plan.block_range(0)), a
        )
        assert np.array_equal(
            plan.compose(base, plan.block_range(1)), b
        )
        for i in range(d):
            assert np.array_equal(
                plan.compose(base, plan.block_range(2 + i)), ab[i]
            )

    def test_roundtrip_dict(self):
        plan = SaltelliPlan(16, 5)
        assert SaltelliPlan.from_dict(plan.to_dict()).to_dict() == \
            plan.to_dict()

    def test_validation(self):
        with pytest.raises(CampaignError):
            SaltelliPlan(1, 3)
        with pytest.raises(CampaignError):
            SaltelliPlan(4, 0)
        plan = SaltelliPlan(4, 2)
        with pytest.raises(CampaignError):
            plan.block_of(plan.num_evaluations)
        with pytest.raises(CampaignError):
            plan.block_range(plan.num_blocks)
        with pytest.raises(CampaignError):
            plan.compose(np.zeros((3, 2)), [0])


class TestSensitivitySpec:
    def test_derived_evaluation_budget(self, toy_sensitivity_spec):
        spec = toy_sensitivity_spec
        assert spec.num_samples == spec.num_base_samples * (spec.dimension + 2)
        assert spec.kind == "sensitivity"

    def test_json_roundtrip_dispatches_to_sensitivity(
            self, toy_sensitivity_spec):
        """The generic loader reconstructs the sensitivity subclass."""
        loaded = CampaignSpec.from_json(toy_sensitivity_spec.to_json())
        assert isinstance(loaded, SensitivitySpec)
        assert loaded.to_dict() == toy_sensitivity_spec.to_dict()

    def test_unknown_kind_rejected(self, toy_sensitivity_spec):
        data = toy_sensitivity_spec.to_dict()
        data["kind"] = "mystery"
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(data)

    def test_missing_base_samples_rejected(self, toy_sensitivity_spec):
        data = toy_sensitivity_spec.to_dict()
        del data["num_base_samples"]
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(data)

    def test_unit_points_partition_independent(self, toy_sensitivity_spec):
        full = campaign_parameters(toy_sensitivity_spec)
        subset = campaign_parameters(toy_sensitivity_spec, [0, 19, 95])
        assert np.array_equal(subset, full[[0, 19, 95]])

    def test_bootstrap_settings_persist_through_resume(self, tmp_path):
        """CIs are part of the pinned spec: a flag-less resume reproduces
        the original run's replicate count and bounds exactly."""
        base = make_toy_sensitivity_spec().to_dict()
        custom = SensitivitySpec.from_dict(
            {**base, "num_bootstrap": 37, "confidence": 0.9}
        )
        assert custom.to_dict()["num_bootstrap"] == 37
        store = ArtifactStore(tmp_path / "store")
        result = run_sensitivity_campaign(custom, store=store)
        assert result.interval.num_replicates == 37
        assert result.interval.confidence == 0.9
        resumed = resume_campaign(store)
        assert resumed.interval.num_replicates == 37
        assert np.array_equal(result.interval.total_lower,
                              resumed.interval.total_lower)
        assert np.array_equal(result.interval.first_order_upper,
                              resumed.interval.first_order_upper)

    def test_invalid_bootstrap_settings_rejected(self):
        base = make_toy_sensitivity_spec().to_dict()
        with pytest.raises(CampaignError):
            SensitivitySpec.from_dict({**base, "num_bootstrap": -1})
        with pytest.raises(CampaignError):
            SensitivitySpec.from_dict({**base, "confidence": 1.5})

    def test_counter_sampler_supported(self):
        spec = make_toy_sensitivity_spec(sampler="counter")
        full = campaign_parameters(spec)
        subset = campaign_parameters(spec, [5, 40])
        assert np.array_equal(subset, full[[5, 40]])
        # AB block rows equal the A row except in the swapped column.
        m, d = spec.num_base_samples, spec.dimension
        a = full[:m]
        b = full[m:2 * m]
        for i in range(d):
            block = full[(2 + i) * m:(3 + i) * m]
            assert np.array_equal(block[:, i], b[:, i])
            mask = np.arange(d) != i
            assert np.array_equal(block[:, mask], a[:, mask])


class TestEquivalenceWithInProcess:
    """The acceptance property: campaign == in-process, bit for bit."""

    def test_serial_campaign_matches_sobol_indices(
            self, toy_sensitivity_spec):
        spec = toy_sensitivity_spec
        model = resolve_model(spec.scenario)
        legacy = sobol_indices(
            model, spec.build_distribution(), spec.dimension,
            num_base_samples=spec.num_base_samples, seed=spec.seed,
        )
        result = run_sensitivity_campaign(spec, executor=SerialExecutor())
        assert np.array_equal(result.first_order, legacy.first_order)
        assert np.array_equal(result.total, legacy.total)
        assert result.variance == legacy.variance
        assert result.indices.num_evaluations == legacy.num_evaluations

    def test_four_worker_campaign_matches_sobol_indices(
            self, toy_sensitivity_spec):
        spec = toy_sensitivity_spec
        model = resolve_model(spec.scenario)
        legacy = sobol_indices(
            model, spec.build_distribution(), spec.dimension,
            num_base_samples=spec.num_base_samples, seed=spec.seed,
        )
        result = run_sensitivity_campaign(
            spec, executor=ParallelExecutor(num_workers=4)
        )
        assert np.array_equal(result.first_order, legacy.first_order)
        assert np.array_equal(result.total, legacy.total)

    def test_kill_resume_reproduces_uninterrupted(self, toy_sensitivity_spec,
                                                  tmp_path):
        spec = toy_sensitivity_spec
        uninterrupted = run_sensitivity_campaign(spec)

        # Simulate a killed run: only some chunks were checkpointed.
        store = ArtifactStore(tmp_path / "store").initialize(spec)
        model = resolve_model(spec.scenario)
        for chunk in campaign_chunks(spec, [0, 3, 5]):
            store.write_chunk(evaluate_chunk(model, chunk))

        resumed = resume_sensitivity_campaign(
            store, executor=ParallelExecutor(num_workers=2)
        )
        assert resumed.num_evaluated < spec.num_samples
        assert np.array_equal(resumed.first_order,
                              uninterrupted.first_order)
        assert np.array_equal(resumed.total, uninterrupted.total)
        assert np.array_equal(resumed.parameters, uninterrupted.parameters)
        # The seeded bootstrap intervals reproduce too.
        for name in ("first_order_lower", "first_order_upper",
                     "total_lower", "total_upper"):
            assert np.array_equal(
                getattr(resumed.interval, name),
                getattr(uninterrupted.interval, name),
            )

    def test_completed_store_re_reduces_without_evaluation(
            self, toy_sensitivity_spec, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = run_sensitivity_campaign(toy_sensitivity_spec, store=store)
        again = resume_sensitivity_campaign(store)
        assert again.num_evaluated == 0
        assert np.array_equal(first.first_order, again.first_order)
        assert store.read_summary() == first.summary()


class TestVectorQoI:
    def test_vector_indices_per_component(self):
        """Identity QoI: 3 output components, each reduced independently."""
        spec = make_toy_sensitivity_spec(qoi="identity")
        result = run_sensitivity_campaign(spec, num_bootstrap=10)
        d = spec.dimension
        assert result.first_order.shape == (d, 3)
        assert result.total.shape == (d, 3)
        assert np.asarray(result.variance).shape == (3,)
        assert result.interval.total_lower.shape == (d, 3)
        # Component 0 is the same scalar the "test-scalar-sum" QoI yields.
        scalar = run_sensitivity_campaign(
            make_toy_sensitivity_spec(qoi="test-scalar-sum"),
            num_bootstrap=0,
        )
        assert np.array_equal(result.first_order[:, 0],
                              scalar.first_order)
        assert np.array_equal(result.total[:, 0], scalar.total)

    def test_summary_reports_max_variance_component(self):
        spec = make_toy_sensitivity_spec(qoi="identity")
        result = run_sensitivity_campaign(spec, num_bootstrap=0)
        summary = result.summary()
        variance = np.asarray(result.variance)
        assert summary["argmax_output"] == int(np.argmax(variance))
        assert summary["output_size"] == 3
        assert len(summary["first_order"]) == spec.dimension
        assert summary["ranking"][0] == int(
            np.argmax(result.total[:, summary["argmax_output"]])
        )

    def test_constant_component_survives_end_to_end(self):
        """A campaign whose QoI carries a constant entry (the t=0 trace
        row case) completes and reports the varying component."""
        spec = make_toy_sensitivity_spec(qoi="test-constant-pad")
        result = run_sensitivity_campaign(spec, num_bootstrap=10)
        assert np.all(np.isnan(result.first_order[:, 1]))
        assert np.all(np.isfinite(result.total[:, 0]))
        summary = result.summary()
        assert summary["argmax_output"] == 0
        assert all(np.isfinite(summary["total"]))

    def test_ranking_requires_component_for_vector(self):
        spec = make_toy_sensitivity_spec(qoi="identity")
        result = run_sensitivity_campaign(spec, num_bootstrap=0)
        from repro.errors import SamplingError

        with pytest.raises(SamplingError):
            result.ranking()
        assert len(result.ranking(component=0)) == spec.dimension


class TestRunnerDispatch:
    def test_run_campaign_serves_sensitivity_spec(self,
                                                  toy_sensitivity_spec):
        """The unified runner dispatches on the spec kind: a sensitivity
        spec reduces through the default jansen reducer, reproducing the
        legacy entry point bit for bit."""
        unified = run_campaign(toy_sensitivity_spec)
        assert isinstance(unified, SensitivityResult)
        legacy = run_sensitivity_campaign(toy_sensitivity_spec)
        assert np.array_equal(unified.first_order, legacy.first_order)
        assert np.array_equal(unified.total, legacy.total)
        assert np.array_equal(unified.interval.total_lower,
                              legacy.interval.total_lower)

    def test_run_sensitivity_refuses_plain_spec(self):
        from .conftest import make_toy_spec

        with pytest.raises(CampaignError):
            run_sensitivity_campaign(make_toy_spec())

    def test_generic_resume_dispatches_to_sensitivity(
            self, toy_sensitivity_spec, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = run_sensitivity_campaign(toy_sensitivity_spec, store=store)
        resumed = resume_campaign(store)
        assert isinstance(resumed, SensitivityResult)
        assert np.array_equal(first.first_order, resumed.first_order)

    def test_resume_sensitivity_refuses_plain_store(self, tmp_path):
        from .conftest import make_toy_spec

        store = ArtifactStore(tmp_path / "store")
        run_campaign(make_toy_spec(), store=store)
        with pytest.raises(CampaignError):
            resume_sensitivity_campaign(store)


class TestSensitivityCli:
    @pytest.fixture
    def sensitivity_spec_path(self, tmp_path):
        spec = make_toy_sensitivity_spec(num_base_samples=8, chunk_size=6)
        return str(spec.save(tmp_path / "sens.json"))

    def test_sobol_run_and_report(self, sensitivity_spec_path, tmp_path,
                                  capsys):
        from repro.campaign.cli import main

        store = str(tmp_path / "store")
        assert main(["sobol", "run", sensitivity_spec_path, "--store",
                     store, "--quiet"]) == 0
        run_output = capsys.readouterr().out
        assert "Sobol indices" in run_output
        assert main(["sobol", "report", store]) == 0
        assert capsys.readouterr().out == run_output

    def test_sobol_resume(self, sensitivity_spec_path, tmp_path, capsys):
        from repro.campaign.cli import main
        from repro.campaign.spec import CampaignSpec as Spec

        spec = Spec.load(sensitivity_spec_path)
        store = ArtifactStore(str(tmp_path / "store")).initialize(spec)
        model = resolve_model(spec.scenario)
        for chunk in campaign_chunks(spec, [1]):
            store.write_chunk(evaluate_chunk(model, chunk))
        assert main(["sobol", "resume", store.path, "--quiet"]) == 0
        assert store.completed_chunks() == list(range(spec.num_chunks))
        assert "Sobol indices" in capsys.readouterr().out

    def test_sobol_run_rejects_plain_spec(self, tmp_path, capsys):
        from repro.campaign.cli import main

        from .conftest import make_toy_spec

        path = str(make_toy_spec().save(tmp_path / "plain.json"))
        assert main(["sobol", "run", path, "--quiet"]) == 1
        assert "not a sensitivity campaign" in capsys.readouterr().err

    def test_generic_run_routes_sensitivity_spec(self, sensitivity_spec_path,
                                                 capsys):
        from repro.campaign.cli import main

        assert main(["run", sensitivity_spec_path, "--quiet"]) == 0
        assert "Sobol indices" in capsys.readouterr().out

    def test_sobol_spec_template(self, tmp_path, capsys):
        from repro.campaign.cli import main

        out = tmp_path / "d16.json"
        assert main(["sobol", "spec", "date16", "--samples", "4",
                     "-o", str(out)]) == 0
        loaded = CampaignSpec.load(out)
        assert isinstance(loaded, SensitivitySpec)
        assert loaded.num_base_samples == 4
        assert loaded.dimension == 12
        assert loaded.scenario.qoi == "final"
        assert "wrote" in capsys.readouterr().out

    def test_sobol_spec_unknown_problem(self, tmp_path, capsys):
        from repro.campaign.cli import main

        assert main(["sobol", "spec", "mystery",
                     "-o", str(tmp_path / "x.json")]) == 2
        assert "no sensitivity spec template" in capsys.readouterr().err
