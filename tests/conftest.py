"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.fit.material_field import MaterialField
from repro.grid.tensor_grid import TensorGrid
from repro.materials.library import copper, epoxy_resin


@pytest.fixture
def small_grid():
    """A 4x3x3 uniform grid over a 2 x 1 x 1 mm box."""
    return TensorGrid.uniform(
        ((0.0, 2.0e-3), (0.0, 1.0e-3), (0.0, 1.0e-3)), (4, 3, 3)
    )


@pytest.fixture
def nonuniform_grid():
    """A grid with uneven spacing in every direction."""
    return TensorGrid(
        np.array([0.0, 0.4e-3, 0.9e-3, 2.0e-3]),
        np.array([0.0, 0.3e-3, 1.0e-3]),
        np.array([0.0, 0.5e-3, 0.7e-3, 1.0e-3]),
    )


@pytest.fixture
def copper_field(small_grid):
    """A homogeneous copper material field on the small grid."""
    return MaterialField(small_grid, copper())


@pytest.fixture
def mixed_field(small_grid):
    """Epoxy background with a copper bar through the middle."""
    field = MaterialField(small_grid, epoxy_resin())
    field.fill_box(
        ((0.0, 2.0e-3), (0.0, 1.0e-3), (0.0, 0.5e-3)), copper()
    )
    return field


@pytest.fixture
def rng():
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(42)
