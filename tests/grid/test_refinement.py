"""Tests for coordinate snapping, refinement and grading."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid.refinement import (
    geometric_spacing,
    refine_coordinates,
    snap_coordinates,
)


class TestSnapCoordinates:
    def test_required_points_present(self):
        coords = snap_coordinates([0.0, 0.31, 1.0], target_spacing=0.3)
        for required in (0.0, 0.31, 1.0):
            assert np.any(np.isclose(coords, required))

    def test_spacing_bound_respected(self):
        coords = snap_coordinates([0.0, 1.0], target_spacing=0.24)
        assert np.max(np.diff(coords)) <= 0.24 + 1e-12

    def test_monotone(self):
        coords = snap_coordinates([0.0, 0.5, 0.500000001, 1.0], 0.2)
        assert np.all(np.diff(coords) > 0.0)

    def test_near_duplicates_merged(self):
        coords = snap_coordinates([0.0, 0.5, 0.5 + 1e-15, 1.0], 0.5)
        assert np.all(np.diff(coords) > 1e-12)

    def test_extent_enforced(self):
        with pytest.raises(GridError):
            snap_coordinates([0.0, 2.0], 0.5, extent=(0.0, 1.0))

    def test_extent_added(self):
        coords = snap_coordinates([0.5], 1.0, extent=(0.0, 1.0))
        assert coords[0] == 0.0
        assert coords[-1] == 1.0

    def test_invalid_spacing(self):
        with pytest.raises(GridError):
            snap_coordinates([0.0, 1.0], 0.0)

    def test_single_point_rejected(self):
        with pytest.raises(GridError):
            snap_coordinates([0.5], 0.1)


class TestRefine:
    def test_factor_two_doubles_intervals(self):
        coords = np.array([0.0, 1.0, 3.0])
        refined = refine_coordinates(coords, 2)
        assert np.allclose(refined, [0.0, 0.5, 1.0, 2.0, 3.0])

    def test_factor_one_is_identity(self):
        coords = np.array([0.0, 0.4, 1.0])
        assert np.allclose(refine_coordinates(coords, 1), coords)

    def test_original_points_preserved(self):
        coords = np.array([0.0, 0.3, 0.7, 1.0])
        refined = refine_coordinates(coords, 3)
        for value in coords:
            assert np.any(np.isclose(refined, value))

    def test_invalid_factor(self):
        with pytest.raises(GridError):
            refine_coordinates([0.0, 1.0], 0)


class TestGeometricSpacing:
    def test_end_points(self):
        coords = geometric_spacing(0.0, 1.0, 0.1, 1.3)
        assert coords[0] == 0.0
        assert coords[-1] == 1.0

    def test_growing_intervals(self):
        coords = geometric_spacing(0.0, 10.0, 0.1, 1.5)
        diffs = np.diff(coords)
        # All but the trimmed last interval grow by the ratio.
        assert np.all(np.diff(diffs[:-1]) > 0.0)

    def test_invalid_arguments(self):
        with pytest.raises(GridError):
            geometric_spacing(1.0, 0.0, 0.1, 1.2)
        with pytest.raises(GridError):
            geometric_spacing(0.0, 1.0, -0.1, 1.2)
