"""Tests for flat-index arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid.indexing import GridIndexing
from repro.grid.tensor_grid import TensorGrid


@pytest.fixture
def indexing(small_grid):
    return GridIndexing(small_grid)


class TestNodeIndex:
    def test_origin(self, indexing):
        assert indexing.node_index(0, 0, 0) == 0

    def test_x_fastest(self, indexing):
        assert indexing.node_index(1, 0, 0) == 1
        nx = indexing.nx
        assert indexing.node_index(0, 1, 0) == nx
        assert indexing.node_index(0, 0, 1) == nx * indexing.ny

    def test_roundtrip_scalar(self, indexing):
        flat = indexing.node_index(2, 1, 2)
        assert indexing.node_ijk(flat) == (2, 1, 2)

    def test_roundtrip_arrays(self, indexing):
        i = np.array([0, 1, 3])
        j = np.array([0, 2, 1])
        k = np.array([0, 1, 2])
        flat = indexing.node_index(i, j, k)
        ri, rj, rk = indexing.node_ijk(flat)
        assert np.array_equal(ri, i)
        assert np.array_equal(rj, j)
        assert np.array_equal(rk, k)

    def test_out_of_range_rejected(self, indexing):
        with pytest.raises(GridError):
            indexing.node_index(99, 0, 0)
        with pytest.raises(GridError):
            indexing.node_index(-1, 0, 0)
        with pytest.raises(GridError):
            indexing.node_ijk(10_000)


class TestNearestNode:
    def test_exact_hit(self, small_grid, indexing):
        point = (small_grid.x[2], small_grid.y[1], small_grid.z[2])
        flat = indexing.nearest_node(point)
        assert indexing.node_ijk(flat) == (2, 1, 2)

    def test_off_grid_point(self, indexing, small_grid):
        # Slightly off the node: still snaps to the nearest one.
        point = (small_grid.x[1] + 1e-6, small_grid.y[0], small_grid.z[0])
        assert indexing.node_ijk(indexing.nearest_node(point))[0] == 1


class TestBoxQueries:
    def test_nodes_in_full_box(self, indexing, small_grid):
        nodes = indexing.nodes_in_box(small_grid.extent)
        assert nodes.size == small_grid.num_nodes

    def test_nodes_in_corner(self, indexing, small_grid):
        box = ((0.0, 0.0), (0.0, 0.0), (0.0, 0.0))
        nodes = indexing.nodes_in_box(box)
        assert nodes.size == 1
        assert nodes[0] == 0

    def test_nodes_in_empty_slot(self, indexing):
        # A box strictly between grid lines contains no nodes.
        box = ((1.0e-4, 2.0e-4), (1.0e-4, 2.0e-4), (1.0e-4, 2.0e-4))
        assert indexing.nodes_in_box(box).size == 0

    def test_cells_in_box(self, indexing, small_grid):
        cells = indexing.cells_in_box(small_grid.extent)
        assert cells.size == small_grid.num_cells

    def test_cells_in_half_box(self, indexing, small_grid):
        (x0, x1), (y0, y1), (z0, z1) = small_grid.extent
        half = ((x0, x1), (y0, y1), (z0, 0.5 * (z0 + z1)))
        cells = indexing.cells_in_box(half)
        assert cells.size == small_grid.num_cells // 2


class TestBoundary:
    def test_face_sizes(self, indexing, small_grid):
        nx, ny, nz = small_grid.shape
        assert indexing.boundary_nodes("x-").size == ny * nz
        assert indexing.boundary_nodes("x+").size == ny * nz
        assert indexing.boundary_nodes("y-").size == nx * nz
        assert indexing.boundary_nodes("z+").size == nx * ny

    def test_unknown_face(self, indexing):
        with pytest.raises(GridError):
            indexing.boundary_nodes("w+")

    def test_all_boundary_count(self, indexing, small_grid):
        nx, ny, nz = small_grid.shape
        interior = max(nx - 2, 0) * max(ny - 2, 0) * max(nz - 2, 0)
        boundary = indexing.all_boundary_nodes()
        assert boundary.size == small_grid.num_nodes - interior
        assert np.unique(boundary).size == boundary.size


class TestFieldReshape:
    def test_roundtrip(self, indexing, small_grid):
        values = np.arange(small_grid.num_nodes, dtype=float)
        array = indexing.node_field_as_array(values)
        assert array.shape == small_grid.shape
        assert array[1, 0, 0] == indexing.node_index(1, 0, 0)
        assert array[0, 1, 0] == indexing.node_index(0, 1, 0)
        assert array[0, 0, 1] == indexing.node_index(0, 0, 1)

    def test_wrong_size_rejected(self, indexing):
        with pytest.raises(GridError):
            indexing.node_field_as_array(np.zeros(5))


@given(
    i=st.integers(min_value=0, max_value=3),
    j=st.integers(min_value=0, max_value=2),
    k=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=30, deadline=None)
def test_property_index_roundtrip(i, j, k):
    grid = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (4, 3, 3))
    indexing = GridIndexing(grid)
    assert indexing.node_ijk(indexing.node_index(i, j, k)) == (i, j, k)
