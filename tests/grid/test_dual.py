"""Property tests for the dual-grid metrics (conservation structure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid.dual import DualGeometry, dual_widths, overlap_1d
from repro.grid.operators import edge_lengths
from repro.grid.tensor_grid import TensorGrid


class TestOverlap1D:
    def test_column_sums_are_cell_widths(self):
        x = np.array([0.0, 1.0, 3.0, 4.5])
        overlap = overlap_1d(x).toarray()
        assert np.allclose(overlap.sum(axis=0), np.diff(x))

    def test_row_sums_are_dual_widths(self):
        x = np.array([0.0, 1.0, 3.0, 4.5])
        overlap = overlap_1d(x).toarray()
        assert np.allclose(overlap.sum(axis=1), dual_widths(x))

    def test_dual_widths_sum_to_span(self):
        x = np.array([0.0, 0.2, 0.9, 1.4, 2.0])
        assert np.isclose(np.sum(dual_widths(x)), 2.0)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(GridError):
            overlap_1d([1.0])


class TestDualVolumes:
    def test_partition_of_unity(self, nonuniform_grid):
        dual = DualGeometry(nonuniform_grid)
        assert np.isclose(
            np.sum(dual.dual_volumes()), nonuniform_grid.total_volume
        )

    def test_overlap_operator_conserves_volume(self, nonuniform_grid):
        dual = DualGeometry(nonuniform_grid)
        overlap = dual.node_cell_overlap()
        col_sums = np.asarray(overlap.sum(axis=0)).ravel()
        row_sums = np.asarray(overlap.sum(axis=1)).ravel()
        assert np.allclose(col_sums, nonuniform_grid.cell_volumes())
        assert np.allclose(row_sums, dual.dual_volumes())

    def test_uniform_interior_volume(self):
        grid = TensorGrid.uniform(((0, 3), (0, 3), (0, 3)), (4, 4, 4))
        dual = DualGeometry(grid)
        volumes = dual.dual_volumes()
        # Interior node of a unit-spacing grid owns a unit dual cell.
        from repro.grid.indexing import GridIndexing

        indexing = GridIndexing(grid)
        interior = indexing.node_index(1, 1, 1)
        corner = indexing.node_index(0, 0, 0)
        assert np.isclose(volumes[interior], 1.0)
        assert np.isclose(volumes[corner], 0.125)


class TestFacetAreas:
    def test_facet_weight_row_sums(self, nonuniform_grid):
        dual = DualGeometry(nonuniform_grid)
        w_x, w_y, w_z = dual.facet_weight_operators()
        areas = dual.dual_facet_areas()
        n_ex, n_ey, n_ez = nonuniform_grid.num_edges_per_direction
        assert np.allclose(np.asarray(w_x.sum(axis=1)).ravel(), areas[:n_ex])
        assert np.allclose(
            np.asarray(w_y.sum(axis=1)).ravel(), areas[n_ex:n_ex + n_ey]
        )
        assert np.allclose(
            np.asarray(w_z.sum(axis=1)).ravel(), areas[n_ex + n_ey:]
        )

    def test_edge_volume_identity(self, nonuniform_grid):
        """sum(l_i * A_i) over each direction's edges = total volume."""
        dual = DualGeometry(nonuniform_grid)
        areas = dual.dual_facet_areas()
        lengths = edge_lengths(nonuniform_grid)
        n_ex, n_ey, n_ez = nonuniform_grid.num_edges_per_direction
        volume = nonuniform_grid.total_volume
        assert np.isclose(np.sum((areas * lengths)[:n_ex]), volume)
        assert np.isclose(
            np.sum((areas * lengths)[n_ex:n_ex + n_ey]), volume
        )
        assert np.isclose(np.sum((areas * lengths)[n_ex + n_ey:]), volume)


class TestBoundaryAreas:
    def test_face_area_sums(self, nonuniform_grid):
        dual = DualGeometry(nonuniform_grid)
        (x0, x1), (y0, y1), (z0, z1) = nonuniform_grid.extent
        expected = {
            "x-": (y1 - y0) * (z1 - z0),
            "x+": (y1 - y0) * (z1 - z0),
            "y-": (x1 - x0) * (z1 - z0),
            "y+": (x1 - x0) * (z1 - z0),
            "z-": (x1 - x0) * (y1 - y0),
            "z+": (x1 - x0) * (y1 - y0),
        }
        for face, area in expected.items():
            _, areas = dual.boundary_areas(face)
            assert np.isclose(np.sum(areas), area), face

    def test_total_surface(self, nonuniform_grid):
        dual = DualGeometry(nonuniform_grid)
        total = dual.all_boundary_areas()
        (x0, x1), (y0, y1), (z0, z1) = nonuniform_grid.extent
        lx, ly, lz = x1 - x0, y1 - y0, z1 - z0
        surface = 2.0 * (lx * ly + ly * lz + lx * lz)
        assert np.isclose(np.sum(total), surface)

    def test_interior_nodes_have_zero_area(self, small_grid):
        dual = DualGeometry(small_grid)
        total = dual.all_boundary_areas()
        from repro.grid.indexing import GridIndexing

        indexing = GridIndexing(small_grid)
        interior = indexing.node_index(1, 1, 1)
        assert total[interior] == 0.0


@given(
    widths_x=st.lists(
        st.floats(min_value=0.05, max_value=3.0), min_size=1, max_size=5
    ),
    widths_y=st.lists(
        st.floats(min_value=0.05, max_value=3.0), min_size=1, max_size=4
    ),
)
@settings(max_examples=20, deadline=None)
def test_property_conservation_any_spacing(widths_x, widths_y):
    """Volume partition and surface sums hold for arbitrary grids."""
    x = np.concatenate([[0.0], np.cumsum(widths_x)])
    y = np.concatenate([[0.0], np.cumsum(widths_y)])
    grid = TensorGrid(x, y, [0.0, 0.7, 1.3])
    dual = DualGeometry(grid)
    assert np.isclose(np.sum(dual.dual_volumes()), grid.total_volume)
    overlap = dual.node_cell_overlap()
    assert np.allclose(
        np.asarray(overlap.sum(axis=0)).ravel(), grid.cell_volumes()
    )
