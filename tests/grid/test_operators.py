"""Property tests for the FIT topological operators (the Fig. 1 house)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.operators import (
    build_divergence,
    build_gradient,
    check_house_duality,
    directional_gradients,
    edge_directions,
    edge_lengths,
    gradient_row_sums,
)
from repro.grid.tensor_grid import TensorGrid


def _random_grid(nx, ny, nz, seed=0):
    rng = np.random.default_rng(seed)
    def axis(n):
        return np.concatenate([[0.0], np.cumsum(rng.uniform(0.1, 2.0, n - 1))])
    return TensorGrid(axis(nx), axis(ny), axis(nz))


class TestGradientStructure:
    def test_shape(self, small_grid):
        g = build_gradient(small_grid)
        assert g.shape == (small_grid.num_edges, small_grid.num_nodes)

    def test_entries_are_plus_minus_one(self, small_grid):
        g = build_gradient(small_grid).tocoo()
        assert set(np.unique(g.data)) == {-1.0, 1.0}

    def test_two_entries_per_row(self, small_grid):
        g = build_gradient(small_grid).tocsr()
        nnz_per_row = np.diff(g.indptr)
        assert np.all(nnz_per_row == 2)

    def test_constant_in_kernel(self, small_grid):
        g = build_gradient(small_grid)
        constant = np.ones(small_grid.num_nodes)
        assert np.allclose(g @ constant, 0.0)

    def test_row_sums_zero(self, small_grid):
        assert np.allclose(gradient_row_sums(small_grid), 0.0)

    def test_directional_blocks_stack(self, small_grid):
        gx, gy, gz = directional_gradients(small_grid)
        g = build_gradient(small_grid)
        n_ex, n_ey, n_ez = small_grid.num_edges_per_direction
        assert gx.shape[0] == n_ex
        assert gy.shape[0] == n_ey
        assert gz.shape[0] == n_ez
        assert (g[:n_ex] - gx).nnz == 0


class TestLinearExactness:
    def test_gradient_of_linear_function(self, nonuniform_grid):
        """G applied to a linear nodal field gives exact edge differences."""
        grid = nonuniform_grid
        coords = grid.node_coordinates()
        field = 2.0 * coords[:, 0] - 3.0 * coords[:, 1] + 0.5 * coords[:, 2]
        differences = build_gradient(grid) @ field
        lengths = edge_lengths(grid)
        directions = edge_directions(grid)
        slopes = np.array([2.0, -3.0, 0.5])
        assert np.allclose(differences, slopes[directions] * lengths)


class TestHouseDuality:
    def test_duality_exact(self, small_grid):
        assert check_house_duality(small_grid) == 0.0

    def test_duality_nonuniform(self, nonuniform_grid):
        assert check_house_duality(nonuniform_grid) == 0.0

    def test_divergence_shape(self, small_grid):
        s = build_divergence(small_grid)
        assert s.shape == (small_grid.num_nodes, small_grid.num_edges)

    def test_divergence_of_gradient_symmetric(self, small_grid):
        """-S G = G^T G is the (SPSD) combinatorial Laplacian."""
        g = build_gradient(small_grid)
        s = build_divergence(small_grid)
        laplacian = (-(s @ g)).toarray()
        assert np.allclose(laplacian, laplacian.T)
        eigenvalues = np.linalg.eigvalsh(laplacian)
        assert eigenvalues[0] > -1e-12
        # Exactly one zero eigenvalue: the connected-grid constant mode.
        assert np.sum(np.abs(eigenvalues) < 1e-9) == 1


class TestEdgeMetrics:
    def test_edge_lengths_positive(self, nonuniform_grid):
        lengths = edge_lengths(nonuniform_grid)
        assert lengths.shape == (nonuniform_grid.num_edges,)
        assert np.all(lengths > 0.0)

    def test_edge_lengths_values(self):
        grid = TensorGrid([0.0, 1.0, 3.0], [0.0, 5.0], [0.0, 7.0])
        lengths = edge_lengths(grid)
        n_ex, n_ey, n_ez = grid.num_edges_per_direction
        assert np.allclose(np.unique(lengths[:n_ex]), [1.0, 2.0])
        assert np.allclose(lengths[n_ex:n_ex + n_ey], 5.0)
        assert np.allclose(lengths[n_ex + n_ey:], 7.0)

    def test_edge_directions_counts(self, small_grid):
        directions = edge_directions(small_grid)
        n_ex, n_ey, n_ez = small_grid.num_edges_per_direction
        assert np.sum(directions == 0) == n_ex
        assert np.sum(directions == 1) == n_ey
        assert np.sum(directions == 2) == n_ez


@given(
    nx=st.integers(min_value=2, max_value=5),
    ny=st.integers(min_value=2, max_value=5),
    nz=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=20, deadline=None)
def test_property_house_duality_any_grid(nx, ny, nz, seed):
    """G = -S_dual^T holds exactly for arbitrary non-uniform grids."""
    grid = _random_grid(nx, ny, nz, seed)
    assert check_house_duality(grid) == 0.0


@given(
    nx=st.integers(min_value=2, max_value=5),
    ny=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=20, deadline=None)
def test_property_gradient_kernel_is_constants(nx, ny, seed):
    """The only kernel vector of G is the constant field."""
    grid = _random_grid(nx, ny, 3, seed)
    g = build_gradient(grid).toarray()
    _, singular_values, _ = np.linalg.svd(g)
    # rank = num_nodes - 1 for a connected grid
    assert np.sum(singular_values > 1e-10) == grid.num_nodes - 1
