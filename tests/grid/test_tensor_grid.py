"""Tests for the tensor-product grid container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid.tensor_grid import TensorGrid


class TestValidation:
    def test_rejects_non_monotone_axis(self):
        with pytest.raises(GridError):
            TensorGrid([0.0, 1.0, 0.5], [0.0, 1.0], [0.0, 1.0])

    def test_rejects_duplicate_coordinates(self):
        with pytest.raises(GridError):
            TensorGrid([0.0, 1.0, 1.0], [0.0, 1.0], [0.0, 1.0])

    def test_rejects_single_node_axis(self):
        with pytest.raises(GridError):
            TensorGrid([0.0], [0.0, 1.0], [0.0, 1.0])

    def test_rejects_non_finite(self):
        with pytest.raises(GridError):
            TensorGrid([0.0, np.nan], [0.0, 1.0], [0.0, 1.0])

    def test_rejects_2d_axis(self):
        with pytest.raises(GridError):
            TensorGrid([[0.0, 1.0]], [0.0, 1.0], [0.0, 1.0])


class TestCounts:
    def test_shape_and_counts(self):
        grid = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (4, 3, 2))
        assert grid.shape == (4, 3, 2)
        assert grid.num_nodes == 24
        assert grid.cell_shape == (3, 2, 1)
        assert grid.num_cells == 6

    def test_edge_counts(self):
        grid = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (4, 3, 2))
        n_ex, n_ey, n_ez = grid.num_edges_per_direction
        assert n_ex == 3 * 3 * 2
        assert n_ey == 4 * 2 * 2
        assert n_ez == 4 * 3 * 1
        assert grid.num_edges == n_ex + n_ey + n_ez

    def test_minimal_grid(self):
        grid = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (2, 2, 2))
        assert grid.num_nodes == 8
        assert grid.num_cells == 1
        assert grid.num_edges == 12


class TestGeometry:
    def test_spacings(self):
        grid = TensorGrid([0.0, 1.0, 3.0], [0.0, 2.0], [0.0, 1.0, 2.0])
        assert np.allclose(grid.dx, [1.0, 2.0])
        assert np.allclose(grid.dy, [2.0])
        assert np.allclose(grid.dz, [1.0, 1.0])

    def test_cell_volumes_sum_to_total(self, nonuniform_grid):
        volumes = nonuniform_grid.cell_volumes()
        assert volumes.shape == (nonuniform_grid.num_cells,)
        assert np.all(volumes > 0.0)
        assert np.isclose(np.sum(volumes), nonuniform_grid.total_volume)

    def test_node_coordinates_order(self):
        grid = TensorGrid([0.0, 1.0], [0.0, 2.0], [0.0, 3.0])
        coords = grid.node_coordinates()
        # x varies fastest
        assert np.allclose(coords[0], [0.0, 0.0, 0.0])
        assert np.allclose(coords[1], [1.0, 0.0, 0.0])
        assert np.allclose(coords[2], [0.0, 2.0, 0.0])
        assert np.allclose(coords[4], [0.0, 0.0, 3.0])

    def test_cell_centers(self):
        grid = TensorGrid([0.0, 2.0], [0.0, 4.0], [0.0, 6.0])
        centers = grid.cell_centers()
        assert centers.shape == (1, 3)
        assert np.allclose(centers[0], [1.0, 2.0, 3.0])

    def test_extent(self, nonuniform_grid):
        (x0, x1), (y0, y1), (z0, z1) = nonuniform_grid.extent
        assert (x0, x1) == (0.0, 2.0e-3)
        assert (y0, y1) == (0.0, 1.0e-3)
        assert (z0, z1) == (0.0, 1.0e-3)


class TestEquality:
    def test_equal_grids(self):
        a = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (3, 3, 3))
        b = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (3, 3, 3))
        assert a == b

    def test_unequal_grids(self):
        a = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (3, 3, 3))
        b = TensorGrid.uniform(((0, 1), (0, 1), (0, 1)), (3, 3, 4))
        assert a != b


@given(
    nx=st.integers(min_value=2, max_value=6),
    ny=st.integers(min_value=2, max_value=6),
    nz=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_property_counts_consistent(nx, ny, nz):
    """Node/edge/cell counts satisfy the Euler-style identities."""
    grid = TensorGrid.uniform(((0, 1), (0, 2), (0, 3)), (nx, ny, nz))
    assert grid.num_nodes == nx * ny * nz
    assert grid.num_cells == (nx - 1) * (ny - 1) * (nz - 1)
    n_ex, n_ey, n_ez = grid.num_edges_per_direction
    assert n_ex == (nx - 1) * ny * nz
    assert n_ey == nx * (ny - 1) * nz
    assert n_ez == nx * ny * (nz - 1)


@given(
    widths=st.lists(
        st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=8
    )
)
@settings(max_examples=25, deadline=None)
def test_property_volume_additivity(widths):
    """Sum of cell volumes equals the bounding-box volume for any spacing."""
    x = np.concatenate([[0.0], np.cumsum(widths)])
    grid = TensorGrid(x, [0.0, 1.0, 2.0], [0.0, 0.5])
    assert np.isclose(np.sum(grid.cell_volumes()), grid.total_volume)
