"""HTTP front end: routes, status codes, JSONL watch streaming."""

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro.errors import ServiceError
from repro.service import (
    CampaignService,
    job_result,
    job_status,
    submit_job,
    watch_job,
)
from repro.service.http import _request

from tests.campaign.conftest import make_toy_spec


@pytest.fixture
def service(tmp_path):
    """A fully running service (manager dispatcher + HTTP server)."""
    with CampaignService(tmp_path / "svc") as running:
        yield running


@pytest.fixture
def frozen_service(tmp_path):
    """HTTP server only -- the dispatcher never runs, jobs stay queued."""
    service = CampaignService(tmp_path / "svc")
    thread = threading.Thread(
        target=service.httpd.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    yield service
    service.httpd.shutdown()
    thread.join()
    service.httpd.server_close()


class TestRoutes:
    def test_healthz(self, service):
        payload = _request(service.url + "/healthz")
        assert payload["status"] == "ok"
        assert payload["version"] == repro.__version__
        assert "jobs" in payload
        assert "factorization_cache" in payload

    def test_submit_watch_result_roundtrip(self, service):
        spec = make_toy_spec()
        job = submit_job(service.url, spec, tenant="alice")
        assert job["job_id"].startswith("job-0001-")
        assert job["tenant"] == "alice"

        snapshots = list(watch_job(
            service.url, job["job_id"], interval_s=0.02, timeout=60
        ))
        assert snapshots[-1]["state"] == "completed"

        summary = job_result(service.url, job["job_id"])
        assert summary["campaign"] == spec.name
        assert summary["num_samples"] == spec.num_samples

    def test_status_snapshot(self, service):
        job = submit_job(service.url, make_toy_spec())
        for _ in watch_job(service.url, job["job_id"], interval_s=0.02,
                           timeout=60):
            pass
        status = job_status(service.url, job["job_id"])
        assert status["state"] == "completed"
        assert status["store_state"] == "complete"
        assert status["chunks_folded"] == status["total_chunks"]
        assert status["spec_hash"] == job["spec_hash"]

    def test_job_listing_filters(self, service):
        job = submit_job(service.url, make_toy_spec(), tenant="alice")
        for _ in watch_job(service.url, job["job_id"], interval_s=0.02,
                           timeout=60):
            pass
        listing = _request(service.url + "/jobs?tenant=alice")
        assert [record["job_id"] for record in listing["jobs"]] == [
            job["job_id"]
        ]
        assert _request(service.url + "/jobs?tenant=bob")["jobs"] == []
        by_state = _request(service.url + "/jobs?state=completed")
        assert len(by_state["jobs"]) == 1


class TestErrorCodes:
    def test_result_while_queued_is_409(self, frozen_service):
        job = submit_job(frozen_service.url, make_toy_spec())
        with pytest.raises(ServiceError, match="HTTP 409"):
            job_result(frozen_service.url, job["job_id"])

    def test_cancel_queued_job(self, frozen_service):
        job = submit_job(frozen_service.url, make_toy_spec())
        cancelled = _request(
            f"{frozen_service.url}/jobs/{job['job_id']}", method="DELETE"
        )
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceError, match="HTTP 409"):
            _request(
                f"{frozen_service.url}/jobs/{job['job_id']}",
                method="DELETE",
            )

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError, match="HTTP 404"):
            job_status(service.url, "job-9999-deadbeef")

    def test_unknown_route_is_404(self, service):
        with pytest.raises(ServiceError, match="HTTP 404"):
            _request(service.url + "/nope")

    def test_bad_submission_body_is_400(self, service):
        request = urllib.request.Request(
            service.url + "/jobs",
            data=b"this is not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        detail = json.loads(excinfo.value.read().decode("utf-8"))
        assert "not valid JSON" in detail["error"]

    def test_submission_without_spec_is_400(self, service):
        with pytest.raises(ServiceError, match="HTTP 400"):
            _request(service.url + "/jobs", method="POST",
                     payload={"tenant": "alice"})

    def test_bad_option_is_400(self, service):
        with pytest.raises(ServiceError, match="unknown job option"):
            submit_job(service.url, make_toy_spec(),
                       options={"bogus": 1})


class TestWatchStream:
    def test_watch_is_ndjson_and_monotone(self, service):
        spec = make_toy_spec(num_samples=40, chunk_size=4)
        job = submit_job(service.url, spec)
        request = urllib.request.Request(
            f"{service.url}/jobs/{job['job_id']}/watch?interval=0.02"
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.headers["Content-Type"] == (
                "application/x-ndjson"
            )
            lines = [json.loads(line) for line in response if line.strip()]
        assert lines[-1]["state"] == "completed"
        frontiers = [line.get("chunks_folded", 0) for line in lines]
        assert frontiers == sorted(frontiers)

    def test_watch_unknown_job_is_404_before_streaming(self, service):
        with pytest.raises(ServiceError, match="HTTP 404"):
            list(watch_job(service.url, "job-9999-deadbeef", timeout=5))
