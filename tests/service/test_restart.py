"""End-to-end service acceptance: submit over HTTP, SIGKILL, resume.

The ISSUE acceptance scenario: three campaigns (one flaky through the
fault-injection fixture) submitted through the HTTP front end of a
``repro-campaign serve`` subprocess; the service is SIGKILLed mid-run;
a restarted service over the same root recovers the queue, resumes the
in-flight job from its checkpoints and completes everything -- each
store bitwise-identical to the same spec run directly through
``run_campaign``.
"""

import os
import signal
import subprocess
import sys
import time

from repro.campaign import CampaignSpec, ScenarioSpec, run_campaign
from repro.service import job_status, submit_job

from tests.campaign.conftest import make_toy_spec
from tests.campaign.flaky_problem import (
    MODULE as FLAKY_MODULE,
    PROBLEM_NAME as FLAKY_PROBLEM,
)

from .conftest import assert_stores_bitwise_equal, make_sleepy_spec

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)
)))


def make_flaky_spec(state_dir, num_samples=24, chunk_size=4, seed=13):
    """A campaign whose sample 7 fails twice before succeeding."""
    return CampaignSpec(
        name="flaky-restart",
        scenario=ScenarioSpec(
            problem=FLAKY_PROBLEM,
            qoi="identity",
            options={
                "transient_sample": 7,
                "fail_attempts": 2,
                "state_dir": str(state_dir),
                "seed": seed,
                "dimension": 4,
            },
            module=FLAKY_MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=4,
        num_samples=num_samples,
        seed=seed,
        chunk_size=chunk_size,
    )


def start_service(root):
    """Launch ``repro-campaign serve`` as a subprocess; returns
    ``(process, url)`` once the server announces its address."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign", "serve", str(root),
         "--max-workers", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=REPO_ROOT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"serve exited early (rc {process.poll()})"
            )
        if line.startswith("serving at "):
            return process, line.split("serving at ", 1)[1].strip()
    process.kill()
    raise AssertionError("serve never announced its address")


def wait_state(url, job_id, states, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = job_status(url, job_id)
        if status["state"] in states:
            return status
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} stuck in "
        f"{job_status(url, job_id)['state']!r} after {timeout_s}s"
    )


def test_kill_restart_resume_all_jobs_bitwise_identical(tmp_path):
    root = tmp_path / "svc"
    flaky_state = tmp_path / "flaky-state"
    flaky_state.mkdir()

    # Slow enough that the kill lands mid-campaign; pure functions of
    # the parameter row, so the resumed store must match a direct run.
    sleepy = make_sleepy_spec(num_samples=30, chunk_size=3, sleep_s=0.05)
    flaky = make_flaky_spec(flaky_state)
    toy = make_toy_spec(num_samples=20, chunk_size=5)

    process, url = start_service(root)
    try:
        job_a = submit_job(url, sleepy)
        job_b = submit_job(url, flaky, tenant="bob",
                           options={"retry": 2})
        job_c = submit_job(url, toy, tenant="bob")

        # max_workers=1 => FIFO: job A runs first.  Watch its frontier
        # advance monotonically through the status endpoint, then kill
        # the service mid-run.
        frontiers = []
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            status = job_status(url, job_a["job_id"])
            if status["state"] == "running":
                frontiers.append(status.get("chunks_folded", 0))
                if frontiers[-1] >= 2:
                    break
            time.sleep(0.02)
        assert frontiers, "job A never reported running progress"
        assert frontiers == sorted(frontiers), "frontier went backwards"
        assert frontiers[-1] >= 2

        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    # The killed run left real progress behind (resume, not restart).
    from repro.campaign import ArtifactStore

    store_a_path = os.path.join(
        str(root), "stores", "default", job_a["job_id"]
    )
    partial = len(ArtifactStore(store_a_path).completed_chunks())
    assert 0 < partial < sleepy.num_chunks

    # Restart over the same root: recovery requeues the in-flight job,
    # the queued ones are still there, everything completes.
    process, url = start_service(root)
    try:
        status_a = wait_state(
            url, job_a["job_id"], ("completed", "failed")
        )
        status_b = wait_state(
            url, job_b["job_id"], ("completed", "failed")
        )
        status_c = wait_state(
            url, job_c["job_id"], ("completed", "failed")
        )
        assert status_a["state"] == "completed", status_a.get("error")
        assert status_b["state"] == "completed", status_b.get("error")
        assert status_c["state"] == "completed", status_c.get("error")
        assert status_a["resumes"] == 1
    finally:
        process.kill()
        process.wait(timeout=30)

    # Every store must be bitwise-identical to a direct run_campaign of
    # the same spec.  The flaky reference uses a fresh failure-state
    # dir and the same retry policy: injected failures never change the
    # model's outputs, only how often they are attempted.
    run_campaign(sleepy, store=tmp_path / "ref-a")
    assert_stores_bitwise_equal(store_a_path, tmp_path / "ref-a")

    reference_flaky = make_flaky_spec(tmp_path / "flaky-state-ref")
    (tmp_path / "flaky-state-ref").mkdir()
    run_campaign(reference_flaky, store=tmp_path / "ref-b", retry=2)
    store_b_path = os.path.join(
        str(root), "stores", "bob", job_b["job_id"]
    )
    assert_stores_bitwise_equal(store_b_path, tmp_path / "ref-b")

    run_campaign(toy, store=tmp_path / "ref-c")
    store_c_path = os.path.join(
        str(root), "stores", "bob", job_c["job_id"]
    )
    assert_stores_bitwise_equal(store_c_path, tmp_path / "ref-c")
