"""Service-layer tests: locks, queue, manager, HTTP, restart recovery."""
