"""Shared service-test fixtures: spec builders and store comparison."""

import numpy as np

from repro.campaign import ArtifactStore, CampaignSpec, ScenarioSpec

from .problems import CACHED_PROBLEM, MODULE, SLEEPY_PROBLEM


def make_cached_spec(num_samples=20, chunk_size=5, seed=11, size=12,
                     name=None):
    """A campaign over the shared-cache-backed sparse-solve problem."""
    return CampaignSpec(
        name=name or f"cached-{num_samples}-{seed}",
        scenario=ScenarioSpec(
            problem=CACHED_PROBLEM,
            qoi="identity",
            options={"size": size},
            module=MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=4,
        num_samples=num_samples,
        seed=seed,
        chunk_size=chunk_size,
    )


def make_sleepy_spec(num_samples=30, chunk_size=3, seed=5, sleep_s=0.02,
                     name=None):
    """A slow-but-cheap campaign a kill test can interrupt mid-run."""
    return CampaignSpec(
        name=name or f"sleepy-{num_samples}-{seed}",
        scenario=ScenarioSpec(
            problem=SLEEPY_PROBLEM,
            qoi="identity",
            options={"sleep_s": sleep_s},
            module=MODULE,
        ),
        distribution={"kind": "normal", "mu": 0.0, "sigma": 1.0},
        dimension=3,
        num_samples=num_samples,
        seed=seed,
        chunk_size=chunk_size,
    )


def assert_stores_bitwise_equal(path_a, path_b):
    """Bitwise equality of two stores' checkpointed data.

    Chunk ``.npz`` files are zip archives whose raw bytes embed
    timestamps, so equality is asserted on the *arrays* (indices,
    parameters, outputs) plus the summary dict -- the same contract the
    fault-tolerance tests use.
    """
    store_a = ArtifactStore(str(path_a))
    store_b = ArtifactStore(str(path_b))
    chunks_a = store_a.completed_chunks()
    chunks_b = store_b.completed_chunks()
    assert chunks_a == chunks_b
    for index in chunks_a:
        indices_a, parameters_a, outputs_a = store_a.read_chunk(index)
        indices_b, parameters_b, outputs_b = store_b.read_chunk(index)
        assert np.array_equal(indices_a, indices_b)
        assert np.array_equal(parameters_a, parameters_b)
        assert np.array_equal(outputs_a, outputs_b)
    assert store_a.read_summary() == store_b.read_summary()
