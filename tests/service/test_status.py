"""Status / partial-summary reads: checkpoint files only, never chunks."""

import json

import pytest

from repro.campaign import ArtifactStore, run_campaign
from repro.campaign.cli import main
from repro.errors import CampaignError
from repro.service import partial_moments, partial_summary, store_status

from tests.campaign.conftest import make_toy_spec


class Abort(RuntimeError):
    pass


def run_partially(spec, store_path, stop_after=3):
    """Run a campaign but kill it (by exception) after N chunks."""
    seen = [0]

    def progress(done, total):
        seen[0] += 1
        if seen[0] >= stop_after:
            raise Abort()

    with pytest.raises(Abort):
        run_campaign(spec, store=store_path, progress=progress)
    return ArtifactStore(str(store_path))


class TestStoreStatus:
    def test_empty_store(self, tmp_path):
        status = store_status(tmp_path / "nothing")
        assert status["state"] == "empty"
        assert status["event"] == "status"

    def test_in_progress_store(self, tmp_path):
        spec = make_toy_spec(num_samples=40, chunk_size=5)
        store = run_partially(spec, tmp_path / "s")
        status = store_status(store)
        assert status["state"] == "in_progress"
        assert status["campaign"] == spec.name
        assert status["total_chunks"] == spec.num_chunks
        assert 0 < status["chunks_completed"] < spec.num_chunks
        assert 0 < status["chunks_folded"] <= status["chunks_completed"]
        assert status["progress"]["total"] == spec.num_chunks
        moments = status["moments"]
        assert moments["count"] == status["chunks_folded"] * 5
        assert moments["mean_max"] >= moments["mean_min"]
        assert not status["locked"]

    def test_complete_store(self, tmp_path):
        spec = make_toy_spec()
        result = run_campaign(spec, store=tmp_path / "s")
        status = store_status(tmp_path / "s")
        assert status["state"] == "complete"
        assert status["chunks_folded"] == spec.num_chunks
        assert status["summary"] == result.summary()
        assert status["progress"]["done"] == spec.num_chunks

    def test_status_never_reads_chunk_npz(self, tmp_path, monkeypatch):
        spec = make_toy_spec(num_samples=40, chunk_size=5)
        store = run_partially(spec, tmp_path / "s")

        def forbidden(self, chunk_index):
            raise AssertionError(
                f"status read chunk {chunk_index} npz"
            )

        monkeypatch.setattr(ArtifactStore, "read_chunk", forbidden)
        status = store_status(store)
        assert status["chunks_completed"] > 0
        assert "moments" in status
        partial_summary(store)


class TestPartialSummary:
    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign manifest"):
            partial_summary(tmp_path / "nothing")

    def test_partial_matches_checkpointed_moments(self, tmp_path):
        spec = make_toy_spec(num_samples=40, chunk_size=5)
        store = run_partially(spec, tmp_path / "s")
        summary = partial_summary(store)
        assert summary["partial"] is True
        assert summary["campaign"] == spec.name
        moments = partial_moments(store)
        assert summary["num_samples"] == moments["count"]
        assert summary["mean_max"] == moments["mean_max"]
        assert summary["chunks_folded"] == store.read_reducer_state()[0][
            "next_chunk"
        ]

    def test_complete_store_returns_summary_json(self, tmp_path):
        spec = make_toy_spec()
        result = run_campaign(spec, store=tmp_path / "s")
        assert partial_summary(tmp_path / "s") == result.summary()

    def test_partial_moments_none_without_checkpoint(self, tmp_path):
        spec = make_toy_spec()
        ArtifactStore(str(tmp_path / "s")).initialize(spec)
        assert partial_moments(tmp_path / "s") is None


class TestReportPartialCli:
    def test_report_errors_without_flag(self, tmp_path, capsys):
        spec = make_toy_spec(num_samples=40, chunk_size=5)
        store = run_partially(spec, tmp_path / "s")
        assert main(["report", store.path]) == 1
        assert "no summary" in capsys.readouterr().err

    def test_report_partial_prints_table(self, tmp_path, capsys):
        spec = make_toy_spec(num_samples=40, chunk_size=5)
        store = run_partially(spec, tmp_path / "s")
        assert main(["report", store.path, "--partial"]) == 0
        output = capsys.readouterr().out
        assert "PARTIAL" in output
        assert "Chunks folded (frontier)" in output

    def test_report_partial_on_complete_store_is_normal(
            self, tmp_path, capsys):
        spec = make_toy_spec()
        run_campaign(spec, store=tmp_path / "s")
        assert main(["report", str(tmp_path / "s"), "--partial"]) == 0
        output = capsys.readouterr().out
        assert "PARTIAL" not in output
        assert "Campaign summary" in output

    def test_status_command_emits_json(self, tmp_path, capsys):
        spec = make_toy_spec()
        run_campaign(spec, store=tmp_path / "s")
        assert main(["status", str(tmp_path / "s")]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "complete"

    def test_watch_command_on_complete_store(self, tmp_path, capsys):
        spec = make_toy_spec()
        run_campaign(spec, store=tmp_path / "s")
        assert main(["watch", str(tmp_path / "s"),
                     "--interval", "0.01"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert json.loads(lines[-1])["state"] == "complete"
