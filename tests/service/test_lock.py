"""Store lockfile hardening: O_EXCL acquire, stale detection, sweep."""

import json
import os
import socket
import threading

import pytest

from repro.campaign import ArtifactStore, StoreLock, run_campaign
from repro.errors import CampaignError

from tests.campaign.conftest import make_toy_spec


def write_foreign_lock(store, host="elsewhere", pid=12345, age_s=None):
    """Plant a lock file owned by another host, optionally backdated."""
    os.makedirs(store.path, exist_ok=True)
    with open(store.lock_path, "w", encoding="utf-8") as handle:
        json.dump(
            {"pid": pid, "host": host, "created_walltime": 0.0}, handle
        )
    if age_s is not None:
        backdated = os.path.getmtime(store.lock_path) - age_s
        os.utime(store.lock_path, (backdated, backdated))


class TestStoreLock:
    def test_acquire_creates_owner_record(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        lock = store.acquire_lock()
        try:
            assert lock.held
            info = store.lock_owner()
            assert info["pid"] == os.getpid()
            assert info["host"] == socket.gethostname()
        finally:
            lock.release()
        assert not lock.held
        assert not os.path.exists(store.lock_path)

    def test_release_is_idempotent(self, tmp_path):
        lock = ArtifactStore(tmp_path / "s").acquire_lock()
        lock.release()
        lock.release()

    def test_second_acquire_raises_campaign_error(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        lock = store.acquire_lock()
        try:
            with pytest.raises(CampaignError, match="locked by"):
                store.acquire_lock()
        finally:
            lock.release()

    def test_context_manager(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        with StoreLock(store.lock_path) as lock:
            assert lock.held
            assert os.path.exists(store.lock_path)
        assert not os.path.exists(store.lock_path)

    def test_dead_pid_same_host_is_broken(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        write_foreign_lock(
            store, host=socket.gethostname(), pid=2**22 + 1
        )
        lock = store.acquire_lock()
        try:
            assert lock.held
            assert store.lock_owner()["pid"] == os.getpid()
        finally:
            lock.release()

    def test_live_foreign_lock_is_respected(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        write_foreign_lock(store)  # fresh mtime, unknown host
        with pytest.raises(CampaignError, match="locked by"):
            store.acquire_lock(stale_after_s=3600)

    def test_old_foreign_lock_is_broken(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        write_foreign_lock(store, age_s=7200)
        lock = store.acquire_lock(stale_after_s=3600)
        try:
            assert lock.held
        finally:
            lock.release()

    def test_unreadable_old_lock_is_broken(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        os.makedirs(store.path, exist_ok=True)
        with open(store.lock_path, "w", encoding="utf-8") as handle:
            handle.write('{"pid": 1')  # torn write of a dying owner
        backdated = os.path.getmtime(store.lock_path) - 7200
        os.utime(store.lock_path, (backdated, backdated))
        lock = store.acquire_lock(stale_after_s=3600)
        try:
            assert lock.held
        finally:
            lock.release()

    def test_heartbeat_refreshes_mtime(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        lock = store.acquire_lock()
        try:
            backdated = os.path.getmtime(store.lock_path) - 1000
            os.utime(store.lock_path, (backdated, backdated))
            lock.heartbeat()
            assert os.path.getmtime(store.lock_path) > backdated + 500
        finally:
            lock.release()


class TestRunnerLocking:
    def test_concurrent_run_campaign_raises(self, tmp_path):
        spec = make_toy_spec()
        store = ArtifactStore(tmp_path / "s")
        lock = store.acquire_lock()
        try:
            with pytest.raises(CampaignError, match="locked by"):
                run_campaign(spec, store=store)
        finally:
            lock.release()

    def test_lock_released_after_run(self, tmp_path):
        spec = make_toy_spec()
        store = ArtifactStore(tmp_path / "s")
        run_campaign(spec, store=store)
        assert not os.path.exists(store.lock_path)

    def test_lock_released_after_error(self, tmp_path):
        spec = make_toy_spec()
        store = ArtifactStore(tmp_path / "s")

        class Stop(RuntimeError):
            pass

        def progress(done, total):
            raise Stop()

        with pytest.raises(Stop):
            run_campaign(spec, store=store, progress=progress)
        assert not os.path.exists(store.lock_path)
        # and the store is resumable afterwards
        result = run_campaign(spec, store=store)
        assert result.num_samples == spec.num_samples

    def test_two_threads_one_store_one_winner(self, tmp_path):
        spec = make_toy_spec(num_samples=40, chunk_size=4)
        store_path = str(tmp_path / "s")
        errors, results = [], []
        barrier = threading.Barrier(2)

        def work():
            barrier.wait()
            try:
                results.append(run_campaign(spec, store=store_path))
            except CampaignError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 1
        assert len(errors) == 1
        assert "locked by" in str(errors[0])


class TestSweepGuard:
    def test_sweep_refuses_on_live_foreign_lock(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        write_foreign_lock(store)
        with pytest.raises(CampaignError, match="refusing to sweep"):
            store.sweep_temporaries()

    def test_sweep_allowed_under_own_lock(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        lock = store.acquire_lock()
        try:
            assert store.sweep_temporaries() == []
        finally:
            lock.release()

    def test_sweep_allowed_on_stale_lock(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        write_foreign_lock(store, host=socket.gethostname(),
                           pid=2**22 + 1)
        assert store.sweep_temporaries() == []

    def test_initialize_refuses_on_foreign_locked_store(self, tmp_path):
        spec = make_toy_spec()
        store = ArtifactStore(tmp_path / "s")
        write_foreign_lock(store)
        with pytest.raises(CampaignError):
            store.initialize(spec)
