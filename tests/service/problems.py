"""Registered problems for service tests.

``"test-cached"`` factorizes a small sparse system through the
process-level :func:`~repro.solvers.cache.shared_cache` in its builder,
so concurrent in-process jobs over the same scenario demonstrably reuse
one LU factorization (the cache's hit counter moves).

``"test-sleepy"`` sleeps a configurable time per sample -- the slow,
cheap campaign that a kill-mid-run test can reliably interrupt.

Both compute pure functions of the parameter row, so campaigns over
them are bit-reproducible no matter how they were scheduled, killed or
resumed.
"""

import time

import numpy as np
import scipy.sparse

from repro.campaign.registry import register_problem
from repro.solvers.cache import shared_cache

CACHED_PROBLEM = "test-cached"
SLEEPY_PROBLEM = "test-sleepy"
MODULE = "tests.service.problems"


def _system(size):
    """A small SPD tridiagonal system (content-stable for the cache)."""
    main = 2.5 * np.ones(size)
    off = -1.0 * np.ones(size - 1)
    return scipy.sparse.diags(
        [off, main, off], [-1, 0, 1], format="csc"
    )


def build_cached(scenario):
    size = int(scenario.options.get("size", 12))
    lu = shared_cache().splu(_system(size))

    def model(parameters):
        p = np.asarray(parameters, dtype=float)
        rhs = np.zeros(size)
        rhs[: p.size] = p
        solution = lu.solve(rhs)
        return np.array([
            solution.sum(), np.abs(solution).max(), (solution**2).sum(),
        ])

    return model


def build_sleepy(scenario):
    sleep_s = float(scenario.options.get("sleep_s", 0.01))

    def model(parameters):
        p = np.asarray(parameters, dtype=float)
        time.sleep(sleep_s)
        return np.array([p.sum(), p.max(), (p * p).sum()])

    return model


register_problem(CACHED_PROBLEM, build_cached)
register_problem(SLEEPY_PROBLEM, build_sleepy)
