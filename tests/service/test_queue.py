"""Job queue: persistence, lifecycle transitions, restart recovery."""

import json

import pytest

from repro.errors import ServiceError
from repro.service import JobQueue, Namespace, spec_hash

from tests.campaign.conftest import make_toy_spec


class TestSubmission:
    def test_submit_assigns_serial_and_hash(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = make_toy_spec()
        job = queue.submit(spec, tenant="alice")
        digest = spec_hash(spec)
        assert job.job_id == f"job-0001-{digest[:8]}"
        assert job.state == "queued"
        assert job.tenant == "alice"
        assert job.spec_hash == digest
        assert job.spec == spec.to_dict()

    def test_spec_hash_is_canonical(self):
        spec = make_toy_spec()
        as_dict = spec.to_dict()
        shuffled = dict(reversed(list(as_dict.items())))
        assert spec_hash(as_dict) == spec_hash(shuffled)
        assert spec_hash(spec) == spec_hash(as_dict)

    def test_submit_validates_spec(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(Exception):
            queue.submit({"name": "broken"})
        assert len(queue) == 0

    def test_submit_rejects_bad_tenant(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(ServiceError, match="path-safe"):
            queue.submit(make_toy_spec(), tenant="../escape")

    def test_serials_increase_across_restart(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit(make_toy_spec())
        reloaded = JobQueue(tmp_path)
        second = reloaded.submit(make_toy_spec())
        assert first.job_id.split("-")[1] == "0001"
        assert second.job_id.split("-")[1] == "0002"


class TestPersistence:
    def test_queue_json_is_consistent_snapshot(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_toy_spec(), tenant="alice")
        queue.submit(make_toy_spec(seed=8), tenant="bob")
        payload = json.loads((tmp_path / "queue.json").read_text())
        assert payload["format_version"] == 1
        assert len(payload["jobs"]) == 2
        states = [job["state"] for job in payload["jobs"]]
        assert states == ["queued", "queued"]

    def test_reload_preserves_records(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_toy_spec(), tenant="alice",
                           options={"executor": "thread"})
        reloaded = JobQueue(tmp_path)
        copy = reloaded.get(job.job_id)
        assert copy.to_dict() == job.to_dict()


class TestLifecycle:
    def test_claim_is_fifo(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit(make_toy_spec())
        queue.submit(make_toy_spec(seed=8))
        claimed = queue.claim_next()
        assert claimed.job_id == first.job_id
        assert claimed.state == "running"
        assert claimed.started_walltime is not None

    def test_claim_empty_queue_returns_none(self, tmp_path):
        assert JobQueue(tmp_path).claim_next() is None

    def test_complete_and_fail_transitions(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_a = queue.submit(make_toy_spec())
        job_b = queue.submit(make_toy_spec(seed=8))
        queue.claim_next()
        queue.claim_next()
        queue.complete(job_a.job_id)
        queue.fail(job_b.job_id, "boom")
        assert queue.get(job_a.job_id).state == "completed"
        failed = queue.get(job_b.job_id)
        assert failed.state == "failed"
        assert failed.error == "boom"
        assert failed.terminal

    def test_bad_transition_raises(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_toy_spec())
        with pytest.raises(ServiceError, match="cannot move"):
            queue.complete(job.job_id)

    def test_cancel_only_queued(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_toy_spec())
        queue.cancel(job.job_id)
        assert queue.get(job.job_id).state == "cancelled"
        other = queue.submit(make_toy_spec(seed=8))
        queue.claim_next()
        with pytest.raises(ServiceError, match="cannot move"):
            queue.cancel(other.job_id)

    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(ServiceError, match="unknown job"):
            JobQueue(tmp_path).get("job-9999-deadbeef")


class TestRecovery:
    def test_recover_running_requeues_with_resume_count(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_toy_spec())
        queue.submit(make_toy_spec(seed=8))
        queue.claim_next()
        # a "killed" service: reload from disk with the job still running
        revived = JobQueue(tmp_path)
        recovered = revived.recover_running()
        assert [record.job_id for record in recovered] == [job.job_id]
        record = revived.get(job.job_id)
        assert record.state == "queued"
        assert record.resumes == 1
        # recovery is idempotent when nothing is running
        assert revived.recover_running() == []


class TestNamespace:
    def test_store_layout(self, tmp_path):
        namespace = Namespace(tmp_path)
        path = namespace.store_path("alice", "job-0001-abcd1234")
        assert path == str(
            tmp_path / "stores" / "alice" / "job-0001-abcd1234"
        )

    @pytest.mark.parametrize("bad", [
        "", "..", "../x", "a/b", "a\\b", ".hidden", "-flag", "x" * 200,
        None, 7,
    ])
    def test_rejects_unsafe_names(self, tmp_path, bad):
        namespace = Namespace(tmp_path)
        with pytest.raises(ServiceError):
            namespace.store_path(bad, "job-0001-abcd1234")

    def test_relative_path_roundtrip(self, tmp_path):
        namespace = Namespace(tmp_path)
        path = namespace.store_path("alice", "job-0001-abcd1234")
        relative = namespace.relative_path(path)
        assert namespace.resolve(relative) == path

    def test_link_roundtrip(self, tmp_path):
        namespace = Namespace(tmp_path)
        queue = JobQueue(tmp_path)
        job = queue.submit(make_toy_spec(), tenant="alice")
        store = namespace.store(job.tenant, job.job_id)
        namespace.write_link(store, job)
        link = Namespace.read_link(store)
        assert link["job_id"] == job.job_id
        assert link["tenant"] == "alice"
        assert link["spec_hash"] == job.spec_hash

    def test_listing(self, tmp_path):
        namespace = Namespace(tmp_path)
        queue = JobQueue(tmp_path)
        for tenant in ("alice", "bob"):
            job = queue.submit(make_toy_spec(), tenant=tenant)
            namespace.write_link(
                namespace.store(tenant, job.job_id), job
            )
        assert namespace.tenants() == ["alice", "bob"]
        assert len(namespace.jobs("alice")) == 1
        assert namespace.jobs("nobody") == []
