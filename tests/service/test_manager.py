"""JobManager: concurrent campaigns, shared cache, restart recovery."""

import time

import pytest

from repro.campaign import run_campaign
from repro.errors import ServiceError
from repro.service import JobManager, JobQueue
from repro.solvers.cache import shared_cache

from tests.campaign.conftest import make_toy_spec

from .conftest import assert_stores_bitwise_equal, make_cached_spec


def wait_terminal(manager, job_id, timeout_s=60.0):
    """Poll until the job is terminal; returns its final record."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = manager.job(job_id)
        if job.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError(
        f"job {job_id} still {manager.job(job_id).state} "
        f"after {timeout_s}s"
    )


class TestConcurrentJobs:
    def test_two_jobs_shared_cache_bitwise_identical(self, tmp_path):
        """Two concurrent jobs on one scenario share one factorization
        and still produce stores bitwise-identical to isolated runs."""
        spec = make_cached_spec(num_samples=20, chunk_size=5)
        before = shared_cache().stats()

        with JobManager(tmp_path / "svc", max_workers=2) as manager:
            job_a = manager.submit(spec, tenant="alice")
            job_b = manager.submit(spec, tenant="bob")
            assert wait_terminal(manager, job_a.job_id).state == "completed"
            assert wait_terminal(manager, job_b.job_id).state == "completed"
            store_a = manager.store_for(manager.job(job_a.job_id))
            store_b = manager.store_for(manager.job(job_b.job_id))

        after = shared_cache().stats()
        assert after["hits"] > before["hits"]

        run_campaign(spec, store=tmp_path / "reference")
        assert_stores_bitwise_equal(store_a.path, tmp_path / "reference")
        assert_stores_bitwise_equal(store_b.path, tmp_path / "reference")

    def test_stats_reports_cache_and_queue(self, tmp_path):
        with JobManager(tmp_path / "svc") as manager:
            job = manager.submit(make_toy_spec())
            wait_terminal(manager, job.job_id)
            stats = manager.stats()
        assert stats["jobs"]["completed"] == 1
        assert stats["max_workers"] == 2
        assert "hits" in stats["factorization_cache"]


class TestSubmissionBoundary:
    def test_unknown_option_rejected(self, tmp_path):
        manager = JobManager(tmp_path / "svc")
        with pytest.raises(ServiceError, match="unknown job option"):
            manager.submit(make_toy_spec(), options={"bogus": 1})

    def test_invalid_max_workers(self, tmp_path):
        with pytest.raises(ServiceError, match="max_workers"):
            JobManager(tmp_path / "svc", max_workers=0)

    def test_result_before_completion_raises(self, tmp_path):
        manager = JobManager(tmp_path / "svc")  # dispatcher not started
        job = manager.submit(make_toy_spec())
        with pytest.raises(ServiceError, match="no result available"):
            manager.result(job.job_id)


class TestFailure:
    def test_bad_executor_marks_job_failed(self, tmp_path):
        with JobManager(tmp_path / "svc") as manager:
            job = manager.submit(
                make_toy_spec(), options={"executor": "bogus-backend"}
            )
            record = wait_terminal(manager, job.job_id)
        assert record.state == "failed"
        assert "bogus-backend" in record.error
        with pytest.raises(ServiceError, match="failed"):
            manager.result(job.job_id)


class TestRestartRecovery:
    def test_start_resumes_interrupted_running_job(self, tmp_path):
        """A job left ``running`` by a killed service resumes from its
        store checkpoints and finishes bitwise-identical."""
        root = tmp_path / "svc"
        spec = make_toy_spec(num_samples=40, chunk_size=5)

        # Simulate the killed service: a claimed (running) job whose
        # store holds a partial run.
        queue = JobQueue(root)
        job = queue.submit(spec, tenant="alice")
        queue.claim_next()

        class Kill(RuntimeError):
            pass

        seen = [0]

        def killer(done, total):
            seen[0] += 1
            if seen[0] >= 3:
                raise Kill()

        manager = JobManager(root)
        store = manager.store_for(job)
        with pytest.raises(Kill):
            run_campaign(spec, store=store, progress=killer)
        partial = len(store.completed_chunks())
        assert 0 < partial < spec.num_chunks

        recovered = manager.start(recover=True)
        try:
            assert [record.job_id for record in recovered] == [job.job_id]
            record = wait_terminal(manager, job.job_id)
        finally:
            manager.stop(wait=True)
        assert record.state == "completed"
        assert record.resumes == 1

        run_campaign(spec, store=tmp_path / "reference")
        assert_stores_bitwise_equal(store.path, tmp_path / "reference")

    def test_queued_jobs_survive_restart(self, tmp_path):
        root = tmp_path / "svc"
        queue = JobQueue(root)
        job = queue.submit(make_toy_spec())
        with JobManager(root) as manager:
            record = wait_terminal(manager, job.job_id)
        assert record.state == "completed"


class TestWatch:
    def test_watch_yields_monotone_frontier_then_terminal(self, tmp_path):
        spec = make_toy_spec(num_samples=40, chunk_size=4)
        with JobManager(tmp_path / "svc") as manager:
            job = manager.submit(spec)
            snapshots = list(manager.watch(
                job.job_id, interval_s=0.02, timeout_s=60
            ))
        assert snapshots[-1]["state"] == "completed"
        frontiers = [
            snapshot.get("chunks_folded", 0) for snapshot in snapshots
        ]
        assert frontiers == sorted(frontiers)
        assert frontiers[-1] == spec.num_chunks

    def test_watch_timeout_raises(self, tmp_path):
        manager = JobManager(tmp_path / "svc")  # never started
        job = manager.submit(make_toy_spec())
        with pytest.raises(ServiceError, match="timed out"):
            for _ in manager.watch(job.job_id, interval_s=0.01,
                                   timeout_s=0.05):
                pass
