"""MetricsRegistry: counters, gauges, Welford/Chan histograms, merge."""

import json
import math
import random

import pytest

from repro.errors import TelemetryError
from repro.telemetry import MetricsRegistry


def _observe_all(registry, name, values):
    for value in values:
        registry.observe(name, value)
    return registry


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.increment("hits")
        registry.increment("hits", 4)
        assert registry.counter_value("hits") == 5
        assert registry.counter_value("absent") == 0
        assert registry.counter_value("absent", default=-1) == -1

    def test_gauge_last_writer_wins(self):
        registry = MetricsRegistry()
        registry.gauge("workers", 2)
        registry.gauge("workers", 8)
        assert registry.gauge_value("workers") == 8.0
        assert registry.gauge_value("absent") is None

    def test_names_and_len_cover_all_kinds(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.gauge("b", 1.0)
        registry.observe("c", 2.0)
        assert registry.names() == ["a", "b", "c"]
        assert len(registry) == 3
        registry.clear()
        assert len(registry) == 0


class TestHistogram:
    def test_matches_closed_form_moments(self):
        values = [1.0, 2.0, 4.0, 8.0, 16.0]
        registry = _observe_all(MetricsRegistry(), "wall", values)
        stats = registry.histogram_stats("wall")
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats["count"] == len(values)
        assert math.isclose(stats["mean"], mean)
        assert math.isclose(stats["std"], math.sqrt(variance))
        assert stats["min"] == 1.0
        assert stats["max"] == 16.0
        assert math.isclose(stats["total"], sum(values))

    def test_absent_histogram_is_none(self):
        assert MetricsRegistry().histogram_stats("nope") is None

    def test_single_observation_has_zero_std(self):
        registry = _observe_all(MetricsRegistry(), "x", [3.5])
        assert registry.histogram_stats("x")["std"] == 0.0


class TestMerge:
    def test_counters_add_gauges_overwrite(self):
        left = MetricsRegistry()
        left.increment("hits", 3)
        left.gauge("workers", 2)
        right = MetricsRegistry()
        right.increment("hits", 4)
        right.increment("misses", 1)
        right.gauge("workers", 6)
        left.merge(right)
        assert left.counter_value("hits") == 7
        assert left.counter_value("misses") == 1
        assert left.gauge_value("workers") == 6.0

    def test_merge_with_empty_other_side_is_identity(self):
        registry = _observe_all(MetricsRegistry(), "x", [1.0, 2.0])
        before = registry.histogram_stats("x")
        registry.merge(MetricsRegistry())
        assert registry.histogram_stats("x") == before
        empty = MetricsRegistry().merge(registry)
        assert empty.histogram_stats("x") == before

    def test_histogram_merge_matches_single_pass(self):
        """Chan combination of partial histograms == one Welford pass."""
        rng = random.Random(42)
        values = [rng.gauss(5.0, 2.0) for _ in range(200)]
        single = _observe_all(MetricsRegistry(), "x", values)
        merged = MetricsRegistry()
        for start in range(0, len(values), 17):
            merged.merge(
                _observe_all(MetricsRegistry(), "x",
                             values[start:start + 17])
            )
        want = single.histogram_stats("x")
        got = merged.histogram_stats("x")
        assert got["count"] == want["count"]
        for key in ("mean", "std", "min", "max"):
            assert math.isclose(got[key], want[key], rel_tol=1e-12)

    def test_merge_is_associative(self):
        """(a + b) + c == a + (b + c) up to float round-off."""
        parts = [
            _observe_all(MetricsRegistry(), "x", [1.0, 2.0, 3.0]),
            _observe_all(MetricsRegistry(), "x", [10.0]),
            _observe_all(MetricsRegistry(), "x", [-4.0, 0.5]),
        ]

        def rebuild(registry):
            return MetricsRegistry.from_dict(registry.as_dict())

        left = rebuild(parts[0]).merge(rebuild(parts[1]))
        left.merge(rebuild(parts[2]))
        inner = rebuild(parts[1]).merge(rebuild(parts[2]))
        right = rebuild(parts[0]).merge(inner)
        a = left.histogram_stats("x")
        b = right.histogram_stats("x")
        assert a["count"] == b["count"]
        for key in ("mean", "std", "min", "max"):
            assert math.isclose(a[key], b[key], rel_tol=1e-12)

    def test_merge_accepts_dict_form(self):
        right = _observe_all(MetricsRegistry(), "x", [2.0, 4.0])
        right.increment("n", 2)
        left = MetricsRegistry().merge(right.as_dict())
        assert left.counter_value("n") == 2
        assert left.histogram_stats("x")["count"] == 2

    def test_merge_rejects_garbage(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().merge([1, 2, 3])
        with pytest.raises(TelemetryError):
            MetricsRegistry.from_dict({"counters": "nope"})
        with pytest.raises(TelemetryError):
            MetricsRegistry.from_dict("nope")


class TestSerialization:
    def test_round_trip_is_exact(self):
        """as_dict -> JSON -> from_dict preserves every moment verbatim."""
        rng = random.Random(7)
        registry = MetricsRegistry()
        registry.increment("hits", 13)
        registry.gauge("workers", 4)
        _observe_all(registry, "wall", [rng.random() for _ in range(50)])
        data = json.loads(json.dumps(registry.as_dict()))
        rebuilt = MetricsRegistry.from_dict(data)
        assert rebuilt.as_dict() == registry.as_dict()
        # Exactness matters downstream: continuing to observe after the
        # round trip must match never having serialized at all.
        registry.observe("wall", 0.25)
        rebuilt.observe("wall", 0.25)
        assert rebuilt.histogram_stats("wall") == \
            registry.histogram_stats("wall")
