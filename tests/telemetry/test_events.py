"""JSONL event logs: schema validation, atomic writes, torn-line reads."""

import json
import os

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    EVENT_SCHEMA,
    EventSink,
    append_events,
    read_events,
    validate_event,
    validate_events,
    write_events,
)

GOOD_EVENTS = [
    {"event": "span", "name": "chunk", "t0_s": 0.0, "wall_s": 0.01,
     "parent": None},
    {"event": "chunk", "chunk": 0, "samples": 4, "worker": "123:Main",
     "wall_s": 0.5, "queue_wait_s": 0.0},
    {"event": "run_start", "total_chunks": 3, "completed_chunks": 0,
     "walltime": 1.7e9},
    {"event": "chunk_complete", "chunk": 0, "done": 1, "total": 3},
    {"event": "chunk_failed", "chunk": 1, "attempts": 3,
     "error": "ValueError('poisoned sample 9')"},
    {"event": "fold", "chunk": 0, "wall_s": 0.001},
    {"event": "heartbeat", "done": 1, "total": 3, "rate_per_s": 2.0,
     "eta_s": 1.0},
    {"event": "run_complete", "total_chunks": 3, "num_evaluated": 12,
     "wall_s": 1.5},
    {"event": "progress", "done": 2, "total": 3, "rate_per_s": 2.0,
     "eta_s": 0.5, "walltime": 1.7e9},
    {"event": "status", "state": "in_progress", "chunks_folded": 2},
]


class TestValidation:
    def test_every_documented_kind_validates(self):
        assert validate_events(GOOD_EVENTS) == len(GOOD_EVENTS)
        assert {e["event"] for e in GOOD_EVENTS} == set(EVENT_SCHEMA)

    def test_extra_fields_are_forward_compatible(self):
        event = dict(GOOD_EVENTS[4], future_field={"nested": True})
        assert validate_event(event) is event

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError, match="unknown telemetry"):
            validate_event({"event": "mystery"})

    def test_non_dict_and_missing_kind_rejected(self):
        with pytest.raises(TelemetryError):
            validate_event(["not", "a", "dict"])
        with pytest.raises(TelemetryError):
            validate_event({"name": "kindless"})

    def test_missing_required_field_rejected(self):
        with pytest.raises(TelemetryError, match="missing required"):
            validate_event({"event": "fold", "chunk": 2})

    def test_wrong_type_rejected(self):
        with pytest.raises(TelemetryError, match="has type"):
            validate_event({"event": "fold", "chunk": "2", "wall_s": 0.1})

    def test_bool_is_not_a_number(self):
        """bool subclasses int; a True chunk index is still a bug."""
        with pytest.raises(TelemetryError, match="has type"):
            validate_event({"event": "fold", "chunk": True, "wall_s": 0.1})


class TestWriteAndRead:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "chunk_000000.jsonl"
        write_events(path, GOOD_EVENTS)
        assert read_events(path) == GOOD_EVENTS

    def test_write_is_atomic_replace(self, tmp_path):
        path = tmp_path / "chunk.jsonl"
        write_events(path, GOOD_EVENTS)
        write_events(path, GOOD_EVENTS[:2])
        assert read_events(path) == GOOD_EVENTS[:2]
        # No temp droppings left behind.
        assert sorted(os.listdir(tmp_path)) == ["chunk.jsonl"]

    def test_write_validates_by_default(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        with pytest.raises(TelemetryError):
            write_events(path, [{"event": "mystery"}])
        assert not path.exists()
        write_events(path, [{"event": "mystery"}], validate=False)
        assert read_events(path) == [{"event": "mystery"}]

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        append_events(path, GOOD_EVENTS[:3])
        append_events(path, GOOD_EVENTS[3:])
        assert read_events(path) == GOOD_EVENTS

    def test_torn_final_line_is_skipped(self, tmp_path):
        """A writer killed mid-line must not poison the whole log."""
        path = tmp_path / "run.jsonl"
        append_events(path, GOOD_EVENTS[:2])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "fold", "chunk": 2, "wa')
        assert read_events(path) == GOOD_EVENTS[:2]

    def test_mid_file_corruption_raises(self, tmp_path):
        """Writers only append whole lines, so garbage in the middle is
        real corruption, not a kill artifact."""
        path = tmp_path / "run.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(GOOD_EVENTS[0]) + "\n")
            handle.write("NOT JSON\n")
            handle.write(json.dumps(GOOD_EVENTS[1]) + "\n")
        with pytest.raises(TelemetryError, match="line 2"):
            read_events(path)

    def test_blank_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(GOOD_EVENTS[0]) + "\n\n")
            handle.write(json.dumps(GOOD_EVENTS[1]) + "\n")
        assert read_events(path) == GOOD_EVENTS[:2]


class TestEventSink:
    def test_emit_appends_and_counts(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        with EventSink(path) as sink:
            for event in GOOD_EVENTS:
                sink.emit(event)
            assert sink.num_emitted == len(GOOD_EVENTS)
        assert read_events(path) == GOOD_EVENTS

    def test_emit_validates(self, tmp_path):
        with EventSink(tmp_path / "sink.jsonl") as sink:
            with pytest.raises(TelemetryError):
                sink.emit({"event": "mystery"})
        assert read_events(tmp_path / "sink.jsonl") == []

    def test_emit_after_close_raises(self, tmp_path):
        sink = EventSink(tmp_path / "sink.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(TelemetryError, match="closed"):
            sink.emit(GOOD_EVENTS[0])
        assert "closed" in repr(sink)
