"""Span tracer: nesting, capture scoping, disabled-mode no-op cost."""

import threading

import pytest

from repro.telemetry import (
    NOOP_SPAN,
    active_collector,
    capture,
    disable,
    enable,
    enabled,
    gauge,
    increment,
    observe,
    span,
)
from repro.telemetry import tracing


@pytest.fixture
def restore_enabled_flag():
    was_enabled = enabled()
    yield
    enable() if was_enabled else disable()


class TestSpans:
    def test_spans_nest_and_record_parent(self):
        with capture() as collected:
            with span("chunk", chunk=3):
                with span("sample", index=17):
                    pass
            with span("chunk", chunk=4):
                pass
        names = [(e["name"], e["parent"]) for e in collected.events]
        # Spans emit on close, innermost first.
        assert names == [("sample", "chunk"), ("chunk", None),
                         ("chunk", None)]
        sample = collected.events[0]
        assert sample["event"] == "span"
        assert sample["attrs"] == {"index": 17}
        assert sample["wall_s"] >= 0.0
        assert sample["t0_s"] >= 0.0

    def test_set_attaches_attributes_before_close(self):
        with capture() as collected:
            with span("work") as active:
                active.set(rows=5, cache="warm")
        assert collected.events[0]["attrs"] == {"rows": 5, "cache": "warm"}

    def test_exception_is_recorded_and_propagates(self):
        with capture() as collected:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        assert collected.events[0]["error"] == "ValueError"

    def test_parent_restored_after_inner_span(self):
        """A sibling after a nested span still links to the outer span."""
        with capture() as collected:
            with span("outer"):
                with span("first"):
                    pass
                with span("second"):
                    pass
        parents = {e["name"]: e["parent"] for e in collected.events}
        assert parents == {"first": "outer", "second": "outer",
                           "outer": None}


class TestAmbientMetrics:
    def test_metrics_land_on_active_registry(self):
        with capture() as collected:
            increment("solver.steps", 3)
            increment("solver.steps")
            observe("dt", 0.5)
            observe("dt", 1.5)
            gauge("workers", 4)
        registry = collected.registry
        assert registry.counter_value("solver.steps") == 4
        assert registry.histogram_stats("dt")["count"] == 2
        assert registry.gauge_value("workers") == 4.0


class TestDisabledMode:
    def test_no_collector_means_true_noop(self):
        assert active_collector() is None
        # The disabled-mode span is the shared singleton -- nothing is
        # allocated per call.
        handle = span("hot-loop", i=1)
        assert handle is NOOP_SPAN
        assert span("again") is handle
        with handle as inner:
            inner.set(anything="ignored")
        # Metric emission without a collector silently drops.
        increment("never")
        observe("never", 1.0)
        gauge("never", 1.0)
        assert active_collector() is None

    def test_capture_restores_outer_collector(self):
        with capture() as outer:
            increment("depth", 1)
            with capture() as inner:
                increment("depth", 10)
                assert active_collector() is inner
            assert active_collector() is outer
            increment("depth", 1)
        assert active_collector() is None
        assert outer.registry.counter_value("depth") == 2
        assert inner.registry.counter_value("depth") == 10

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with capture():
                raise RuntimeError("boom")
        assert active_collector() is None


class TestGlobalFlag:
    def test_enable_disable_round_trip(self, restore_enabled_flag):
        enable()
        assert enabled()
        disable()
        assert not enabled()
        enable()
        assert enabled()

    @pytest.mark.parametrize("value,expect", [
        ("0", False), ("false", False), ("OFF", False), ("no", False),
        ("1", True), ("true", True), ("", True),
    ])
    def test_env_flag_parses_at_import(self, value, expect):
        """REPRO_TELEMETRY is read once at import; check in a fresh
        interpreter."""
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_TELEMETRY=value)
        completed = subprocess.run(
            [sys.executable, "-c",
             "from repro.telemetry import enabled; print(enabled())"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip() == str(expect)

    def test_flag_does_not_gate_explicit_capture(self, restore_enabled_flag):
        """disable() stops the campaign machinery from installing
        captures; an explicit capture() still collects (that is what
        ``telemetry=True`` relies on)."""
        disable()
        with capture() as collected:
            increment("still.works")
        assert collected.registry.counter_value("still.works") == 1


class TestThreadIsolation:
    def test_threads_collect_independently(self):
        errors = []
        barrier = threading.Barrier(2)

        def worker(tag):
            try:
                with capture() as collected:
                    barrier.wait(timeout=10)
                    increment(f"count.{tag}", 1)
                    with span("work", tag=tag):
                        pass
                    barrier.wait(timeout=10)
                assert collected.registry.counter_value(f"count.{tag}") == 1
                other = "b" if tag == "a" else "a"
                assert collected.registry.counter_value(
                    f"count.{other}") == 0
                assert len(collected.events) == 1
                assert collected.events[0]["attrs"] == {"tag": tag}
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(tag,))
                   for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

    def test_module_collector_default_is_none(self):
        assert tracing._COLLECTOR.get() is None
