"""Tests for the units helpers and physical constants."""

import pytest

from repro import constants, units
from repro.errors import ReproError


class TestConstants:
    def test_stefan_boltzmann(self):
        assert constants.STEFAN_BOLTZMANN == pytest.approx(5.6704e-8, rel=1e-3)

    def test_paper_values(self):
        assert constants.T_CRITICAL_DEFAULT == 523.0
        assert constants.T_AMBIENT_DEFAULT == 300.0
        assert constants.HEAT_TRANSFER_COEFFICIENT_DEFAULT == 25.0
        assert constants.EMISSIVITY_DEFAULT == 0.2475
        assert constants.SIGMA_COPPER_300K == 5.80e7
        assert constants.LAMBDA_COPPER_300K == 398.0
        assert constants.LAMBDA_EPOXY == 0.87
        assert constants.SIGMA_EPOXY == 1.0e-6


class TestUnitConversions:
    def test_lengths(self):
        assert units.mm(1.55) == pytest.approx(1.55e-3)
        assert units.um(25.4) == pytest.approx(25.4e-6)

    def test_voltage(self):
        assert units.mv(40.0) == pytest.approx(0.040)

    def test_temperatures(self):
        assert units.celsius_to_kelvin(250.0) == pytest.approx(523.15)
        assert units.kelvin_to_celsius(523.15) == pytest.approx(250.0)
        # The paper's rounding: 523 K ~ 250 C.
        assert units.celsius_to_kelvin(250.0) == pytest.approx(523.0, abs=0.2)


class TestGuards:
    def test_require_positive(self):
        assert units.require_positive("x", 2) == 2.0
        with pytest.raises(ReproError):
            units.require_positive("x", 0.0)
        with pytest.raises(ReproError):
            units.require_positive("x", -1.0)

    def test_require_non_negative(self):
        assert units.require_non_negative("x", 0.0) == 0.0
        with pytest.raises(ReproError):
            units.require_non_negative("x", -1e-9)

    def test_require_temperature(self):
        assert units.require_temperature("T", 300.0) == 300.0
        with pytest.raises(ReproError):
            units.require_temperature("T", 0.0)
        with pytest.raises(ReproError):
            units.require_temperature("T", -10.0)
