"""Cross-verification between independent solution paths.

Each test solves the same physics through two code paths that share no
implementation (field solver vs. nodal circuit, lumped wire vs. analytic
model) and requires agreement -- the strongest internal evidence that the
discretization and the stamps are right.
"""

import numpy as np
import pytest

from repro.circuit.netlist import Netlist
from repro.coupled.electrical import solve_stationary_current, terminal_currents
from repro.coupled.electrothermal import CoupledSolver
from repro.solvers.time_integration import TimeGrid

from ..coupled.conftest import build_wire_bridge_problem


class TestFieldVsCircuit:
    def test_bridge_operating_point_matches_netlist(self):
        """Field solution of electrode-wire-electrode equals the network.

        The network model: the wire conductance between two ideal
        electrodes (their field resistance is negligible), driven by
        +-20 mV.
        """
        problem = build_wire_bridge_problem()
        phi, matrix = solve_stationary_current(problem)
        field_current = terminal_currents(
            matrix, phi, problem.electrical_dirichlet
        )[0]
        wire = problem.wires[0]

        netlist = Netlist()
        netlist.add_conductance(
            "left", "right", wire.electrical_conductance(300.0), name="wire"
        )
        netlist.fix_potential("left", 0.02)
        netlist.fix_potential("right", -0.02)
        circuit_current = netlist.solve().element_currents["wire"]

        # The electrodes add a little series resistance, so the field
        # current is slightly below the ideal-electrode network current.
        assert field_current == pytest.approx(circuit_current, rel=0.03)
        assert field_current < circuit_current

    def test_wire_power_matches_circuit_power(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="full", tolerance=1e-6)
        result = solver.solve_transient(TimeGrid(1.0, 2))
        wire = problem.wires[0]
        stamp = problem.topology.endpoint_stamps[0]
        drop = stamp.potential_drop(result.final_potentials)
        t_bw = stamp.average_value(result.final_temperatures)

        netlist = Netlist()
        netlist.add_conductance(
            "a", "b",
            lambda temperature: wire.electrical_conductance(temperature),
            name="wire",
        )
        netlist.fix_potential("a", 0.5 * drop)
        netlist.fix_potential("b", -0.5 * drop)
        circuit_power = netlist.solve(state=t_bw).element_powers["wire"]
        # The recorded power used the conductance of the last fixed-point
        # iterate, which differs from the converged state by the solver
        # tolerance; hence the relaxed relative bound.
        assert result.wire_powers[-1, 0] == pytest.approx(
            circuit_power, rel=1e-6
        )


class TestReciprocity:
    def test_terminal_current_reciprocity(self):
        """Swapping drive and ground mirrors the terminal currents.

        The conductance matrix is symmetric, so driving terminal A and
        measuring at B equals driving B and measuring at A.
        """
        problem = build_wire_bridge_problem()
        phi, matrix = solve_stationary_current(problem)
        currents_forward = terminal_currents(
            matrix, phi, problem.electrical_dirichlet
        )

        # Swap the two contact potentials.
        swapped = build_wire_bridge_problem()
        for bc in swapped.electrical_dirichlet:
            bc.value = -bc.value
        phi_b, matrix_b = solve_stationary_current(swapped)
        currents_backward = terminal_currents(
            matrix_b, phi_b, swapped.electrical_dirichlet
        )
        assert currents_forward[0] == pytest.approx(-currents_backward[0])
        assert currents_forward[1] == pytest.approx(-currents_backward[1])


class TestMaximumPrinciple:
    def test_potential_bounded_by_contacts(self):
        """No interior potential exceeds the Dirichlet extremes."""
        problem = build_wire_bridge_problem()
        phi, _ = solve_stationary_current(problem)
        assert np.max(phi) <= 0.02 + 1e-12
        assert np.min(phi) >= -0.02 - 1e-12

    def test_temperature_bounded_below_by_ambient(self):
        """Heating only: no node cools below the ambient/initial 300 K."""
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="full", tolerance=1e-6)
        result = solver.solve_transient(TimeGrid(10.0, 20),
                                        store_fields=True)
        for field in result.fields:
            assert np.min(field) >= 300.0 - 1e-9


class TestLumpedVsAnalyticEndToEnd:
    def test_segmented_field_wire_matches_parabola(self):
        """The 6-segment field wire reproduces the closed-form profile.

        Same cross-check as examples/analytic_vs_field.py, asserted with
        a tight bound.
        """
        from repro.bondwire.models import AnalyticWireModel

        problem = build_wire_bridge_problem(num_segments=6)
        solver = CoupledSolver(problem, mode="full", tolerance=1e-6)
        result = solver.solve_transient(TimeGrid(200.0, 100))
        wire = problem.wires[0]
        chain = problem.topology.wire_nodes[0]
        chain_temps = result.final_temperatures[chain]

        current = np.sqrt(
            result.wire_powers[-1, 0]
            / wire.resistance(0.5 * (chain_temps[0] + chain_temps[-1]))
        )
        analytic = AnalyticWireModel(
            wire.material, wire.diameter, wire.length
        ).solve_current_driven(current, chain_temps[0], chain_temps[-1])
        positions = np.linspace(0.0, wire.length, len(chain))
        deviation = np.max(
            np.abs(chain_temps - analytic.temperature(positions))
        )
        rise = np.max(chain_temps) - 300.0
        assert deviation < 0.02 * rise
