"""End-to-end assertions of the paper's qualitative claims.

These are the claims listed in DESIGN.md section 5, checked on a coarse
mesh with a reduced sample count so the whole module runs in well under a
minute.  Absolute temperatures differ from the paper (see EXPERIMENTS.md);
the *shape* claims asserted here are mesh- and sample-robust.
"""

import numpy as np
import pytest

from repro.package3d.chip_example import date16_layout
from repro.package3d.measurements import date16_xray_measurements
from repro.package3d.uq_study import Date16UncertaintyStudy


@pytest.fixture(scope="module")
def study():
    return Date16UncertaintyStudy(resolution="coarse", tolerance=1e-3)


@pytest.fixture(scope="module")
def result(study):
    return study.run_monte_carlo(num_samples=12, seed=42)


class TestClaim1SteadyState:
    def test_stationary_by_end_time(self, result):
        """'a stationary situation is observed after t ~ 50 s'."""
        mean, _ = result.hottest_wire_traces()
        # The last 10 % of the transient moves by under 2 % of the rise.
        rise = mean[-1] - mean[0]
        late_motion = np.max(np.abs(mean[-5:] - mean[-1]))
        assert late_motion < 0.02 * rise

    def test_most_of_the_rise_happens_early(self, result):
        """Time constant well under the 50 s window."""
        mean, _ = result.hottest_wire_traces()
        rise = mean[-1] - mean[0]
        halfway_index = int(np.argmax(mean - mean[0] >= 0.5 * rise))
        assert result.times[halfway_index] < 20.0


class TestClaim2MeanBelowCritical:
    def test_expected_temperature_below_523(self, result):
        """'the mean temperature of the hottest wire is still lower than
        the critical temperature'."""
        mean, _ = result.hottest_wire_traces()
        assert np.max(mean) < 523.0


class TestClaim4ErrorEstimator:
    def test_error_mc_is_sigma_over_sqrt_m(self, result):
        assert result.error_mc == pytest.approx(
            result.sigma_mc / np.sqrt(result.num_samples)
        )

    def test_sigma_positive_and_orders_of_magnitude_sane(self, result):
        """Length variability produces a nonzero spread, far below the
        mean rise (the paper: 4.65 K on a ~200 K rise)."""
        mean, _ = result.hottest_wire_traces()
        rise = mean[-1] - mean[0]
        assert 0.0 < result.sigma_mc < 0.25 * rise


class TestClaim5ShortWiresHottest:
    def test_hottest_wires_are_central_short_ones(self, result):
        """'the region where the contacts are closest and are connected by
        the shortest wires experience the largest temperature increase'."""
        directs = date16_layout().all_direct_distances()
        final_means = result.mean[-1]
        # Every short (central) wire runs hotter than every long one.
        short = final_means[directs < 1.2e-3]
        long_ = final_means[directs > 1.2e-3]
        assert short.min() > long_.max()

    def test_hot_spot_near_package_center(self, study):
        """Fig. 8: the spatial maximum sits in the chip/short-wire region."""
        nominal = study.nominal_result(store_fields=True)
        grid = study.mesh.grid
        temps = nominal.final_temperatures[: grid.num_nodes]
        hot_node = int(np.argmax(temps))
        coords = grid.node_coordinates()[hot_node]
        center = 0.5 * study.mesh.layout.body_x
        assert abs(coords[0] - center) < 1.5e-3
        assert abs(coords[1] - center) < 1.5e-3


class TestMeasurementChain:
    def test_dataset_to_distribution_to_lengths(self):
        """The full Fig. 4 -> Fig. 5 -> Table II chain is consistent."""
        dataset = date16_xray_measurements()
        fit = dataset.fit_elongation_distribution()
        assert fit.mu == pytest.approx(0.17, abs=1e-3)
        layout = date16_layout()
        lengths = layout.all_direct_distances() / (1.0 - fit.mu)
        assert np.mean(lengths) == pytest.approx(1.55e-3, rel=0.015)


class TestSolverCrossChecks:
    def test_fast_mode_used_by_study_matches_full_mode(self):
        """One nominal trace computed by both solver modes."""
        fast = Date16UncertaintyStudy(
            resolution="coarse", mode="fast", tolerance=1e-4
        )
        full = Date16UncertaintyStudy(
            resolution="coarse", mode="full", tolerance=1e-4
        )
        deltas = np.full(12, 0.17)
        trace_fast = fast.evaluate_traces(deltas)
        trace_full = full.evaluate_traces(deltas)
        assert np.allclose(trace_fast, trace_full, atol=0.5)
