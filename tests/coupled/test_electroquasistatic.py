"""Tests for the electroquasistatic extension."""

import numpy as np
import pytest

from repro.coupled.electroquasistatic import (
    charge_relaxation_time,
    solve_electroquasistatic,
)
from repro.coupled.problem import ElectrothermalProblem
from repro.errors import AssemblyError, SolverError
from repro.fit.boundary import DirichletBC
from repro.fit.material_field import MaterialField
from repro.grid.indexing import GridIndexing
from repro.grid.tensor_grid import TensorGrid
from repro.materials.base import Material
from repro.solvers.time_integration import TimeGrid

from .conftest import build_wire_bridge_problem


def _dielectric_bar(sigma=1.0e-6, eps_r=4.0):
    """Homogeneous lossy dielectric between two PEC faces."""
    grid = TensorGrid.uniform(
        ((0.0, 1.0e-3), (0.0, 0.5e-3), (0.0, 0.5e-3)), (6, 3, 3)
    )
    material = Material("lossy", sigma, 1.0, 1.0e6,
                        relative_permittivity=eps_r)
    field = MaterialField(grid, material)
    indexing = GridIndexing(grid)
    problem = ElectrothermalProblem(
        grid=grid,
        materials=field,
        electrical_dirichlet=[
            DirichletBC(indexing.boundary_nodes("x-"), 1.0, "hot"),
            DirichletBC(indexing.boundary_nodes("x+"), 0.0, "gnd"),
        ],
    )
    return problem, material


class TestChargeRelaxation:
    def test_tau_formula(self):
        _, material = _dielectric_bar()
        tau = charge_relaxation_time(material)
        assert tau == pytest.approx(
            4.0 * Material.EPSILON_0 / 1.0e-6
        )
        # Epoxy-like: a few tens of microseconds.
        assert 1e-5 < tau < 1e-4

    def test_homogeneous_bar_has_no_relaxation(self):
        """With sigma and eps proportional everywhere, the static field
        appears instantly: no Maxwell-Wagner transient exists."""
        problem, material = _dielectric_bar()
        tau = charge_relaxation_time(material)
        result = solve_electroquasistatic(problem, TimeGrid(6.0 * tau, 120))
        coords = problem.grid.node_coordinates()
        expected = 1.0 - coords[:, 0] / 1.0e-3
        # Already at the static solution after the first step.
        assert np.allclose(result.potentials[1], expected, atol=1e-9)

    def test_two_layer_maxwell_wagner_relaxation(self):
        """Heterogeneous eps/sigma ratios relax with
        tau = (eps1 + eps2) / (sigma1 + sigma2) (equal-thickness layers)."""
        grid = TensorGrid.uniform(
            ((0.0, 1.0e-3), (0.0, 0.5e-3), (0.0, 0.5e-3)), (9, 3, 3)
        )
        # Deliberately mismatched eps/sigma ratios (equal ratios would be
        # relaxation-free, as the homogeneous test above shows).
        mat_a = Material("a", 1.0e-6, 1.0, 1.0e6, relative_permittivity=2.0)
        mat_b = Material("b", 4.0e-6, 1.0, 1.0e6, relative_permittivity=6.0)
        field = MaterialField(grid, mat_a)
        field.fill_box(
            ((0.5e-3, 1.0e-3), (0.0, 0.5e-3), (0.0, 0.5e-3)), mat_b
        )
        indexing = GridIndexing(grid)
        problem = ElectrothermalProblem(
            grid=grid,
            materials=field,
            electrical_dirichlet=[
                DirichletBC(indexing.boundary_nodes("x-"), 1.0, "hot"),
                DirichletBC(indexing.boundary_nodes("x+"), 0.0, "gnd"),
            ],
        )
        eps_a = mat_a.permittivity()
        eps_b = mat_b.permittivity()
        tau = (eps_a + eps_b) / (1.0e-6 + 4.0e-6)
        result = solve_electroquasistatic(problem, TimeGrid(8.0 * tau, 800))
        measured = result.relaxation_time_estimate(terminal=0)
        assert measured == pytest.approx(tau, rel=0.15)

    def test_final_state_is_stationary_solution(self):
        """After many tau the EQS potential equals the DC solution."""
        problem, material = _dielectric_bar()
        tau = charge_relaxation_time(material)
        result = solve_electroquasistatic(problem, TimeGrid(20.0 * tau, 400))
        coords = problem.grid.node_coordinates()
        expected = 1.0 - coords[:, 0] / 1.0e-3
        assert np.allclose(result.final, expected, atol=1e-3)

    def test_initial_displacement_current_exceeds_final(self):
        """The charging spike: displacement current dominates at t ~ 0."""
        problem, material = _dielectric_bar()
        tau = charge_relaxation_time(problem.materials.materials[0])
        result = solve_electroquasistatic(problem, TimeGrid(10.0 * tau, 200))
        hot = result.terminal_currents[:, 0]
        assert abs(hot[1]) > 2.0 * abs(hot[-1])

    def test_terminal_currents_balance(self):
        problem, _ = _dielectric_bar()
        tau = charge_relaxation_time(problem.materials.materials[0])
        result = solve_electroquasistatic(problem, TimeGrid(5.0 * tau, 100))
        totals = np.sum(result.terminal_currents, axis=1)
        scale = np.max(np.abs(result.terminal_currents))
        assert np.allclose(totals, 0.0, atol=1e-9 * scale)


class TestAgainstStationary:
    def test_eqs_justifies_stationary_model(self):
        """On the thermal time scale the EQS transient is invisible.

        The paper's stationary-current model is valid because the charge
        relaxation (~3.5e-5 s for epoxy) is ~6 orders of magnitude faster
        than the 1 s thermal steps.
        """
        problem = build_wire_bridge_problem(nonlinear=False)
        from repro.coupled.electrical import solve_stationary_current

        phi_dc, _ = solve_stationary_current(problem)
        # EQS over one thermal step (1 s) with 50 sub-steps.
        result = solve_electroquasistatic(problem, TimeGrid(1.0, 50))
        assert np.allclose(result.final, phi_dc, atol=1e-6)

    def test_wire_stamps_included(self):
        problem = build_wire_bridge_problem(nonlinear=False)
        result = solve_electroquasistatic(problem, TimeGrid(1.0, 20))
        stamp = problem.topology.endpoint_stamps[0]
        drop = stamp.potential_drop(result.final)
        assert drop == pytest.approx(0.04, rel=0.05)


class TestValidation:
    def test_requires_terminals(self, small_grid, copper_field):
        problem = ElectrothermalProblem(
            grid=small_grid, materials=copper_field
        )
        with pytest.raises(AssemblyError):
            solve_electroquasistatic(problem, TimeGrid(1.0, 10))

    def test_bad_time_grid(self):
        problem, _ = _dielectric_bar()
        with pytest.raises(SolverError):
            solve_electroquasistatic(problem, "soon")

    def test_bad_initial_potentials(self):
        problem, _ = _dielectric_bar()
        with pytest.raises(AssemblyError):
            solve_electroquasistatic(
                problem, TimeGrid(1.0, 5), initial_potentials=np.zeros(3)
            )

    def test_relaxation_time_needs_conductor(self):
        insulator = Material("ins", 0.0, 1.0, 1.0e6)
        with pytest.raises(SolverError):
            charge_relaxation_time(insulator)
