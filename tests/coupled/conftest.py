"""Fixtures: small coupled problems with known physics."""

import pytest

from repro.bondwire.lumped import LumpedBondWire
from repro.coupled.problem import ElectrothermalProblem
from repro.fit.boundary import ConvectionBC, DirichletBC, RadiationBC
from repro.fit.material_field import MaterialField
from repro.grid.indexing import GridIndexing
from repro.grid.tensor_grid import TensorGrid
from repro.materials.library import copper, epoxy_resin

MM = 1.0e-3


@pytest.fixture
def copper_bar_problem():
    """A plain copper bar with both x-faces as PEC contacts.

    2 x 1 x 1 mm, sigma of Table I copper, 20 mV across -> the resistance
    and terminal currents have closed forms.
    """
    grid = TensorGrid.uniform(
        ((0.0, 2.0 * MM), (0.0, 1.0 * MM), (0.0, 1.0 * MM)), (9, 5, 5)
    )
    field = MaterialField(grid, copper())
    indexing = GridIndexing(grid)
    left = DirichletBC(indexing.boundary_nodes("x-"), 0.01, label="left")
    right = DirichletBC(indexing.boundary_nodes("x+"), -0.01, label="right")
    return ElectrothermalProblem(
        grid=grid,
        materials=field,
        wires=(),
        electrical_dirichlet=[left, right],
        convection=ConvectionBC(25.0, 300.0),
        t_initial=300.0,
        name="copper-bar",
    )


def build_wire_bridge_problem(num_segments=1, voltage=0.04,
                              wire_length=1.55 * MM, radiation=False,
                              nonlinear=True):
    """Two copper electrodes in epoxy, bridged by one bonding wire.

    The electrodes are thick (negligible resistance), so the wire sees
    almost the full applied voltage: I ~ V * G_wire.  This is the minimal
    configuration exercising the full field-circuit coupling.
    """
    grid = TensorGrid.uniform(
        ((0.0, 2.0 * MM), (0.0, 1.0 * MM), (0.0, 0.5 * MM)), (11, 5, 4)
    )
    conductor = copper() if nonlinear else copper().frozen(300.0)
    mold = epoxy_resin()
    field = MaterialField(grid, mold)
    field.fill_box(((0.0, 0.8 * MM), (0.0, 1.0 * MM), (0.0, 0.5 * MM)),
                   conductor)
    field.fill_box(((1.2 * MM, 2.0 * MM), (0.0, 1.0 * MM), (0.0, 0.5 * MM)),
                   conductor)
    indexing = GridIndexing(grid)
    node_a = indexing.nearest_node((0.8 * MM, 0.5 * MM, 0.25 * MM))
    node_b = indexing.nearest_node((1.2 * MM, 0.5 * MM, 0.25 * MM))
    wire = LumpedBondWire(
        node_a, node_b, conductor, 25.4e-6, wire_length,
        num_segments=num_segments, name="bridge",
    )
    left = DirichletBC(indexing.boundary_nodes("x-"), 0.5 * voltage, "left")
    right = DirichletBC(indexing.boundary_nodes("x+"), -0.5 * voltage, "right")
    return ElectrothermalProblem(
        grid=grid,
        materials=field,
        wires=[wire],
        electrical_dirichlet=[left, right],
        convection=ConvectionBC(25.0, 300.0),
        radiation=RadiationBC(0.2475, 300.0) if radiation else None,
        t_initial=300.0,
        name="wire-bridge",
    )


@pytest.fixture
def wire_bridge_problem():
    return build_wire_bridge_problem()
