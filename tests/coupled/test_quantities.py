"""Tests for the result containers."""

import numpy as np
import pytest

from repro.coupled.quantities import StationaryResult, TransientResult
from repro.errors import ReproError


def _result():
    times = np.linspace(0.0, 10.0, 6)
    wire_t = np.column_stack([
        300.0 + 5.0 * times,   # cooler wire
        300.0 + 8.0 * times,   # hottest wire
    ])
    return TransientResult(
        times=times,
        wire_temperatures=wire_t,
        wire_peak_temperatures=wire_t + 1.0,
        wire_powers=np.full((6, 2), 0.01),
        field_joule_power=np.full(6, 0.001),
        final_temperatures=np.full(10, 350.0),
        final_potentials=np.zeros(10),
        iterations_per_step=[2] * 5,
        wire_names=["w0", "w1"],
    )


class TestTransientResult:
    def test_num_wires(self):
        assert _result().num_wires == 2

    def test_trace_by_index_and_name(self):
        result = _result()
        assert np.allclose(result.wire_trace(1), result.wire_trace("w1"))

    def test_unknown_wire(self):
        with pytest.raises(ReproError):
            _result().wire_trace("nope")
        with pytest.raises(ReproError):
            _result().wire_trace(5)

    def test_hottest_wire(self):
        assert _result().hottest_wire_index() == 1

    def test_max_over_wires(self):
        result = _result()
        assert np.allclose(result.max_over_wires(), result.wire_trace(1))

    def test_final_wire_temperatures(self):
        result = _result()
        assert result.final_wire_temperatures()[1] == pytest.approx(380.0)

    def test_total_power_trace(self):
        result = _result()
        assert np.allclose(result.total_power_trace(), 0.021)

    def test_summary_mentions_hottest(self):
        assert "w1" in _result().summary()


class TestStationaryResult:
    def test_basics(self):
        result = StationaryResult(
            temperatures=np.full(10, 340.0),
            potentials=np.zeros(10),
            wire_temperatures=np.array([340.0, 345.0]),
            wire_powers=np.array([0.01, 0.02]),
            field_joule_power=0.001,
            iterations=7,
            wire_names=["a", "b"],
        )
        assert result.hottest_wire_index() == 1
        assert result.total_power() == pytest.approx(0.031)
        assert "b" in repr(result)
