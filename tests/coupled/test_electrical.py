"""Verification of the stationary current sub-problem (eq. (3))."""

import numpy as np
import pytest

from repro.coupled.electrical import solve_stationary_current, terminal_currents
from repro.errors import AssemblyError

MM = 1.0e-3


class TestCopperBar:
    def test_linear_potential(self, copper_bar_problem):
        phi, _ = solve_stationary_current(copper_bar_problem)
        coords = copper_bar_problem.grid.node_coordinates()
        expected = 0.01 - 0.01 * coords[:, 0] / MM
        assert np.allclose(phi, expected, atol=1e-12)

    def test_terminal_current_matches_ohm(self, copper_bar_problem):
        """I = V sigma A / L for the uniform bar, exactly on this mesh."""
        phi, matrix = solve_stationary_current(copper_bar_problem)
        currents = terminal_currents(
            matrix, phi, copper_bar_problem.electrical_dirichlet
        )
        sigma = 5.8e7
        area = 1.0 * MM * 1.0 * MM
        expected = 0.02 * sigma * area / (2.0 * MM)
        assert currents[0] == pytest.approx(expected, rel=1e-10)

    def test_kirchhoff_current_sum(self, copper_bar_problem):
        phi, matrix = solve_stationary_current(copper_bar_problem)
        currents = terminal_currents(
            matrix, phi, copper_bar_problem.electrical_dirichlet
        )
        assert sum(currents) == pytest.approx(0.0, abs=1e-9 * abs(currents[0]))

    def test_hot_bar_carries_less_current(self, copper_bar_problem):
        cold = np.full(copper_bar_problem.total_size, 300.0)
        hot = np.full(copper_bar_problem.total_size, 400.0)
        phi_c, m_c = solve_stationary_current(copper_bar_problem, cold)
        phi_h, m_h = solve_stationary_current(copper_bar_problem, hot)
        i_cold = terminal_currents(
            m_c, phi_c, copper_bar_problem.electrical_dirichlet
        )[0]
        i_hot = terminal_currents(
            m_h, phi_h, copper_bar_problem.electrical_dirichlet
        )[0]
        assert i_hot < i_cold
        assert i_hot == pytest.approx(i_cold / 1.393, rel=1e-3)


class TestWireBridge:
    def test_wire_carries_expected_current(self, wire_bridge_problem):
        """Thick electrodes: wire sees nearly the full 40 mV."""
        problem = wire_bridge_problem
        phi, matrix = solve_stationary_current(problem)
        wire = problem.wires[0]
        stamp = problem.topology.endpoint_stamps[0]
        drop = stamp.potential_drop(phi)
        assert drop == pytest.approx(0.04, rel=0.05)
        current = drop * wire.electrical_conductance(300.0)
        terminal = terminal_currents(
            matrix, phi, problem.electrical_dirichlet
        )[0]
        # Essentially all terminal current flows through the wire (the
        # epoxy leakage path is ~13 orders of magnitude weaker).
        assert current == pytest.approx(terminal, rel=1e-6)

    def test_epoxy_leakage_negligible(self, wire_bridge_problem):
        """Removing the wire leaves only the ~1e-6 S/m epoxy path."""
        problem = wire_bridge_problem
        no_wire = problem.with_wire_lengths([1.55e-3])
        no_wire.wires = []
        from repro.coupled.problem import WireTopology

        no_wire.topology = WireTopology([], problem.grid.num_nodes)
        phi, matrix = solve_stationary_current(no_wire)
        leakage = terminal_currents(
            matrix, phi, no_wire.electrical_dirichlet
        )[0]
        phi_w, matrix_w = solve_stationary_current(problem)
        with_wire = terminal_currents(
            matrix_w, phi_w, problem.electrical_dirichlet
        )[0]
        assert abs(leakage) < 1e-8 * abs(with_wire)

    def test_longer_wire_less_current(self, wire_bridge_problem):
        short = wire_bridge_problem
        longer = short.with_wire_lengths([3.1e-3])
        phi_s, m_s = solve_stationary_current(short)
        phi_l, m_l = solve_stationary_current(longer)
        i_short = terminal_currents(m_s, phi_s, short.electrical_dirichlet)[0]
        i_long = terminal_currents(m_l, phi_l, longer.electrical_dirichlet)[0]
        assert i_long == pytest.approx(i_short / 2.0, rel=0.02)

    def test_multi_segment_same_dc_solution(self):
        """Segmenting the wire must not change the DC operating point."""
        from .conftest import build_wire_bridge_problem

        single = build_wire_bridge_problem(num_segments=1)
        chain = build_wire_bridge_problem(num_segments=4)
        phi_1, m_1 = solve_stationary_current(single)
        phi_4, m_4 = solve_stationary_current(chain)
        i_1 = terminal_currents(m_1, phi_1, single.electrical_dirichlet)[0]
        i_4 = terminal_currents(m_4, phi_4, chain.electrical_dirichlet)[0]
        assert i_4 == pytest.approx(i_1, rel=1e-9)
        # Internal chain nodes interpolate the drop linearly.
        internal = phi_4[single.grid.num_nodes:]
        drops = np.diff(
            np.concatenate([[phi_4[chain.wires[0].start_node]], internal,
                            [phi_4[chain.wires[0].end_node]]])
        )
        assert np.allclose(drops, drops[0], rtol=1e-9)


class TestValidation:
    def test_requires_dirichlet(self, copper_bar_problem):
        problem = copper_bar_problem
        problem.electrical_dirichlet = []
        with pytest.raises(AssemblyError):
            solve_stationary_current(problem)
