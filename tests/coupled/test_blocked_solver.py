"""Tests for the sample-blocked coupled transient solver.

The equivalence assertions are tier-aware: under the default ``numpy``
backend they are bitwise (the PR 7 contract); when CI re-runs this
suite under ``REPRO_ARRAY_BACKEND=devicesim`` they assert the declared
``rtol`` tier of the device double's gemm-ordered path instead.
"""

import numpy as np
import pytest

from repro.backends import get_array_backend
from repro.coupled.electrothermal import (
    BlockedCoupledSolver,
    BlockedTransientResult,
    CoupledSolver,
)
from repro.errors import SolverError
from repro.solvers.time_integration import TimeGrid

from .conftest import MM, build_wire_bridge_problem


def _assert_tier_equal(actual, expected):
    """Blocked == per-sample per the active backend's declared tier."""
    tier = get_array_backend(None).equivalence
    if tier.kind == "bitwise":
        assert np.array_equal(actual, expected)
        return
    expected = np.asarray(expected, dtype=float)
    scale = float(np.max(np.abs(expected))) if expected.size else 1.0
    np.testing.assert_allclose(
        np.asarray(actual, dtype=float), expected,
        rtol=tier.rtol, atol=tier.rtol * max(scale, 1.0),
    )


def _solver(problem=None, **kwargs):
    problem = problem or build_wire_bridge_problem()
    kwargs.setdefault("mode", "fast")
    kwargs.setdefault("tolerance", 1.0e-6)
    return CoupledSolver(problem, **kwargs)


def _length_block():
    return np.array([[1.40 * MM], [1.55 * MM], [1.80 * MM]])


class TestConstruction:
    def test_requires_coupled_solver(self):
        with pytest.raises(SolverError, match="CoupledSolver"):
            BlockedCoupledSolver(object())

    def test_rejects_full_mode(self):
        solver = _solver(mode="full")
        with pytest.raises(SolverError, match="fast"):
            BlockedCoupledSolver(solver)

    def test_rejects_multi_segment_wires(self):
        solver = _solver(build_wire_bridge_problem(num_segments=3))
        with pytest.raises(SolverError, match="single-segment"):
            BlockedCoupledSolver(solver)


class TestValidation:
    def test_length_block_shape(self):
        blocked = BlockedCoupledSolver(_solver())
        with pytest.raises(SolverError, match="length block"):
            blocked.set_wire_lengths_block(np.ones(3))
        with pytest.raises(SolverError, match="length block"):
            blocked.set_wire_lengths_block(np.ones((3, 2)))

    def test_positive_lengths(self):
        blocked = BlockedCoupledSolver(_solver())
        with pytest.raises(SolverError, match="positive"):
            blocked.set_wire_lengths_block(np.array([[1.0e-3], [0.0]]))

    def test_solve_requires_bound_lengths(self):
        blocked = BlockedCoupledSolver(_solver())
        with pytest.raises(SolverError, match="set_wire_lengths_block"):
            blocked.solve_transient_block(TimeGrid(1.0, 2))

    def test_solve_requires_time_grid(self):
        blocked = BlockedCoupledSolver(_solver())
        blocked.set_wire_lengths_block(_length_block())
        with pytest.raises(SolverError, match="TimeGrid"):
            blocked.solve_transient_block([0.0, 1.0])


class TestAgainstPerSample:
    def _compare(self, problem, grid, lengths, waveform=None, **kwargs):
        solver = _solver(problem, **kwargs)
        blocked = BlockedCoupledSolver(solver)
        blocked.set_wire_lengths_block(lengths)
        block = blocked.solve_transient_block(grid, waveform=waveform)
        assert isinstance(block, BlockedTransientResult)
        assert block.num_samples == lengths.shape[0]
        bitwise = get_array_backend(None).equivalence.kind == "bitwise"
        for s, row in enumerate(lengths):
            solver.set_wire_lengths(row)
            reference = solver.solve_transient(grid, waveform=waveform)
            _assert_tier_equal(
                block.wire_temperatures[s],
                np.asarray(reference.wire_temperatures),
            )
            _assert_tier_equal(
                block.wire_peak_temperatures[s],
                np.asarray(reference.wire_peak_temperatures),
            )
            _assert_tier_equal(
                block.wire_powers[s], np.asarray(reference.wire_powers)
            )
            _assert_tier_equal(
                block.field_joule_power[s],
                np.asarray(reference.field_joule_power),
            )
            _assert_tier_equal(
                block.final_temperatures[s], reference.final_temperatures
            )
            if bitwise:
                # Device tiers may converge a fixed point one iterate
                # earlier/later; the iteration trace is only pinned on
                # the bitwise tier.
                assert list(block.iterations_per_step[s]) == list(
                    reference.iterations_per_step
                )

    def test_bitwise_equivalence_wire_bridge(self):
        self._compare(
            build_wire_bridge_problem(), TimeGrid(2.0, 4), _length_block()
        )

    def test_bitwise_equivalence_with_radiation(self):
        self._compare(
            build_wire_bridge_problem(radiation=True),
            TimeGrid(2.0, 3),
            _length_block(),
        )

    def test_bitwise_equivalence_with_waveform(self):
        from repro.coupled.excitation import StepWaveform

        self._compare(
            build_wire_bridge_problem(),
            TimeGrid(2.0, 3),
            _length_block(),
            waveform=StepWaveform(t_on=0.5, scale=0.8),
        )

    def test_single_sample_block(self):
        self._compare(
            build_wire_bridge_problem(), TimeGrid(1.0, 2),
            np.array([[1.55 * MM]]),
        )


class TestDiagnostics:
    def test_result_shapes(self):
        solver = _solver()
        blocked = BlockedCoupledSolver(solver)
        blocked.set_wire_lengths_block(_length_block())
        grid = TimeGrid(1.0, 3)
        result = blocked.solve_transient_block(grid)
        assert result.wire_temperatures.shape == (3, 4, 1)
        assert result.wire_powers.shape == (3, 4, 1)
        assert result.field_joule_power.shape == (3, 4)
        assert result.final_temperatures.shape == (3, solver.total_size)
        assert result.iterations_per_step.shape == (3, 3)
        assert np.all(result.iterations_per_step >= 1)

    def test_blocked_step_metrics(self):
        solver = _solver()
        blocked = BlockedCoupledSolver(solver)
        blocked.set_wire_lengths_block(_length_block())
        before = solver.metrics.as_dict()["counters"].get("coupled_steps", 0)
        blocked.solve_transient_block(TimeGrid(1.0, 2))
        counters = solver.metrics.as_dict()["counters"]
        # Two time steps x three samples count as per-sample step work...
        assert counters.get("coupled_steps", 0) - before == 6
        # ... folded into two blocked step invocations.
        assert counters.get("blocked_steps", 0) == 2

    def test_nonconvergence_reports_blocked_samples(self):
        solver = _solver(max_iterations=1, tolerance=1.0e-14)
        blocked = BlockedCoupledSolver(solver)
        blocked.set_wire_lengths_block(_length_block())
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError, match="blocked samples"):
            blocked.solve_transient_block(TimeGrid(1.0, 2))
