"""Tests for the problem container and wire topology."""

import numpy as np
import pytest

from repro.bondwire.lumped import LumpedBondWire
from repro.coupled.problem import ElectrothermalProblem, WireTopology
from repro.errors import AssemblyError, BondWireError
from repro.materials.library import copper


def _wire(a, b, segments=1, length=1.55e-3, name=""):
    return LumpedBondWire(a, b, copper(), 25.4e-6, length,
                          num_segments=segments, name=name)


class TestWireTopologySingleSegment:
    def test_no_extra_nodes(self):
        topo = WireTopology([_wire(0, 5), _wire(2, 7)], 10)
        assert topo.num_extra_nodes == 0
        assert topo.total_size == 10
        assert topo.num_segments_total == 2

    def test_wire_temperatures_eq5(self):
        topo = WireTopology([_wire(0, 2)], 4)
        t = np.array([300.0, 0.0, 400.0, 0.0])
        assert topo.wire_temperatures(t)[0] == 350.0

    def test_incidence_matrix(self):
        topo = WireTopology([_wire(0, 2), _wire(1, 3)], 4)
        u = topo.segment_incidence_matrix()
        assert u.shape == (4, 2)
        assert u[0, 0] == 1.0 and u[2, 0] == -1.0
        assert u[1, 1] == 1.0 and u[3, 1] == -1.0

    def test_conductances_match_wire(self):
        wire = _wire(0, 2)
        topo = WireTopology([wire], 4)
        t = np.full(4, 300.0)
        g = topo.segment_electrical_conductances(t)
        assert g[0] == pytest.approx(wire.electrical_conductance(300.0))


class TestWireTopologyMultiSegment:
    def test_extra_node_numbering(self):
        topo = WireTopology([_wire(0, 5, segments=3), _wire(2, 7, segments=2)], 10)
        assert topo.num_extra_nodes == 3
        assert topo.total_size == 13
        assert topo.wire_nodes[0] == [0, 10, 11, 5]
        assert topo.wire_nodes[1] == [2, 12, 7]

    def test_segment_count(self):
        topo = WireTopology([_wire(0, 5, segments=4)], 10)
        assert topo.num_segments_total == 4

    def test_endpoint_temperature_ignores_internal(self):
        topo = WireTopology([_wire(0, 3, segments=2)], 4)
        t = np.array([300.0, 0.0, 0.0, 400.0, 1000.0])  # internal at 1000
        assert topo.wire_temperatures(t)[0] == 350.0
        assert topo.wire_peak_temperatures(t)[0] == 1000.0

    def test_extra_heat_capacities(self):
        wire = _wire(0, 5, segments=4)
        topo = WireTopology([wire], 10)
        capacities = topo.extra_heat_capacities()
        assert capacities.shape == (3,)
        assert np.allclose(capacities, wire.segment_heat_capacity())
        # Total internal capacity is 3/4 of the wire's full heat capacity.
        full = copper().volumetric_heat_capacity() * wire.volume
        assert np.sum(capacities) == pytest.approx(0.75 * full)

    def test_joule_power_bookkeeping(self):
        """Node powers sum to per-wire totals."""
        topo = WireTopology([_wire(0, 3, segments=2)], 4)
        phi = np.array([0.02, 0.0, 0.0, -0.02, 0.0])
        t = np.full(5, 300.0)
        node_power, wire_power = topo.joule_powers(phi, t)
        assert np.sum(node_power) == pytest.approx(wire_power[0])
        assert wire_power[0] > 0.0


class TestTopologyValidation:
    def test_wire_outside_grid(self):
        with pytest.raises(BondWireError):
            WireTopology([_wire(0, 50)], 10)

    def test_non_wire_rejected(self):
        with pytest.raises(BondWireError):
            WireTopology(["wire"], 10)


class TestProblemCloning:
    def test_with_wire_lengths(self, wire_bridge_problem):
        clone = wire_bridge_problem.with_wire_lengths([3.0e-3])
        assert clone.wires[0].length == 3.0e-3
        assert wire_bridge_problem.wires[0].length == pytest.approx(1.55e-3)
        assert clone.grid is wire_bridge_problem.grid

    def test_wrong_length_count(self, wire_bridge_problem):
        with pytest.raises(BondWireError):
            wire_bridge_problem.with_wire_lengths([1e-3, 2e-3])

    def test_with_segmented_wires(self, wire_bridge_problem):
        clone = wire_bridge_problem.with_segmented_wires(5)
        assert clone.topology.num_extra_nodes == 4
        assert wire_bridge_problem.topology.num_extra_nodes == 0

    def test_initial_temperatures_cover_extra_nodes(self, wire_bridge_problem):
        clone = wire_bridge_problem.with_segmented_wires(3)
        t0 = clone.initial_temperatures()
        assert t0.shape == (clone.total_size,)
        assert np.all(t0 == 300.0)


class TestProblemValidation:
    def test_dirichlet_outside_grid(self, small_grid, copper_field):
        from repro.fit.boundary import DirichletBC

        with pytest.raises(AssemblyError):
            ElectrothermalProblem(
                grid=small_grid,
                materials=copper_field,
                electrical_dirichlet=[DirichletBC([10**6], 0.0)],
            )

    def test_bad_initial_temperature(self, small_grid, copper_field):
        with pytest.raises(AssemblyError):
            ElectrothermalProblem(
                grid=small_grid, materials=copper_field, t_initial=-5.0
            )

    def test_wire_names_autonumbered(self, small_grid, copper_field):
        problem = ElectrothermalProblem(
            grid=small_grid,
            materials=copper_field,
            wires=[_wire(0, 5), _wire(1, 6, name="special")],
        )
        assert problem.wire_names() == ["wire00", "special"]
