"""Verification of the coupled transient/stationary solver."""

import numpy as np
import pytest

from repro.coupled.electrothermal import CoupledSolver
from repro.errors import SolverError
from repro.solvers.time_integration import TimeGrid

from .conftest import build_wire_bridge_problem


@pytest.fixture(scope="module")
def bridge_transient():
    problem = build_wire_bridge_problem()
    solver = CoupledSolver(problem, mode="full", tolerance=1e-6)
    time_grid = TimeGrid(20.0, 40)
    return problem, solver, solver.solve_transient(time_grid)


class TestTransientBasics:
    def test_starts_at_initial_temperature(self, bridge_transient):
        _, _, result = bridge_transient
        assert np.allclose(result.wire_temperatures[0], 300.0)

    def test_monotone_heating(self, bridge_transient):
        """With constant drive the wire temperature rises monotonically."""
        _, _, result = bridge_transient
        trace = result.wire_trace(0)
        assert np.all(np.diff(trace) > -1e-9)
        assert trace[-1] > 300.5

    def test_power_positive_and_plausible(self, bridge_transient):
        problem, _, result = bridge_transient
        wire = problem.wires[0]
        # I = V G: 40 mV across a ~53 mOhm wire -> ~30 mW at 300 K.
        expected = 0.04**2 * wire.electrical_conductance(300.0)
        assert result.wire_powers[-1, 0] == pytest.approx(expected, rel=0.3)

    def test_wire_power_dominates_field_power(self, bridge_transient):
        """The thin wire, not the fat electrodes, dissipates the power."""
        _, _, result = bridge_transient
        assert result.wire_powers[-1, 0] > 50.0 * result.field_joule_power[-1]

    def test_iterations_recorded(self, bridge_transient):
        _, _, result = bridge_transient
        assert len(result.iterations_per_step) == 40
        assert all(i >= 1 for i in result.iterations_per_step)

    def test_electrothermal_feedback_reduces_power(self, bridge_transient):
        """Voltage-driven: the hot wire dissipates less than the cold one."""
        _, _, result = bridge_transient
        assert result.wire_powers[-1, 0] < result.wire_powers[1, 0]


class TestFastMode:
    def test_fast_matches_full(self):
        problem = build_wire_bridge_problem()
        time_grid = TimeGrid(10.0, 20)
        full = CoupledSolver(problem, mode="full", tolerance=1e-6)
        fast = CoupledSolver(problem, mode="fast", tolerance=1e-6)
        r_full = full.solve_transient(time_grid)
        r_fast = fast.solve_transient(time_grid)
        # Frozen field materials are the only difference; on this small
        # temperature excursion they agree to well below a kelvin.
        assert np.allclose(
            r_fast.wire_temperatures, r_full.wire_temperatures, atol=0.5
        )

    def test_fast_exact_when_materials_frozen(self):
        """With T-independent field materials the two modes coincide."""
        problem = build_wire_bridge_problem(nonlinear=False)
        time_grid = TimeGrid(5.0, 10)
        r_full = CoupledSolver(problem, mode="full",
                               tolerance=1e-8).solve_transient(time_grid)
        r_fast = CoupledSolver(problem, mode="fast",
                               tolerance=1e-8).solve_transient(time_grid)
        assert np.allclose(
            r_fast.wire_temperatures, r_full.wire_temperatures, atol=1e-4
        )

    def test_fast_with_radiation(self):
        problem = build_wire_bridge_problem(radiation=True)
        time_grid = TimeGrid(5.0, 10)
        r_full = CoupledSolver(problem, mode="full",
                               tolerance=1e-7).solve_transient(time_grid)
        r_fast = CoupledSolver(problem, mode="fast",
                               tolerance=1e-7).solve_transient(time_grid)
        assert np.allclose(
            r_fast.wire_temperatures, r_full.wire_temperatures, atol=0.5
        )

    def test_fast_rejects_pec_wire_nodes(self, small_grid):
        """A wire landing on a Dirichlet node must fall back to full mode."""
        from repro.bondwire.lumped import LumpedBondWire
        from repro.coupled.problem import ElectrothermalProblem
        from repro.fit.boundary import DirichletBC
        from repro.fit.material_field import MaterialField
        from repro.materials.library import copper

        field = MaterialField(small_grid, copper())
        problem = ElectrothermalProblem(
            grid=small_grid,
            materials=field,
            wires=[LumpedBondWire(0, 5, copper(), 25e-6, 1e-3)],
            electrical_dirichlet=[DirichletBC([0], 0.02),
                                  DirichletBC([7], -0.02)],
        )
        with pytest.raises(SolverError):
            CoupledSolver(problem, mode="fast")

    def test_unknown_mode(self, wire_bridge_problem):
        with pytest.raises(SolverError):
            CoupledSolver(wire_bridge_problem, mode="turbo")


class TestSetWireLengths:
    def test_rebinding_matches_fresh_solver(self):
        problem = build_wire_bridge_problem()
        time_grid = TimeGrid(5.0, 10)
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-7)
        solver.solve_transient(time_grid)  # run once at nominal
        solver.set_wire_lengths([2.5e-3])
        rebound = solver.solve_transient(time_grid)

        fresh_problem = build_wire_bridge_problem(wire_length=2.5e-3)
        fresh = CoupledSolver(
            fresh_problem, mode="fast", tolerance=1e-7
        ).solve_transient(time_grid)
        assert np.allclose(
            rebound.wire_temperatures, fresh.wire_temperatures, atol=1e-6
        )

    def test_wrong_count_rejected(self, wire_bridge_problem):
        solver = CoupledSolver(wire_bridge_problem, mode="fast")
        with pytest.raises(SolverError):
            solver.set_wire_lengths([1e-3, 2e-3])


class TestMultiSegment:
    def test_interior_hotspot_resolved(self):
        """Segmented wire shows an interior peak above the end average."""
        problem = build_wire_bridge_problem(num_segments=5)
        solver = CoupledSolver(problem, mode="full", tolerance=1e-6)
        result = solver.solve_transient(TimeGrid(20.0, 20))
        endpoint = result.wire_temperatures[-1, 0]
        peak = result.wire_peak_temperatures[-1, 0]
        assert peak > endpoint

    def test_segmented_total_power_matches_single(self):
        time_grid = TimeGrid(10.0, 10)
        single = CoupledSolver(
            build_wire_bridge_problem(num_segments=1), mode="full",
            tolerance=1e-6,
        ).solve_transient(time_grid)
        chain = CoupledSolver(
            build_wire_bridge_problem(num_segments=4), mode="full",
            tolerance=1e-6,
        ).solve_transient(time_grid)
        assert chain.wire_powers[-1, 0] == pytest.approx(
            single.wire_powers[-1, 0], rel=0.05
        )


class TestStationary:
    def test_matches_long_transient(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="full", tolerance=1e-8)
        stationary = solver.solve_stationary()
        transient = CoupledSolver(
            problem, mode="full", tolerance=1e-8
        ).solve_transient(TimeGrid(2000.0, 200))
        assert stationary.wire_temperatures[0] == pytest.approx(
            transient.wire_temperatures[-1, 0], abs=0.05
        )

    def test_energy_balance(self):
        """At steady state, Joule power = convective losses."""
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="full", tolerance=1e-9)
        stationary = solver.solve_stationary()
        losses = problem.convection.power(
            solver.discretization.dual,
            stationary.temperatures[: problem.grid.num_nodes],
        )
        assert losses == pytest.approx(stationary.total_power(), rel=1e-3)

    def test_stationary_requires_heat_path(self, small_grid, copper_field):
        from repro.coupled.problem import ElectrothermalProblem
        from repro.fit.boundary import DirichletBC
        from repro.grid.indexing import GridIndexing

        indexing = GridIndexing(small_grid)
        problem = ElectrothermalProblem(
            grid=small_grid,
            materials=copper_field,
            electrical_dirichlet=[
                DirichletBC(indexing.boundary_nodes("x-"), 0.01),
                DirichletBC(indexing.boundary_nodes("x+"), -0.01),
            ],
        )
        solver = CoupledSolver(problem, mode="full")
        with pytest.raises(SolverError):
            solver.solve_stationary()


class TestStoreFields:
    def test_fields_stored_on_request(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-5)
        result = solver.solve_transient(TimeGrid(2.0, 4), store_fields=True)
        assert len(result.fields) == 5
        assert result.fields[0].shape == (problem.total_size,)
        assert np.allclose(result.fields[-1], result.final_temperatures)


class TestPerDtSolverReuse:
    """The single-slot memo regression: adaptive step doubling
    alternates dt and dt/2 on every attempt, so thermal solver builds
    must be O(#distinct dt), not O(#solves)."""

    def test_builds_scale_with_distinct_dts_not_solves(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4)
        state = problem.initial_temperatures()
        # 5 alternation rounds over two step sizes.
        for _ in range(5):
            state = solver.step_once(state, 0.5)
            state = solver.step_once(state, 0.25)
        assert solver.num_steps == 10
        assert solver.thermal_solver_builds == 2

    def test_adaptive_integration_builds_per_rung(self):
        from repro.solvers.adaptive import adaptive_implicit_euler

        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4)
        result = adaptive_implicit_euler(
            solver.step_once, problem.initial_temperatures(),
            end_time=10.0, initial_dt=0.5, tolerance=0.2, quantize_dt=True,
        )
        assert solver.thermal_solver_builds == result.num_distinct_solver_dts
        assert solver.thermal_solver_builds < result.num_solves

    def test_lru_bound_evicts_oldest(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4,
                               max_thermal_solvers=2)
        state = problem.initial_temperatures()
        for dt in (1.0, 0.5, 0.25):
            solver.step_once(state, dt)
        assert len(solver._fast_th_solvers) == 2
        assert solver.thermal_solver_builds == 3
        # Re-solving the evicted dt rebuilds (bounded memory, correct
        # result), the cached ones do not.
        solver.step_once(state, 0.25)
        assert solver.thermal_solver_builds == 3
        solver.step_once(state, 1.0)
        assert solver.thermal_solver_builds == 4

    def test_statistics_report_cache_counters(self):
        from repro.solvers.cache import FactorizationCache

        cache = FactorizationCache()
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4,
                               factorization_cache=cache)
        solver.step_once(problem.initial_temperatures(), 0.5)
        stats = solver.solver_statistics()
        assert stats["mode"] == "fast"
        assert stats["coupled_steps"] == 1
        assert stats["thermal_solver_builds"] == 1
        assert stats["thermal_solvers_cached"] == 1
        # el base (setup) + one thermal base missed the shared cache.
        assert stats["factorization_cache_misses"] == 2
        assert stats["factorization_cache_hits"] == 0

    def test_invalid_max_thermal_solvers(self):
        problem = build_wire_bridge_problem()
        with pytest.raises(SolverError):
            CoupledSolver(problem, mode="fast", max_thermal_solvers=0)


class TestStatisticsWindow:
    """solver_statistics() reports per-window deltas (default: since
    construction or the last begin_statistics_window), with
    ``lifetime=True`` as the escape hatch back to raw totals."""

    def test_counters_reset_with_a_new_window(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4)
        state = problem.initial_temperatures()
        solver.step_once(state, 0.5)
        solver.step_once(state, 0.5)
        assert solver.solver_statistics()["coupled_steps"] == 2

        solver.begin_statistics_window()
        fresh = solver.solver_statistics()
        assert fresh["coupled_steps"] == 0
        assert fresh["thermal_solver_builds"] == 0

        solver.step_once(state, 0.5)
        window = solver.solver_statistics()
        assert window["coupled_steps"] == 1
        # dt=0.5 was already cached before the window opened.
        assert window["thermal_solver_builds"] == 0
        assert window["mode"] == "fast"
        assert window["thermal_solvers_cached"] == 1

    def test_lifetime_escape_hatch(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4)
        state = problem.initial_temperatures()
        solver.step_once(state, 0.5)
        solver.begin_statistics_window()
        solver.step_once(state, 0.5)
        assert solver.solver_statistics()["coupled_steps"] == 1
        lifetime = solver.solver_statistics(lifetime=True)
        assert lifetime["coupled_steps"] == 2
        assert lifetime["thermal_solver_builds"] == 1

    def test_window_excludes_other_solvers_cache_traffic(self):
        """Two solvers sharing one FactorizationCache: each solver's
        window starts at its own construction, so the first solver's
        hits/misses never leak into the second's per-run delta."""
        from repro.solvers.cache import FactorizationCache

        cache = FactorizationCache()
        problem = build_wire_bridge_problem()
        first = CoupledSolver(problem, mode="fast", tolerance=1e-4,
                              factorization_cache=cache)
        first.step_once(problem.initial_temperatures(), 0.5)
        first_stats = first.solver_statistics()
        assert first_stats["factorization_cache_misses"] == 2
        assert first_stats["factorization_cache_hits"] == 0

        second = CoupledSolver(problem, mode="fast", tolerance=1e-4,
                               factorization_cache=cache)
        second.step_once(problem.initial_temperatures(), 0.5)
        second_stats = second.solver_statistics()
        assert second_stats["coupled_steps"] == 1
        # The second solver's setup reuses the first's factorizations:
        # all hits inside its own window, zero inherited misses.
        assert second_stats["factorization_cache_misses"] == 0
        assert second_stats["factorization_cache_hits"] >= 1
        # Lifetime view still shows the shared cache's full history.
        lifetime = second.solver_statistics(lifetime=True)
        assert lifetime["factorization_cache_misses"] == 2
