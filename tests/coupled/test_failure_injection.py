"""Failure-injection tests: the solver fails loudly, not silently."""

import numpy as np
import pytest

from repro.coupled.electrothermal import CoupledSolver
from repro.errors import ConvergenceError, ReproError, SolverError
from repro.solvers.time_integration import TimeGrid

from .conftest import build_wire_bridge_problem


class TestNonConvergence:
    def test_iteration_budget_exhaustion_raises(self):
        """A one-iteration budget on a nonlinear step must raise."""
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(
            problem, mode="full", tolerance=1e-12, max_iterations=1
        )
        with pytest.raises(ConvergenceError) as excinfo:
            solver.solve_transient(TimeGrid(10.0, 5))
        assert excinfo.value.iterations == 1

    def test_convergence_error_carries_residual(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(
            problem, mode="fast", tolerance=1e-14, max_iterations=2
        )
        with pytest.raises(ConvergenceError) as excinfo:
            solver.solve_transient(TimeGrid(10.0, 5))
        assert excinfo.value.residual is not None
        assert excinfo.value.residual > 0.0


class TestBadInputs:
    def test_time_grid_type_checked(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast")
        with pytest.raises(SolverError):
            solver.solve_transient(50.0)

    def test_waveform_garbage_rejected_before_solving(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast")
        with pytest.raises(SolverError):
            solver.solve_transient(TimeGrid(1.0, 2), waveform="eleven")

    def test_negative_wire_length_rejected_on_rebind(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast")
        from repro.errors import BondWireError

        with pytest.raises(BondWireError):
            solver.set_wire_lengths([-1.0e-3])


class TestRobustRecovery:
    def test_solver_reusable_after_convergence_failure(self):
        """A failed solve must not poison the solver's cached state."""
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(
            problem, mode="fast", tolerance=1e-14, max_iterations=2
        )
        with pytest.raises(ConvergenceError):
            solver.solve_transient(TimeGrid(10.0, 5))
        # Loosen and retry on the same solver instance.
        solver.tolerance = 1e-3
        solver.max_iterations = 40
        result = solver.solve_transient(TimeGrid(10.0, 5))
        assert np.all(np.isfinite(result.wire_temperatures))

    def test_all_errors_are_repro_errors(self):
        """Intentional failures derive from ReproError (catchable API)."""
        assert issubclass(ConvergenceError, ReproError)
        assert issubclass(SolverError, ReproError)
