"""Tests for drive waveforms and their coupling into the solver."""

import numpy as np
import pytest

from repro.coupled.electrothermal import CoupledSolver
from repro.coupled.excitation import (
    ConstantWaveform,
    PulseTrainWaveform,
    RampWaveform,
    StepWaveform,
    as_waveform,
)
from repro.errors import SolverError
from repro.solvers.time_integration import TimeGrid

from .conftest import build_wire_bridge_problem


class TestWaveformShapes:
    def test_constant(self):
        w = ConstantWaveform(0.5)
        assert w(0.0) == 0.5
        assert w(1e9) == 0.5

    def test_step(self):
        w = StepWaveform(t_on=1.0, t_off=3.0)
        assert w(0.5) == 0.0
        assert w(1.0) == 1.0
        assert w(2.9) == 1.0
        assert w(3.0) == 0.0

    def test_step_validation(self):
        with pytest.raises(SolverError):
            StepWaveform(t_on=2.0, t_off=1.0)

    def test_pulse_train(self):
        w = PulseTrainWaveform(period=2.0, duty=0.25)
        assert w(0.1) == 1.0
        assert w(0.6) == 0.0
        assert w(2.1) == 1.0

    def test_pulse_validation(self):
        with pytest.raises(SolverError):
            PulseTrainWaveform(period=0.0)
        with pytest.raises(SolverError):
            PulseTrainWaveform(period=1.0, duty=0.0)

    def test_ramp(self):
        w = RampWaveform(rise_time=10.0, scale=2.0)
        assert w(0.0) == 0.0
        assert w(5.0) == 1.0
        assert w(20.0) == 2.0

    def test_sample(self):
        w = RampWaveform(rise_time=2.0)
        assert np.allclose(w.sample([0.0, 1.0, 2.0, 4.0]),
                           [0.0, 0.5, 1.0, 1.0])


class TestCoercion:
    def test_none_is_unit_constant(self):
        assert as_waveform(None)(123.0) == 1.0

    def test_number(self):
        assert as_waveform(0.7)(0.0) == 0.7

    def test_callable(self):
        assert as_waveform(lambda t: t * 2.0)(3.0) == 6.0

    def test_waveform_passthrough(self):
        w = StepWaveform(0.0, 1.0)
        assert as_waveform(w) is w

    def test_garbage_rejected(self):
        with pytest.raises(SolverError):
            as_waveform("full blast")


class TestDrivenSolver:
    def test_zero_drive_stays_cold(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-5)
        result = solver.solve_transient(
            TimeGrid(5.0, 10), waveform=ConstantWaveform(0.0)
        )
        assert np.allclose(result.wire_temperatures, 300.0, atol=1e-6)
        assert np.allclose(result.wire_powers, 0.0)

    def test_half_drive_quarter_power(self):
        """Power scales with the square of the drive (linear electrics)."""
        problem = build_wire_bridge_problem(nonlinear=False)
        time_grid = TimeGrid(2.0, 4)
        full = CoupledSolver(problem, mode="fast",
                             tolerance=1e-7).solve_transient(time_grid)
        half = CoupledSolver(problem, mode="fast",
                             tolerance=1e-7).solve_transient(
            time_grid, waveform=ConstantWaveform(0.5)
        )
        ratio = half.wire_powers[1, 0] / full.wire_powers[1, 0]
        assert ratio == pytest.approx(0.25, rel=1e-3)

    def test_pulse_heats_then_cools(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-5)
        result = solver.solve_transient(
            TimeGrid(20.0, 40), waveform=StepWaveform(0.0, 5.0)
        )
        trace = result.wire_trace(0)
        peak_index = int(np.argmax(trace))
        # Heats while on (first 5 s = 10 steps), cools afterwards.
        assert 8 <= peak_index <= 14
        assert trace[-1] < trace[peak_index]
        assert trace[-1] > 299.9

    def test_full_and_fast_agree_under_pulse(self):
        problem = build_wire_bridge_problem(nonlinear=False)
        time_grid = TimeGrid(6.0, 12)
        waveform = StepWaveform(0.0, 3.0)
        r_full = CoupledSolver(problem, mode="full",
                               tolerance=1e-7).solve_transient(
            time_grid, waveform=waveform
        )
        r_fast = CoupledSolver(problem, mode="fast",
                               tolerance=1e-7).solve_transient(
            time_grid, waveform=waveform
        )
        assert np.allclose(
            r_fast.wire_temperatures, r_full.wire_temperatures, atol=1e-4
        )

    def test_scale_restored_after_transient(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="full", tolerance=1e-5)
        solver.solve_transient(
            TimeGrid(1.0, 2), waveform=ConstantWaveform(0.0)
        )
        stationary = solver.solve_stationary()
        # The stationary solve runs at full drive again.
        assert stationary.total_power() > 0.0
