"""Energy-balance verification of the coupled solver."""

import pytest

from repro.coupled.electrothermal import CoupledSolver
from repro.coupled.energy import audit_energy
from repro.errors import ReproError
from repro.solvers.time_integration import TimeGrid

from .conftest import build_wire_bridge_problem


class TestEnergyBalance:
    def test_balance_closes_with_convection(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="full", tolerance=1e-7)
        result = solver.solve_transient(TimeGrid(20.0, 80), store_fields=True)
        audit = audit_energy(solver, result)
        # Trapezoid-vs-implicit-Euler mismatch is O(dt); with dt = 0.25 s
        # on a ~20 s transient the relative residual sits at the per cent
        # level and shrinks with dt (next test).
        assert audit.relative_residual < 0.05
        assert audit.injected_energy > 0.0
        assert audit.convective_loss > 0.0
        assert audit.radiative_loss == 0.0

    def test_residual_shrinks_with_dt(self):
        problem = build_wire_bridge_problem()
        residuals = []
        for steps in (20, 80):
            solver = CoupledSolver(problem, mode="full", tolerance=1e-8)
            result = solver.solve_transient(
                TimeGrid(10.0, steps), store_fields=True
            )
            residuals.append(audit_energy(solver, result).relative_residual)
        assert residuals[1] < residuals[0]

    def test_balance_with_radiation(self):
        problem = build_wire_bridge_problem(radiation=True)
        solver = CoupledSolver(problem, mode="full", tolerance=1e-7)
        result = solver.solve_transient(TimeGrid(10.0, 40), store_fields=True)
        audit = audit_energy(solver, result)
        assert audit.radiative_loss > 0.0
        assert audit.relative_residual < 0.05

    def test_fast_mode_audits_too(self):
        problem = build_wire_bridge_problem(nonlinear=False)
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-7)
        result = solver.solve_transient(TimeGrid(10.0, 40), store_fields=True)
        audit = audit_energy(solver, result)
        assert audit.relative_residual < 0.05

    def test_requires_stored_fields(self):
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4)
        result = solver.solve_transient(TimeGrid(1.0, 2))
        with pytest.raises(ReproError):
            audit_energy(solver, result)

    def test_stored_energy_dominated_by_injection_early(self):
        """Early in the transient almost nothing has leaked yet."""
        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="full", tolerance=1e-7)
        result = solver.solve_transient(TimeGrid(0.5, 10), store_fields=True)
        audit = audit_energy(solver, result)
        assert audit.convective_loss < 0.2 * audit.injected_energy
