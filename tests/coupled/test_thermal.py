"""Verification of the standalone thermal solver against closed forms."""

import numpy as np
import pytest

from repro.coupled.thermal import solve_thermal_transient
from repro.fit.boundary import ConvectionBC, DirichletBC, RadiationBC
from repro.fit.material_field import MaterialField
from repro.grid.indexing import GridIndexing
from repro.grid.tensor_grid import TensorGrid
from repro.materials.base import Material
from repro.solvers.time_integration import TimeGrid

MM = 1.0e-3


def _block(rhoc=1.0e6, lam=400.0):
    """A small, highly conductive (lumped-limit) block."""
    grid = TensorGrid.uniform(
        ((0, 1 * MM), (0, 1 * MM), (0, 1 * MM)), (4, 4, 4)
    )
    field = MaterialField(grid, Material("blk", 1.0, lam, rhoc))
    return grid, field


class TestLumpedCooling:
    def test_exponential_decay(self):
        """High-conductivity block: T(t) = T_inf + dT exp(-t h A / C).

        Biot number ~ h L / lambda ~ 6e-8, so the block is isothermal and
        the exact lumped solution applies.
        """
        grid, field = _block()
        h = 50.0
        t_inf = 300.0
        t0 = 400.0
        volume = grid.total_volume
        area = 6.0 * (1 * MM) ** 2
        tau = 1.0e6 * volume / (h * area)
        time_grid = TimeGrid(tau, 400)  # fine steps for accuracy
        result = solve_thermal_transient(
            grid, field, time_grid,
            t_initial=t0,
            convection=ConvectionBC(h, t_inf),
        )
        expected = t_inf + (t0 - t_inf) * np.exp(-1.0)
        assert result["mean_trace"][-1] == pytest.approx(expected, rel=2e-3)

    def test_steady_rise_under_power(self):
        """Constant power P: steady dT = P / (h A)."""
        grid, field = _block()
        h = 50.0
        power_total = 1.0e-3
        n = grid.num_nodes
        node_power = np.full(n, power_total / n)
        area = 6.0 * (1 * MM) ** 2
        tau = 1.0e6 * grid.total_volume / (h * area)
        time_grid = TimeGrid(20.0 * tau, 400)
        result = solve_thermal_transient(
            grid, field, time_grid,
            t_initial=300.0,
            node_power=node_power,
            convection=ConvectionBC(h, 300.0),
        )
        expected = 300.0 + power_total / (h * area)
        assert result["mean_trace"][-1] == pytest.approx(expected, rel=1e-3)

    def test_adiabatic_heating_rate(self):
        """No losses: dT/dt = P / C exactly (implicit Euler is exact for
        constant forcing of a pure capacitance)."""
        grid, field = _block()
        power_total = 2.0e-3
        n = grid.num_nodes
        node_power = np.full(n, power_total / n)
        time_grid = TimeGrid(10.0, 10)
        result = solve_thermal_transient(
            grid, field, time_grid, t_initial=300.0, node_power=node_power
        )
        capacity = 1.0e6 * grid.total_volume
        expected = 300.0 + power_total * 10.0 / capacity
        # Exact up to the fixed-point tolerance of the inner loop.
        assert result["mean_trace"][-1] == pytest.approx(expected, rel=1e-8)

    def test_energy_conserved_without_bcs(self):
        """Adiabatic, no sources: the volume-weighted mean is constant."""
        grid, field = _block()
        time_grid = TimeGrid(5.0, 20)
        # Non-uniform start: hot corner.
        result = solve_thermal_transient(
            grid, field, time_grid, t_initial=350.0, store_all=True
        )
        assert np.allclose(result["mean_trace"], 350.0)


class TestDirichletSlab:
    def test_linear_steady_profile(self):
        """Fixed 300 K / 400 K faces: steady profile linear in x."""
        grid = TensorGrid.uniform(
            ((0, 2 * MM), (0, 1 * MM), (0, 1 * MM)), (9, 3, 3)
        )
        field = MaterialField(grid, Material("s", 1.0, 10.0, 1.0e4))
        indexing = GridIndexing(grid)
        bcs = [
            DirichletBC(indexing.boundary_nodes("x-"), 300.0),
            DirichletBC(indexing.boundary_nodes("x+"), 400.0),
        ]
        time_grid = TimeGrid(1000.0, 60)
        result = solve_thermal_transient(
            grid, field, time_grid, t_initial=300.0, thermal_dirichlet=bcs
        )
        coords = grid.node_coordinates()
        expected = 300.0 + 100.0 * coords[:, 0] / (2 * MM)
        assert np.allclose(result["final"], expected, atol=0.2)


class TestRadiationEquilibrium:
    def test_stefan_boltzmann_balance(self):
        """Source power balances radiation: P = eps sigma A (T^4 - T_inf^4)."""
        from repro.constants import STEFAN_BOLTZMANN

        grid, field = _block()
        power_total = 5.0e-4
        emissivity = 0.5
        n = grid.num_nodes
        area = 6.0 * (1 * MM) ** 2
        time_grid = TimeGrid(2.0e4, 300)
        result = solve_thermal_transient(
            grid, field, time_grid,
            t_initial=300.0,
            node_power=np.full(n, power_total / n),
            radiation=RadiationBC(emissivity, 300.0),
        )
        t_end = result["mean_trace"][-1]
        balance = emissivity * STEFAN_BOLTZMANN * area * (
            t_end**4 - 300.0**4
        )
        assert balance == pytest.approx(power_total, rel=5e-3)


class TestThetaMethods:
    def test_cn_and_ie_agree_at_steady_state(self):
        grid, field = _block()
        h = 50.0
        node_power = np.full(grid.num_nodes, 1.0e-5)
        time_grid = TimeGrid(2000.0, 100)
        kwargs = dict(
            t_initial=300.0,
            node_power=node_power,
            convection=ConvectionBC(h, 300.0),
        )
        ie = solve_thermal_transient(grid, field, time_grid, theta=1.0, **kwargs)
        cn = solve_thermal_transient(grid, field, time_grid, theta=0.5, **kwargs)
        assert ie["mean_trace"][-1] == pytest.approx(
            cn["mean_trace"][-1], rel=1e-4
        )

    def test_store_all_shapes(self):
        grid, field = _block()
        time_grid = TimeGrid(1.0, 5)
        result = solve_thermal_transient(
            grid, field, time_grid, t_initial=300.0, store_all=True
        )
        assert len(result["fields"]) == 6
        assert result["times"].shape == (6,)
