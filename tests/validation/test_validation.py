"""Tests for the measurement-comparison harness."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.validation.comparison import (
    band_coverage,
    compare_traces,
    max_absolute_error,
    root_mean_square_error,
)
from repro.validation.synthetic import SyntheticMeasurement, synthesize_measurement


@pytest.fixture
def trace():
    times = np.linspace(0.0, 50.0, 201)
    temperatures = 300.0 + 40.0 * (1.0 - np.exp(-times / 10.0))
    return times, temperatures


class TestSynthesis:
    def test_noise_free_identity(self, trace):
        times, temps = trace
        measurement = synthesize_measurement(times, temps, noise_std=0.0)
        assert np.allclose(measurement.values, temps)
        assert np.allclose(measurement.times, times)

    def test_sampling_period(self, trace):
        times, temps = trace
        measurement = synthesize_measurement(
            times, temps, sample_period=5.0, noise_std=0.0
        )
        assert np.allclose(measurement.times, np.arange(0.0, 50.1, 5.0))

    def test_noise_statistics(self, trace):
        times, temps = trace
        measurement = synthesize_measurement(
            times, temps, noise_std=1.0, seed=3
        )
        residual = measurement.values - temps
        assert np.std(residual) == pytest.approx(1.0, abs=0.15)
        assert abs(np.mean(residual)) < 0.25

    def test_offset_and_gain(self, trace):
        times, temps = trace
        measurement = synthesize_measurement(
            times, temps, noise_std=0.0, offset=2.0, gain=1.01
        )
        assert np.allclose(measurement.values, 1.01 * temps + 2.0)

    def test_sensor_lag_delays_rise(self, trace):
        times, temps = trace
        lagged = synthesize_measurement(
            times, temps, noise_std=0.0, sensor_time_constant=5.0
        )
        # The lagged probe reads lower during the rise...
        mid = 40
        assert lagged.values[mid] < temps[mid]
        # ...and catches up at the end.
        assert lagged.values[-1] == pytest.approx(temps[-1], abs=0.5)

    def test_seed_reproducible(self, trace):
        times, temps = trace
        a = synthesize_measurement(times, temps, seed=9)
        b = synthesize_measurement(times, temps, seed=9)
        assert np.allclose(a.values, b.values)

    def test_validation_errors(self, trace):
        times, temps = trace
        with pytest.raises(MeasurementError):
            synthesize_measurement(times, temps[:-1])
        with pytest.raises(MeasurementError):
            synthesize_measurement(times, temps, sample_period=-1.0)
        with pytest.raises(MeasurementError):
            synthesize_measurement(times, temps, noise_std=-1.0)
        with pytest.raises(MeasurementError):
            SyntheticMeasurement([0.0], [300.0])


class TestMetrics:
    def test_zero_error_for_identical(self, trace):
        times, temps = trace
        measurement = synthesize_measurement(times, temps, noise_std=0.0)
        assert root_mean_square_error(times, temps, measurement) == 0.0
        assert max_absolute_error(times, temps, measurement) == 0.0

    def test_rmse_of_constant_offset(self, trace):
        times, temps = trace
        measurement = synthesize_measurement(
            times, temps, noise_std=0.0, offset=3.0
        )
        assert root_mean_square_error(
            times, temps, measurement
        ) == pytest.approx(3.0)
        assert max_absolute_error(
            times, temps, measurement
        ) == pytest.approx(3.0)

    def test_alignment_interpolates(self, trace):
        times, temps = trace
        measurement = synthesize_measurement(
            times, temps, sample_period=7.0, noise_std=0.0
        )
        assert root_mean_square_error(times, temps, measurement) < 1e-10

    def test_measurement_beyond_model_rejected(self, trace):
        times, temps = trace
        measurement = SyntheticMeasurement([0.0, 100.0], [300.0, 340.0])
        with pytest.raises(MeasurementError):
            root_mean_square_error(times, temps, measurement)


class TestBandCoverage:
    def test_calibrated_band(self, trace):
        """Noise matching the declared sigma: ~95 % inside 2 sigma."""
        times, temps = trace
        sigma = 1.0
        measurement = synthesize_measurement(
            times, temps, noise_std=sigma, seed=5
        )
        coverage = band_coverage(
            times, temps, np.full_like(temps, sigma), measurement, 2.0
        )
        assert 0.88 <= coverage <= 1.0

    def test_overconfident_band(self, trace):
        """Declared sigma 10x too small: coverage collapses."""
        times, temps = trace
        measurement = synthesize_measurement(
            times, temps, noise_std=1.0, seed=5
        )
        coverage = band_coverage(
            times, temps, np.full_like(temps, 0.1), measurement, 2.0
        )
        assert coverage < 0.5

    def test_bias_detected(self, trace):
        """A systematic offset escapes a tight band even with low noise."""
        times, temps = trace
        measurement = synthesize_measurement(
            times, temps, noise_std=0.05, offset=5.0, seed=1
        )
        report = compare_traces(
            times, temps, np.full_like(temps, 0.5), measurement, label="w"
        )
        assert report.bias == pytest.approx(-5.0, abs=0.1)
        assert report.coverage_2sigma < 0.1
        assert not report.acceptable()

    def test_good_model_accepted(self, trace):
        times, temps = trace
        measurement = synthesize_measurement(
            times, temps, noise_std=0.5, seed=2
        )
        report = compare_traces(
            times, temps, np.full_like(temps, 0.6), measurement
        )
        assert report.acceptable()
        assert report.coverage_6sigma == 1.0
