"""Tests for the Sherman-Morrison-Woodbury update solver."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solvers.woodbury import WoodburySolver


def _base(n, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.standard_normal((n, n))
    return sp.csc_matrix(raw @ raw.T + n * np.eye(n))


def _stamp_vectors(n, k, seed=1):
    """Wire-like +1/-1 incidence columns."""
    rng = np.random.default_rng(seed)
    u = np.zeros((n, k))
    for j in range(k):
        a, b = rng.choice(n, size=2, replace=False)
        u[a, j] = 1.0
        u[b, j] = -1.0
    return u


class TestAgainstDirect:
    def test_single_rank_one_update(self, rng):
        n = 10
        base = _base(n)
        u = _stamp_vectors(n, 1)
        solver = WoodburySolver(base, u)
        g = np.array([3.7])
        rhs = rng.standard_normal(n)
        direct = np.linalg.solve(
            base.toarray() + g[0] * np.outer(u[:, 0], u[:, 0]), rhs
        )
        assert np.allclose(solver.solve(g, rhs), direct)

    def test_twelve_wires(self, rng):
        """The paper's case: 12 rank-1 wire stamps."""
        n = 40
        base = _base(n)
        u = _stamp_vectors(n, 12)
        solver = WoodburySolver(base, u)
        g = rng.uniform(0.1, 20.0, 12)
        rhs = rng.standard_normal(n)
        full = base.toarray() + u @ np.diag(g) @ u.T
        assert np.allclose(solver.solve(g, rhs), np.linalg.solve(full, rhs))

    def test_zero_conductances_fall_back_to_base(self, rng):
        n = 15
        base = _base(n)
        u = _stamp_vectors(n, 3)
        solver = WoodburySolver(base, u)
        rhs = rng.standard_normal(n)
        assert np.allclose(
            solver.solve(np.zeros(3), rhs),
            np.linalg.solve(base.toarray(), rhs),
        )

    def test_partial_zeros(self, rng):
        n = 15
        base = _base(n)
        u = _stamp_vectors(n, 3)
        solver = WoodburySolver(base, u)
        g = np.array([5.0, 0.0, 2.0])
        rhs = rng.standard_normal(n)
        full = base.toarray() + u @ np.diag(g) @ u.T
        assert np.allclose(solver.solve(g, rhs), np.linalg.solve(full, rhs))

    def test_repeated_solves_with_different_g(self, rng):
        """The Monte Carlo pattern: one base, many conductance sets."""
        n = 25
        base = _base(n)
        u = _stamp_vectors(n, 5)
        solver = WoodburySolver(base, u)
        rhs = rng.standard_normal(n)
        for seed in range(5):
            g = np.random.default_rng(seed).uniform(0.5, 10.0, 5)
            full = base.toarray() + u @ np.diag(g) @ u.T
            assert np.allclose(
                solver.solve(g, rhs), np.linalg.solve(full, rhs)
            )


class TestValidation:
    def test_negative_conductance_rejected(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError):
            solver.solve([-1.0, 1.0], np.ones(6))

    def test_wrong_conductance_count(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError):
            solver.solve([1.0], np.ones(6))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            WoodburySolver(_base(6), np.zeros((5, 2)))

    def test_1d_update_rejected(self):
        with pytest.raises(SolverError):
            WoodburySolver(_base(6), np.zeros(6))


@given(
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=20, deadline=None)
def test_property_matches_direct_solve(k, seed):
    rng = np.random.default_rng(seed)
    n = 20
    base = _base(n, seed)
    u = _stamp_vectors(n, k, seed + 1)
    solver = WoodburySolver(base, u)
    g = rng.uniform(0.0, 10.0, k)
    rhs = rng.standard_normal(n)
    full = base.toarray() + u @ np.diag(g) @ u.T
    assert np.allclose(
        solver.solve(g, rhs), np.linalg.solve(full, rhs), atol=1e-8
    )
