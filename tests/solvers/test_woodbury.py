"""Tests for the Sherman-Morrison-Woodbury update solver."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solvers.woodbury import WoodburySolver


def _base(n, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.standard_normal((n, n))
    return sp.csc_matrix(raw @ raw.T + n * np.eye(n))


def _stamp_vectors(n, k, seed=1):
    """Wire-like +1/-1 incidence columns."""
    rng = np.random.default_rng(seed)
    u = np.zeros((n, k))
    for j in range(k):
        a, b = rng.choice(n, size=2, replace=False)
        u[a, j] = 1.0
        u[b, j] = -1.0
    return u


class TestAgainstDirect:
    def test_single_rank_one_update(self, rng):
        n = 10
        base = _base(n)
        u = _stamp_vectors(n, 1)
        solver = WoodburySolver(base, u)
        g = np.array([3.7])
        rhs = rng.standard_normal(n)
        direct = np.linalg.solve(
            base.toarray() + g[0] * np.outer(u[:, 0], u[:, 0]), rhs
        )
        assert np.allclose(solver.solve(g, rhs), direct)

    def test_twelve_wires(self, rng):
        """The paper's case: 12 rank-1 wire stamps."""
        n = 40
        base = _base(n)
        u = _stamp_vectors(n, 12)
        solver = WoodburySolver(base, u)
        g = rng.uniform(0.1, 20.0, 12)
        rhs = rng.standard_normal(n)
        full = base.toarray() + u @ np.diag(g) @ u.T
        assert np.allclose(solver.solve(g, rhs), np.linalg.solve(full, rhs))

    def test_zero_conductances_fall_back_to_base(self, rng):
        n = 15
        base = _base(n)
        u = _stamp_vectors(n, 3)
        solver = WoodburySolver(base, u)
        rhs = rng.standard_normal(n)
        assert np.allclose(
            solver.solve(np.zeros(3), rhs),
            np.linalg.solve(base.toarray(), rhs),
        )

    def test_partial_zeros(self, rng):
        n = 15
        base = _base(n)
        u = _stamp_vectors(n, 3)
        solver = WoodburySolver(base, u)
        g = np.array([5.0, 0.0, 2.0])
        rhs = rng.standard_normal(n)
        full = base.toarray() + u @ np.diag(g) @ u.T
        assert np.allclose(solver.solve(g, rhs), np.linalg.solve(full, rhs))

    def test_repeated_solves_with_different_g(self, rng):
        """The Monte Carlo pattern: one base, many conductance sets."""
        n = 25
        base = _base(n)
        u = _stamp_vectors(n, 5)
        solver = WoodburySolver(base, u)
        rhs = rng.standard_normal(n)
        for seed in range(5):
            g = np.random.default_rng(seed).uniform(0.5, 10.0, 5)
            full = base.toarray() + u @ np.diag(g) @ u.T
            assert np.allclose(
                solver.solve(g, rhs), np.linalg.solve(full, rhs)
            )


class TestEdgeCases:
    def test_rank_zero_update(self, rng):
        """k = 0 (no wires) degenerates to the plain base solve."""
        n = 12
        base = _base(n)
        solver = WoodburySolver(base, np.zeros((n, 0)))
        assert solver.rank == 0
        rhs = rng.standard_normal(n)
        solution = solver.solve(np.zeros(0), rhs)
        assert np.allclose(solution, np.linalg.solve(base.toarray(), rhs))

    def test_rank_zero_rejects_nonempty_conductances(self):
        solver = WoodburySolver(_base(6), np.zeros((6, 0)))
        with pytest.raises(SolverError):
            solver.solve([1.0], np.ones(6))

    def test_all_zero_conductances_match_direct_sparse(self, rng):
        n = 18
        base = _base(n)
        u = _stamp_vectors(n, 4)
        solver = WoodburySolver(base, u)
        rhs = rng.standard_normal(n)
        direct = sp.linalg.spsolve(base.tocsc(), rhs)
        assert np.allclose(solver.solve(np.zeros(4), rhs), direct,
                           rtol=0, atol=1e-10)

    def test_negative_conductance_rejected_even_with_zeros(self):
        solver = WoodburySolver(_base(8), _stamp_vectors(8, 3))
        with pytest.raises(SolverError):
            solver.solve([0.0, -1.0e-12, 2.0], np.ones(8))

    def test_agreement_with_direct_sparse_solve(self, rng):
        """Woodbury vs a fresh sparse LU of the stamped matrix, 1e-10."""
        n = 30
        base = _base(n)
        u = _stamp_vectors(n, 6)
        solver = WoodburySolver(base, u)
        g = rng.uniform(0.1, 50.0, 6)
        rhs = rng.standard_normal(n)
        stamped = (base + sp.csc_matrix(u @ np.diag(g) @ u.T)).tocsc()
        direct = sp.linalg.spsolve(stamped, rhs)
        assert np.allclose(solver.solve(g, rhs), direct, rtol=0, atol=1e-10)

    def test_extreme_conductance_contrast(self, rng):
        """Orders-of-magnitude spread in g (hot vs cold wires) stays exact."""
        n = 20
        base = _base(n)
        u = _stamp_vectors(n, 3)
        solver = WoodburySolver(base, u)
        g = np.array([1.0e-8, 1.0, 1.0e6])
        rhs = rng.standard_normal(n)
        full = base.toarray() + u @ np.diag(g) @ u.T
        assert np.allclose(solver.solve(g, rhs), np.linalg.solve(full, rhs),
                           rtol=0, atol=1e-8)


class TestFactorizationCache:
    def test_shared_lu_across_solvers(self, rng):
        from repro.solvers.cache import FactorizationCache

        cache = FactorizationCache()
        base = _base(10)
        u = _stamp_vectors(10, 2)
        first = WoodburySolver(base, u, cache=cache)
        second = WoodburySolver(base.copy(), u, cache=cache)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
        assert first._lu is second._lu
        g = rng.uniform(0.5, 5.0, 2)
        rhs = rng.standard_normal(10)
        assert np.array_equal(first.solve(g, rhs), second.solve(g, rhs))

    def test_different_matrices_do_not_collide(self):
        from repro.solvers.cache import FactorizationCache

        cache = FactorizationCache()
        u = np.zeros((10, 0))
        WoodburySolver(_base(10, seed=0), u, cache=cache)
        WoodburySolver(_base(10, seed=1), u, cache=cache)
        assert cache.stats()["entries"] == 2
        assert cache.stats()["hits"] == 0

    def test_fingerprint_does_not_mutate_input(self):
        from repro.solvers.cache import matrix_fingerprint

        base = _base(6).tocsc()
        # Force unsorted indices via a reversed-permutation construction.
        unsorted = sp.csc_matrix(
            (base.data[::-1],
             base.indices[::-1],
             base.indptr.copy()),
            shape=base.shape,
        )
        unsorted.has_sorted_indices = False
        indices_before = unsorted.indices.copy()
        matrix_fingerprint(unsorted)
        assert np.array_equal(unsorted.indices, indices_before)

    def test_lru_eviction(self):
        from repro.solvers.cache import FactorizationCache

        cache = FactorizationCache(max_entries=2)
        matrices = [_base(8, seed=s) for s in range(3)]
        for matrix in matrices:
            cache.splu(matrix)
        assert len(cache) == 2
        # The oldest entry was evicted -> refactorized on next request.
        cache.splu(matrices[0])
        assert cache.stats()["misses"] == 4


class TestValidation:
    def test_negative_conductance_rejected(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError):
            solver.solve([-1.0, 1.0], np.ones(6))

    def test_wrong_conductance_count(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError):
            solver.solve([1.0], np.ones(6))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            WoodburySolver(_base(6), np.zeros((5, 2)))

    def test_1d_update_rejected(self):
        with pytest.raises(SolverError):
            WoodburySolver(_base(6), np.zeros(6))


@given(
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=20, deadline=None)
def test_property_matches_direct_solve(k, seed):
    rng = np.random.default_rng(seed)
    n = 20
    base = _base(n, seed)
    u = _stamp_vectors(n, k, seed + 1)
    solver = WoodburySolver(base, u)
    g = rng.uniform(0.0, 10.0, k)
    rhs = rng.standard_normal(n)
    full = base.toarray() + u @ np.diag(g) @ u.T
    assert np.allclose(
        solver.solve(g, rhs), np.linalg.solve(full, rhs), atol=1e-8
    )
