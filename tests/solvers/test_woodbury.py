"""Tests for the Sherman-Morrison-Woodbury update solver."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solvers.woodbury import WoodburySolver


def _base(n, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.standard_normal((n, n))
    return sp.csc_matrix(raw @ raw.T + n * np.eye(n))


def _stamp_vectors(n, k, seed=1):
    """Wire-like +1/-1 incidence columns."""
    rng = np.random.default_rng(seed)
    u = np.zeros((n, k))
    for j in range(k):
        a, b = rng.choice(n, size=2, replace=False)
        u[a, j] = 1.0
        u[b, j] = -1.0
    return u


class TestAgainstDirect:
    def test_single_rank_one_update(self, rng):
        n = 10
        base = _base(n)
        u = _stamp_vectors(n, 1)
        solver = WoodburySolver(base, u)
        g = np.array([3.7])
        rhs = rng.standard_normal(n)
        direct = np.linalg.solve(
            base.toarray() + g[0] * np.outer(u[:, 0], u[:, 0]), rhs
        )
        assert np.allclose(solver.solve(g, rhs), direct)

    def test_twelve_wires(self, rng):
        """The paper's case: 12 rank-1 wire stamps."""
        n = 40
        base = _base(n)
        u = _stamp_vectors(n, 12)
        solver = WoodburySolver(base, u)
        g = rng.uniform(0.1, 20.0, 12)
        rhs = rng.standard_normal(n)
        full = base.toarray() + u @ np.diag(g) @ u.T
        assert np.allclose(solver.solve(g, rhs), np.linalg.solve(full, rhs))

    def test_zero_conductances_fall_back_to_base(self, rng):
        n = 15
        base = _base(n)
        u = _stamp_vectors(n, 3)
        solver = WoodburySolver(base, u)
        rhs = rng.standard_normal(n)
        assert np.allclose(
            solver.solve(np.zeros(3), rhs),
            np.linalg.solve(base.toarray(), rhs),
        )

    def test_partial_zeros(self, rng):
        n = 15
        base = _base(n)
        u = _stamp_vectors(n, 3)
        solver = WoodburySolver(base, u)
        g = np.array([5.0, 0.0, 2.0])
        rhs = rng.standard_normal(n)
        full = base.toarray() + u @ np.diag(g) @ u.T
        assert np.allclose(solver.solve(g, rhs), np.linalg.solve(full, rhs))

    def test_repeated_solves_with_different_g(self, rng):
        """The Monte Carlo pattern: one base, many conductance sets."""
        n = 25
        base = _base(n)
        u = _stamp_vectors(n, 5)
        solver = WoodburySolver(base, u)
        rhs = rng.standard_normal(n)
        for seed in range(5):
            g = np.random.default_rng(seed).uniform(0.5, 10.0, 5)
            full = base.toarray() + u @ np.diag(g) @ u.T
            assert np.allclose(
                solver.solve(g, rhs), np.linalg.solve(full, rhs)
            )


class TestEdgeCases:
    def test_rank_zero_update(self, rng):
        """k = 0 (no wires) degenerates to the plain base solve."""
        n = 12
        base = _base(n)
        solver = WoodburySolver(base, np.zeros((n, 0)))
        assert solver.rank == 0
        rhs = rng.standard_normal(n)
        solution = solver.solve(np.zeros(0), rhs)
        assert np.allclose(solution, np.linalg.solve(base.toarray(), rhs))

    def test_rank_zero_rejects_nonempty_conductances(self):
        solver = WoodburySolver(_base(6), np.zeros((6, 0)))
        with pytest.raises(SolverError):
            solver.solve([1.0], np.ones(6))

    def test_all_zero_conductances_match_direct_sparse(self, rng):
        n = 18
        base = _base(n)
        u = _stamp_vectors(n, 4)
        solver = WoodburySolver(base, u)
        rhs = rng.standard_normal(n)
        direct = sp.linalg.spsolve(base.tocsc(), rhs)
        assert np.allclose(solver.solve(np.zeros(4), rhs), direct,
                           rtol=0, atol=1e-10)

    def test_negative_conductance_rejected_even_with_zeros(self):
        solver = WoodburySolver(_base(8), _stamp_vectors(8, 3))
        with pytest.raises(SolverError):
            solver.solve([0.0, -1.0e-12, 2.0], np.ones(8))

    def test_agreement_with_direct_sparse_solve(self, rng):
        """Woodbury vs a fresh sparse LU of the stamped matrix, 1e-10."""
        n = 30
        base = _base(n)
        u = _stamp_vectors(n, 6)
        solver = WoodburySolver(base, u)
        g = rng.uniform(0.1, 50.0, 6)
        rhs = rng.standard_normal(n)
        stamped = (base + sp.csc_matrix(u @ np.diag(g) @ u.T)).tocsc()
        direct = sp.linalg.spsolve(stamped, rhs)
        assert np.allclose(solver.solve(g, rhs), direct, rtol=0, atol=1e-10)

    def test_extreme_conductance_contrast(self, rng):
        """Orders-of-magnitude spread in g (hot vs cold wires) stays exact."""
        n = 20
        base = _base(n)
        u = _stamp_vectors(n, 3)
        solver = WoodburySolver(base, u)
        g = np.array([1.0e-8, 1.0, 1.0e6])
        rhs = rng.standard_normal(n)
        full = base.toarray() + u @ np.diag(g) @ u.T
        assert np.allclose(solver.solve(g, rhs), np.linalg.solve(full, rhs),
                           rtol=0, atol=1e-8)


class TestFactorizationCache:
    def test_shared_lu_across_solvers(self, rng):
        from repro.solvers.cache import FactorizationCache

        cache = FactorizationCache()
        base = _base(10)
        u = _stamp_vectors(10, 2)
        first = WoodburySolver(base, u, cache=cache)
        second = WoodburySolver(base.copy(), u, cache=cache)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
        assert first._lu is second._lu
        g = rng.uniform(0.5, 5.0, 2)
        rhs = rng.standard_normal(10)
        assert np.array_equal(first.solve(g, rhs), second.solve(g, rhs))

    def test_different_matrices_do_not_collide(self):
        from repro.solvers.cache import FactorizationCache

        cache = FactorizationCache()
        u = np.zeros((10, 0))
        WoodburySolver(_base(10, seed=0), u, cache=cache)
        WoodburySolver(_base(10, seed=1), u, cache=cache)
        assert cache.stats()["entries"] == 2
        assert cache.stats()["hits"] == 0

    def test_fingerprint_does_not_mutate_input(self):
        from repro.solvers.cache import matrix_fingerprint

        base = _base(6).tocsc()
        # Force unsorted indices via a reversed-permutation construction.
        unsorted = sp.csc_matrix(
            (base.data[::-1],
             base.indices[::-1],
             base.indptr.copy()),
            shape=base.shape,
        )
        unsorted.has_sorted_indices = False
        indices_before = unsorted.indices.copy()
        matrix_fingerprint(unsorted)
        assert np.array_equal(unsorted.indices, indices_before)

    def test_lru_eviction(self):
        from repro.solvers.cache import FactorizationCache

        cache = FactorizationCache(max_entries=2)
        matrices = [_base(8, seed=s) for s in range(3)]
        for matrix in matrices:
            cache.splu(matrix)
        assert len(cache) == 2
        # The oldest entry was evicted -> refactorized on next request.
        cache.splu(matrices[0])
        assert cache.stats()["misses"] == 4


class TestValidation:
    def test_negative_conductance_rejected(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError):
            solver.solve([-1.0, 1.0], np.ones(6))

    def test_wrong_conductance_count(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError):
            solver.solve([1.0], np.ones(6))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            WoodburySolver(_base(6), np.zeros((5, 2)))

    def test_1d_update_rejected(self):
        with pytest.raises(SolverError):
            WoodburySolver(_base(6), np.zeros(6))


class TestMultiRhs:
    def test_multi_rhs_matches_per_column(self, rng):
        n = 20
        solver = WoodburySolver(_base(n), _stamp_vectors(n, 4))
        g = rng.uniform(0.5, 8.0, 4)
        rhs = rng.standard_normal((n, 5))
        block = solver.solve(g, rhs)
        assert block.shape == (n, 5)
        for j in range(5):
            assert np.allclose(block[:, j], solver.solve(g, rhs[:, j]),
                               rtol=0, atol=1e-11)

    def test_vector_rhs_shape_preserved(self, rng):
        n = 12
        solver = WoodburySolver(_base(n), _stamp_vectors(n, 2))
        solution = solver.solve(rng.uniform(0.5, 2.0, 2),
                                rng.standard_normal(n))
        assert solution.shape == (n,)

    def test_rejects_3d_rhs(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError, match="1D .* or 2D"):
            solver.solve([1.0, 1.0], np.ones((6, 2, 2)))

    def test_rejects_wrong_row_count(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError, match="unknowns"):
            solver.solve([1.0, 1.0], np.ones(7))
        with pytest.raises(SolverError, match="unknowns"):
            solver.solve([1.0, 1.0], np.ones((5, 3)))


class TestSolveBatch:
    def test_matches_per_sample_solve_bitwise(self, rng):
        """Column s of the batch == solve(g_s, rhs_s), at small S bitwise."""
        n = 30
        solver = WoodburySolver(_base(n), _stamp_vectors(n, 6))
        g_block = rng.uniform(0.2, 20.0, (7, 6))
        rhs_block = rng.standard_normal((n, 7))
        batch = solver.solve_batch(g_block, rhs_block)
        assert batch.shape == (n, 7)
        for s in range(7):
            expected = solver.solve(g_block[s], rhs_block[:, s])
            assert np.array_equal(batch[:, s], expected)

    def test_shared_rhs_is_bitwise_per_sample(self, rng):
        """The electrical hot path: one (n,) RHS shared by every sample."""
        n = 25
        solver = WoodburySolver(_base(n), _stamp_vectors(n, 5))
        g_block = rng.uniform(0.2, 10.0, (9, 5))
        rhs = rng.standard_normal(n)
        batch = solver.solve_batch(g_block, rhs)
        assert batch.shape == (n, 9)
        for s in range(9):
            assert np.array_equal(batch[:, s], solver.solve(g_block[s], rhs))

    def test_single_sample_block(self, rng):
        n = 15
        solver = WoodburySolver(_base(n), _stamp_vectors(n, 3))
        g = rng.uniform(0.5, 5.0, (1, 3))
        rhs = rng.standard_normal((n, 1))
        batch = solver.solve_batch(g, rhs)
        assert np.array_equal(batch[:, 0], solver.solve(g[0], rhs[:, 0]))

    def test_heterogeneous_zero_conductances(self, rng):
        """Samples with dropped stamps take the masked per-sample path."""
        n = 20
        solver = WoodburySolver(_base(n), _stamp_vectors(n, 4))
        g_block = rng.uniform(0.5, 5.0, (4, 4))
        g_block[1, 2] = 0.0
        g_block[3, :] = 0.0
        rhs_block = rng.standard_normal((n, 4))
        batch = solver.solve_batch(g_block, rhs_block)
        for s in range(4):
            expected = solver.solve(g_block[s], rhs_block[:, s])
            assert np.allclose(batch[:, s], expected, rtol=0, atol=1e-11)

    def test_all_zero_conductances_return_base_solves(self, rng):
        n = 14
        solver = WoodburySolver(_base(n), _stamp_vectors(n, 3))
        rhs_block = rng.standard_normal((n, 3))
        batch = solver.solve_batch(np.zeros((3, 3)), rhs_block)
        for s in range(3):
            assert np.allclose(
                batch[:, s], np.linalg.solve(_base(n).toarray(),
                                             rhs_block[:, s])
            )

    def test_rank_zero_update(self, rng):
        n = 10
        solver = WoodburySolver(_base(n), np.zeros((n, 0)))
        rhs_block = rng.standard_normal((n, 4))
        batch = solver.solve_batch(np.zeros((4, 0)), rhs_block)
        assert batch.shape == (n, 4)
        assert np.allclose(batch, np.linalg.solve(_base(n).toarray(),
                                                  rhs_block))

    def test_matches_direct_dense_solves(self, rng):
        n = 22
        base = _base(n)
        u = _stamp_vectors(n, 5)
        solver = WoodburySolver(base, u)
        g_block = rng.uniform(0.1, 30.0, (6, 5))
        rhs_block = rng.standard_normal((n, 6))
        batch = solver.solve_batch(g_block, rhs_block)
        for s in range(6):
            full = base.toarray() + u @ np.diag(g_block[s]) @ u.T
            assert np.allclose(batch[:, s],
                               np.linalg.solve(full, rhs_block[:, s]),
                               rtol=0, atol=1e-9)

    def test_rejects_1d_conductances(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError, match="2D"):
            solver.solve_batch(np.ones(2), np.ones((6, 1)))

    def test_rejects_wrong_rank(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError, match="conductances per sample"):
            solver.solve_batch(np.ones((3, 5)), np.ones((6, 3)))

    def test_rejects_negative_conductances(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        g = np.ones((3, 2))
        g[2, 0] = -1.0e-9
        with pytest.raises(SolverError, match="non-negative"):
            solver.solve_batch(g, np.ones((6, 3)))

    def test_rejects_sample_count_mismatch(self):
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError, match="columns"):
            solver.solve_batch(np.ones((3, 2)), np.ones((6, 4)))

    def test_rejects_single_column_where_shared_vector_meant(self):
        # An (n, 1) column for an S>1 block is the classic shared-RHS
        # mistake; the error must point at the 1D (n,) alternative.
        solver = WoodburySolver(_base(6), _stamp_vectors(6, 2))
        with pytest.raises(SolverError, match=r"pass a 1D \(n,\) vector"):
            solver.solve_batch(np.ones((3, 2)), np.ones((6, 1)))

    def test_single_column_valid_for_single_sample_block(self, rng):
        # With exactly one sample an (n, 1) rhs IS a legitimate block.
        n = 10
        solver = WoodburySolver(_base(n), _stamp_vectors(n, 2))
        g = rng.uniform(0.5, 2.0, (1, 2))
        rhs = rng.standard_normal((n, 1))
        solution = solver.solve_batch(g, rhs)
        assert solution.shape == (n, 1)
        assert np.array_equal(solution[:, 0], solver.solve(g[0], rhs[:, 0]))

    def test_counts_blocked_solves(self, rng):
        from repro.telemetry.tracing import capture

        solver = WoodburySolver(_base(8), _stamp_vectors(8, 2))
        with capture() as collector:
            solver.solve_batch(np.ones((2, 2)), rng.standard_normal((8, 2)))
        counters = collector.registry.as_dict()["counters"]
        assert counters.get("solver.blocked_solves") == 1


@given(
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=20, deadline=None)
def test_property_matches_direct_solve(k, seed):
    rng = np.random.default_rng(seed)
    n = 20
    base = _base(n, seed)
    u = _stamp_vectors(n, k, seed + 1)
    solver = WoodburySolver(base, u)
    g = rng.uniform(0.0, 10.0, k)
    rhs = rng.standard_normal(n)
    full = base.toarray() + u @ np.diag(g) @ u.T
    assert np.allclose(
        solver.solve(g, rhs), np.linalg.solve(full, rhs), atol=1e-8
    )
