"""Tests for the adaptive implicit Euler controller."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers.adaptive import adaptive_implicit_euler


def _decay_step(rate):
    """Implicit Euler step for dT/dt = -rate (T - 300)."""
    def step(state, dt):
        return (state + dt * rate * 300.0) / (1.0 + dt * rate)

    return step


class TestDecay:
    def test_converges_to_exact(self):
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), end_time=10.0,
            initial_dt=0.5, tolerance=1e-3,
        )
        exact = 300.0 + 100.0 * np.exp(-5.0)
        assert result.final[0] == pytest.approx(exact, abs=0.2)
        assert result.times[-1] == pytest.approx(10.0)

    def test_tighter_tolerance_more_accurate(self):
        exact = 300.0 + 100.0 * np.exp(-5.0)
        loose = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 10.0, 0.5, tolerance=1.0
        )
        tight = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 10.0, 0.5, tolerance=1e-4
        )
        assert abs(tight.final[0] - exact) < abs(loose.final[0] - exact)
        assert tight.accepted > loose.accepted

    def test_steps_grow_as_transient_settles(self):
        result = adaptive_implicit_euler(
            _decay_step(2.0), np.array([500.0]), 20.0, 0.01,
            tolerance=0.05,
        )
        sizes = result.step_sizes
        # Late steps should be much larger than the first accepted ones.
        assert np.mean(sizes[-3:]) > 3.0 * np.mean(sizes[:3])

    def test_rejections_counted_for_rough_start(self):
        result = adaptive_implicit_euler(
            _decay_step(50.0), np.array([1000.0]), 1.0, 0.5,
            tolerance=0.01,
        )
        assert result.rejected >= 1
        assert result.times[-1] == pytest.approx(1.0)


class TestMinDtContract:
    """Hitting min_dt with an uncontrolled error must raise -- the
    documented contract -- unless acceptance is explicitly requested."""

    @staticmethod
    def _inconsistent_step(state, dt):
        # Full step and two half steps disagree by dt^2 / 2 forever, so
        # the doubling error estimate can never fall below ~dt^2 / 2.
        return state + dt * dt

    def test_uncontrolled_error_at_min_dt_raises(self):
        with pytest.raises(SolverError, match="min_dt"):
            adaptive_implicit_euler(
                self._inconsistent_step, np.array([0.0]), end_time=1.0,
                initial_dt=0.5, tolerance=1e-9, min_dt=1e-2,
            )

    def test_explicit_flag_accepts_and_records(self):
        result = adaptive_implicit_euler(
            self._inconsistent_step, np.array([0.0]), end_time=0.1,
            initial_dt=0.05, tolerance=1e-9, min_dt=1e-2,
            accept_min_dt_steps=True,
        )
        assert result.times[-1] == pytest.approx(0.1)
        assert result.num_min_dt_violations >= 1
        for time, error in result.min_dt_violations:
            assert 0.0 < time <= 0.1 + 1e-12
            assert error > 1e-9
        assert "min_dt violations" in repr(result)

    def test_controlled_runs_record_no_violations(self):
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), end_time=10.0,
            initial_dt=0.5, tolerance=1e-3,
        )
        assert result.num_min_dt_violations == 0


class TestResultRepr:
    def test_empty_step_sizes_do_not_raise(self):
        from repro.solvers.adaptive import AdaptiveStepResult

        result = AdaptiveStepResult([0.0], [np.array([1.0])], 0, 3, [])
        text = repr(result)
        assert "0 accepted" in text
        assert "3 rejected" in text

    def test_populated_repr_shows_step_range(self):
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), end_time=5.0,
            initial_dt=0.5, tolerance=1e-3,
        )
        assert "dt in [" in repr(result)


class TestValidation:
    def test_bad_arguments(self):
        with pytest.raises(SolverError):
            adaptive_implicit_euler(
                _decay_step(1.0), np.array([1.0]), -1.0, 0.1
            )
        with pytest.raises(SolverError):
            adaptive_implicit_euler(
                _decay_step(1.0), np.array([1.0]), 1.0, 0.1, safety=1.5
            )

    def test_max_steps_guard(self):
        with pytest.raises(SolverError):
            adaptive_implicit_euler(
                _decay_step(1.0), np.array([400.0]), 1e9, 1e-3,
                tolerance=1e-9, max_steps=10, max_dt=1e-3,
            )


class TestCoupledIntegration:
    def test_adaptive_wraps_coupled_step(self):
        """The coupled solver's step plugs straight into the controller."""
        from repro.coupled.electrothermal import CoupledSolver

        from tests.coupled.conftest import build_wire_bridge_problem

        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4)

        def step(state, dt):
            new_state, _, _ = solver._step_fast(state, dt)
            return new_state

        result = adaptive_implicit_euler(
            step,
            problem.initial_temperatures(),
            end_time=10.0,
            initial_dt=0.5,
            tolerance=0.2,
        )
        final_wire = problem.topology.wire_temperatures(result.final)[0]

        from repro.solvers.time_integration import TimeGrid

        fixed = CoupledSolver(
            problem, mode="fast", tolerance=1e-4
        ).solve_transient(TimeGrid(10.0, 100))
        # Local tolerance 0.2 K over ~10 accepted steps: the accumulated
        # global error stays within ~1.5 K of the fine fixed-step run.
        assert final_wire == pytest.approx(
            fixed.wire_temperatures[-1, 0], abs=1.5
        )
