"""Tests for the adaptive implicit Euler controller."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers.adaptive import (
    adaptive_implicit_euler,
    dt_ladder,
    snap_to_ladder,
)


def _decay_step(rate):
    """Implicit Euler step for dT/dt = -rate (T - 300)."""
    def step(state, dt):
        return (state + dt * rate * 300.0) / (1.0 + dt * rate)

    return step


class TestDecay:
    def test_converges_to_exact(self):
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), end_time=10.0,
            initial_dt=0.5, tolerance=1e-3,
        )
        exact = 300.0 + 100.0 * np.exp(-5.0)
        assert result.final[0] == pytest.approx(exact, abs=0.2)
        assert result.times[-1] == pytest.approx(10.0)

    def test_tighter_tolerance_more_accurate(self):
        exact = 300.0 + 100.0 * np.exp(-5.0)
        loose = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 10.0, 0.5, tolerance=1.0
        )
        tight = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 10.0, 0.5, tolerance=1e-4
        )
        assert abs(tight.final[0] - exact) < abs(loose.final[0] - exact)
        assert tight.accepted > loose.accepted

    def test_steps_grow_as_transient_settles(self):
        result = adaptive_implicit_euler(
            _decay_step(2.0), np.array([500.0]), 20.0, 0.01,
            tolerance=0.05,
        )
        sizes = result.step_sizes
        # Late steps should be much larger than the first accepted ones.
        assert np.mean(sizes[-3:]) > 3.0 * np.mean(sizes[:3])

    def test_rejections_counted_for_rough_start(self):
        result = adaptive_implicit_euler(
            _decay_step(50.0), np.array([1000.0]), 1.0, 0.5,
            tolerance=0.01,
        )
        assert result.rejected >= 1
        assert result.times[-1] == pytest.approx(1.0)


class TestMinDtContract:
    """Hitting min_dt with an uncontrolled error must raise -- the
    documented contract -- unless acceptance is explicitly requested."""

    @staticmethod
    def _inconsistent_step(state, dt):
        # Full step and two half steps disagree by dt^2 / 2 forever, so
        # the doubling error estimate can never fall below ~dt^2 / 2.
        return state + dt * dt

    def test_uncontrolled_error_at_min_dt_raises(self):
        with pytest.raises(SolverError, match="min_dt"):
            adaptive_implicit_euler(
                self._inconsistent_step, np.array([0.0]), end_time=1.0,
                initial_dt=0.5, tolerance=1e-9, min_dt=1e-2,
            )

    def test_explicit_flag_accepts_and_records(self):
        result = adaptive_implicit_euler(
            self._inconsistent_step, np.array([0.0]), end_time=0.1,
            initial_dt=0.05, tolerance=1e-9, min_dt=1e-2,
            accept_min_dt_steps=True,
        )
        assert result.times[-1] == pytest.approx(0.1)
        assert result.num_min_dt_violations >= 1
        for time, error in result.min_dt_violations:
            assert 0.0 < time <= 0.1 + 1e-12
            assert error > 1e-9
        assert "min_dt violations" in repr(result)

    def test_controlled_runs_record_no_violations(self):
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), end_time=10.0,
            initial_dt=0.5, tolerance=1e-3,
        )
        assert result.num_min_dt_violations == 0


class TestResultRepr:
    def test_empty_step_sizes_do_not_raise(self):
        from repro.solvers.adaptive import AdaptiveStepResult

        result = AdaptiveStepResult([0.0], [np.array([1.0])], 0, 3, [])
        text = repr(result)
        assert "0 accepted" in text
        assert "3 rejected" in text

    def test_populated_repr_shows_step_range(self):
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), end_time=5.0,
            initial_dt=0.5, tolerance=1e-3,
        )
        assert "dt in [" in repr(result)


class TestValidation:
    def test_bad_arguments(self):
        with pytest.raises(SolverError):
            adaptive_implicit_euler(
                _decay_step(1.0), np.array([1.0]), -1.0, 0.1
            )
        with pytest.raises(SolverError):
            adaptive_implicit_euler(
                _decay_step(1.0), np.array([1.0]), 1.0, 0.1, safety=1.5
            )

    def test_max_steps_guard(self):
        with pytest.raises(SolverError):
            adaptive_implicit_euler(
                _decay_step(1.0), np.array([400.0]), 1e9, 1e-3,
                tolerance=1e-9, max_steps=10, max_dt=1e-3,
            )


class TestDtLadder:
    def test_rungs_are_powers_of_two_within_clamps(self):
        ladder = dt_ladder(1.0, 0.1, 10.0)
        assert list(ladder) == [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]

    def test_initial_dt_clamped_into_interval(self):
        assert dt_ladder(100.0, 0.5, 4.0)[-1] == 4.0
        assert dt_ladder(1e-9, 0.5, 4.0)[0] == 0.5

    def test_ladder_never_empty(self):
        assert dt_ladder(1.0, 1.0, 1.0).size == 1

    def test_snap_nearest_in_log_space(self):
        ladder = dt_ladder(1.0, 0.1, 10.0)
        # Below the geometric mean of 2 and 4 (~2.83) snaps down...
        assert snap_to_ladder(2.7, ladder) == 2.0
        # ...above it snaps up.
        assert snap_to_ladder(3.0, ladder) == 4.0
        assert snap_to_ladder(2.0, ladder) == 2.0
        # Out-of-range proposals clamp to the end rungs.
        assert snap_to_ladder(1e-6, ladder) == ladder[0]
        assert snap_to_ladder(1e6, ladder) == ladder[-1]


class TestQuantizedIntegration:
    def test_visits_only_a_handful_of_distinct_dts(self):
        """The tentpole property: O(#rungs) distinct solver dts, not
        O(#solves) -- so per-dt factorization caches amortize."""
        raw = adaptive_implicit_euler(
            _decay_step(2.0), np.array([500.0]), 20.0, 0.01,
            tolerance=0.05,
        )
        quantized = adaptive_implicit_euler(
            _decay_step(2.0), np.array([500.0]), 20.0, 0.01,
            tolerance=0.05, quantize_dt=True,
        )
        ladder = dt_ladder(0.01, 1.0e-6, 20.0)
        # Every solver dt is a rung, a half rung, or the final sliver.
        rungs = set(np.round(ladder, 12)) | set(np.round(ladder / 2, 12))
        off_ladder = [
            dt for dt in quantized.solver_dts
            if round(float(dt), 12) not in rungs
        ]
        assert len(off_ladder) <= 1  # at most the end-of-horizon sliver
        assert quantized.num_distinct_solver_dts < ladder.size + 2
        # The raw controller mints a fresh dt almost every update.
        assert raw.num_distinct_solver_dts > quantized.num_distinct_solver_dts
        # Accuracy is preserved (snapping only moves within a factor ~2).
        exact = 300.0 + 200.0 * np.exp(-40.0)
        assert quantized.final[0] == pytest.approx(exact, abs=1.0)
        assert quantized.times[-1] == pytest.approx(20.0)

    def test_horizon_tail_stays_on_the_ladder(self):
        """A non-dyadic horizon is walked down on rungs instead of
        minting one off-ladder sliver step per integration."""
        result = adaptive_implicit_euler(
            _decay_step(0.1), np.array([400.0]), 7.3, 1.0,
            tolerance=10.0, quantize_dt=True, min_dt=0.5,
        )
        ladder = set(dt_ladder(1.0, 0.5, 7.3)) | {0.5}
        on_ladder = [float(dt) in ladder for dt in result.step_sizes]
        # Everything except (possibly) the final sub-floor sliver.
        assert all(on_ladder[:-1])
        assert result.times[-1] == pytest.approx(7.3)

    def test_doubling_midpoints_are_recorded(self):
        """Accepted doubling steps keep their (already computed) half
        state, halving the interpolation error for free."""
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 4.0, 1.0,
            tolerance=1e3,  # accept everything
        )
        assert result.accepted >= 1
        first_dt = result.step_sizes[0]
        assert result.times[1] == pytest.approx(0.5 * first_dt)
        assert len(result.times) == 1 + 2 * result.accepted


class TestPredictorEstimate:
    def test_converges_to_exact(self):
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 10.0, 0.5,
            tolerance=1e-3, error_estimate="predictor",
        )
        exact = 300.0 + 100.0 * np.exp(-5.0)
        assert result.final[0] == pytest.approx(exact, abs=0.2)
        assert result.times[-1] == pytest.approx(10.0)

    def test_one_solve_per_attempt_after_bootstrap(self):
        doubling = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 10.0, 0.5,
            tolerance=1e-3,
        )
        predictor = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 10.0, 0.5,
            tolerance=1e-3, error_estimate="predictor",
        )
        attempts = predictor.accepted + predictor.rejected
        # First attempt costs 3 (doubling bootstrap), the rest 1 each.
        assert predictor.num_solves == attempts + 2
        assert doubling.num_solves == 3 * (doubling.accepted
                                           + doubling.rejected)
        assert predictor.num_solves < doubling.num_solves

    def test_guess_keyword_receives_the_linear_predictor(self):
        guesses = []

        def step(state, dt, guess=None):
            guesses.append(guess)
            return (state + dt * 0.5 * 300.0) / (1.0 + dt * 0.5)

        result = adaptive_implicit_euler(
            step, np.array([400.0]), 10.0, 0.5,
            tolerance=1e-3, error_estimate="predictor",
        )
        assert result.times[-1] == pytest.approx(10.0)
        received = [g for g in guesses if g is not None]
        assert received  # warm starts actually arrive
        # The predictor extrapolates toward the fixed point, never away.
        assert all(np.all(g <= 400.0 + 1e-9) for g in received)

    def test_same_dt_retry_cannot_self_compare(self):
        """Regression: after a rejection the history rate is anchored
        at the unchanged state, so a retry at the SAME dt (a pinned
        horizon sliver) would estimate its error against itself as ~0
        and silently accept an uncontrollable step.  The controller
        must fall back to doubling there and keep the min_dt
        contract."""

        def step(state, dt):
            value = (state + dt * 0.5 * 300.0) / (1.0 + dt * 0.5)
            if dt < 9e-3:
                return value + 1000.0  # persistently inconsistent sliver
            return value

        with pytest.raises(SolverError, match="min_dt"):
            adaptive_implicit_euler(
                step, np.array([400.0]), 1.005, 0.5,
                tolerance=3.0, min_dt=1e-2, max_dt=0.5,
                error_estimate="predictor",
            )

    def test_unknown_estimate_rejected(self):
        with pytest.raises(SolverError, match="error_estimate"):
            adaptive_implicit_euler(
                _decay_step(0.5), np.array([400.0]), 1.0, 0.5,
                error_estimate="magic",
            )


class TestHorizonClampVsMinDtFloor:
    """The end-of-horizon clamp may shorten the final step below
    ``min_dt``; that is NOT the uncontrollable-error condition."""

    def test_sub_min_dt_sliver_accepted_cleanly(self):
        # Two 0.5 steps, then a 5e-3 sliver below min_dt = 1e-2.
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 1.005, 0.5,
            tolerance=0.5, min_dt=1e-2, max_dt=0.5,
        )
        assert result.times[-1] == pytest.approx(1.005)
        assert result.num_min_dt_violations == 0

    def test_zero_error_sliver_finishes_cleanly(self):
        """Regression: growing dt from an accepted zero-error sub-min_dt
        sliver must not trip the below-min_dt guard on a finished
        integration (a stationary tail returns the state unchanged)."""
        result = adaptive_implicit_euler(
            lambda state, dt: state, np.array([300.0]), 1.001, 0.5,
            tolerance=0.5, min_dt=1e-2, max_dt=0.5,
        )
        assert result.times[-1] == pytest.approx(1.001)
        assert result.num_min_dt_violations == 0

    def test_noisy_sliver_is_rejected_not_fatal(self):
        """Regression: a sliver step whose first error estimate exceeds
        the tolerance used to raise a spurious min_dt SolverError; it
        must be treated as an ordinary rejection (the controller never
        tried its floor) and succeed on the clean retry."""
        noisy = {"armed": True}

        def step(state, dt):
            value = (state + dt * 0.5 * 300.0) / (1.0 + dt * 0.5)
            if dt < 9e-3 and noisy["armed"]:
                noisy["armed"] = False
                return value + 5.0  # one-off solver hiccup
            return value

        result = adaptive_implicit_euler(
            step, np.array([400.0]), 1.005, 0.5,
            tolerance=0.5, min_dt=1e-2, max_dt=0.5,
        )
        assert result.times[-1] == pytest.approx(1.005)
        assert result.rejected >= 1
        assert result.num_min_dt_violations == 0

    def test_genuine_floor_still_raises_at_the_horizon(self):
        """A persistent uncontrolled error at the floor keeps the
        documented contract even when the horizon also clamps."""

        def bad_step(state, dt):
            return state + 1.0  # doubling error 1.0 at every dt

        with pytest.raises(SolverError, match="min_dt"):
            adaptive_implicit_euler(
                bad_step, np.array([0.0]), 1.005, 0.5,
                tolerance=0.5, min_dt=1e-2, max_dt=0.5,
            )


class TestStatistics:
    def test_solve_and_distinct_dt_counters(self):
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 10.0, 0.5,
            tolerance=1e-3,
        )
        assert result.num_solves == 3 * (result.accepted + result.rejected)
        assert result.num_distinct_solver_dts == result.solver_dts.size
        stats = result.statistics()
        for key in ("accepted", "rejected", "num_solves",
                    "num_distinct_solver_dts", "dt_min", "dt_max"):
            assert key in stats
        assert "solves" in repr(result)

    def test_solver_stats_merge_into_statistics(self):
        result = adaptive_implicit_euler(
            _decay_step(0.5), np.array([400.0]), 1.0, 0.5, tolerance=1.0,
        )
        result.solver_stats = {"thermal_solver_builds": 3}
        assert result.statistics()["thermal_solver_builds"] == 3


class TestCoupledIntegration:
    def test_adaptive_wraps_coupled_step(self):
        """The coupled solver's step plugs straight into the controller."""
        from repro.coupled.electrothermal import CoupledSolver

        from tests.coupled.conftest import build_wire_bridge_problem

        problem = build_wire_bridge_problem()
        solver = CoupledSolver(problem, mode="fast", tolerance=1e-4)

        def step(state, dt):
            new_state, _, _ = solver._step_fast(state, dt)
            return new_state

        result = adaptive_implicit_euler(
            step,
            problem.initial_temperatures(),
            end_time=10.0,
            initial_dt=0.5,
            tolerance=0.2,
        )
        final_wire = problem.topology.wire_temperatures(result.final)[0]

        from repro.solvers.time_integration import TimeGrid

        fixed = CoupledSolver(
            problem, mode="fast", tolerance=1e-4
        ).solve_transient(TimeGrid(10.0, 100))
        # Local tolerance 0.2 K over ~10 accepted steps: the accumulated
        # global error stays within ~1.5 K of the fine fixed-step run.
        assert final_wire == pytest.approx(
            fixed.wire_temperatures[-1, 0], abs=1.5
        )
