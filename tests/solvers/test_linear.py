"""Tests for the caching sparse solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SolverError
from repro.solvers.linear import (
    LinearSolver,
    conjugate_gradient,
    estimate_condition_number,
    solve_sparse,
)


def _spd_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.standard_normal((n, n))
    return sp.csc_matrix(raw @ raw.T + n * np.eye(n))


class TestSolveSparse:
    def test_identity(self):
        solution = solve_sparse(sp.identity(4, format="csc"), np.arange(4.0))
        assert np.allclose(solution, np.arange(4.0))

    def test_random_spd(self, rng):
        matrix = _spd_matrix(10)
        x_true = rng.standard_normal(10)
        solution = solve_sparse(matrix, matrix @ x_true)
        assert np.allclose(solution, x_true)


class TestLinearSolverCaching:
    def test_refactorizes_only_on_change(self):
        solver = LinearSolver()
        matrix = _spd_matrix(8)
        rhs = np.ones(8)
        solver.solve(matrix, rhs)
        solver.solve(matrix, 2.0 * rhs)
        assert solver.factorization_count == 1
        assert solver.solve_count == 2

    def test_refactorizes_on_value_change(self):
        solver = LinearSolver()
        matrix = _spd_matrix(8)
        solver.solve(matrix, np.ones(8))
        changed = matrix.copy()
        changed[0, 0] += 1.0
        solver.solve(changed.tocsc(), np.ones(8))
        assert solver.factorization_count == 2

    def test_correct_after_cache_reuse(self, rng):
        solver = LinearSolver()
        matrix = _spd_matrix(12)
        for _ in range(3):
            x_true = rng.standard_normal(12)
            solution = solver.solve(matrix, matrix @ x_true)
            assert np.allclose(solution, x_true)
        assert solver.factorization_count == 1

    def test_invalidate_forces_refactorization(self):
        solver = LinearSolver()
        matrix = _spd_matrix(8)
        solver.solve(matrix, np.ones(8))
        solver.invalidate()
        solver.solve(matrix, np.ones(8))
        assert solver.factorization_count == 2

    def test_exact_change_detection(self):
        """Fingerprint collisions are caught by exact comparison mode.

        Swapping two off-diagonal values preserves sum and abs-sum, which
        fools the cheap fingerprint but not the exact comparison.
        """
        solver_cheap = LinearSolver()
        solver_exact = LinearSolver(exact_change_detection=True)
        matrix = sp.csc_matrix(
            np.array([[4.0, 1.0, 2.0], [1.0, 5.0, 0.5], [2.0, 0.5, 6.0]])
        )
        swapped = sp.csc_matrix(
            np.array([[4.0, 2.0, 1.0], [2.0, 5.0, 0.5], [1.0, 0.5, 6.0]])
        )
        rhs = np.ones(3)
        for solver in (solver_cheap, solver_exact):
            solver.solve(matrix, rhs)
        x_exact = solver_exact.solve(swapped, rhs)
        assert np.allclose(swapped @ x_exact, rhs)
        assert solver_exact.factorization_count == 2

    def test_rhs_size_mismatch(self):
        solver = LinearSolver()
        with pytest.raises(SolverError):
            solver.solve(_spd_matrix(4), np.ones(5))


class TestConjugateGradient:
    def test_matches_direct(self, rng):
        matrix = _spd_matrix(20)
        x_true = rng.standard_normal(20)
        rhs = matrix @ x_true
        solution = conjugate_gradient(matrix, rhs, tolerance=1e-12)
        assert np.allclose(solution, x_true, atol=1e-6)


class TestConditionEstimate:
    def test_identity_is_one(self):
        estimate = estimate_condition_number(sp.identity(10, format="csc"))
        assert estimate == pytest.approx(1.0, rel=0.2)

    def test_detects_bad_conditioning(self):
        diagonal = sp.diags([1.0e8, 1.0, 1.0, 1.0e-8]).tocsc()
        estimate = estimate_condition_number(diagonal, probes=30)
        assert estimate > 1.0e12
