"""Tests for fixed-point and Newton iterations."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.solvers.newton import fixed_point, newton_raphson


class TestFixedPoint:
    def test_linear_contraction(self):
        result = fixed_point(lambda x: 0.5 * x + 1.0, np.array([0.0]),
                             tolerance=1e-12)
        assert result.converged
        assert result.solution[0] == pytest.approx(2.0)

    def test_vector_contraction(self):
        matrix = np.array([[0.3, 0.1], [0.0, 0.4]])
        offset = np.array([1.0, 2.0])
        result = fixed_point(
            lambda x: matrix @ x + offset, np.zeros(2), tolerance=1e-12
        )
        expected = np.linalg.solve(np.eye(2) - matrix, offset)
        assert np.allclose(result.solution, expected)

    def test_damping_stabilizes_divergent_map(self):
        """x <- -1.5 x + 5 diverges plainly but converges with damping."""
        with pytest.raises(ConvergenceError):
            fixed_point(lambda x: -1.5 * x + 5.0, np.array([0.0]),
                        max_iterations=60)
        result = fixed_point(
            lambda x: -1.5 * x + 5.0, np.array([0.0]), damping=0.5,
            max_iterations=200, tolerance=1e-10,
        )
        assert result.solution[0] == pytest.approx(2.0)

    def test_failure_without_raise(self):
        result = fixed_point(
            lambda x: x + 1.0, np.array([0.0]), max_iterations=5,
            raise_on_failure=False,
        )
        assert not result.converged
        assert result.iterations == 5

    def test_history_recorded(self):
        result = fixed_point(lambda x: 0.5 * x, np.array([8.0]),
                             tolerance=1e-10)
        assert len(result.history) == result.iterations
        assert all(
            b < a for a, b in zip(result.history, result.history[1:])
        )

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            fixed_point(lambda x: x, np.array([0.0]), damping=0.0)

    def test_immediate_convergence_at_fixed_point(self):
        result = fixed_point(lambda x: x, np.array([3.0]))
        assert result.converged
        assert result.iterations == 1


class TestNewton:
    def test_scalar_square_root(self):
        result = newton_raphson(
            lambda x: x**2 - 2.0, lambda x: 2.0 * x, 1.0
        )
        assert result.solution == pytest.approx(np.sqrt(2.0))

    def test_2d_system(self):
        def residual(v):
            x, y = v
            return [x + y - 3.0, x - y - 1.0]

        def jacobian(v):
            return [[1.0, 1.0], [1.0, -1.0]]

        result = newton_raphson(residual, jacobian, [0.0, 0.0])
        assert np.allclose(result.solution, [2.0, 1.0])

    def test_quadratic_convergence(self):
        """sqrt(2) to machine precision within very few iterations."""
        result = newton_raphson(
            lambda x: x**2 - 2.0, lambda x: 2.0 * x, 1.5, tolerance=1e-14
        )
        assert result.iterations <= 6

    def test_singular_jacobian_raises(self):
        with pytest.raises(ConvergenceError):
            newton_raphson(lambda x: x**2 + 1.0, lambda x: 0.0, 1.0)

    def test_iteration_budget(self):
        with pytest.raises(ConvergenceError):
            newton_raphson(
                lambda x: np.exp(x), lambda x: np.exp(x), 0.0,
                max_iterations=10,
            )
