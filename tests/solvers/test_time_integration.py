"""Tests for the time grid and theta-method steppers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SolverError
from repro.solvers.time_integration import ImplicitEuler, ThetaMethod, TimeGrid


class TestTimeGrid:
    def test_paper_convention(self):
        """Table II: 51 time points over 50 s -> dt = 1 s."""
        grid = TimeGrid.from_num_points(50.0, 51)
        assert grid.num_steps == 50
        assert grid.num_points == 51
        assert grid.dt == pytest.approx(1.0)
        assert grid.times[0] == 0.0
        assert grid.times[-1] == 50.0

    def test_invalid_arguments(self):
        with pytest.raises(SolverError):
            TimeGrid(-1.0, 10)
        with pytest.raises(SolverError):
            TimeGrid(1.0, 0)
        with pytest.raises(SolverError):
            TimeGrid.from_num_points(1.0, 1)


def _integrate_scalar(theta, num_steps, rate=1.0, end_time=1.0):
    """Integrate dT/dt = -rate T, T(0) = 1 with the theta method."""
    stepper = ThetaMethod(theta)
    capacitance = np.array([1.0])
    stiffness = sp.csr_matrix(np.array([[rate]]))
    dt = end_time / num_steps
    t = np.array([1.0])
    for _ in range(num_steps):
        matrix = stepper.step_matrix(capacitance, stiffness, dt)
        rhs = stepper.step_rhs(
            capacitance, stiffness, t, np.zeros(1), np.zeros(1), dt
        )
        t = np.array([rhs[0] / matrix.toarray()[0, 0]])
    return float(t[0])


class TestDecayAccuracy:
    def test_implicit_euler_first_order(self):
        """Error halves when the step halves (order 1)."""
        exact = np.exp(-1.0)
        error_coarse = abs(_integrate_scalar(1.0, 20) - exact)
        error_fine = abs(_integrate_scalar(1.0, 40) - exact)
        assert error_fine < error_coarse
        assert error_coarse / error_fine == pytest.approx(2.0, rel=0.15)

    def test_crank_nicolson_second_order(self):
        exact = np.exp(-1.0)
        error_coarse = abs(_integrate_scalar(0.5, 20) - exact)
        error_fine = abs(_integrate_scalar(0.5, 40) - exact)
        assert error_coarse / error_fine == pytest.approx(4.0, rel=0.25)

    def test_implicit_euler_unconditionally_stable(self):
        """Huge step on a stiff problem stays bounded and positive."""
        value = _integrate_scalar(1.0, 2, rate=1000.0, end_time=1.0)
        assert 0.0 <= value < 1.0


class TestStepAlgebra:
    def test_implicit_euler_rhs_ignores_old_stiffness(self):
        stepper = ImplicitEuler()
        capacitance = np.array([2.0])
        stiffness = sp.csr_matrix(np.array([[123.0]]))
        rhs = stepper.step_rhs(
            capacitance, stiffness, np.array([5.0]), np.array([7.0]),
            np.array([999.0]), 0.5,
        )
        # C/dt * T_old + q_new = 4*5 + 7
        assert rhs[0] == pytest.approx(27.0)

    def test_theta_range_enforced(self):
        with pytest.raises(SolverError):
            ThetaMethod(0.4)
        with pytest.raises(SolverError):
            ThetaMethod(1.1)

    def test_step_matrix_shape(self):
        stepper = ImplicitEuler()
        matrix = stepper.step_matrix(
            np.ones(3), sp.identity(3, format="csr"), 0.1
        )
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix.diagonal(), 10.0 + 1.0)
