"""Tests for the content-addressed factorization cache."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SolverError
from repro.solvers.cache import (
    FactorizationCache,
    checked_splu,
    matrix_fingerprint,
)


def _spd(n=12, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n))
    return sp.csc_matrix(dense @ dense.T + n * np.eye(n))


class TestFingerprintCanonicalization:
    """Numerically identical matrices must fingerprint identically no
    matter how they were assembled."""

    def test_explicit_zeros_do_not_change_the_fingerprint(self):
        clean = sp.csc_matrix(np.array([[4.0, 0.0], [1.0, 3.0]]))
        # Hand-built CSC storing the (0, 1) zero explicitly.
        padded = sp.csc_matrix(
            (np.array([4.0, 1.0, 0.0, 3.0]), np.array([0, 1, 0, 1]),
             np.array([0, 2, 4])),
            shape=(2, 2),
        )
        assert padded.nnz == clean.nnz + 1
        assert matrix_fingerprint(padded) == matrix_fingerprint(clean)

    def test_unsummed_duplicates_do_not_change_the_fingerprint(self):
        clean = sp.csc_matrix(
            np.array([[4.0, 1.0], [1.0, 3.0]])
        )
        # Hand-built CSC with the (0, 0) entry split into 3 + 1.
        data = np.array([3.0, 1.0, 1.0, 1.0, 3.0])
        indices = np.array([0, 0, 1, 0, 1])
        indptr = np.array([0, 3, 5])
        duplicated = sp.csc_matrix((data, indices, indptr), shape=(2, 2))
        assert duplicated.nnz == 5
        assert matrix_fingerprint(duplicated) == matrix_fingerprint(clean)

    def test_value_changes_do_change_the_fingerprint(self):
        matrix = _spd()
        other = matrix.copy()
        other[0, 0] += 1.0e-12
        assert matrix_fingerprint(other) != matrix_fingerprint(matrix)

    def test_input_is_never_mutated(self):
        data = np.array([3.0, 1.0, 0.0, 1.0, 3.0])
        indices = np.array([0, 0, 1, 0, 1])
        indptr = np.array([0, 3, 5])
        matrix = sp.csc_matrix((data, indices, indptr), shape=(2, 2))
        matrix_fingerprint(matrix)
        assert matrix.nnz == 5
        assert np.array_equal(matrix.data, data)


class TestCacheBehavior:
    def test_zero_and_duplicate_variants_hit_one_entry(self):
        """The satellite regression: assembly noise must not defeat the
        cache."""
        cache = FactorizationCache()
        clean = _spd()
        padded = (clean - clean) + clean
        cache.splu(clean)
        cache.splu(padded)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_symmetric_mode_is_part_of_the_key(self):
        cache = FactorizationCache()
        matrix = _spd()
        lu_general = cache.splu(matrix)
        lu_symmetric = cache.splu(matrix, symmetric=True)
        assert lu_general is not lu_symmetric
        assert cache.stats()["entries"] == 2
        assert cache.splu(matrix, symmetric=True) is lu_symmetric

    def test_symmetric_mode_solves_spd_systems(self):
        matrix = _spd(n=30, seed=3)
        rhs = np.arange(30, dtype=float)
        x = checked_splu(matrix, symmetric=True).solve(rhs)
        assert np.allclose(matrix @ x, rhs, atol=1e-9)

    def test_lru_eviction_bound(self):
        cache = FactorizationCache(max_entries=2)
        for seed in range(4):
            cache.splu(_spd(seed=seed))
        assert len(cache) == 2

    def test_invalid_max_entries(self):
        with pytest.raises(SolverError):
            FactorizationCache(max_entries=0)


class TestBackendKeyedIsolation:
    """The backend name is part of the cache key: handles carry
    backend-specific state, so the same fingerprint under two backends
    must yield two independent handles (never cross-backend reuse)."""

    def test_same_fingerprint_two_backends_two_handles(self):
        cache = FactorizationCache()
        matrix = _spd()
        numpy_handle = cache.factorize(matrix, backend="numpy")
        devicesim_handle = cache.factorize(matrix, backend="devicesim")
        assert numpy_handle is not devicesim_handle
        assert numpy_handle.lu is not devicesim_handle.lu
        assert cache.stats() == {"entries": 2, "hits": 0, "misses": 2}

    def test_hit_miss_counters_correct_per_backend(self):
        cache = FactorizationCache()
        matrix = _spd()
        cache.factorize(matrix, backend="numpy")       # miss
        cache.factorize(matrix, backend="numpy")       # hit
        cache.factorize(matrix, backend="devicesim")   # miss: new backend
        cache.factorize(matrix, backend="devicesim")   # hit
        assert cache.stats() == {"entries": 2, "hits": 2, "misses": 2}

    def test_shared_cache_counters_stay_correct_per_backend(self):
        from repro.solvers.cache import shared_cache

        cache = shared_cache()
        matrix = _spd(seed=41)
        before = cache.stats()
        cache.factorize(matrix, backend="numpy")
        cache.factorize(matrix, backend="devicesim")
        middle = cache.stats()
        assert middle["misses"] == before["misses"] + 2
        assert middle["hits"] == before["hits"]
        cache.factorize(matrix, backend="numpy")
        cache.factorize(matrix, backend="devicesim")
        after = cache.stats()
        assert after["hits"] == middle["hits"] + 2
        assert after["misses"] == middle["misses"]

    def test_splu_accessor_is_the_numpy_backend_view(self):
        cache = FactorizationCache()
        matrix = _spd()
        handle = cache.factorize(matrix, backend="numpy")
        # The legacy accessor returns the same underlying SuperLU
        # object -- one factorization, two views.
        assert cache.splu(matrix) is handle.lu
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_default_backend_resolution(self):
        cache = FactorizationCache()
        matrix = _spd()
        default_handle = cache.factorize(matrix)
        assert cache.factorize(matrix, backend="numpy") is default_handle
