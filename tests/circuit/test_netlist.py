"""Tests for the nodal-analysis circuit substrate."""

import pytest

from repro.circuit.netlist import Netlist
from repro.errors import CircuitError


class TestBasicNetworks:
    def test_voltage_divider(self):
        netlist = Netlist()
        netlist.add_resistor("top", "mid", 1.0e3, name="r1")
        netlist.add_resistor("mid", "gnd", 3.0e3, name="r2")
        netlist.fix_potential("top", 4.0)
        netlist.fix_potential("gnd", 0.0)
        solution = netlist.solve()
        assert solution.potential("mid") == pytest.approx(3.0)

    def test_current_source_into_resistor(self):
        netlist = Netlist()
        netlist.add_conductance("n", "gnd", 0.5)
        netlist.add_current_source("n", 2.0)
        netlist.fix_potential("gnd", 0.0)
        solution = netlist.solve()
        assert solution.potential("n") == pytest.approx(4.0)

    def test_wheatstone_bridge_balanced(self):
        netlist = Netlist()
        netlist.add_resistor("vp", "a", 100.0)
        netlist.add_resistor("a", "gnd", 200.0)
        netlist.add_resistor("vp", "b", 50.0)
        netlist.add_resistor("b", "gnd", 100.0)
        netlist.add_resistor("a", "b", 123.0, name="bridge")
        netlist.fix_potential("vp", 3.0)
        netlist.fix_potential("gnd", 0.0)
        solution = netlist.solve()
        # Balanced: both midpoints at 2 V, no bridge current.
        assert solution.potential("a") == pytest.approx(2.0)
        assert solution.potential("b") == pytest.approx(2.0)
        assert solution.element_currents["bridge"] == pytest.approx(0.0)

    def test_element_power(self):
        netlist = Netlist()
        netlist.add_conductance("a", "b", 2.0, name="g")
        netlist.fix_potential("a", 1.0)
        netlist.fix_potential("b", 0.0)
        solution = netlist.solve()
        assert solution.element_powers["g"] == pytest.approx(2.0)
        assert solution.total_power() == pytest.approx(2.0)


class TestThermalNetwork:
    def test_heat_flow_through_chain(self):
        """Thermal interpretation: W/K conductances, K potentials."""
        netlist = Netlist()
        netlist.add_conductance("wire", "chip", 1.3e-4, name="gth")
        netlist.fix_potential("chip", 300.0)
        netlist.add_current_source("wire", 7.5e-3)  # 7.5 mW into the wire
        solution = netlist.solve()
        rise = solution.potential("wire") - 300.0
        assert rise == pytest.approx(7.5e-3 / 1.3e-4)


class TestControlledConductance:
    def test_callable_conductance(self):
        netlist = Netlist()
        netlist.add_conductance(
            "a", "gnd", lambda temperature: 1.0 / (1.0 + 0.01 * (temperature - 300.0))
        )
        netlist.add_current_source("a", 1.0)
        netlist.fix_potential("gnd", 0.0)
        cold = netlist.solve(state=300.0).potential("a")
        hot = netlist.solve(state=400.0).potential("a")
        assert hot == pytest.approx(2.0 * cold)

    def test_negative_conductance_rejected(self):
        netlist = Netlist()
        netlist.add_conductance("a", "gnd", lambda state: -1.0, name="bad")
        netlist.fix_potential("gnd", 0.0)
        with pytest.raises(CircuitError):
            netlist.solve()


class TestValidation:
    def test_empty_netlist(self):
        with pytest.raises(CircuitError):
            Netlist().solve()

    def test_floating_network(self):
        netlist = Netlist()
        netlist.add_conductance("a", "b", 1.0)
        with pytest.raises(CircuitError):
            netlist.solve()

    def test_disconnected_island(self):
        netlist = Netlist()
        netlist.add_conductance("a", "b", 1.0)
        netlist.add_conductance("c", "d", 1.0)  # floating island
        netlist.fix_potential("a", 1.0)
        with pytest.raises(CircuitError):
            netlist.solve()

    def test_self_loop_rejected(self):
        with pytest.raises(CircuitError):
            Netlist().add_conductance("a", "a", 1.0)

    def test_conflicting_fixed_potential(self):
        netlist = Netlist()
        netlist.fix_potential("a", 1.0)
        with pytest.raises(CircuitError):
            netlist.fix_potential("a", 2.0)

    def test_zero_resistance_rejected(self):
        with pytest.raises(CircuitError):
            Netlist().add_resistor("a", "b", 0.0)


class TestWireChainEquivalence:
    def test_segmented_wire_matches_single_element_resistance(self):
        """N equal segments in series equal one element electrically."""
        g_total = 19.0
        single = Netlist()
        single.add_conductance("a", "b", g_total)
        single.fix_potential("a", 0.02)
        single.fix_potential("b", -0.02)
        p_single = single.solve().total_power()

        chain = Netlist()
        segments = 5
        nodes = ["a"] + [f"m{i}" for i in range(segments - 1)] + ["b"]
        for left, right in zip(nodes[:-1], nodes[1:]):
            chain.add_conductance(left, right, g_total * segments)
        chain.fix_potential("a", 0.02)
        chain.fix_potential("b", -0.02)
        p_chain = chain.solve().total_power()
        assert p_chain == pytest.approx(p_single)
