"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses pyproject.toml metadata; this file additionally
enables `python setup.py develop` for fully offline environments.
"""
from setuptools import setup

setup()
