"""repro: electrothermal FIT simulation of bonding wire degradation.

A from-scratch reproduction of Casper et al., "Electrothermal Simulation of
Bonding Wire Degradation under Uncertain Geometries" (DATE 2016): a 3D
Finite Integration Technique electrothermal field solver with lumped
bonding-wire field-circuit coupling, plus the uncertainty quantification
stack that propagates uncertain wire geometries to wire temperatures.

Quickstart::

    from repro import build_date16_problem, CoupledSolver, TimeGrid

    problem, mesh = build_date16_problem(resolution="coarse")
    solver = CoupledSolver(problem, mode="fast")
    result = solver.solve_transient(TimeGrid.from_num_points(50.0, 51))
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .bondwire import (
    AnalyticWireModel,
    BondWireCalculator,
    LumpedBondWire,
    WireLengthModel,
    assess_failure,
)
from .backends import (
    get_array_backend,
    register_array_backend,
    registered_array_backends,
)
from .bondwire.degradation import ArrheniusDegradationModel, CycleCountingModel
from .constants import (
    EMISSIVITY_DEFAULT,
    HEAT_TRANSFER_COEFFICIENT_DEFAULT,
    STEFAN_BOLTZMANN,
    T_AMBIENT_DEFAULT,
    T_CRITICAL_DEFAULT,
    T_REFERENCE,
)
from .coupled import (
    CoupledSolver,
    ElectrothermalProblem,
    StationaryResult,
    TransientResult,
    solve_stationary_current,
)
from .coupled.excitation import (
    ConstantWaveform,
    PulseTrainWaveform,
    RampWaveform,
    StepWaveform,
)
from .campaign import (
    ArtifactStore,
    CampaignResult,
    CampaignSpec,
    FuturesExecutor,
    ParallelExecutor,
    ScenarioSpec,
    SerialExecutor,
    SurrogateResult,
    register_backend,
    register_reducer,
    resume_campaign,
    run_campaign,
)
from .errors import ReproError
from .fit import (
    ConvectionBC,
    DirichletBC,
    FITDiscretization,
    MaterialField,
    RadiationBC,
)
from .grid import TensorGrid
from .materials import Material, get_material
from .package3d import (
    Date16Parameters,
    build_date16_problem,
    date16_layout,
    date16_xray_measurements,
    wire_lengths_from_deltas,
)
from .solvers import TimeGrid
from .uq import (
    MonteCarloStudy,
    NormalDistribution,
    PolynomialChaosExpansion,
    StochasticCollocation,
    fit_normal,
    monte_carlo_error,
    sobol_indices,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # constants
    "STEFAN_BOLTZMANN",
    "T_REFERENCE",
    "T_AMBIENT_DEFAULT",
    "T_CRITICAL_DEFAULT",
    "HEAT_TRANSFER_COEFFICIENT_DEFAULT",
    "EMISSIVITY_DEFAULT",
    # errors
    "ReproError",
    # grid / fit
    "TensorGrid",
    "FITDiscretization",
    "MaterialField",
    "DirichletBC",
    "ConvectionBC",
    "RadiationBC",
    # materials
    "Material",
    "get_material",
    # bond wires
    "LumpedBondWire",
    "WireLengthModel",
    "AnalyticWireModel",
    "BondWireCalculator",
    "assess_failure",
    "ArrheniusDegradationModel",
    "CycleCountingModel",
    # waveforms
    "ConstantWaveform",
    "StepWaveform",
    "PulseTrainWaveform",
    "RampWaveform",
    # coupled solver
    "ElectrothermalProblem",
    "CoupledSolver",
    "TransientResult",
    "StationaryResult",
    "solve_stationary_current",
    "TimeGrid",
    # campaign engine
    "ScenarioSpec",
    "CampaignSpec",
    "SerialExecutor",
    "ParallelExecutor",
    "FuturesExecutor",
    "register_backend",
    "register_reducer",
    # array backends
    "get_array_backend",
    "register_array_backend",
    "registered_array_backends",
    "ArtifactStore",
    "CampaignResult",
    "SurrogateResult",
    "run_campaign",
    "resume_campaign",
    # uq
    "NormalDistribution",
    "fit_normal",
    "MonteCarloStudy",
    "StochasticCollocation",
    "PolynomialChaosExpansion",
    "monte_carlo_error",
    "sobol_indices",
    # package example
    "Date16Parameters",
    "date16_layout",
    "build_date16_problem",
    "date16_xray_measurements",
    "wire_lengths_from_deltas",
]
