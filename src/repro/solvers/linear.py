"""Sparse linear solves with factorization reuse.

The coupled electrothermal loop solves many systems with identical sparsity
and often identical values (e.g. when material nonlinearities have
converged, or in the frozen-materials ablation).  :class:`LinearSolver`
caches the LU factorization and only refactorizes when the matrix values
actually changed.
"""

import numpy as np
import scipy.sparse.linalg as spla

from ..errors import SolverError


def solve_sparse(matrix, rhs):
    """One-shot sparse direct solve with result validation."""
    matrix = matrix.tocsc()
    rhs = np.asarray(rhs, dtype=float)
    try:
        solution = spla.spsolve(matrix, rhs)
    except RuntimeError as exc:
        raise SolverError(f"sparse direct solve failed: {exc}") from exc
    if not np.all(np.isfinite(solution)):
        raise SolverError("sparse direct solve produced non-finite values")
    return solution


def _matrix_fingerprint(matrix):
    """Cheap change-detection fingerprint of a CSC matrix's values."""
    data = matrix.data
    if data.size == 0:
        return (0, 0.0, 0.0)
    return (data.size, float(data.sum()), float(np.abs(data).sum()))


class LinearSolver:
    """LU-backed solver that reuses factorizations across calls.

    ``solve(matrix, rhs)`` refactorizes only when the matrix changed since
    the previous call (detected by a value fingerprint, with an optional
    exact comparison for paranoid callers).
    """

    def __init__(self, exact_change_detection=False):
        self.exact_change_detection = exact_change_detection
        self._lu = None
        self._fingerprint = None
        self._matrix_data = None
        self.factorization_count = 0
        self.solve_count = 0

    def _needs_refactorization(self, matrix):
        if self._lu is None:
            return True
        fingerprint = _matrix_fingerprint(matrix)
        if fingerprint != self._fingerprint:
            return True
        if self.exact_change_detection:
            if self._matrix_data is None:
                return True
            if self._matrix_data.size != matrix.data.size:
                return True
            return not np.array_equal(self._matrix_data, matrix.data)
        return False

    def solve(self, matrix, rhs):
        """Solve ``matrix @ x = rhs``, reusing the cached LU if possible."""
        matrix = matrix.tocsc()
        rhs = np.asarray(rhs, dtype=float)
        if rhs.size != matrix.shape[0]:
            raise SolverError(
                f"rhs size {rhs.size} does not match matrix "
                f"{matrix.shape[0]}x{matrix.shape[1]}"
            )
        if self._needs_refactorization(matrix):
            try:
                self._lu = spla.splu(matrix)
            except RuntimeError as exc:
                raise SolverError(f"LU factorization failed: {exc}") from exc
            self._fingerprint = _matrix_fingerprint(matrix)
            if self.exact_change_detection:
                self._matrix_data = matrix.data.copy()
            self.factorization_count += 1
        solution = self._lu.solve(rhs)
        self.solve_count += 1
        if not np.all(np.isfinite(solution)):
            raise SolverError("LU solve produced non-finite values")
        return solution

    def invalidate(self):
        """Drop the cached factorization (e.g. after a mesh change)."""
        self._lu = None
        self._fingerprint = None
        self._matrix_data = None


def conjugate_gradient(matrix, rhs, x0=None, tolerance=1.0e-10, max_iterations=None):
    """CG solve for symmetric positive definite systems.

    Provided for very large meshes where LU memory becomes the bottleneck;
    raises :class:`SolverError` when CG does not converge.
    """
    matrix = matrix.tocsr()
    rhs = np.asarray(rhs, dtype=float)
    if max_iterations is None:
        max_iterations = 10 * matrix.shape[0]
    try:
        solution, info = spla.cg(
            matrix, rhs, x0=x0, rtol=tolerance, maxiter=max_iterations
        )
    except TypeError:
        # SciPy < 1.12 uses `tol` instead of `rtol`.
        solution, info = spla.cg(
            matrix, rhs, x0=x0, tol=tolerance, maxiter=max_iterations
        )
    if info != 0:
        raise SolverError(f"CG failed to converge (info={info})")
    return solution


def estimate_condition_number(matrix, probes=5, seed=0):
    """Rough condition estimate via power iteration on ``A`` and ``A^-1``.

    Diagnostic only -- used by tests to document the ill-conditioning that
    the huge copper/epoxy conductivity contrast produces.
    """
    matrix = matrix.tocsc()
    n = matrix.shape[0]
    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(n)
    vector /= np.linalg.norm(vector)
    for _ in range(probes):
        vector = matrix @ vector
        norm = np.linalg.norm(vector)
        if norm == 0.0:
            return np.inf
        vector /= norm
    largest = norm
    lu = spla.splu(matrix)
    vector = rng.standard_normal(n)
    vector /= np.linalg.norm(vector)
    for _ in range(probes):
        vector = lu.solve(vector)
        norm = np.linalg.norm(vector)
        if norm == 0.0:
            return np.inf
        vector /= norm
    smallest = 1.0 / norm
    return largest / smallest
