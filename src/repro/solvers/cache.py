"""Shareable sparse LU factorization cache.

A Monte Carlo campaign rebuilds structurally identical solvers over and
over: every worker process assembles the same base matrices (the frozen
field stiffness, the thermal base for a given time step) and would pay a
fresh ``splu`` each time.  :class:`FactorizationCache` memoizes ``splu``
results keyed by a content fingerprint of the matrix, so rebuilding a
solver inside the same process -- after a resume, for a second time-step
size, or for a rebuilt scenario -- reuses the existing factorization.

The key is a hash of the CSC structure *and* values, so two matrices only
share a factorization when they are numerically identical; there is no
risk of stale reuse after a material or mesh change.  The cache is
bounded (LRU) because LU factors of field matrices are large.

``shared_cache()`` returns a per-process singleton; campaign workers use
it so that every solver built in that worker shares one pool.
"""

import hashlib
from collections import OrderedDict

import numpy as np
import scipy.sparse.linalg as spla

from ..errors import SolverError
from ..telemetry import MetricsRegistry
from ..telemetry import tracing as telemetry


def matrix_fingerprint(matrix):
    """Content hash of a sparse matrix (shape + canonical CSC + values).

    The structure is canonicalized before hashing -- duplicates summed,
    explicit zeros dropped, indices sorted -- so numerically identical
    matrices fingerprint identically no matter how they were assembled
    (an ``A + 0 * B`` sum leaves explicit zeros; COO-style construction
    can leave unsummed duplicates).  The input is never mutated:
    canonicalization happens on a copy when needed (``tocsc()`` returns
    the same object for CSC inputs).
    """
    csc = matrix.tocsc()
    if not csc.has_canonical_format or np.any(csc.data == 0.0):
        csc = csc.copy()
        csc.sum_duplicates()
        csc.eliminate_zeros()
    digest = hashlib.sha256()
    digest.update(repr(csc.shape).encode())
    digest.update(csc.indptr.tobytes())
    digest.update(csc.indices.tobytes())
    digest.update(csc.data.tobytes())
    return digest.hexdigest()


def checked_splu(matrix, symmetric=False):
    """``splu`` with library-error wrapping (shared by cached/uncached).

    ``symmetric=True`` selects SuperLU's symmetric mode (AT+A minimum
    degree ordering, no partial pivoting) -- roughly half the
    factorization time and fill-in for the symmetric positive definite
    bases of the fast coupled path.  Only pass it for matrices known to
    be SPD; general matrices keep the pivoted default.
    """
    kwargs = {}
    if symmetric:
        kwargs = {
            "permc_spec": "MMD_AT_PLUS_A",
            "diag_pivot_thresh": 0.0,
            "options": {"SymmetricMode": True},
        }
    try:
        return spla.splu(matrix.tocsc(), **kwargs)
    except RuntimeError as exc:
        raise SolverError(f"base LU factorization failed: {exc}") from exc


class FactorizationCache:
    """Bounded LRU cache of ``splu`` factorizations by matrix content.

    Parameters
    ----------
    max_entries:
        Factorizations kept alive at once; the least recently used entry
        is evicted first.
    """

    def __init__(self, max_entries=8):
        max_entries = int(max_entries)
        if max_entries < 1:
            raise SolverError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries = OrderedDict()
        #: Hit/miss counters live in a per-cache metrics registry; the
        #: ``hits`` / ``misses`` attributes and ``stats()`` dict below
        #: are thin views over it.
        self.metrics = MetricsRegistry()

    def __len__(self):
        return len(self._entries)

    @property
    def hits(self):
        """Lifetime cache hits (view over the metrics registry)."""
        return int(self.metrics.counter_value("hits"))

    @property
    def misses(self):
        """Lifetime cache misses (view over the metrics registry)."""
        return int(self.metrics.counter_value("misses"))

    def factorize(self, matrix, symmetric=False, backend=None):
        """Backend factorization handle with content-addressed memoization.

        The key is ``(fingerprint, symmetric, backend.name)``: the
        ``symmetric`` factorization mode is part of it (the same matrix
        factorized both ways yields two numerically different factor
        objects), and so is the array backend -- a handle holds
        backend-specific state (device factor mirrors, memory-space
        conventions), so the same fingerprint under two backends yields
        two independent handles, never a cross-backend reuse.
        """
        from ..backends import get_array_backend

        backend = get_array_backend(backend)
        key = (matrix_fingerprint(matrix), bool(symmetric), backend.name)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.metrics.increment("hits")
            telemetry.increment("cache.hits")
            return self._entries[key]
        self.metrics.increment("misses")
        telemetry.increment("cache.misses")
        handle = backend.factorize(matrix, symmetric=symmetric)
        self._entries[key] = handle
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return handle

    def splu(self, matrix, symmetric=False):
        """``scipy.sparse.linalg.splu`` with content-addressed memoization.

        Back-compat accessor over :meth:`factorize` under the ``numpy``
        backend: returns the raw SuperLU object, with the same identity
        semantics as before (two calls with the same matrix return the
        same object).
        """
        return self.factorize(matrix, symmetric=symmetric,
                              backend="numpy").lu

    def clear(self):
        """Drop every cached factorization (counters are kept)."""
        self._entries.clear()

    def stats(self):
        """``{"entries", "hits", "misses"}`` for diagnostics/benchmarks."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


_SHARED = None


def shared_cache():
    """The per-process shared cache (created on first use)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = FactorizationCache()
    return _SHARED
