"""Nonlinear iterations: fixed point (successive substitution) and Newton.

The coupled electrothermal step of the paper is solved by successive
substitution: freeze the temperature, assemble the temperature-dependent
matrices, solve, repeat.  :func:`fixed_point` implements that pattern with
optional damping; :func:`newton_raphson` is provided for scalar/small dense
problems (e.g. the analytic bonding wire steady state).
"""

import numpy as np

from ..errors import ConvergenceError


class FixedPointResult:
    """Outcome of a fixed-point iteration."""

    def __init__(self, solution, iterations, residual, converged, history=None):
        self.solution = solution
        self.iterations = iterations
        self.residual = residual
        self.converged = converged
        #: Residual norm after each iteration (diagnostic).
        self.history = history if history is not None else []

    def __repr__(self):
        status = "converged" if self.converged else "NOT converged"
        return (
            f"FixedPointResult({status} in {self.iterations} iterations, "
            f"residual={self.residual:.3e})"
        )


def fixed_point(
    update,
    initial,
    tolerance=1.0e-8,
    max_iterations=50,
    damping=1.0,
    norm=None,
    raise_on_failure=True,
):
    """Iterate ``x <- (1 - w) x + w update(x)`` until ``|dx| < tolerance``.

    Parameters
    ----------
    update:
        Callable mapping the current iterate to the next one.
    initial:
        Starting vector (copied).
    tolerance:
        Convergence threshold on the chosen norm of the update step.
    damping:
        Relaxation factor ``w`` in (0, 1]; values below 1 stabilize
        strongly nonlinear steps at the cost of extra iterations.
    norm:
        Step-norm callable; defaults to the max norm, which for
        temperature vectors reads "no node moved by more than tol kelvin".
    raise_on_failure:
        When ``True`` a non-converged iteration raises
        :class:`~repro.errors.ConvergenceError`; otherwise the last iterate
        is returned with ``converged = False``.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping!r}")
    if norm is None:
        norm = lambda v: float(np.max(np.abs(v))) if np.size(v) else 0.0
    current = np.array(initial, dtype=float, copy=True)
    history = []
    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        proposed = np.asarray(update(current), dtype=float)
        step = proposed - current
        current = current + damping * step
        residual = norm(damping * step)
        history.append(residual)
        if residual < tolerance:
            return FixedPointResult(current, iteration, residual, True, history)
    if raise_on_failure:
        raise ConvergenceError(
            f"fixed-point iteration did not converge within {max_iterations} "
            f"iterations (last step norm {residual:.3e}, tol {tolerance:.3e})",
            iterations=max_iterations,
            residual=residual,
        )
    return FixedPointResult(current, max_iterations, residual, False, history)


def newton_raphson(
    residual,
    jacobian,
    initial,
    tolerance=1.0e-10,
    max_iterations=50,
    damping=1.0,
):
    """Dense Newton-Raphson for small systems ``residual(x) = 0``.

    ``jacobian(x)`` must return a dense matrix (or scalar for 1D problems).
    Used by the analytic wire model where the unknown is the wire
    temperature itself.
    """
    current = np.atleast_1d(np.array(initial, dtype=float, copy=True))
    for iteration in range(1, max_iterations + 1):
        res = np.atleast_1d(np.asarray(residual(current), dtype=float))
        if float(np.max(np.abs(res))) < tolerance:
            return FixedPointResult(
                current if current.size > 1 else float(current[0]),
                iteration - 1,
                float(np.max(np.abs(res))),
                True,
            )
        jac = np.atleast_2d(np.asarray(jacobian(current), dtype=float))
        try:
            step = np.linalg.solve(jac, res)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(
                f"singular Jacobian in Newton iteration {iteration}: {exc}",
                iterations=iteration,
            ) from exc
        current = current - damping * step
    final_res = float(np.max(np.abs(np.atleast_1d(residual(current)))))
    raise ConvergenceError(
        f"Newton iteration did not converge within {max_iterations} "
        f"iterations (residual {final_res:.3e})",
        iterations=max_iterations,
        residual=final_res,
    )
