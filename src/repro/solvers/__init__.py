"""Linear and nonlinear solver utilities.

* :mod:`repro.solvers.linear` -- sparse direct/iterative solves with
  factorization caching (the coupled loop re-solves with the same matrix
  whenever the nonlinearity has stagnated),
* :mod:`repro.solvers.woodbury` -- Sherman-Morrison-Woodbury updates for
  matrices that differ from a factorized base only by the low-rank bonding
  wire stamps (the Monte Carlo fast path),
* :mod:`repro.solvers.cache` -- content-addressed LU factorization cache
  shared by solvers rebuilt in one process (the campaign worker pattern),
* :mod:`repro.solvers.newton` -- fixed-point (successive substitution) and
  Newton iterations with damping,
* :mod:`repro.solvers.time_integration` -- implicit Euler / theta-method
  steppers for the transient heat equation.
"""

from .adaptive import (
    AdaptiveStepResult,
    adaptive_implicit_euler,
    dt_ladder,
    snap_to_ladder,
)
from .cache import FactorizationCache, matrix_fingerprint, shared_cache
from .linear import LinearSolver, solve_sparse
from .newton import FixedPointResult, fixed_point, newton_raphson
from .time_integration import ImplicitEuler, ThetaMethod, TimeGrid
from .woodbury import WoodburySolver

__all__ = [
    "FactorizationCache",
    "matrix_fingerprint",
    "shared_cache",
    "LinearSolver",
    "solve_sparse",
    "fixed_point",
    "newton_raphson",
    "FixedPointResult",
    "ImplicitEuler",
    "ThetaMethod",
    "TimeGrid",
    "WoodburySolver",
    "adaptive_implicit_euler",
    "AdaptiveStepResult",
    "dt_ladder",
    "snap_to_ladder",
]
