"""Adaptive implicit Euler via step doubling.

The paper integrates with 51 fixed points over 50 s.  For stiff start-ups
(pulse drives, cold starts) a fixed step either wastes work or misses the
fast initial transient.  This controller advances with implicit Euler and
estimates the local error by comparing one full step against two half
steps (step doubling); the step size follows the classic PI-free
controller ``dt <- dt * safety * (tol / err)^(1/2)`` (implicit Euler is
order 1, so the doubling error estimate is order 2 in dt).
"""

import numpy as np

from ..errors import SolverError


class AdaptiveStepResult:
    """Outcome of an adaptive integration.

    ``min_dt_violations`` records every step that was accepted at the
    minimum step size with an uncontrolled error (only possible with
    ``accept_min_dt_steps=True``) as ``(time, error)`` pairs.
    """

    def __init__(self, times, states, accepted, rejected, step_sizes,
                 min_dt_violations=()):
        self.times = np.asarray(times)
        self.states = states
        self.accepted = int(accepted)
        self.rejected = int(rejected)
        self.step_sizes = np.asarray(step_sizes)
        self.min_dt_violations = list(min_dt_violations)

    @property
    def final(self):
        """State at the end time."""
        return self.states[-1]

    @property
    def num_min_dt_violations(self):
        """Accepted-at-``min_dt`` steps whose error exceeded the tolerance."""
        return len(self.min_dt_violations)

    def __repr__(self):
        if self.step_sizes.size == 0:
            return (
                f"AdaptiveStepResult({self.accepted} accepted, "
                f"{self.rejected} rejected steps, no accepted step sizes)"
            )
        text = (
            f"AdaptiveStepResult({self.accepted} accepted, "
            f"{self.rejected} rejected steps, "
            f"dt in [{self.step_sizes.min():.3g}, "
            f"{self.step_sizes.max():.3g}] s"
        )
        if self.min_dt_violations:
            text += f", {len(self.min_dt_violations)} min_dt violations"
        return text + ")"


def adaptive_implicit_euler(
    step_function,
    initial_state,
    end_time,
    initial_dt,
    tolerance=0.1,
    min_dt=1.0e-6,
    max_dt=None,
    safety=0.8,
    max_steps=100_000,
    norm=None,
    accept_min_dt_steps=False,
):
    """Integrate ``state' = f`` with adaptive implicit Euler.

    Parameters
    ----------
    step_function:
        Callable ``step_function(state, dt) -> new_state`` performing ONE
        implicit Euler step (the coupled solver's step fits directly).
    initial_state:
        Starting state vector (copied).
    end_time:
        Integration horizon [s].
    initial_dt:
        First attempted step [s].
    tolerance:
        Local error tolerance in the chosen norm (kelvin for temperature
        states).
    min_dt, max_dt:
        Step-size clamps; a step at ``min_dt`` whose error still exceeds
        the tolerance raises :class:`~repro.errors.SolverError`, since
        the error can then not be controlled (see
        ``accept_min_dt_steps``).
    safety:
        Controller safety factor in (0, 1).
    norm:
        Error norm; defaults to the max norm.
    accept_min_dt_steps:
        When ``True``, a ``min_dt`` step with uncontrolled error is
        accepted instead of raising, and recorded in
        ``AdaptiveStepResult.min_dt_violations`` -- an explicit opt-out
        for runs that prefer a flagged, degraded solution over an abort.

    Returns
    -------
    :class:`AdaptiveStepResult` with all accepted times and states.
    """
    if norm is None:
        norm = lambda v: float(np.max(np.abs(v))) if np.size(v) else 0.0
    end_time = float(end_time)
    dt = float(initial_dt)
    if end_time <= 0.0 or dt <= 0.0:
        raise SolverError("end_time and initial_dt must be positive")
    if not 0.0 < safety < 1.0:
        raise SolverError(f"safety must be in (0, 1), got {safety!r}")
    if max_dt is None:
        max_dt = end_time
    state = np.array(initial_state, dtype=float, copy=True)
    time = 0.0
    times = [0.0]
    states = [state.copy()]
    step_sizes = []
    accepted = 0
    rejected = 0
    min_dt_violations = []

    for _ in range(max_steps):
        if time >= end_time - 1e-12 * end_time:
            return AdaptiveStepResult(times, states, accepted, rejected,
                                      step_sizes, min_dt_violations)
        dt = min(dt, max_dt, end_time - time)
        # One full step vs. two half steps.
        full = step_function(state, dt)
        half = step_function(state, 0.5 * dt)
        double = step_function(half, 0.5 * dt)
        error = norm(np.asarray(double) - np.asarray(full))
        at_min_dt = dt <= min_dt * (1.0 + 1e-9)

        if error <= tolerance or at_min_dt:
            if error > tolerance:
                # The controller cannot shrink the step any further, so
                # the local error is out of control: the documented
                # contract is to raise unless the caller explicitly
                # opted into flagged acceptance.
                if not accept_min_dt_steps:
                    raise SolverError(
                        f"local error {error:.3g} exceeds tolerance "
                        f"{tolerance:.3g} at the minimum step size "
                        f"min_dt = {min_dt:.3g} s (t = {time:.6g} s); the "
                        "error can no longer be controlled -- pass "
                        "accept_min_dt_steps=True to accept and record "
                        "such steps instead"
                    )
                min_dt_violations.append((time + dt, float(error)))
            # Accept the more accurate two-half-step solution.
            state = np.asarray(double, dtype=float)
            time += dt
            times.append(time)
            states.append(state.copy())
            step_sizes.append(dt)
            accepted += 1
        else:
            rejected += 1
        # Order-1 method, order-2 error estimate: exponent 1/2.
        if error > 0.0:
            factor = safety * np.sqrt(tolerance / error)
            dt = float(np.clip(dt * np.clip(factor, 0.1, 5.0), min_dt, max_dt))
        else:
            dt = float(min(dt * 5.0, max_dt))
        if dt < min_dt * (1.0 - 1e-9):
            raise SolverError(
                f"adaptive step size fell below min_dt = {min_dt}"
            )
    raise SolverError(
        f"adaptive integration exceeded {max_steps} steps"
    )
