"""Adaptive implicit Euler with step doubling or a free LTE predictor.

The paper integrates with 51 fixed points over 50 s.  For stiff start-ups
(pulse drives, cold starts) a fixed step either wastes work or misses the
fast initial transient.  This controller advances with implicit Euler;
the step size follows the classic PI-free controller
``dt <- dt * safety * (tol / err)^(1/2)`` (implicit Euler is order 1 and
both error estimates below are order 2 in dt).  Two local-error
estimators are available:

* ``error_estimate="doubling"`` (default) -- compare one full step
  against two half steps.  Robust and history-free, but every attempted
  step costs THREE solves.
* ``error_estimate="predictor"`` -- the classic divided-difference local
  truncation error estimate (the SPICE-style LTE control):
  ``err ~ (dt^2 / 2) ||T''||`` with ``T''`` from the backward difference
  of the step rates of the current and previous step.  One solve per
  attempted step; only the very first step (no history yet) falls back
  to step doubling.  The linear predictor ``state + dt * rate`` is also
  offered to ``step_function`` as the initial iterate (``guess``
  keyword, when accepted), so nonlinear steps start close to their
  solution.

``quantize_dt=True`` snaps every proposed step onto a geometric ladder
``dt_k = initial_dt * 2^k`` (integer ``k``, clamped to
``[min_dt, max_dt]``), so an integration visits only a handful of
distinct step sizes instead of a fresh float per controller update.
Solvers that factorize per ``dt`` (the coupled thermal step) then pay one
factorization per ladder rung -- and because neighboring rungs differ by
exactly a factor of two, the step doubling's ``dt/2`` is itself a rung,
so the half steps reuse the same small solver set.
"""

import inspect

import numpy as np

from ..errors import SolverError
from ..telemetry import tracing as telemetry

_ERROR_ESTIMATES = ("doubling", "predictor")


def dt_ladder(initial_dt, min_dt, max_dt):
    """The quantization ladder: ``initial_dt * 2^k`` within the clamps.

    Returns the ascending array of every rung ``initial_dt * 2^k``
    (integer ``k``, positive and negative) that fits into
    ``[min_dt, max_dt]``; ``initial_dt`` itself is clamped into the
    interval first, so the ladder is never empty.
    """
    initial_dt = float(np.clip(initial_dt, min_dt, max_dt))
    rungs = [initial_dt]
    while rungs[-1] * 2.0 <= max_dt * (1.0 + 1e-12):
        rungs.append(rungs[-1] * 2.0)
    down = initial_dt
    while down * 0.5 >= min_dt * (1.0 - 1e-12):
        down *= 0.5
        rungs.append(down)
    return np.sort(np.asarray(rungs))


def _snap_down(dt, ladder):
    """Largest rung ``<= dt`` (the smallest rung for sub-rung values)."""
    ladder = np.asarray(ladder)
    index = int(np.searchsorted(ladder, dt * (1.0 + 1e-9), side="right")) - 1
    return float(ladder[max(index, 0)])


def snap_to_ladder(dt, ladder):
    """The geometrically nearest rung (clamped to the ladder's range).

    Rounding in log space (proposals above the geometric mean of two
    rungs go up) keeps the expected local error closest to the raw
    proposal's; an occasional up-rounded overshoot is caught by the
    normal reject-and-halve path, which is far cheaper than the extra
    accepted steps systematic down-rounding would cost.
    """
    ladder = np.asarray(ladder)
    index = int(np.searchsorted(ladder, dt * (1.0 + 1e-9), side="right")) - 1
    if index < 0:
        return float(ladder[0])
    if index + 1 < ladder.size and dt * dt > ladder[index] * ladder[index + 1]:
        return float(ladder[index + 1])
    return float(ladder[index])


class AdaptiveStepResult:
    """Outcome of an adaptive integration.

    ``min_dt_violations`` records every step that was accepted at the
    minimum step size with an uncontrolled error (only possible with
    ``accept_min_dt_steps=True``) as ``(time, error)`` pairs.

    ``num_solves`` counts the ``step_function`` evaluations (three per
    attempted step: one full plus two half steps) and
    ``solver_dts`` the distinct step sizes those evaluations saw -- the
    number of per-``dt`` factorizations a caching coupled solver pays.
    ``solver_stats`` is an optional dict attached by the caller (e.g.
    :meth:`repro.coupled.electrothermal.CoupledSolver.solver_statistics`)
    carrying factorization-cache hit/miss counts.
    """

    def __init__(self, times, states, accepted, rejected, step_sizes,
                 min_dt_violations=(), num_solves=None, solver_dts=(),
                 solver_stats=None):
        self.times = np.asarray(times)
        self.states = states
        self.accepted = int(accepted)
        self.rejected = int(rejected)
        self.step_sizes = np.asarray(step_sizes)
        self.min_dt_violations = list(min_dt_violations)
        self.num_solves = (
            int(num_solves) if num_solves is not None
            else 3 * (self.accepted + self.rejected)
        )
        self.solver_dts = np.sort(np.asarray(list(solver_dts), dtype=float))
        self.solver_stats = solver_stats

    @property
    def final(self):
        """State at the end time."""
        return self.states[-1]

    @property
    def num_min_dt_violations(self):
        """Accepted-at-``min_dt`` steps whose error exceeded the tolerance."""
        return len(self.min_dt_violations)

    @property
    def num_distinct_solver_dts(self):
        """Distinct step sizes passed to ``step_function`` (full + half)."""
        return int(self.solver_dts.size)

    def statistics(self):
        """JSON-friendly cost record for reports and benchmarks."""
        stats = {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "num_solves": self.num_solves,
            "num_distinct_solver_dts": self.num_distinct_solver_dts,
            "num_min_dt_violations": self.num_min_dt_violations,
        }
        if self.step_sizes.size:
            stats["dt_min"] = float(self.step_sizes.min())
            stats["dt_max"] = float(self.step_sizes.max())
        if self.solver_stats is not None:
            stats.update(self.solver_stats)
        return stats

    def __repr__(self):
        if self.step_sizes.size == 0:
            return (
                f"AdaptiveStepResult({self.accepted} accepted, "
                f"{self.rejected} rejected steps, no accepted step sizes)"
            )
        text = (
            f"AdaptiveStepResult({self.accepted} accepted, "
            f"{self.rejected} rejected steps, "
            f"dt in [{self.step_sizes.min():.3g}, "
            f"{self.step_sizes.max():.3g}] s, "
            f"{self.num_solves} solves over "
            f"{self.num_distinct_solver_dts} distinct dt"
        )
        if self.min_dt_violations:
            text += f", {len(self.min_dt_violations)} min_dt violations"
        return text + ")"


def adaptive_implicit_euler(
    step_function,
    initial_state,
    end_time,
    initial_dt,
    tolerance=0.1,
    min_dt=1.0e-6,
    max_dt=None,
    safety=0.8,
    max_steps=100_000,
    norm=None,
    accept_min_dt_steps=False,
    quantize_dt=False,
    error_estimate="doubling",
):
    """Integrate ``state' = f`` with adaptive implicit Euler.

    Parameters
    ----------
    step_function:
        Callable ``step_function(state, dt) -> new_state`` performing ONE
        implicit Euler step (the coupled solver's step fits directly).
    initial_state:
        Starting state vector (copied).
    end_time:
        Integration horizon [s].
    initial_dt:
        First attempted step [s].
    tolerance:
        Local error tolerance in the chosen norm (kelvin for temperature
        states).
    min_dt, max_dt:
        Step-size clamps; a step at ``min_dt`` whose error still exceeds
        the tolerance raises :class:`~repro.errors.SolverError`, since
        the error can then not be controlled (see
        ``accept_min_dt_steps``).  The clamp applies to the *controller*:
        the final step onto ``end_time`` may be shorter than ``min_dt``
        without triggering the contract (a horizon clamp, not an
        error-control floor).
    safety:
        Controller safety factor in (0, 1).
    norm:
        Error norm; defaults to the max norm.
    accept_min_dt_steps:
        When ``True``, a ``min_dt`` step with uncontrolled error is
        accepted instead of raising, and recorded in
        ``AdaptiveStepResult.min_dt_violations`` -- an explicit opt-out
        for runs that prefer a flagged, degraded solution over an abort.
    quantize_dt:
        When ``True``, every controller proposal snaps onto the
        geometric ladder :func:`dt_ladder` (nearest rung in log space
        while advancing, strictly downward right after a rejection);
        the error-control floor is then the lowest rung.  The step
        count barely changes (an up-rounded overshoot is caught by the
        normal reject path), but per-``dt`` factorization caches see
        O(#rungs) distinct matrices instead of O(#steps).
    error_estimate:
        ``"doubling"`` (default; three solves per attempt) or
        ``"predictor"`` (one solve per attempt after the first; see the
        module docstring).  With ``"predictor"``, a ``step_function``
        accepting a ``guess`` keyword receives the linear predictor as
        its initial iterate.

    Returns
    -------
    :class:`AdaptiveStepResult` with all accepted times and states.
    """
    if norm is None:
        norm = lambda v: float(np.max(np.abs(v))) if np.size(v) else 0.0
    end_time = float(end_time)
    dt = float(initial_dt)
    if end_time <= 0.0 or dt <= 0.0:
        raise SolverError("end_time and initial_dt must be positive")
    if not 0.0 < safety < 1.0:
        raise SolverError(f"safety must be in (0, 1), got {safety!r}")
    if max_dt is None:
        max_dt = end_time
    if min_dt > max_dt:
        raise SolverError(
            f"min_dt = {min_dt:.3g} exceeds max_dt = {max_dt:.3g}"
        )
    if error_estimate not in _ERROR_ESTIMATES:
        raise SolverError(
            f"unknown error_estimate {error_estimate!r}; expected one of "
            f"{_ERROR_ESTIMATES}"
        )
    use_predictor = error_estimate == "predictor"
    supports_guess = False
    if use_predictor:
        try:
            supports_guess = (
                "guess" in inspect.signature(step_function).parameters
            )
        except (TypeError, ValueError):  # builtins / C callables
            supports_guess = False
    ladder = dt_ladder(dt, min_dt, max_dt) if quantize_dt else None
    # The error-control floor: below it the controller cannot shrink.
    floor_dt = float(ladder[0]) if quantize_dt else float(min_dt)
    state = np.array(initial_state, dtype=float, copy=True)
    time = 0.0
    times = [0.0]
    states = [state.copy()]
    step_sizes = []
    accepted = 0
    rejected = 0
    num_solves = 0
    solver_dts = set()
    min_dt_violations = []
    # Backward-difference history for the predictor estimate: the step
    # rate of the last attempt.  After an acceptance it is the classic
    # (state_n - state_{n-1}) / dt_{n-1}; after a rejection it is the
    # rejected candidate's rate, anchored at the *unchanged* current
    # state -- still a valid one-sided difference for a retry at a
    # DIFFERENT dt, but degenerate (rate compares against itself,
    # error ~ 0) for a retry at the same dt, where the controller falls
    # back to doubling instead.
    prev_rate = None
    prev_dt = None
    history_accepted = False
    last_rejected = False

    for _ in range(max_steps):
        if time >= end_time - 1e-12 * end_time:
            telemetry.increment("adaptive.accepted", accepted)
            telemetry.increment("adaptive.rejected", rejected)
            telemetry.increment("adaptive.solves", num_solves)
            return AdaptiveStepResult(
                times, states, accepted, rejected, step_sizes,
                min_dt_violations, num_solves=num_solves,
                solver_dts=solver_dts,
            )
        # The controller's choice (clamped, optionally quantized) versus
        # the actually attempted step, which the end of the horizon may
        # shorten below any clamp.
        controller_dt = min(dt, max_dt)
        if quantize_dt:
            # Nearest-rung rounding while advancing; strictly downward
            # right after a rejection, otherwise the shrunken proposal
            # can round straight back up to the rung that just failed.
            controller_dt = (
                _snap_down(controller_dt, ladder) if last_rejected
                else snap_to_ladder(controller_dt, ladder)
            )
        remaining = end_time - time
        if remaining < controller_dt:
            if quantize_dt and remaining >= ladder[0] * (1.0 - 1e-9):
                # Walk the tail down ON the ladder (a few extra cheap
                # steps) instead of minting an off-ladder sliver dt
                # that would cost one more factorization.
                step_dt = _snap_down(remaining, ladder)
            else:
                step_dt = remaining
        else:
            step_dt = controller_dt
        at_floor = controller_dt <= floor_dt * (1.0 + 1e-9)
        half_state = None
        predictor_valid = use_predictor and prev_rate is not None and (
            history_accepted
            or abs(step_dt - prev_dt) > 1e-9 * max(step_dt, prev_dt)
        )
        if predictor_valid:
            # One solve; the LTE from the divided difference of step
            # rates: err ~ (dt^2 / 2) T''.  The rate difference spans
            # (dt + prev_dt) / 2 when the history rate ends where this
            # one starts (accepted), but only |dt - prev_dt| / 2 when
            # both rates leave the SAME state (rejection-anchored) --
            # using the wrong span there would underestimate by up to
            # ~3x and silently accept out-of-tolerance retries.
            if supports_guess:
                candidate = step_function(
                    state, step_dt, guess=state + step_dt * prev_rate
                )
            else:
                candidate = step_function(state, step_dt)
            candidate = np.asarray(candidate, dtype=float)
            num_solves += 1
            solver_dts.add(step_dt)
            rate = (candidate - state) / step_dt
            rate_dt = step_dt
            rejected_rate = rate
            rejected_rate_dt = step_dt
            span = (step_dt + prev_dt if history_accepted
                    else abs(step_dt - prev_dt))
            error = norm(step_dt * step_dt * (rate - prev_rate) / span)
        else:
            # One full step vs. two half steps.
            full = step_function(state, step_dt)
            if supports_guess:
                # The full-step solution brackets the half-step pair:
                # free warm starts for two of the three solves.
                full_arr = np.asarray(full, dtype=float)
                half = step_function(state, 0.5 * step_dt,
                                     guess=0.5 * (state + full_arr))
                double = step_function(half, 0.5 * step_dt, guess=full_arr)
            else:
                half = step_function(state, 0.5 * step_dt)
                double = step_function(half, 0.5 * step_dt)
            num_solves += 3
            solver_dts.update((step_dt, 0.5 * step_dt))
            error = norm(np.asarray(double) - np.asarray(full))
            # Accept the more accurate two-half-step solution; its
            # midpoint (the first half step) is recorded too -- a free
            # sample that halves the interpolation error of the coarse
            # first steps.
            candidate = np.asarray(double, dtype=float)
            half_state = np.asarray(half, dtype=float)
            # On acceptance, seed history from the SECOND half step --
            # the freshest local rate (an averaged full-step rate lags
            # a decelerating transient and inflates the next predictor
            # estimate).  On rejection the history must be anchored at
            # the (unchanged) current state over the full attempt, to
            # match the same-anchor span the next estimate assumes.
            rate = (candidate - half_state) / (0.5 * step_dt)
            rate_dt = 0.5 * step_dt
            rejected_rate = (candidate - state) / step_dt
            rejected_rate_dt = step_dt

        if error <= tolerance or at_floor:
            if error > tolerance:
                # The controller cannot shrink the step any further, so
                # the local error is out of control: the documented
                # contract is to raise unless the caller explicitly
                # opted into flagged acceptance.  (A merely
                # horizon-clamped sliver never lands here: ``at_floor``
                # tracks the controller's step, so the sliver is
                # rejected like any other step until the controller has
                # actually shrunk to its floor.)
                if not accept_min_dt_steps:
                    raise SolverError(
                        f"local error {error:.3g} exceeds tolerance "
                        f"{tolerance:.3g} at the minimum step size "
                        f"min_dt = {floor_dt:.3g} s (t = {time:.6g} s); the "
                        "error can no longer be controlled -- pass "
                        "accept_min_dt_steps=True to accept and record "
                        "such steps instead"
                    )
                min_dt_violations.append((time + step_dt, float(error)))
            if half_state is not None:
                times.append(time + 0.5 * step_dt)
                states.append(half_state.copy())
            state = candidate
            time += step_dt
            times.append(time)
            states.append(state.copy())
            step_sizes.append(step_dt)
            accepted += 1
            last_rejected = False
        else:
            rejected += 1
            last_rejected = True
        if last_rejected:
            prev_rate = rejected_rate
            prev_dt = rejected_rate_dt
        else:
            prev_rate = rate
            prev_dt = rate_dt
        history_accepted = not last_rejected
        # Order-1 method, order-2 error estimate: exponent 1/2.  With a
        # factor-2 ladder the growth is capped at one rung per accepted
        # step: an overshoot past the next rung is a wasted solve AND a
        # wasted factorization, while an extra accepted step is one
        # cheap solve.
        growth_cap = 2.5 if quantize_dt else 5.0
        if error > 0.0:
            factor = safety * np.sqrt(tolerance / error)
            dt = float(
                np.clip(step_dt * np.clip(factor, 0.1, growth_cap),
                        min_dt, max_dt)
            )
        else:
            # Clamp like the error > 0 branch: growing from an accepted
            # sub-min_dt horizon sliver must not leave dt below min_dt
            # (the guard below would misfire on a finished integration).
            dt = float(np.clip(step_dt * growth_cap, min_dt, max_dt))
        if quantize_dt and last_rejected and dt > 0.4 * step_dt:
            # error <= 4 * tolerance: the order-2 estimate already
            # clears the next rung down, so don't let the safety factor
            # overshoot past it (a needless extra rung = a needless
            # factorization).
            dt = float(np.clip(0.5 * step_dt, min_dt, max_dt))
        if dt < min_dt * (1.0 - 1e-9):
            raise SolverError(
                f"adaptive step size fell below min_dt = {min_dt}"
            )
    raise SolverError(
        f"adaptive integration exceeded {max_steps} steps"
    )
