"""Adaptive implicit Euler via step doubling.

The paper integrates with 51 fixed points over 50 s.  For stiff start-ups
(pulse drives, cold starts) a fixed step either wastes work or misses the
fast initial transient.  This controller advances with implicit Euler and
estimates the local error by comparing one full step against two half
steps (step doubling); the step size follows the classic PI-free
controller ``dt <- dt * safety * (tol / err)^(1/2)`` (implicit Euler is
order 1, so the doubling error estimate is order 2 in dt).
"""

import numpy as np

from ..errors import SolverError


class AdaptiveStepResult:
    """Outcome of an adaptive integration."""

    def __init__(self, times, states, accepted, rejected, step_sizes):
        self.times = np.asarray(times)
        self.states = states
        self.accepted = int(accepted)
        self.rejected = int(rejected)
        self.step_sizes = np.asarray(step_sizes)

    @property
    def final(self):
        """State at the end time."""
        return self.states[-1]

    def __repr__(self):
        return (
            f"AdaptiveStepResult({self.accepted} accepted, "
            f"{self.rejected} rejected steps, "
            f"dt in [{self.step_sizes.min():.3g}, "
            f"{self.step_sizes.max():.3g}] s)"
        )


def adaptive_implicit_euler(
    step_function,
    initial_state,
    end_time,
    initial_dt,
    tolerance=0.1,
    min_dt=1.0e-6,
    max_dt=None,
    safety=0.8,
    max_steps=100_000,
    norm=None,
):
    """Integrate ``state' = f`` with adaptive implicit Euler.

    Parameters
    ----------
    step_function:
        Callable ``step_function(state, dt) -> new_state`` performing ONE
        implicit Euler step (the coupled solver's step fits directly).
    initial_state:
        Starting state vector (copied).
    end_time:
        Integration horizon [s].
    initial_dt:
        First attempted step [s].
    tolerance:
        Local error tolerance in the chosen norm (kelvin for temperature
        states).
    min_dt, max_dt:
        Step-size clamps; hitting ``min_dt`` raises, since the error can
        then not be controlled.
    safety:
        Controller safety factor in (0, 1).
    norm:
        Error norm; defaults to the max norm.

    Returns
    -------
    :class:`AdaptiveStepResult` with all accepted times and states.
    """
    if norm is None:
        norm = lambda v: float(np.max(np.abs(v))) if np.size(v) else 0.0
    end_time = float(end_time)
    dt = float(initial_dt)
    if end_time <= 0.0 or dt <= 0.0:
        raise SolverError("end_time and initial_dt must be positive")
    if not 0.0 < safety < 1.0:
        raise SolverError(f"safety must be in (0, 1), got {safety!r}")
    if max_dt is None:
        max_dt = end_time
    state = np.array(initial_state, dtype=float, copy=True)
    time = 0.0
    times = [0.0]
    states = [state.copy()]
    step_sizes = []
    accepted = 0
    rejected = 0

    for _ in range(max_steps):
        if time >= end_time - 1e-12 * end_time:
            return AdaptiveStepResult(times, states, accepted, rejected,
                                      step_sizes)
        dt = min(dt, max_dt, end_time - time)
        # One full step vs. two half steps.
        full = step_function(state, dt)
        half = step_function(state, 0.5 * dt)
        double = step_function(half, 0.5 * dt)
        error = norm(np.asarray(double) - np.asarray(full))

        if error <= tolerance or dt <= min_dt * (1.0 + 1e-9):
            # Accept the more accurate two-half-step solution.
            state = np.asarray(double, dtype=float)
            time += dt
            times.append(time)
            states.append(state.copy())
            step_sizes.append(dt)
            accepted += 1
        else:
            rejected += 1
        # Order-1 method, order-2 error estimate: exponent 1/2.
        if error > 0.0:
            factor = safety * np.sqrt(tolerance / error)
            dt = float(np.clip(dt * np.clip(factor, 0.1, 5.0), min_dt, max_dt))
        else:
            dt = float(min(dt * 5.0, max_dt))
        if dt < min_dt * (1.0 - 1e-9):
            raise SolverError(
                f"adaptive step size fell below min_dt = {min_dt}"
            )
    raise SolverError(
        f"adaptive integration exceeded {max_steps} steps"
    )
