"""Sherman-Morrison-Woodbury solver for low-rank matrix updates.

Between Monte Carlo samples only the bonding wire conductances change, and
each wire stamps a rank-1 update ``g_j p_j p_j^T`` into the system matrix
(Section III-B of the paper).  With ``A = A_base + U diag(g) U^T`` and a
factorized ``A_base``, the Woodbury identity

``A^-1 b = A0^-1 b - A0^-1 U (diag(g)^-1 + U^T A0^-1 U)^-1 U^T A0^-1 b``

solves each sample with one small dense solve instead of a fresh sparse LU.
This is the fast path benchmarked by ``bench_ablation_woodbury``.
"""

import numpy as np

from ..errors import SolverError
from .cache import checked_splu


class WoodburySolver:
    """Solver for ``(A_base + U diag(g) U^T) x = b`` with varying ``g``.

    Parameters
    ----------
    base_matrix:
        Sparse base matrix ``A_base`` (factorized once).
    update_vectors:
        Dense ``(n, k)`` matrix ``U`` whose columns are the stamp vectors
        ``p_j`` (entries +1/-1 at the wire end nodes, after Dirichlet
        reduction).
    cache:
        Optional :class:`~repro.solvers.cache.FactorizationCache`; when
        given, the base LU is looked up / stored there so structurally
        identical solvers built in the same process share one
        factorization (the campaign worker pattern).
    symmetric:
        Factorize the base in SuperLU's symmetric mode (see
        :func:`~repro.solvers.cache.checked_splu`); only for bases known
        to be symmetric positive definite.
    """

    def __init__(self, base_matrix, update_vectors, cache=None,
                 symmetric=False):
        base_matrix = base_matrix.tocsc()
        update_vectors = np.asarray(update_vectors, dtype=float)
        if update_vectors.ndim != 2:
            raise SolverError("update_vectors must be a 2D (n, k) array")
        if update_vectors.shape[0] != base_matrix.shape[0]:
            raise SolverError(
                f"update vectors have {update_vectors.shape[0]} rows, matrix "
                f"is {base_matrix.shape[0]}x{base_matrix.shape[1]}"
            )
        self.rank = update_vectors.shape[1]
        self.update_vectors = update_vectors
        if cache is not None:
            self._lu = cache.splu(base_matrix, symmetric=symmetric)
        else:
            self._lu = checked_splu(base_matrix, symmetric=symmetric)
        # Precompute A0^-1 U and the capacitance-free core U^T A0^-1 U.
        # A rank-0 update (no wires) is a valid degenerate case: every
        # solve is then just the base LU solve.
        if self.rank:
            # One multi-RHS triangular sweep instead of k single solves.
            self._base_inverse_u = np.asarray(
                self._lu.solve(np.ascontiguousarray(update_vectors))
            )
        else:
            self._base_inverse_u = np.zeros((base_matrix.shape[0], 0))
        self._core = update_vectors.T @ self._base_inverse_u

    def solve(self, conductances, rhs):
        """Solve for the given per-stamp conductances ``g`` (length k).

        Zero conductances are supported (the corresponding stamp simply
        drops out); negative conductances are rejected as non-physical.
        """
        conductances = np.asarray(conductances, dtype=float).ravel()
        if conductances.size != self.rank:
            raise SolverError(
                f"expected {self.rank} conductances, got {conductances.size}"
            )
        if np.any(conductances < 0.0):
            raise SolverError("wire conductances must be non-negative")
        rhs = np.asarray(rhs, dtype=float)
        base_solution = self._lu.solve(rhs)

        active = conductances > 0.0
        if not np.any(active):
            return base_solution
        u_active = self.update_vectors[:, active]
        base_inv_u = self._base_inverse_u[:, active]
        core = self._core[np.ix_(active, active)].copy()
        core[np.diag_indices_from(core)] += 1.0 / conductances[active]
        try:
            coefficients = np.linalg.solve(core, u_active.T @ base_solution)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"Woodbury core solve failed: {exc}") from exc
        solution = base_solution - base_inv_u @ coefficients
        if not np.all(np.isfinite(solution)):
            raise SolverError("Woodbury solve produced non-finite values")
        return solution
