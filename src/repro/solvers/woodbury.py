"""Sherman-Morrison-Woodbury solver for low-rank matrix updates.

Between Monte Carlo samples only the bonding wire conductances change, and
each wire stamps a rank-1 update ``g_j p_j p_j^T`` into the system matrix
(Section III-B of the paper).  With ``A = A_base + U diag(g) U^T`` and a
factorized ``A_base``, the Woodbury identity

``A^-1 b = A0^-1 b - A0^-1 U (diag(g)^-1 + U^T A0^-1 U)^-1 U^T A0^-1 b``

solves each sample with one small dense solve instead of a fresh sparse LU.
This is the fast path benchmarked by ``bench_ablation_woodbury``.
"""

import numpy as np

from ..errors import SolverError
from ..telemetry import tracing as telemetry
from .cache import checked_splu


class WoodburySolver:
    """Solver for ``(A_base + U diag(g) U^T) x = b`` with varying ``g``.

    Parameters
    ----------
    base_matrix:
        Sparse base matrix ``A_base`` (factorized once).
    update_vectors:
        Dense ``(n, k)`` matrix ``U`` whose columns are the stamp vectors
        ``p_j`` (entries +1/-1 at the wire end nodes, after Dirichlet
        reduction).
    cache:
        Optional :class:`~repro.solvers.cache.FactorizationCache`; when
        given, the base LU is looked up / stored there so structurally
        identical solvers built in the same process share one
        factorization (the campaign worker pattern).
    symmetric:
        Factorize the base in SuperLU's symmetric mode (see
        :func:`~repro.solvers.cache.checked_splu`); only for bases known
        to be symmetric positive definite.
    """

    def __init__(self, base_matrix, update_vectors, cache=None,
                 symmetric=False):
        base_matrix = base_matrix.tocsc()
        update_vectors = np.asarray(update_vectors, dtype=float)
        if update_vectors.ndim != 2:
            raise SolverError("update_vectors must be a 2D (n, k) array")
        if update_vectors.shape[0] != base_matrix.shape[0]:
            raise SolverError(
                f"update vectors have {update_vectors.shape[0]} rows, matrix "
                f"is {base_matrix.shape[0]}x{base_matrix.shape[1]}"
            )
        self.rank = update_vectors.shape[1]
        self.update_vectors = update_vectors
        if cache is not None:
            self._lu = cache.splu(base_matrix, symmetric=symmetric)
        else:
            self._lu = checked_splu(base_matrix, symmetric=symmetric)
        # Precompute A0^-1 U and the capacitance-free core U^T A0^-1 U.
        # A rank-0 update (no wires) is a valid degenerate case: every
        # solve is then just the base LU solve.
        if self.rank:
            # One multi-RHS triangular sweep instead of k single solves.
            self._base_inverse_u = np.asarray(
                self._lu.solve(np.ascontiguousarray(update_vectors))
            )
        else:
            self._base_inverse_u = np.zeros((base_matrix.shape[0], 0))
        self._core = update_vectors.T @ self._base_inverse_u

    @property
    def size(self):
        """Number of unknowns ``n`` of the base system."""
        return self.update_vectors.shape[0]

    def _check_rhs(self, rhs):
        """Validate an ``(n,)`` or ``(n, m)`` right-hand side."""
        rhs = np.asarray(rhs, dtype=float)
        if rhs.ndim not in (1, 2):
            raise SolverError(
                f"rhs must be a 1D (n,) vector or 2D (n, m) multi-RHS "
                f"block, got a {rhs.ndim}D array of shape {rhs.shape}"
            )
        if rhs.shape[0] != self.size:
            raise SolverError(
                f"rhs has {rhs.shape[0]} rows, the system has "
                f"{self.size} unknowns"
            )
        return rhs

    def solve(self, conductances, rhs):
        """Solve for the given per-stamp conductances ``g`` (length k).

        ``rhs`` is either one vector ``(n,)`` or a multi-RHS block
        ``(n, m)`` sharing the same conductances -- the solution has the
        same shape.  Zero conductances are supported (the corresponding
        stamp simply drops out); negative conductances are rejected as
        non-physical.
        """
        conductances = np.asarray(conductances, dtype=float).ravel()
        if conductances.size != self.rank:
            raise SolverError(
                f"expected {self.rank} conductances, got {conductances.size}"
            )
        if np.any(conductances < 0.0):
            raise SolverError("wire conductances must be non-negative")
        rhs = self._check_rhs(rhs)
        base_solution = self._lu.solve(rhs)

        active = conductances > 0.0
        if not np.any(active):
            return base_solution
        u_active = self.update_vectors[:, active]
        base_inv_u = self._base_inverse_u[:, active]
        core = self._core[np.ix_(active, active)].copy()
        core[np.diag_indices_from(core)] += 1.0 / conductances[active]
        try:
            coefficients = np.linalg.solve(core, u_active.T @ base_solution)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"Woodbury core solve failed: {exc}") from exc
        solution = base_solution - base_inv_u @ coefficients
        if not np.all(np.isfinite(solution)):
            raise SolverError("Woodbury solve produced non-finite values")
        return solution

    def solve_batch(self, conductances, rhs):
        """Sample-blocked solve: ``(S, k)`` conductances in one pass.

        Solves ``(A_base + U diag(g_s) U^T) x_s = b_s`` for every sample
        ``s`` of a block at once: one multi-RHS base backsolve over the
        whole ``(n, S)`` RHS block, then a stacked ``(S, k, k)`` core
        solve via :func:`numpy.linalg.solve` batching and a single
        BLAS-3 correction product -- instead of ``S`` independent
        :meth:`solve` calls.

        Parameters
        ----------
        conductances:
            ``(S, k)`` block of per-stamp conductances, one row per
            sample.
        rhs:
            Either an ``(n, S)`` block (one column per sample) or a
            single shared ``(n,)`` vector -- the campaign's electrical
            fast path drives every sample with the same reduced RHS, so
            the base backsolve collapses to one vector solve.

        Returns
        -------
        ``(n, S)`` solution block, column ``s`` for sample ``s``.  With a
        shared ``(n,)`` RHS, column ``s`` is bitwise identical to
        ``solve(conductances[s], rhs)``: the core solves are batched but
        per-matrix exact, and the rank-k corrections are applied
        column-wise on purpose -- ``A0^-1 b`` and the correction are
        orders of magnitude larger than their difference, so a blocked
        gemm's summation reorder would be amplified by the cancellation
        (measured ~1e-8 absolute on the paper's electrical system).
        With an ``(n, S)`` RHS block only the multi-RHS base backsolve
        (SuperLU's blocked supernodal kernels reorder sums for
        ``nrhs > 1``) separates a column from the per-sample result.
        """
        conductances = np.asarray(conductances, dtype=float)
        if conductances.ndim != 2:
            raise SolverError(
                f"conductances must be a 2D (S, k) block, got shape "
                f"{conductances.shape}"
            )
        num_samples, k = conductances.shape
        if k != self.rank:
            raise SolverError(
                f"expected {self.rank} conductances per sample, got {k}"
            )
        if np.any(conductances < 0.0):
            raise SolverError("wire conductances must be non-negative")
        rhs = self._check_rhs(rhs)
        shared_rhs = rhs.ndim == 1
        if not shared_rhs and rhs.shape[1] != num_samples:
            raise SolverError(
                f"rhs block has {rhs.shape[1]} columns for "
                f"{num_samples} samples"
            )
        base = self._lu.solve(np.ascontiguousarray(rhs))
        if shared_rhs:
            base_block = np.broadcast_to(
                base[:, None], (self.size, num_samples)
            )
        else:
            base_block = base

        telemetry.increment("solver.blocked_solves")
        if self.rank == 0 or not conductances.any():
            return np.array(base_block)
        if np.all(conductances > 0.0):
            # Homogeneous active set (the MC hot path: every wire
            # conducts): one stacked core solve over all samples.
            cores = np.repeat(self._core[None, :, :], num_samples, axis=0)
            diag = np.arange(self.rank)
            cores[:, diag, diag] += 1.0 / conductances
            if shared_rhs:
                rhs_core = np.broadcast_to(
                    self.update_vectors.T @ base,
                    (num_samples, self.rank),
                )
            else:
                # Column-wise gemvs, not one gemm: the per-sample path
                # reduces U^T b column by column and the ill-conditioned
                # core amplifies summation reorder (see the docstring).
                rhs_core = np.stack([
                    self.update_vectors.T @ np.ascontiguousarray(base[:, s])
                    for s in range(num_samples)
                ])
            try:
                coefficients = np.linalg.solve(
                    cores, rhs_core[..., None]
                )[..., 0]
            except np.linalg.LinAlgError as exc:
                raise SolverError(
                    f"Woodbury core solve failed: {exc}"
                ) from exc
            solution = np.empty((self.size, num_samples))
            for s in range(num_samples):
                # Per-column correction keeps the cancellation between
                # the base solution and the rank-k correction bitwise
                # faithful to :meth:`solve`.
                solution[:, s] = base_block[:, s] - (
                    self._base_inverse_u @ coefficients[s]
                )
        else:
            # Heterogeneous active sets (some samples drop stamps):
            # keep the shared base backsolve, apply the masked rank-k
            # correction per sample.
            solution = np.empty((self.size, num_samples))
            for s in range(num_samples):
                g = conductances[s]
                active = g > 0.0
                column = np.array(base_block[:, s])
                if np.any(active):
                    u_active = self.update_vectors[:, active]
                    core = self._core[np.ix_(active, active)].copy()
                    core[np.diag_indices_from(core)] += 1.0 / g[active]
                    try:
                        coefficients = np.linalg.solve(
                            core, u_active.T @ column
                        )
                    except np.linalg.LinAlgError as exc:
                        raise SolverError(
                            f"Woodbury core solve failed: {exc}"
                        ) from exc
                    column = column - (
                        self._base_inverse_u[:, active] @ coefficients
                    )
                solution[:, s] = column
        if not np.all(np.isfinite(solution)):
            raise SolverError("Woodbury solve produced non-finite values")
        return solution
