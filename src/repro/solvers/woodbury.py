"""Sherman-Morrison-Woodbury solver for low-rank matrix updates.

Between Monte Carlo samples only the bonding wire conductances change, and
each wire stamps a rank-1 update ``g_j p_j p_j^T`` into the system matrix
(Section III-B of the paper).  With ``A = A_base + U diag(g) U^T`` and a
factorized ``A_base``, the Woodbury identity

``A^-1 b = A0^-1 b - A0^-1 U (diag(g)^-1 + U^T A0^-1 U)^-1 U^T A0^-1 b``

solves each sample with one small dense solve instead of a fresh sparse LU.
This is the fast path benchmarked by ``bench_ablation_woodbury``.
"""

import numpy as np

from ..backends import get_array_backend
from ..errors import SolverError
from ..telemetry import tracing as telemetry


class WoodburySolver:
    """Solver for ``(A_base + U diag(g) U^T) x = b`` with varying ``g``.

    Parameters
    ----------
    base_matrix:
        Sparse base matrix ``A_base`` (factorized once).
    update_vectors:
        Dense ``(n, k)`` matrix ``U`` whose columns are the stamp vectors
        ``p_j`` (entries +1/-1 at the wire end nodes, after Dirichlet
        reduction).
    cache:
        Optional :class:`~repro.solvers.cache.FactorizationCache`; when
        given, the base LU is looked up / stored there so structurally
        identical solvers built in the same process share one
        factorization (the campaign worker pattern).
    symmetric:
        Factorize the base in SuperLU's symmetric mode (see
        :func:`~repro.solvers.cache.checked_splu`); only for bases known
        to be symmetric positive definite.
    backend:
        :class:`~repro.backends.ArrayBackend` (or registered name)
        carrying the blocked path's linear algebra: the base
        factorization/backsolve seam, the batched core solve, and the
        ``correction_mode`` / ``equivalence`` contract.  ``None``
        resolves the process default (``numpy`` -- the bitwise CPU
        reference -- unless ``REPRO_ARRAY_BACKEND`` overrides it).  The
        scalar :meth:`solve` path stays on the host under every
        backend; only :meth:`solve_batch` crosses the device boundary.
    """

    def __init__(self, base_matrix, update_vectors, cache=None,
                 symmetric=False, backend=None):
        self.backend = get_array_backend(backend)
        base_matrix = base_matrix.tocsc()
        update_vectors = np.asarray(update_vectors, dtype=float)
        if update_vectors.ndim != 2:
            raise SolverError("update_vectors must be a 2D (n, k) array")
        if update_vectors.shape[0] != base_matrix.shape[0]:
            raise SolverError(
                f"update vectors have {update_vectors.shape[0]} rows, matrix "
                f"is {base_matrix.shape[0]}x{base_matrix.shape[1]}"
            )
        self.rank = update_vectors.shape[1]
        self.update_vectors = update_vectors
        if cache is not None:
            self._handle = cache.factorize(
                base_matrix, symmetric=symmetric, backend=self.backend
            )
        else:
            self._handle = self.backend.factorize(
                base_matrix, symmetric=symmetric
            )
        self._lu = self._handle.lu
        # Precompute A0^-1 U and the capacitance-free core U^T A0^-1 U.
        # A rank-0 update (no wires) is a valid degenerate case: every
        # solve is then just the base LU solve.
        if self.rank:
            # One multi-RHS triangular sweep instead of k single solves.
            self._base_inverse_u = np.asarray(
                self._lu.solve(np.ascontiguousarray(update_vectors))
            )
        else:
            self._base_inverse_u = np.zeros((base_matrix.shape[0], 0))
        self._core = update_vectors.T @ self._base_inverse_u
        # Device mirrors of U and A0^-1 U, uploaded (and transfer-
        # counted) lazily on the first device-path blocked solve.
        self._device_ops = None

    @property
    def size(self):
        """Number of unknowns ``n`` of the base system."""
        return self.update_vectors.shape[0]

    def _check_rhs(self, rhs):
        """Validate an ``(n,)`` or ``(n, m)`` right-hand side."""
        rhs = np.asarray(rhs, dtype=float)
        if rhs.ndim not in (1, 2):
            raise SolverError(
                f"rhs must be a 1D (n,) vector or 2D (n, m) multi-RHS "
                f"block, got a {rhs.ndim}D array of shape {rhs.shape}"
            )
        if rhs.shape[0] != self.size:
            raise SolverError(
                f"rhs has {rhs.shape[0]} rows, the system has "
                f"{self.size} unknowns"
            )
        return rhs

    def solve(self, conductances, rhs):
        """Solve for the given per-stamp conductances ``g`` (length k).

        ``rhs`` is either one vector ``(n,)`` or a multi-RHS block
        ``(n, m)`` sharing the same conductances -- the solution has the
        same shape.  Zero conductances are supported (the corresponding
        stamp simply drops out); negative conductances are rejected as
        non-physical.
        """
        conductances = np.asarray(conductances, dtype=float).ravel()
        if conductances.size != self.rank:
            raise SolverError(
                f"expected {self.rank} conductances, got {conductances.size}"
            )
        if np.any(conductances < 0.0):
            raise SolverError("wire conductances must be non-negative")
        rhs = self._check_rhs(rhs)
        base_solution = self._lu.solve(rhs)

        active = conductances > 0.0
        if not np.any(active):
            return base_solution
        u_active = self.update_vectors[:, active]
        base_inv_u = self._base_inverse_u[:, active]
        core = self._core[np.ix_(active, active)].copy()
        core[np.diag_indices_from(core)] += 1.0 / conductances[active]
        try:
            coefficients = np.linalg.solve(core, u_active.T @ base_solution)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"Woodbury core solve failed: {exc}") from exc
        solution = base_solution - base_inv_u @ coefficients
        if not np.all(np.isfinite(solution)):
            raise SolverError("Woodbury solve produced non-finite values")
        return solution

    def solve_batch(self, conductances, rhs):
        """Sample-blocked solve: ``(S, k)`` conductances in one pass.

        Solves ``(A_base + U diag(g_s) U^T) x_s = b_s`` for every sample
        ``s`` of a block at once: one multi-RHS base backsolve over the
        whole ``(n, S)`` RHS block, then a stacked ``(S, k, k)`` core
        solve via :func:`numpy.linalg.solve` batching and a single
        BLAS-3 correction product -- instead of ``S`` independent
        :meth:`solve` calls.

        Parameters
        ----------
        conductances:
            ``(S, k)`` block of per-stamp conductances, one row per
            sample.
        rhs:
            Either an ``(n, S)`` block (one column per sample) or a
            single shared ``(n,)`` vector -- the campaign's electrical
            fast path drives every sample with the same reduced RHS, so
            the base backsolve collapses to one vector solve.

        Returns
        -------
        ``(n, S)`` solution block, column ``s`` for sample ``s``.  With a
        shared ``(n,)`` RHS, column ``s`` is bitwise identical to
        ``solve(conductances[s], rhs)``: the core solves are batched but
        per-matrix exact, and the rank-k corrections are applied
        column-wise on purpose -- ``A0^-1 b`` and the correction are
        orders of magnitude larger than their difference, so a blocked
        gemm's summation reorder would be amplified by the cancellation
        (measured ~1e-8 absolute on the paper's electrical system).
        With an ``(n, S)`` RHS block only the multi-RHS base backsolve
        (SuperLU's blocked supernodal kernels reorder sums for
        ``nrhs > 1``) separates a column from the per-sample result.
        """
        conductances = np.asarray(conductances, dtype=float)
        if conductances.ndim != 2:
            raise SolverError(
                f"conductances must be a 2D (S, k) block, got shape "
                f"{conductances.shape}"
            )
        num_samples, k = conductances.shape
        if k != self.rank:
            raise SolverError(
                f"expected {self.rank} conductances per sample, got {k}"
            )
        if np.any(conductances < 0.0):
            raise SolverError("wire conductances must be non-negative")
        rhs = self._check_rhs(rhs)
        shared_rhs = rhs.ndim == 1
        if not shared_rhs and rhs.shape[1] != num_samples:
            if rhs.shape[1] == 1:
                # A single column where a shared vector is meant is a
                # classic silent-broadcast hazard; name the fix.
                raise SolverError(
                    f"rhs block has 1 column for {num_samples} samples; "
                    f"pass a 1D (n,) vector to share one right-hand "
                    f"side across the block, or an (n, {num_samples}) "
                    f"block with one column per sample"
                )
            raise SolverError(
                f"rhs block has {rhs.shape[1]} columns for "
                f"{num_samples} samples"
            )
        homogeneous = (
            self.rank > 0
            and num_samples > 0
            and bool(np.all(conductances > 0.0))
        )
        if homogeneous and self.backend.correction_mode == "gemm":
            # Device backends (cupy, devicesim) take the gemm-ordered
            # path within their declared rtol equivalence tier; the
            # heterogeneous fallback below stays on the host.
            return self._solve_batch_device(
                conductances, rhs, shared_rhs, num_samples
            )
        base = self._lu.solve(np.ascontiguousarray(rhs))
        if shared_rhs:
            base_block = np.broadcast_to(
                base[:, None], (self.size, num_samples)
            )
        else:
            base_block = base

        telemetry.increment("solver.blocked_solves")
        if self.rank == 0 or not conductances.any():
            return np.array(base_block)
        if np.all(conductances > 0.0):
            # Homogeneous active set (the MC hot path: every wire
            # conducts): one stacked core solve over all samples.
            cores = np.repeat(self._core[None, :, :], num_samples, axis=0)
            diag = np.arange(self.rank)
            cores[:, diag, diag] += 1.0 / conductances
            if shared_rhs:
                rhs_core = np.broadcast_to(
                    self.update_vectors.T @ base,
                    (num_samples, self.rank),
                )
            else:
                # Column-wise gemvs, not one gemm: the per-sample path
                # reduces U^T b column by column and the ill-conditioned
                # core amplifies summation reorder (see the docstring).
                rhs_core = np.stack([
                    self.update_vectors.T @ np.ascontiguousarray(base[:, s])
                    for s in range(num_samples)
                ])
            try:
                coefficients = np.linalg.solve(
                    cores, rhs_core[..., None]
                )[..., 0]
            except np.linalg.LinAlgError as exc:
                raise SolverError(
                    f"Woodbury core solve failed: {exc}"
                ) from exc
            solution = np.empty((self.size, num_samples))
            for s in range(num_samples):
                # Per-column correction keeps the cancellation between
                # the base solution and the rank-k correction bitwise
                # faithful to :meth:`solve`.
                solution[:, s] = base_block[:, s] - (
                    self._base_inverse_u @ coefficients[s]
                )
        else:
            # Heterogeneous active sets (some samples drop stamps):
            # keep the shared base backsolve, apply the masked rank-k
            # correction per sample.
            solution = np.empty((self.size, num_samples))
            for s in range(num_samples):
                g = conductances[s]
                active = g > 0.0
                column = np.array(base_block[:, s])
                if np.any(active):
                    u_active = self.update_vectors[:, active]
                    core = self._core[np.ix_(active, active)].copy()
                    core[np.diag_indices_from(core)] += 1.0 / g[active]
                    try:
                        coefficients = np.linalg.solve(
                            core, u_active.T @ column
                        )
                    except np.linalg.LinAlgError as exc:
                        raise SolverError(
                            f"Woodbury core solve failed: {exc}"
                        ) from exc
                    column = column - (
                        self._base_inverse_u[:, active] @ coefficients
                    )
                solution[:, s] = column
        if not np.all(np.isfinite(solution)):
            raise SolverError("Woodbury solve produced non-finite values")
        return solution

    def _device_operators(self):
        """Upload U and A0^-1 U to the device once (counted transfers)."""
        if self._device_ops is None:
            self._device_ops = (
                self.backend.to_device(self.update_vectors),
                self.backend.to_device(self._base_inverse_u),
            )
        return self._device_ops

    def _solve_batch_device(self, conductances, rhs, shared_rhs,
                            num_samples):
        """The gemm-ordered blocked solve in the backend's memory space.

        Exactly the same algebra as the host path, but the corrections
        are one BLAS-3 product instead of per-column gemvs -- the
        natural device shape -- so results match the per-sample path
        within the backend's declared ``equivalence`` tier rather than
        bitwise.  Per call: one RHS upload, one cores upload (inside
        ``batched_core_solve``), one solution download, plus the
        one-time operator uploads -- every one accounted in
        ``solver.device_transfers``.
        """
        backend = self.backend
        rhs_device = backend.to_device(np.ascontiguousarray(rhs))
        base = self._handle.backsolve(rhs_device)
        telemetry.increment("solver.blocked_solves")
        u_device, base_inverse_u_device = self._device_operators()
        cores = np.repeat(self._core[None, :, :], num_samples, axis=0)
        diag = np.arange(self.rank)
        cores[:, diag, diag] += 1.0 / conductances
        if shared_rhs:
            rhs_core = backend.broadcast_rows(
                u_device.T @ base, num_samples
            )
            base_block = backend.broadcast_columns(base, num_samples)
        else:
            rhs_core = (u_device.T @ base).T
            base_block = base
        try:
            coefficients = backend.batched_core_solve(cores, rhs_core)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"Woodbury core solve failed: {exc}") from exc
        solution = backend.from_device(
            base_block - base_inverse_u_device @ coefficients.T
        )
        if not np.all(np.isfinite(solution)):
            raise SolverError("Woodbury solve produced non-finite values")
        return solution
