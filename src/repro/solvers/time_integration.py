"""Time discretization for the transient heat equation.

The paper uses the implicit Euler method (end of Section III-A) with 51
steps over 50 s (Table II).  :class:`ImplicitEuler` and the more general
:class:`ThetaMethod` advance a system of the form

``C dT/dt + K(T) T = q(T)``

with diagonal capacitance ``C``; the nonlinear dependence is resolved by a
caller-supplied assembly callback, so the steppers stay agnostic of the
physics.
"""

import numpy as np

from ..errors import SolverError


class TimeGrid:
    """Uniform time axis ``t_0 = 0 < t_1 < ... < t_N = end_time``.

    ``num_steps`` counts the *intervals*; the paper's "51 time steps" over
    50 s corresponds to 50 intervals plus the initial time, i.e. 51 stored
    time points -- we keep the paper's convention of counting points via
    :attr:`num_points`.
    """

    def __init__(self, end_time, num_steps):
        end_time = float(end_time)
        num_steps = int(num_steps)
        if end_time <= 0.0:
            raise SolverError(f"end_time must be positive, got {end_time!r}")
        if num_steps < 1:
            raise SolverError(f"num_steps must be >= 1, got {num_steps!r}")
        self.end_time = end_time
        self.num_steps = num_steps

    @property
    def dt(self):
        """Constant step size."""
        return self.end_time / self.num_steps

    @property
    def num_points(self):
        """Number of stored time points (``num_steps + 1``)."""
        return self.num_steps + 1

    @property
    def times(self):
        """All time points including t = 0."""
        return np.linspace(0.0, self.end_time, self.num_points)

    @classmethod
    def from_num_points(cls, end_time, num_points):
        """Build from a *point* count (Table II style: 51 points -> 50 steps)."""
        num_points = int(num_points)
        if num_points < 2:
            raise SolverError(f"need at least 2 time points, got {num_points}")
        return cls(end_time, num_points - 1)

    def __repr__(self):
        return (
            f"TimeGrid(end_time={self.end_time!r}, num_steps={self.num_steps}, "
            f"dt={self.dt!r})"
        )


class ThetaMethod:
    """One-step theta method for ``C dT/dt + K T = q``.

    ``theta = 1`` is implicit Euler (the paper's choice), ``theta = 0.5``
    is Crank-Nicolson.  The nonlinear right-hand side and matrix are
    evaluated at the new time level through the ``assemble`` callback, so a
    nonlinear inner loop wraps :meth:`step`.
    """

    def __init__(self, theta=1.0):
        theta = float(theta)
        if not 0.5 <= theta <= 1.0:
            raise SolverError(
                "theta must lie in [0.5, 1] for unconditional stability, "
                f"got {theta!r}"
            )
        self.theta = theta

    def step_matrix(self, capacitance_diagonal, stiffness, dt):
        """Left-hand operator ``C/dt + theta K``."""
        import scipy.sparse as sp

        capacitance_diagonal = np.asarray(capacitance_diagonal, dtype=float)
        return (
            sp.diags(capacitance_diagonal / dt) + self.theta * stiffness
        ).tocsr()

    def step_rhs(
        self,
        capacitance_diagonal,
        stiffness_old,
        temperatures_old,
        source_new,
        source_old,
        dt,
    ):
        """Right-hand side of one theta step.

        ``C/dt T_old - (1 - theta) K_old T_old + theta q_new + (1 - theta) q_old``.
        For implicit Euler the old-stiffness and old-source terms vanish.
        """
        capacitance_diagonal = np.asarray(capacitance_diagonal, dtype=float)
        temperatures_old = np.asarray(temperatures_old, dtype=float)
        rhs = capacitance_diagonal / dt * temperatures_old
        rhs = rhs + self.theta * np.asarray(source_new, dtype=float)
        if self.theta < 1.0:
            rhs = rhs - (1.0 - self.theta) * (stiffness_old @ temperatures_old)
            rhs = rhs + (1.0 - self.theta) * np.asarray(source_old, dtype=float)
        return rhs


class ImplicitEuler(ThetaMethod):
    """The paper's time discretization: backward Euler (theta = 1)."""

    def __init__(self):
        super().__init__(theta=1.0)
