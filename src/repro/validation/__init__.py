"""Model-vs-measurement comparison harness.

The paper's conclusion announces "a comparison to bonding wire
measurements" as future work.  This package provides the harness for that
comparison: a synthetic measurement generator (sensor sampling, noise,
offset -- standing in for a thermocouple/IR trace until real data exists)
and the metrics that quantify agreement, including the calibration of the
predicted Monte Carlo uncertainty band.
"""

from .comparison import (
    ComparisonReport,
    band_coverage,
    compare_traces,
    max_absolute_error,
    root_mean_square_error,
)
from .synthetic import SyntheticMeasurement, synthesize_measurement

__all__ = [
    "compare_traces",
    "ComparisonReport",
    "root_mean_square_error",
    "max_absolute_error",
    "band_coverage",
    "synthesize_measurement",
    "SyntheticMeasurement",
]
