"""Synthetic measurement traces from simulated temperature histories.

A real wire-temperature measurement differs from the simulated trace by

* sensor sampling (its own time base, usually coarser),
* additive noise (thermocouple/IR sensor noise),
* a calibration offset and gain error,
* a first-order sensor lag (the probe's own thermal time constant).

``synthesize_measurement`` applies all four with a seeded generator, so a
validation pipeline can be exercised end-to-end (and its metrics
unit-tested against known distortions) before physical data exists.
"""

import numpy as np

from ..errors import MeasurementError


class SyntheticMeasurement:
    """A sampled, noisy measurement trace."""

    def __init__(self, times, values, description=""):
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.times.shape != self.values.shape:
            raise MeasurementError("times and values must share a shape")
        if self.times.size < 2:
            raise MeasurementError("a measurement needs at least 2 samples")
        self.description = description

    def __repr__(self):
        return (
            f"SyntheticMeasurement({self.times.size} samples over "
            f"{self.times[-1] - self.times[0]:g} s, {self.description!r})"
        )


def _first_order_lag(times, values, time_constant):
    """Discrete first-order sensor response (exact exponential update)."""
    if time_constant <= 0.0:
        return values.copy()
    lagged = np.empty_like(values)
    lagged[0] = values[0]
    for index in range(1, values.size):
        dt = times[index] - times[index - 1]
        alpha = 1.0 - np.exp(-dt / time_constant)
        lagged[index] = lagged[index - 1] + alpha * (
            values[index] - lagged[index - 1]
        )
    return lagged


def synthesize_measurement(
    times,
    temperatures,
    sample_period=None,
    noise_std=0.5,
    offset=0.0,
    gain=1.0,
    sensor_time_constant=0.0,
    seed=0,
    description="synthetic",
):
    """Turn a simulated trace into a synthetic measurement.

    Parameters
    ----------
    times, temperatures:
        The simulated trace (dense time base).
    sample_period:
        Sensor sampling period [s]; ``None`` keeps the simulation base.
    noise_std:
        Additive Gaussian noise [K].
    offset, gain:
        Calibration error: ``measured = gain * true + offset``.
    sensor_time_constant:
        First-order probe lag [s] applied before sampling.
    seed:
        Noise seed (reproducible).
    """
    times = np.asarray(times, dtype=float)
    temperatures = np.asarray(temperatures, dtype=float)
    if times.shape != temperatures.shape:
        raise MeasurementError("times and temperatures must share a shape")
    if times.size < 2:
        raise MeasurementError("need at least 2 trace points")
    if noise_std < 0.0:
        raise MeasurementError("noise_std must be non-negative")

    lagged = _first_order_lag(times, temperatures, float(sensor_time_constant))

    if sample_period is None:
        sample_times = times.copy()
    else:
        sample_period = float(sample_period)
        if sample_period <= 0.0:
            raise MeasurementError("sample_period must be positive")
        sample_times = np.arange(times[0], times[-1] + 1e-12, sample_period)
    sampled = np.interp(sample_times, times, lagged)

    rng = np.random.default_rng(seed)
    noisy = float(gain) * sampled + float(offset)
    if noise_std > 0.0:
        noisy = noisy + rng.normal(0.0, noise_std, sampled.size)
    return SyntheticMeasurement(sample_times, noisy, description=description)
