"""Metrics comparing a simulated trace against a measurement.

Beyond point errors (RMSE, max error), the scientifically interesting
question for the paper's UQ pipeline is *calibration*: does the predicted
``E(t) +- k sigma(t)`` band actually contain the measured trace with the
advertised probability?  ``band_coverage`` answers that.
"""

import numpy as np

from ..errors import MeasurementError


def _align(model_times, model_values, measured_times):
    """Interpolate the model trace onto the measurement's time base."""
    model_times = np.asarray(model_times, dtype=float)
    model_values = np.asarray(model_values, dtype=float)
    measured_times = np.asarray(measured_times, dtype=float)
    if model_times.shape != model_values.shape:
        raise MeasurementError("model times and values must share a shape")
    if measured_times.min() < model_times.min() - 1e-12 or (
        measured_times.max() > model_times.max() + 1e-12
    ):
        raise MeasurementError(
            "measurement time base extends beyond the model trace"
        )
    return np.interp(measured_times, model_times, model_values)


def root_mean_square_error(model_times, model_values, measurement):
    """RMSE between the model and a measurement [same unit as values]."""
    aligned = _align(model_times, model_values, measurement.times)
    return float(np.sqrt(np.mean((aligned - measurement.values) ** 2)))


def max_absolute_error(model_times, model_values, measurement):
    """Maximum pointwise deviation."""
    aligned = _align(model_times, model_values, measurement.times)
    return float(np.max(np.abs(aligned - measurement.values)))


def band_coverage(model_times, mean_values, std_values, measurement,
                  multiple=2.0):
    """Fraction of measured samples inside ``mean +- multiple * std``.

    For a calibrated predictor and Gaussian errors, a 2-sigma band should
    cover ~95 % of samples; systematic model bias shows up as coverage far
    below the nominal value even when RMSE looks acceptable.
    """
    mean = _align(model_times, mean_values, measurement.times)
    std = _align(model_times, std_values, measurement.times)
    lower = mean - float(multiple) * std
    upper = mean + float(multiple) * std
    inside = (measurement.values >= lower) & (measurement.values <= upper)
    return float(np.mean(inside))


class ComparisonReport:
    """Bundle of all comparison metrics for one wire trace."""

    def __init__(self, rmse, max_error, bias, coverage_2sigma,
                 coverage_6sigma, label=""):
        self.rmse = rmse
        self.max_error = max_error
        #: Mean signed deviation (model minus measurement) [K].
        self.bias = bias
        self.coverage_2sigma = coverage_2sigma
        self.coverage_6sigma = coverage_6sigma
        self.label = label

    def acceptable(self, rmse_limit=5.0, coverage_floor=0.8):
        """Simple pass/fail: RMSE below limit and 2-sigma band honest."""
        return self.rmse <= rmse_limit and (
            self.coverage_2sigma >= coverage_floor
        )

    def __repr__(self):
        return (
            f"ComparisonReport({self.label or 'trace'}: "
            f"RMSE={self.rmse:.3f} K, max={self.max_error:.3f} K, "
            f"bias={self.bias:+.3f} K, "
            f"coverage 2s={self.coverage_2sigma:.2f} / "
            f"6s={self.coverage_6sigma:.2f})"
        )


def compare_traces(model_times, mean_values, std_values, measurement,
                   label=""):
    """Full comparison of a predicted (mean, std) trace vs. a measurement."""
    mean_values = np.asarray(mean_values, dtype=float)
    std_values = np.asarray(std_values, dtype=float)
    aligned = _align(model_times, mean_values, measurement.times)
    bias = float(np.mean(aligned - measurement.values))
    return ComparisonReport(
        rmse=root_mean_square_error(model_times, mean_values, measurement),
        max_error=max_absolute_error(model_times, mean_values, measurement),
        bias=bias,
        coverage_2sigma=band_coverage(
            model_times, mean_values, std_values, measurement, 2.0
        ),
        coverage_6sigma=band_coverage(
            model_times, mean_values, std_values, measurement, 6.0
        ),
        label=label,
    )
