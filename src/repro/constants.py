"""Physical constants and reference values used throughout the library.

All quantities are in SI units unless stated otherwise.  The values mirror
those used in the paper (Casper et al., DATE 2016): the Stefan-Boltzmann
constant enters the radiative boundary condition, and ``T_REFERENCE`` is the
300 K reference at which Table I of the paper states the material properties.
"""

#: Stefan-Boltzmann constant [W / m^2 / K^4].
STEFAN_BOLTZMANN = 5.670374419e-8

#: Reference temperature for material properties [K] (Table I of the paper).
T_REFERENCE = 300.0

#: Ambient temperature used in the paper's study [K] (Table II).
T_AMBIENT_DEFAULT = 300.0

#: Critical (failure) temperature of the wire surroundings [K] (Section V-D).
T_CRITICAL_DEFAULT = 523.0

#: Absolute zero in kelvin; temperatures below this are rejected as invalid.
T_ABSOLUTE_ZERO = 0.0

#: Default heat transfer coefficient [W / m^2 / K] (Table II).
HEAT_TRANSFER_COEFFICIENT_DEFAULT = 25.0

#: Default emissivity (dimensionless) (Table II).
EMISSIVITY_DEFAULT = 0.2475

#: Temperature coefficient of resistivity for annealed copper [1/K].
ALPHA_COPPER = 3.93e-3

#: Electrical conductivity of copper at 300 K [S/m] (Table I).
SIGMA_COPPER_300K = 5.80e7

#: Thermal conductivity of copper at 300 K [W/K/m] (Table I).
LAMBDA_COPPER_300K = 398.0

#: Thermal conductivity of epoxy resin [W/K/m] (Table I).
LAMBDA_EPOXY = 0.87

#: Electrical conductivity of epoxy resin [S/m] (Table I).
SIGMA_EPOXY = 1.0e-6
