"""Lumped electrothermal network (circuit) substrate.

The bonding wire model of the paper is a field-*circuit* coupling: each
wire is a two-terminal network element stamped into the field matrices.
This package provides a small standalone nodal-analysis solver for such
networks.  It serves two purposes:

* cross-verification: a wire chain solved as a pure network must agree
  with the same chain stamped into a (trivial) field problem,
* standalone studies: the analytic wire models can be compared against
  a discrete N-segment network without running a 3D field solve.
"""

from .netlist import Conductance, CurrentSource, Netlist, NodalSolution

__all__ = ["Netlist", "Conductance", "CurrentSource", "NodalSolution"]
