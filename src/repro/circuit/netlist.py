"""Minimal nodal analysis for conductance networks.

Supports named nodes, two-terminal conductances (temperature-controlled if
desired), nodal current injections and fixed-potential (Dirichlet) nodes.
Solving assembles the standard nodal conductance matrix ``sum g P P^T`` --
the same stamps the field coupling uses -- and eliminates the fixed nodes.

The same class doubles as a *thermal* network solver: conductances become
thermal conductances [W/K], potentials temperatures [K] and current sources
heat flows [W].
"""

import numpy as np
import scipy.sparse as sp

from ..errors import CircuitError


class Conductance:
    """Two-terminal conductance element ``g`` between nodes ``a`` and ``b``.

    ``value`` is either a number [S or W/K] or a callable ``g(state)``
    evaluated with the controlling state (e.g. element temperature) at
    solve time.
    """

    def __init__(self, node_a, node_b, value, name=""):
        if node_a == node_b:
            raise CircuitError("conductance must connect two distinct nodes")
        self.node_a = node_a
        self.node_b = node_b
        self.value = value
        self.name = name

    def conductance(self, state=None):
        """Numeric conductance for the given controlling state."""
        if callable(self.value):
            result = float(self.value(state))
        else:
            result = float(self.value)
        if result < 0.0:
            raise CircuitError(
                f"conductance {self.name!r} evaluated to negative value "
                f"{result!r}"
            )
        return result


class CurrentSource:
    """Current (or heat flow) injected into one node."""

    def __init__(self, node, value, name=""):
        self.node = node
        self.value = float(value)
        self.name = name


class NodalSolution:
    """Solved node potentials plus element bookkeeping."""

    def __init__(self, potentials_by_node, element_currents, element_powers):
        self.potentials = potentials_by_node
        self.element_currents = element_currents
        self.element_powers = element_powers

    def potential(self, node):
        """Potential (or temperature) of one node."""
        if node not in self.potentials:
            raise CircuitError(f"unknown node {node!r}")
        return self.potentials[node]

    def total_power(self):
        """Sum of element dissipations [W]."""
        return float(sum(self.element_powers.values()))


class Netlist:
    """A conductance network with fixed-potential nodes.

    Nodes are created implicitly by the elements that reference them; any
    hashable can serve as a node name.
    """

    def __init__(self):
        self._conductances = []
        self._sources = []
        self._fixed = {}

    def add_conductance(self, node_a, node_b, value, name=""):
        """Add a conductance element and return it."""
        element = Conductance(node_a, node_b, value, name=name)
        self._conductances.append(element)
        return element

    def add_resistor(self, node_a, node_b, resistance, name=""):
        """Convenience: add a resistor as its reciprocal conductance."""
        resistance = float(resistance)
        if resistance <= 0.0:
            raise CircuitError(f"resistance must be positive, got {resistance!r}")
        return self.add_conductance(node_a, node_b, 1.0 / resistance, name=name)

    def add_current_source(self, node, value, name=""):
        """Inject ``value`` amperes (or watts) into ``node``."""
        source = CurrentSource(node, value, name=name)
        self._sources.append(source)
        return source

    def fix_potential(self, node, value):
        """Pin a node to a fixed potential (voltage source to ground)."""
        value = float(value)
        if node in self._fixed and self._fixed[node] != value:
            raise CircuitError(
                f"node {node!r} already fixed to {self._fixed[node]!r}"
            )
        self._fixed[node] = value

    def nodes(self):
        """All nodes referenced by elements, in deterministic order."""
        seen = {}
        for element in self._conductances:
            seen.setdefault(element.node_a, None)
            seen.setdefault(element.node_b, None)
        for source in self._sources:
            seen.setdefault(source.node, None)
        for node in self._fixed:
            seen.setdefault(node, None)
        return list(seen)

    def solve(self, state=None):
        """Solve the network; returns a :class:`NodalSolution`.

        ``state`` is forwarded to callable conductances.  Raises
        :class:`CircuitError` when no potential is fixed (floating network)
        or the reduced matrix is singular (disconnected islands).
        """
        nodes = self.nodes()
        if not nodes:
            raise CircuitError("empty netlist")
        if not self._fixed:
            raise CircuitError(
                "no fixed potential; nodal analysis needs a reference"
            )
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)

        rows, cols, vals = [], [], []
        values = {}
        for element in self._conductances:
            g = element.conductance(state)
            values[id(element)] = g
            a, b = index[element.node_a], index[element.node_b]
            rows.extend([a, a, b, b])
            cols.extend([a, b, a, b])
            vals.extend([g, -g, -g, g])
        matrix = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

        rhs = np.zeros(n)
        for source in self._sources:
            rhs[index[source.node]] += source.value

        fixed_idx = np.asarray(
            sorted(index[node] for node in self._fixed), dtype=np.int64
        )
        fixed_vals = np.asarray(
            [self._fixed[nodes[i]] for i in fixed_idx], dtype=float
        )
        mask = np.ones(n, dtype=bool)
        mask[fixed_idx] = False
        free = np.nonzero(mask)[0]

        solution = np.empty(n)
        solution[fixed_idx] = fixed_vals
        if free.size:
            a_ff = matrix[free][:, free].tocsc()
            a_fc = matrix[free][:, fixed_idx]
            reduced_rhs = rhs[free] - a_fc @ fixed_vals
            try:
                import warnings

                with warnings.catch_warnings():
                    # A singular matrix is reported through the non-finite
                    # solution check below; the warning is redundant noise.
                    warnings.simplefilter(
                        "ignore", sp.linalg.MatrixRankWarning
                    )
                    free_solution = sp.linalg.spsolve(a_ff, reduced_rhs)
            except RuntimeError as exc:
                raise CircuitError(f"singular network: {exc}") from exc
            free_solution = np.atleast_1d(free_solution)
            if not np.all(np.isfinite(free_solution)):
                raise CircuitError(
                    "singular network (non-finite solution); check for "
                    "floating islands"
                )
            solution[free] = free_solution

        potentials = {node: float(solution[index[node]]) for node in nodes}
        currents = {}
        powers = {}
        for element in self._conductances:
            g = values[id(element)]
            drop = (
                potentials[element.node_a] - potentials[element.node_b]
            )
            key = element.name or f"g{len(currents)}"
            currents[key] = g * drop
            powers[key] = g * drop * drop
        return NodalSolution(potentials, currents, powers)
