"""Light-weight unit helpers.

The library works internally in SI units.  These helpers exist so that user
facing code (examples, package descriptions) can state dimensions in the
units the paper uses (millimetres, micrometres, millivolts) without magic
factors scattered around, and so that physically impossible inputs fail
early with a clear message.
"""

from .constants import T_ABSOLUTE_ZERO
from .errors import ReproError

MM = 1.0e-3
UM = 1.0e-6
MV = 1.0e-3


def mm(value):
    """Convert millimetres to metres."""
    return float(value) * MM


def um(value):
    """Convert micrometres to metres."""
    return float(value) * UM


def mv(value):
    """Convert millivolts to volts."""
    return float(value) * MV


def celsius_to_kelvin(value):
    """Convert a temperature in degrees Celsius to kelvin."""
    return float(value) + 273.15


def kelvin_to_celsius(value):
    """Convert a temperature in kelvin to degrees Celsius."""
    return float(value) - 273.15


def require_positive(name, value):
    """Return ``value`` as ``float``; raise :class:`ReproError` unless > 0."""
    value = float(value)
    if not value > 0.0:
        raise ReproError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(name, value):
    """Return ``value`` as ``float``; raise :class:`ReproError` unless >= 0."""
    value = float(value)
    if value < 0.0:
        raise ReproError(f"{name} must be non-negative, got {value!r}")
    return value


def require_temperature(name, value):
    """Return ``value`` as ``float``; raise unless above absolute zero."""
    value = float(value)
    if not value > T_ABSOLUTE_ZERO:
        raise ReproError(
            f"{name} must be a physical temperature above {T_ABSOLUTE_ZERO} K, "
            f"got {value!r}"
        )
    return value
