"""Cell-wise material assignment (the FIT staircase approximation).

Each primary cell is filled with exactly one homogeneous material
(Section III-A of the paper: "each primary cell is assumed to consist of a
homogeneous material").  A :class:`MaterialField` stores one material index
per cell and evaluates the temperature-dependent properties for all cells
at once.
"""

import numpy as np

from ..errors import AssemblyError, MaterialError
from ..materials.base import Material


class MaterialField:
    """Material indices on the cells of a tensor grid.

    Parameters
    ----------
    grid:
        The primary :class:`~repro.grid.tensor_grid.TensorGrid`.
    background:
        The :class:`~repro.materials.base.Material` filling every cell that
        is not claimed later via :meth:`fill_box` / :meth:`fill_cells`.
    """

    def __init__(self, grid, background):
        if not isinstance(background, Material):
            raise MaterialError(
                f"background must be a Material, got {type(background).__name__}"
            )
        self.grid = grid
        self.materials = [background]
        self.cell_material = np.zeros(grid.num_cells, dtype=np.int32)

    def _material_index(self, material):
        for index, known in enumerate(self.materials):
            if known is material or known == material:
                return index
        self.materials.append(material)
        return len(self.materials) - 1

    def fill_cells(self, cell_indices, material):
        """Assign ``material`` to the cells with the given flat indices."""
        cell_indices = np.asarray(cell_indices, dtype=np.int64)
        if cell_indices.size == 0:
            return
        if np.any(cell_indices < 0) or np.any(cell_indices >= self.grid.num_cells):
            raise AssemblyError("cell index out of range in fill_cells")
        self.cell_material[cell_indices] = self._material_index(material)

    def fill_box(self, box, material):
        """Assign ``material`` to every cell whose center is inside ``box``.

        ``box = ((x0, x1), (y0, y1), (z0, z1))``.  Returns the number of
        cells claimed so callers can detect boxes that fell between grid
        lines (zero cells claimed almost always indicates a meshing bug).
        """
        from ..grid.indexing import GridIndexing

        indexing = GridIndexing(self.grid)
        cells = indexing.cells_in_box(box)
        self.fill_cells(cells, material)
        return int(cells.size)

    # ------------------------------------------------------------------
    # Property evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, getter, cell_temperatures):
        values = np.empty(self.grid.num_cells)
        for index, material in enumerate(self.materials):
            mask = self.cell_material == index
            if not np.any(mask):
                continue
            if cell_temperatures is None:
                values[mask] = getter(material)()
            else:
                values[mask] = getter(material)(cell_temperatures[mask])
        return values

    def sigma_cells(self, cell_temperatures=None):
        """Electrical conductivity per cell [S/m] at the given temperatures."""
        return self._evaluate(
            lambda m: m.electrical_conductivity, cell_temperatures
        )

    def lambda_cells(self, cell_temperatures=None):
        """Thermal conductivity per cell [W/K/m]."""
        return self._evaluate(lambda m: m.thermal_conductivity, cell_temperatures)

    def rhoc_cells(self):
        """Volumetric heat capacity per cell [J/K/m^3] (T independent)."""
        return self._evaluate(lambda m: m.volumetric_heat_capacity, None)

    def epsilon_cells(self):
        """Absolute permittivity per cell [F/m] (electroquasistatics)."""
        return self._evaluate(lambda m: m.permittivity, None)

    def material_names(self):
        """Names of all registered materials, in index order."""
        return [material.name for material in self.materials]

    def volume_fractions(self):
        """Mapping material name -> fraction of the total volume it fills."""
        volumes = self.grid.cell_volumes()
        total = float(np.sum(volumes))
        fractions = {}
        for index, material in enumerate(self.materials):
            mask = self.cell_material == index
            fractions[material.name] = float(np.sum(volumes[mask])) / total
        return fractions

    def frozen(self, temperature):
        """Copy of this field with every material frozen at ``temperature``.

        Used by the nonlinearity ablation (temperature feedback off).
        """
        clone = MaterialField(self.grid, self.materials[0].frozen(temperature))
        clone.materials = [m.frozen(temperature) for m in self.materials]
        clone.cell_material = self.cell_material.copy()
        return clone

    def __repr__(self):
        return (
            f"MaterialField(cells={self.grid.num_cells}, "
            f"materials={self.material_names()!r})"
        )
