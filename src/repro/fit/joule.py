"""Joule heating: the one-way power bridge from electrics to heat.

Following Section III-A of the paper, the power density in each primary
cell is ``Q_el,k = sigma_k E_k . E_k`` with the cell-centred field
reconstructed from the edge voltages; the node (dual cell) powers follow
by conservative volume lumping.
"""

import numpy as np


def joule_cell_power_density(discretization, potentials, cell_temperatures=None):
    """Cell-wise Joule power density ``sigma_k |E_k|^2`` [W/m^3]."""
    ex, ey, ez = discretization.cell_field_components(potentials)
    sigma = discretization.materials.sigma_cells(cell_temperatures)
    return sigma * (ex * ex + ey * ey + ez * ez)


def joule_node_power(discretization, potentials, cell_temperatures=None):
    """Joule power lumped to nodes [W]; sums to the total dissipation.

    This is the discrete ``Q_el`` entering the right-hand side of the heat
    equation (4) of the paper.
    """
    density = joule_cell_power_density(
        discretization, potentials, cell_temperatures
    )
    return discretization.node_power_from_cells(density)


def total_joule_power(discretization, potentials, cell_temperatures=None):
    """Total dissipated field power [W] (integral of the density)."""
    density = joule_cell_power_density(
        discretization, potentials, cell_temperatures
    )
    return float(np.dot(density, discretization.cell_volumes))


def exact_discrete_power(discretization, potentials, cell_temperatures=None):
    """Energy-exact dissipation ``e^T M_sigma e`` [W].

    Used by tests to bound the error of the cell-reconstruction shortcut:
    both expressions agree on uniform fields and converge to each other
    under refinement.
    """
    from .material_matrices import conductance_diagonal

    potentials = np.asarray(potentials, dtype=float)
    sigma = discretization.materials.sigma_cells(cell_temperatures)
    diag = conductance_diagonal(discretization.dual, sigma)
    voltages = -(discretization.gradient @ potentials)
    return float(np.dot(voltages, diag * voltages))
