"""Diagonal FIT material matrices (Section III-A of the paper).

For a mutually orthogonal grid pair the material matrices are diagonal:

* ``M_sigma[i, i] = sigma_i * A_dual_i / l_i`` on primary edges,
* ``M_lambda[i, i] = lambda_i * A_dual_i / l_i`` on primary edges,
* ``M_rhoc[j, j] = rhoc_j * V_dual_j`` on primary nodes / dual cells,

where the per-edge conductivities are area-weighted averages of the cells
touching the edge's dual facet and the per-node heat capacities are
volume-weighted averages of the cells touching the node's dual cell.
"""

import numpy as np
import scipy.sparse as sp

from ..grid.operators import edge_lengths


def averaged_edge_values(dual_geometry, cell_values):
    """Area-weighted average of a cell quantity onto every primary edge.

    Returns the vector ``sigma_edge * A_dual`` (i.e. already multiplied by
    the dual facet area, which is what the conductance needs).
    """
    w_x, w_y, w_z = dual_geometry.facet_weight_operators()
    return np.concatenate(
        [w_x @ cell_values, w_y @ cell_values, w_z @ cell_values]
    )


def conductance_diagonal(dual_geometry, cell_values):
    """Per-edge conductance diagonal ``value_i * A_dual_i / l_i``."""
    weighted = averaged_edge_values(dual_geometry, cell_values)
    lengths = edge_lengths(dual_geometry.grid)
    return weighted / lengths


def electrical_conductance_diagonal(dual_geometry, material_field,
                                    cell_temperatures=None):
    """Diagonal of ``M_sigma(T)`` [S] for the given cell temperatures."""
    sigma = material_field.sigma_cells(cell_temperatures)
    return conductance_diagonal(dual_geometry, sigma)


def thermal_conductance_diagonal(dual_geometry, material_field,
                                 cell_temperatures=None):
    """Diagonal of ``M_lambda(T)`` [W/K] for the given cell temperatures."""
    lam = material_field.lambda_cells(cell_temperatures)
    return conductance_diagonal(dual_geometry, lam)


def thermal_capacitance_diagonal(dual_geometry, material_field):
    """Diagonal of ``M_rhoc`` [J/K]: dual volumes times averaged rho*c.

    Computed as ``O @ rhoc_cells`` with the node-cell overlap operator, so
    the total heat capacity of the model equals the exact volume integral.
    """
    overlap = dual_geometry.node_cell_overlap()
    return overlap @ material_field.rhoc_cells()


def diagonal_matrix(diagonal):
    """Sparse diagonal matrix from a 1D array."""
    return sp.diags(np.asarray(diagonal, dtype=float), format="csr")
