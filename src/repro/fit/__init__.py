"""Finite Integration Technique discretization (Section III of the paper).

This package turns a :class:`~repro.grid.tensor_grid.TensorGrid` plus a
cell-wise material assignment into the discrete operators of eqs. (3)-(4):

* diagonal material matrices ``M_sigma(T)``, ``M_lambda(T)`` (edge based)
  and ``M_rhoc`` (dual-cell based) -- :mod:`repro.fit.material_matrices`,
* stiffness assembly ``K = S_dual M S_dual^T`` -- :mod:`repro.fit.assembly`,
* boundary conditions: Dirichlet (PEC contacts), adiabatic Neumann,
  convection and radiation -- :mod:`repro.fit.boundary`,
* the Joule heating bridge from the electrical to the thermal side --
  :mod:`repro.fit.joule`.
"""

from .assembly import FITDiscretization
from .boundary import (
    ConvectionBC,
    DirichletBC,
    RadiationBC,
    ReducedSystem,
    apply_dirichlet,
)
from .joule import joule_cell_power_density, joule_node_power
from .material_field import MaterialField
from .material_matrices import (
    electrical_conductance_diagonal,
    thermal_capacitance_diagonal,
    thermal_conductance_diagonal,
)

__all__ = [
    "FITDiscretization",
    "MaterialField",
    "DirichletBC",
    "ConvectionBC",
    "RadiationBC",
    "ReducedSystem",
    "apply_dirichlet",
    "electrical_conductance_diagonal",
    "thermal_conductance_diagonal",
    "thermal_capacitance_diagonal",
    "joule_cell_power_density",
    "joule_node_power",
]
