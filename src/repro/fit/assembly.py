"""System assembly: the discretization object tying everything together.

:class:`FITDiscretization` caches the topological operators and metric
weights of a grid so that the per-iteration work of the nonlinear coupled
loop reduces to two sparse matrix-vector products (property averaging) and
one triple product (stiffness).
"""

import numpy as np
import scipy.sparse as sp

from ..errors import AssemblyError
from ..grid.dual import DualGeometry
from ..grid.operators import build_gradient, directional_gradients, edge_lengths
from .material_matrices import conductance_diagonal


class FITDiscretization:
    """Precomputed FIT operators for one grid + material field.

    Parameters
    ----------
    grid:
        The primary :class:`~repro.grid.tensor_grid.TensorGrid`.
    material_field:
        The :class:`~repro.fit.material_field.MaterialField` with the cell
        material assignment.
    """

    def __init__(self, grid, material_field):
        if material_field.grid is not grid and material_field.grid != grid:
            raise AssemblyError("material field was built for a different grid")
        self.grid = grid
        self.materials = material_field
        self.dual = DualGeometry(grid)
        self.gradient = build_gradient(grid)
        self.gradient_blocks = directional_gradients(grid)
        self.edge_lengths = edge_lengths(grid)
        self.cell_volumes = grid.cell_volumes()
        self._overlap = self.dual.node_cell_overlap()
        # Row-normalized transpose of the overlap operator: averages a node
        # quantity to cells with weights proportional to the shared volume.
        overlap_t = self._overlap.T.tocsr()
        inv_cell_volumes = 1.0 / self.cell_volumes
        self._node_to_cell = sp.diags(inv_cell_volumes) @ overlap_t

    # ------------------------------------------------------------------
    # Field transfer operators
    # ------------------------------------------------------------------
    def cell_temperatures(self, node_temperatures):
        """Volume-weighted average of node temperatures onto cells."""
        node_temperatures = np.asarray(node_temperatures, dtype=float)
        if node_temperatures.size != self.grid.num_nodes:
            raise AssemblyError(
                f"expected {self.grid.num_nodes} node temperatures, got "
                f"{node_temperatures.size}"
            )
        return self._node_to_cell @ node_temperatures

    def node_power_from_cells(self, cell_power_density):
        """Conservative lumping of a cell power density [W/m^3] to nodes [W].

        ``P_node = O @ q_cells`` with the overlap-volume operator, so the
        total lumped power equals ``sum(q_k * V_k)`` exactly.
        """
        return self._overlap @ np.asarray(cell_power_density, dtype=float)

    # ------------------------------------------------------------------
    # Matrix assembly
    # ------------------------------------------------------------------
    def stiffness_from_diagonal(self, edge_diagonal):
        """Assemble ``K = G^T diag(m) G`` from a per-edge conductance diagonal.

        With the duality ``S_dual = -G^T`` this equals the paper's
        ``S_dual M S_dual^T`` and is symmetric positive semi-definite.
        """
        edge_diagonal = np.asarray(edge_diagonal, dtype=float)
        if edge_diagonal.size != self.grid.num_edges:
            raise AssemblyError(
                f"expected {self.grid.num_edges} edge values, got "
                f"{edge_diagonal.size}"
            )
        weighted = self.gradient.multiply(edge_diagonal[:, None]).tocsr()
        return (self.gradient.T @ weighted).tocsr()

    def electrical_stiffness(self, node_temperatures=None):
        """``K_el(T) = S_dual M_sigma(T) S_dual^T`` [S]."""
        cell_t = None
        if node_temperatures is not None:
            cell_t = self.cell_temperatures(node_temperatures)
        sigma = self.materials.sigma_cells(cell_t)
        return self.stiffness_from_diagonal(
            conductance_diagonal(self.dual, sigma)
        )

    def thermal_stiffness(self, node_temperatures=None):
        """``K_th(T) = S_dual M_lambda(T) S_dual^T`` [W/K]."""
        cell_t = None
        if node_temperatures is not None:
            cell_t = self.cell_temperatures(node_temperatures)
        lam = self.materials.lambda_cells(cell_t)
        return self.stiffness_from_diagonal(
            conductance_diagonal(self.dual, lam)
        )

    def thermal_capacitance(self):
        """Diagonal heat capacitance vector ``M_rhoc`` [J/K] (per node)."""
        return self._overlap @ self.materials.rhoc_cells()

    # ------------------------------------------------------------------
    # Electric field reconstruction (needed by the Joule term)
    # ------------------------------------------------------------------
    def cell_field_components(self, potentials):
        """Cell-centred electric field components ``(Ex, Ey, Ez)`` [V/m].

        Voltages along primary edges are ``e = -G Phi``; each Cartesian
        component at a cell center is the mean of the four parallel edge
        fields ``e / l`` of that cell.

        ``potentials`` is one field ``(num_nodes,)`` or a sample block
        ``(num_nodes, S)``; the components come back as ``(num_cells,)``
        or ``(num_cells, S)`` accordingly (the trailing sample axis rides
        through the edge averaging untouched).
        """
        potentials = np.asarray(potentials, dtype=float)
        gx, gy, gz = self.gradient_blocks
        nx, ny, nz = self.grid.shape
        n_ex, n_ey, n_ez = self.grid.num_edges_per_direction
        lengths = self.edge_lengths
        trailing = potentials.shape[1:]
        length_shape = (-1,) + (1,) * len(trailing)
        ex_edges = -(gx @ potentials) / lengths[:n_ex].reshape(length_shape)
        ey_edges = (
            -(gy @ potentials)
            / lengths[n_ex:n_ex + n_ey].reshape(length_shape)
        )
        ez_edges = (
            -(gz @ potentials)
            / lengths[n_ex + n_ey:].reshape(length_shape)
        )

        ex = ex_edges.reshape((nz, ny, nx - 1) + trailing)
        ey = ey_edges.reshape((nz, ny - 1, nx) + trailing)
        ez = ez_edges.reshape((nz - 1, ny, nx) + trailing)
        # Average the 4 parallel edges of each cell.
        ex_cells = 0.25 * (
            ex[:-1, :-1, :] + ex[:-1, 1:, :] + ex[1:, :-1, :] + ex[1:, 1:, :]
        )
        ey_cells = 0.25 * (
            ey[:-1, :, :-1] + ey[:-1, :, 1:] + ey[1:, :, :-1] + ey[1:, :, 1:]
        )
        ez_cells = 0.25 * (
            ez[:, :-1, :-1] + ez[:, :-1, 1:] + ez[:, 1:, :-1] + ez[:, 1:, 1:]
        )
        cell_shape = (-1,) + trailing
        return (
            ex_cells.reshape(cell_shape),
            ey_cells.reshape(cell_shape),
            ez_cells.reshape(cell_shape),
        )

    def __repr__(self):
        return (
            f"FITDiscretization(nodes={self.grid.num_nodes}, "
            f"edges={self.grid.num_edges}, cells={self.grid.num_cells})"
        )
