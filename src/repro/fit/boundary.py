"""Boundary conditions for the electrical and thermal sub-problems.

The paper's model uses

* **Dirichlet** conditions on the PEC contact nodes (electrical) -- handled
  by row/column elimination that keeps the reduced system symmetric,
* homogeneous **Neumann** (no flux) everywhere else -- the natural boundary
  condition of the FIT assembly, nothing to do,
* **convection** ``q = h (T - T_inf)`` and **radiation**
  ``q = eps sigma_SB (T^4 - T_inf^4)`` on all thermal boundaries
  (Section V-B: h = 25 W/m^2/K, eps = 0.2475).

Convection is linear and contributes ``h A`` to the matrix diagonal and
``h A T_inf`` to the right-hand side.  Radiation is linearized around the
latest temperature iterate ``T*``:

``T^4 ~ 4 T*^3 T - 3 T*^4``  =>  diagonal ``4 eps sigma A T*^3`` and
right-hand side ``eps sigma A (3 T*^4 + T_inf^4)``.
"""

import numpy as np

from ..constants import STEFAN_BOLTZMANN
from ..errors import BoundaryConditionError

ALL_FACES = ("x-", "x+", "y-", "y+", "z-", "z+")


class DirichletBC:
    """Fixed value (potential or temperature) at a set of nodes."""

    def __init__(self, nodes, value, label=""):
        nodes = np.asarray(nodes, dtype=np.int64).ravel()
        if nodes.size == 0:
            raise BoundaryConditionError(
                f"Dirichlet BC {label!r} selects no nodes"
            )
        if np.unique(nodes).size != nodes.size:
            nodes = np.unique(nodes)
        self.nodes = nodes
        self.value = float(value)
        self.label = label

    def __repr__(self):
        return (
            f"DirichletBC(nodes={self.nodes.size}, value={self.value!r}, "
            f"label={self.label!r})"
        )


class ReducedSystem:
    """A Dirichlet-reduced linear system ``A_ff x_f = b_f``.

    Attributes
    ----------
    matrix, rhs:
        The reduced operator and right-hand side over the free nodes.
    free, fixed:
        Flat node index arrays.
    fixed_values:
        Values imposed on the fixed nodes (aligned with ``fixed``).
    """

    def __init__(self, matrix, rhs, free, fixed, fixed_values, size):
        self.matrix = matrix
        self.rhs = rhs
        self.free = free
        self.fixed = fixed
        self.fixed_values = fixed_values
        self.size = size

    def expand(self, free_solution):
        """Scatter a free-node solution back to the full node vector."""
        full = np.empty(self.size)
        full[self.free] = free_solution
        full[self.fixed] = self.fixed_values
        return full

    def restrict(self, full_vector):
        """Extract the free-node part of a full node vector."""
        return np.asarray(full_vector)[self.free]


def combine_dirichlet(bcs, size):
    """Merge Dirichlet BCs into ``(fixed_nodes, fixed_values)``.

    Overlapping node sets with conflicting values raise; overlapping sets
    with identical values are merged silently (adjacent PEC pads may share
    corner nodes).
    """
    value_by_node = {}
    for bc in bcs:
        for node in bc.nodes:
            node = int(node)
            if node < 0 or node >= size:
                raise BoundaryConditionError(
                    f"Dirichlet node {node} out of range for {size} nodes"
                )
            if node in value_by_node and value_by_node[node] != bc.value:
                raise BoundaryConditionError(
                    f"conflicting Dirichlet values at node {node}: "
                    f"{value_by_node[node]} vs {bc.value}"
                )
            value_by_node[node] = bc.value
    if not value_by_node:
        return np.empty(0, dtype=np.int64), np.empty(0)
    fixed = np.asarray(sorted(value_by_node), dtype=np.int64)
    values = np.asarray([value_by_node[int(n)] for n in fixed])
    return fixed, values


def apply_dirichlet(matrix, rhs, bcs):
    """Eliminate Dirichlet nodes from ``matrix @ x = rhs``.

    Returns a :class:`ReducedSystem`.  The reduced matrix is the free-free
    block; the right-hand side is corrected by ``-A_fc x_c`` so symmetry
    (and positive definiteness, if present) is preserved.
    """
    size = matrix.shape[0]
    rhs = np.asarray(rhs, dtype=float)
    if rhs.size != size:
        raise BoundaryConditionError(
            f"rhs has {rhs.size} entries, matrix is {size}x{size}"
        )
    fixed, fixed_values = combine_dirichlet(bcs, size)
    mask = np.ones(size, dtype=bool)
    mask[fixed] = False
    free = np.nonzero(mask)[0]
    matrix = matrix.tocsr()
    a_ff = matrix[free][:, free]
    a_fc = matrix[free][:, fixed]
    reduced_rhs = rhs[free] - a_fc @ fixed_values
    return ReducedSystem(a_ff.tocsr(), reduced_rhs, free, fixed, fixed_values, size)


class ConvectionBC:
    """Convective heat exchange ``q = h (T - T_inf)`` on boundary faces."""

    def __init__(self, heat_transfer_coefficient, t_ambient, faces=ALL_FACES):
        if heat_transfer_coefficient < 0.0:
            raise BoundaryConditionError(
                "heat transfer coefficient must be non-negative, got "
                f"{heat_transfer_coefficient!r}"
            )
        self.h = float(heat_transfer_coefficient)
        self.t_ambient = float(t_ambient)
        self.faces = tuple(faces)
        for face in self.faces:
            if face not in ALL_FACES:
                raise BoundaryConditionError(f"unknown face {face!r}")

    def node_conductances(self, dual_geometry):
        """Per-node convective conductance ``h A`` [W/K] (dense vector)."""
        total = np.zeros(dual_geometry.grid.num_nodes)
        for face in self.faces:
            nodes, areas = dual_geometry.boundary_areas(face)
            np.add.at(total, nodes, self.h * areas)
        return total

    def contributions(self, dual_geometry):
        """``(diagonal, rhs)`` pair to add to the thermal system.

        Moving ``h A T`` to the left and ``h A T_inf`` to the right makes
        the scheme unconditionally stable for this term.
        """
        conductance = self.node_conductances(dual_geometry)
        return conductance, conductance * self.t_ambient

    def power(self, dual_geometry, temperatures):
        """Instantaneous convective power leaving the model [W]."""
        conductance = self.node_conductances(dual_geometry)
        return float(np.sum(conductance * (temperatures - self.t_ambient)))


class RadiationBC:
    """Radiative heat exchange ``q = eps sigma_SB (T^4 - T_inf^4)``."""

    def __init__(self, emissivity, t_ambient, faces=ALL_FACES):
        if not 0.0 <= float(emissivity) <= 1.0:
            raise BoundaryConditionError(
                f"emissivity must be in [0, 1], got {emissivity!r}"
            )
        self.emissivity = float(emissivity)
        self.t_ambient = float(t_ambient)
        self.faces = tuple(faces)
        for face in self.faces:
            if face not in ALL_FACES:
                raise BoundaryConditionError(f"unknown face {face!r}")

    def node_coefficients(self, dual_geometry):
        """Per-node radiative coefficient ``eps sigma_SB A`` [W/K^4]."""
        total = np.zeros(dual_geometry.grid.num_nodes)
        for face in self.faces:
            nodes, areas = dual_geometry.boundary_areas(face)
            np.add.at(total, nodes, self.emissivity * STEFAN_BOLTZMANN * areas)
        return total

    def linearized_contributions(self, dual_geometry, t_star):
        """``(diagonal, rhs)`` from linearizing ``T^4`` around ``t_star``.

        ``T^4 ~ 4 T*^3 T - 3 T*^4`` gives diagonal ``4 c T*^3`` and
        right-hand side ``c (3 T*^4 + T_inf^4)`` with ``c = eps sigma A``.
        Repeating the linearization inside the nonlinear loop recovers the
        exact quartic law at convergence.
        """
        t_star = np.asarray(t_star, dtype=float)
        coefficient = self.node_coefficients(dual_geometry)
        diagonal = 4.0 * coefficient * t_star**3
        rhs = coefficient * (3.0 * t_star**4 + self.t_ambient**4)
        return diagonal, rhs

    def power(self, dual_geometry, temperatures):
        """Instantaneous radiative power leaving the model [W]."""
        temperatures = np.asarray(temperatures, dtype=float)
        coefficient = self.node_coefficients(dual_geometry)
        return float(
            np.sum(coefficient * (temperatures**4 - self.t_ambient**4))
        )
