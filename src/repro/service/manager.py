"""The job manager: bounded concurrent campaigns over the runner.

:class:`JobManager` turns the library's blocking
:func:`~repro.campaign.runner.run_campaign` into a managed job: a
dispatcher thread claims queued jobs (FIFO) while fewer than
``max_workers`` are active and runs each in its own thread through the
normal runner path -- so every job inherits checkpointing, telemetry,
retry/quarantine and kill/resume semantics unchanged, and in-process
executor backends (``serial`` / ``thread``) of concurrent jobs share
the process-level :func:`~repro.solvers.cache.shared_cache`
automatically: two campaigns over the same scenario factorize each
system matrix once.

Restart recovery is the queue's: :meth:`start` requeues jobs left
``running`` by a killed service, and :meth:`_run_job` resumes any job
whose store already exists via
:func:`~repro.campaign.runner.resume_campaign` -- producing results
bit-identical to an uninterrupted run (the runner's contract).
"""

import os
import threading
import time
import traceback

from ..campaign.runner import resume_campaign, run_campaign
from ..campaign.spec import CampaignSpec
from ..errors import ReproError, ServiceError
from ..solvers.cache import shared_cache
from .jobs import JobQueue
from .namespace import DEFAULT_TENANT, Namespace
from .status import store_status

#: Job-option keys a submission may set (runner keyword overrides).
JOB_OPTIONS = ("executor", "workers", "retry", "retry_quarantined",
               "telemetry", "array_backend")


class JobManager:
    """Queue-backed scheduler of concurrent campaigns under one root.

    Parameters
    ----------
    root:
        Service root directory: holds ``queue.json`` and the
        ``stores/<tenant>/<job-id>/`` namespace.
    max_workers:
        Concurrent job budget (default 2): how many campaigns run at
        once.  Each job's own executor parallelism multiplies on top,
        so the total worker budget is ``max_workers x workers``.
    executor / workers / retry / telemetry / array_backend:
        Default runner arguments for every job; a job's submitted
        ``options`` override them per job.  ``array_backend`` names the
        :mod:`repro.backends` substrate the job's solvers run on; the
        runner validates it before any worker spawns and pins it into
        the job's spec.
    poll_s:
        Dispatcher idle poll interval.
    """

    def __init__(self, root, max_workers=2, executor=None, workers=None,
                 retry=None, telemetry=None, array_backend=None,
                 poll_s=0.05):
        self.root = os.path.abspath(str(root))
        os.makedirs(self.root, exist_ok=True)
        self.namespace = Namespace(self.root)
        self.queue = JobQueue(self.root)
        self.max_workers = int(max_workers)
        if self.max_workers < 1:
            raise ServiceError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        self.defaults = {
            "executor": executor,
            "workers": workers,
            "retry": retry,
            "telemetry": telemetry,
            "array_backend": array_backend,
        }
        self.poll_s = float(poll_s)
        self._dispatcher = None
        self._stop = threading.Event()
        self._active = {}
        self._active_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, recover=True):
        """Start the dispatcher (idempotent); returns recovered jobs.

        With ``recover`` (default), jobs left ``running`` by a killed
        service go back to the queue first -- their stores' checkpoints
        make the re-run a resume, not a restart.
        """
        recovered = self.queue.recover_running() if recover else []
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._stop.clear()
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="repro-service-dispatcher",
                daemon=True,
            )
            self._dispatcher.start()
        return recovered

    def stop(self, wait=True):
        """Stop claiming new jobs; optionally wait for active ones."""
        self._stop.set()
        dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join()
            self._dispatcher = None
        if wait:
            self.join()

    def join(self, timeout=None):
        """Block until every active job thread has returned."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._active_lock:
                threads = list(self._active.values())
            if not threads:
                return True
            for thread in threads:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                thread.join(remaining)
                if deadline is not None and time.monotonic() >= deadline:
                    with self._active_lock:
                        return not self._active
        # unreachable

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop(wait=True)
        return False

    # ------------------------------------------------------------------
    # Submission / queries
    # ------------------------------------------------------------------
    def submit(self, spec, tenant=DEFAULT_TENANT, options=None):
        """Validate and enqueue a campaign; returns the job record.

        ``options`` may override the manager's default runner arguments
        for this job only (keys in :data:`JOB_OPTIONS`); anything else
        is rejected here, at the boundary.
        """
        options = dict(options or {})
        unknown = sorted(set(options) - set(JOB_OPTIONS))
        if unknown:
            raise ServiceError(
                f"unknown job option(s) {unknown}; supported: "
                f"{sorted(JOB_OPTIONS)}"
            )
        return self.queue.submit(spec, tenant=tenant, options=options)

    def job(self, job_id):
        return self.queue.get(job_id)

    def jobs(self, tenant=None, states=None):
        return self.queue.jobs(tenant=tenant, states=states)

    def cancel(self, job_id):
        return self.queue.cancel(job_id)

    def store_for(self, job):
        """The job's :class:`ArtifactStore` (from its recorded relative
        path when set, else the namespace convention)."""
        if job.store:
            from ..campaign.store import ArtifactStore

            return ArtifactStore(self.namespace.resolve(job.store))
        return self.namespace.store(job.tenant, job.job_id)

    def status(self, job_id):
        """Job record + live store status, one JSON-serializable dict.

        This is what ``GET /jobs/<id>`` returns: queue-level lifecycle
        (state, timestamps, resumes, error) merged with the store-level
        snapshot (frontier, quarantine, heartbeat, partial moments) --
        all from small checkpoint files, never chunk data.
        """
        job = self.queue.get(job_id)
        status = store_status(self.store_for(job))
        status.update({
            "job_id": job.job_id,
            "tenant": job.tenant,
            "spec_hash": job.spec_hash,
            "job_state": job.state,
            "resumes": job.resumes,
            "submitted_walltime": job.submitted_walltime,
            "started_walltime": job.started_walltime,
            "finished_walltime": job.finished_walltime,
        })
        if job.error:
            status["error"] = job.error
        # The job lifecycle state is authoritative for the top-level
        # ``state`` the service reports; the store view stays available
        # as ``store_state``.
        status["store_state"] = status["state"]
        status["state"] = job.state
        return status

    def watch(self, job_id, interval_s=0.2, timeout_s=None):
        """Yield status snapshots until the job reaches a terminal state.

        Emits an initial snapshot immediately, then one per *change*
        (polling every ``interval_s``), and always emits the terminal
        snapshot last.  Raises :class:`ServiceError` on timeout.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        previous = None
        while True:
            status = self.status(job_id)
            snapshot = {
                key: value for key, value in status.items()
                if not key.endswith("walltime")
            }
            if snapshot != previous:
                previous = snapshot
                yield status
            if status["state"] in ("completed", "failed", "cancelled"):
                return
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"watch of job {job_id!r} timed out after "
                    f"{timeout_s}s (state {status['state']!r})"
                )
            time.sleep(interval_s)

    def result(self, job_id):
        """The completed job's summary dict (the store's summary.json).

        Raises :class:`ServiceError` while the job is not ``completed``
        -- poll :meth:`status` or iterate :meth:`watch` first.
        """
        job = self.queue.get(job_id)
        if job.state != "completed":
            raise ServiceError(
                f"job {job_id!r} is {job.state!r}"
                + (f": {job.error}" if job.error else "")
                + "; no result available"
            )
        return self.store_for(job).read_summary()

    def stats(self):
        """Service-level counters: queue states, active threads, shared
        factorization-cache hits."""
        counts = {state: 0 for state in
                  ("queued", "running", "completed", "failed", "cancelled")}
        for job in self.queue.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        with self._active_lock:
            active = len(self._active)
        return {
            "jobs": counts,
            "active_workers": active,
            "max_workers": self.max_workers,
            "factorization_cache": shared_cache().stats(),
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self):
        while not self._stop.is_set():
            with self._active_lock:
                active = len(self._active)
            if active >= self.max_workers:
                self._stop.wait(self.poll_s)
                continue
            job = self.queue.claim_next()
            if job is None:
                self._stop.wait(self.poll_s)
                continue
            thread = threading.Thread(
                target=self._run_job,
                args=(job,),
                name=f"repro-job-{job.job_id}",
                daemon=True,
            )
            with self._active_lock:
                self._active[job.job_id] = thread
            thread.start()

    def _runner_arguments(self, job):
        merged = dict(self.defaults)
        merged.update(job.options)
        executor = merged.pop("executor", None)
        workers = merged.pop("workers", None)
        if workers is not None and executor in (None, "serial"):
            # A worker count needs a parallel backend; default to the
            # in-process thread pool so the shared cache still applies.
            executor = "thread"
        from ..campaign.executor import make_executor

        merged["executor"] = make_executor(executor, workers)
        return {key: value for key, value in merged.items()
                if value is not None}

    def _run_job(self, job):
        try:
            store = self.namespace.store(job.tenant, job.job_id)
            self.queue.mark_store(
                job.job_id, self.namespace.relative_path(store.path)
            )
            self.namespace.write_link(store, job)
            arguments = self._runner_arguments(job)
            if store.exists():
                resume_campaign(store, **arguments)
            else:
                spec = CampaignSpec.from_dict(job.spec)
                run_campaign(spec, store=store, **arguments)
            self.queue.complete(job.job_id)
        except ReproError as exc:
            self.queue.fail(job.job_id, exc)
        except Exception as exc:  # never let a job kill the dispatcher
            self.queue.fail(
                job.job_id,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            )
        finally:
            with self._active_lock:
                self._active.pop(job.job_id, None)

    def __repr__(self):
        return (
            f"JobManager({self.root!r}, max_workers={self.max_workers}, "
            f"jobs={len(self.queue)})"
        )
