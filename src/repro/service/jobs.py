"""Persistent job queue: records, lifecycle states, crash-safe storage.

A job is one submitted campaign spec plus its lifecycle bookkeeping.
The state machine is deliberately small (see DESIGN.md "Service
layer")::

    queued --> running --> completed
       |          |
       |          +------> failed
       +--> cancelled      (running jobs recover to queued on restart)

The queue persists every mutation atomically to ``queue.json`` under
the service root (same temp-file + ``os.replace`` discipline as the
artifact store), so a killed service loses at most the in-memory view
-- on restart, :meth:`JobQueue.recover_running` moves jobs that were
``running`` at kill time back to ``queued`` (incrementing their
``resumes`` counter) and the manager resumes them through the normal
``resume_campaign`` path from their store checkpoints.

Job ids are ``job-<serial>-<spec-hash-prefix>``: the monotone serial
gives submission order, the spec-hash prefix links the id to *what*
was submitted (full hash in the record and the store's ``job.json``).
"""

import hashlib
import json
import os
import threading
import time

from ..campaign.spec import CampaignSpec
from ..campaign.store import ArtifactStore
from ..errors import ServiceError
from .namespace import DEFAULT_TENANT, validate_name

#: Lifecycle states a job record can be in.
STATES = ("queued", "running", "completed", "failed", "cancelled")

#: States in which a job will never run again.
TERMINAL_STATES = ("completed", "failed", "cancelled")

_QUEUE_NAME = "queue.json"
_QUEUE_FORMAT = 1


def spec_hash(spec):
    """Content hash of a campaign spec (sha256 of its canonical JSON).

    The canonical form is ``CampaignSpec.to_dict`` serialized with
    sorted keys, so two submissions of semantically identical specs
    hash identically regardless of field order in the submitted JSON.
    """
    if isinstance(spec, CampaignSpec):
        spec = spec.to_dict()
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class JobRecord:
    """One job's full persistent state (a plain mutable record)."""

    def __init__(self, job_id, tenant, spec, spec_hash, state="queued",
                 options=None, store=None, error=None, resumes=0,
                 submitted_walltime=None, started_walltime=None,
                 finished_walltime=None):
        self.job_id = job_id
        self.tenant = tenant
        self.spec = spec
        self.spec_hash = spec_hash
        self.state = state
        self.options = dict(options or {})
        #: Store directory relative to the service root.
        self.store = store
        self.error = error
        self.resumes = int(resumes)
        self.submitted_walltime = submitted_walltime
        self.started_walltime = started_walltime
        self.finished_walltime = finished_walltime

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    def to_dict(self):
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": self.spec,
            "spec_hash": self.spec_hash,
            "state": self.state,
            "options": self.options,
            "store": self.store,
            "error": self.error,
            "resumes": self.resumes,
            "submitted_walltime": self.submitted_walltime,
            "started_walltime": self.started_walltime,
            "finished_walltime": self.finished_walltime,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**{
            key: data.get(key) for key in (
                "job_id", "tenant", "spec", "spec_hash", "state",
                "options", "store", "error", "submitted_walltime",
                "started_walltime", "finished_walltime",
            )
        }, resumes=data.get("resumes", 0))

    def __repr__(self):
        return f"JobRecord({self.job_id!r}, {self.state})"


class JobQueue:
    """Thread-safe, crash-safe FIFO of :class:`JobRecord` objects.

    The in-memory dict is authoritative; every mutation persists the
    whole queue atomically before returning, so readers of
    ``queue.json`` (a restarted service, an operator's editor) always
    see a consistent snapshot and a kill can never tear the file.
    """

    def __init__(self, root):
        self.root = os.path.abspath(str(root))
        self.path = os.path.join(self.root, _QUEUE_NAME)
        self._lock = threading.Lock()
        self._jobs = {}
        self._next_serial = 1
        self._load()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self):
        if not os.path.isfile(self.path):
            return
        payload = ArtifactStore._read_json(self.path)
        version = payload.get("format_version")
        if version != _QUEUE_FORMAT:
            raise ServiceError(
                f"queue format version {version!r} is not supported "
                f"(expected {_QUEUE_FORMAT})"
            )
        self._next_serial = int(payload.get("next_serial", 1))
        for record in payload.get("jobs", []):
            job = JobRecord.from_dict(record)
            self._jobs[job.job_id] = job

    def _persist(self):
        # Caller holds self._lock.
        ArtifactStore._write_json(self.path, {
            "format_version": _QUEUE_FORMAT,
            "next_serial": self._next_serial,
            "jobs": [job.to_dict() for job in self._jobs.values()],
        })

    # ------------------------------------------------------------------
    # Submission / lookup
    # ------------------------------------------------------------------
    def submit(self, spec, tenant=DEFAULT_TENANT, options=None):
        """Enqueue a campaign spec; returns the new :class:`JobRecord`.

        ``spec`` may be a :class:`CampaignSpec` or its dict form (it is
        validated either way, so a malformed submission fails here --
        at the API boundary -- not inside a worker thread).  ``options``
        are per-job runner keyword overrides (``executor``, ``workers``,
        ``retry``, ...), persisted with the record.
        """
        validate_name(tenant, "tenant")
        if isinstance(spec, CampaignSpec):
            spec_dict = spec.to_dict()
        else:
            spec_dict = CampaignSpec.from_dict(spec).to_dict()
        digest = spec_hash(spec_dict)
        with self._lock:
            serial = self._next_serial
            self._next_serial += 1
            job = JobRecord(
                job_id=f"job-{serial:04d}-{digest[:8]}",
                tenant=tenant,
                spec=spec_dict,
                spec_hash=digest,
                options=options,
                submitted_walltime=time.time(),
            )
            self._jobs[job.job_id] = job
            self._persist()
        return job

    def get(self, job_id):
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def jobs(self, tenant=None, states=None):
        """Snapshot of records, submission-ordered; optionally filtered."""
        with self._lock:
            jobs = list(self._jobs.values())
        if tenant is not None:
            jobs = [job for job in jobs if job.tenant == tenant]
        if states is not None:
            states = set(states)
            jobs = [job for job in jobs if job.state in states]
        return jobs

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def _transition(self, job_id, from_states, to_state, **fields):
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job id {job_id!r}")
            if job.state not in from_states:
                raise ServiceError(
                    f"job {job_id!r} is {job.state!r}, cannot move to "
                    f"{to_state!r} (needs one of {sorted(from_states)})"
                )
            job.state = to_state
            for key, value in fields.items():
                setattr(job, key, value)
            self._persist()
        return job

    def claim_next(self):
        """Oldest queued job -> ``running``; ``None`` when queue is idle."""
        with self._lock:
            for job in self._jobs.values():  # insertion == submission order
                if job.state == "queued":
                    job.state = "running"
                    job.started_walltime = time.time()
                    self._persist()
                    return job
        return None

    def mark_store(self, job_id, store_relpath):
        """Record the job's store directory (relative to service root)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job id {job_id!r}")
            job.store = store_relpath
            self._persist()
        return job

    def complete(self, job_id):
        return self._transition(
            job_id, ("running",), "completed",
            finished_walltime=time.time(), error=None,
        )

    def fail(self, job_id, error):
        return self._transition(
            job_id, ("running",), "failed",
            finished_walltime=time.time(), error=str(error),
        )

    def cancel(self, job_id):
        """Cancel a *queued* job (running jobs cannot be cancelled --
        the runner owns the store lock until it returns)."""
        return self._transition(
            job_id, ("queued",), "cancelled", finished_walltime=time.time(),
        )

    def recover_running(self):
        """Requeue jobs left ``running`` by a killed service.

        Called once at service start, before the dispatcher: every
        ``running`` record must be an orphan (its runner died with the
        previous process), so it goes back to ``queued`` with
        ``resumes`` incremented and will resume from its store
        checkpoints.  Returns the recovered records.
        """
        recovered = []
        with self._lock:
            for job in self._jobs.values():
                if job.state == "running":
                    job.state = "queued"
                    job.resumes += 1
                    recovered.append(job)
            if recovered:
                self._persist()
        return recovered

    def __len__(self):
        with self._lock:
            return len(self._jobs)

    def __repr__(self):
        with self._lock:
            counts = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return f"JobQueue({self.path!r}, {counts})"
