"""Machine-readable store status from checkpoints, never chunk replays.

The one read path behind both the service's ``GET /jobs/<id>`` endpoint
and ``repro-campaign status`` / ``report --partial``: everything comes
from the store's *small* files -- ``manifest.json``, chunk file *names*,
the checkpointed ``reducer_state.npz`` (one small npz holding the
reduction state, not the samples), ``quarantine.json`` and
``telemetry/progress.json``.  No chunk ``.npz`` is ever opened, so
status on a million-sample campaign costs one directory listing plus a
few kilobyte-sized reads -- cheap enough to poll per second while the
campaign runs.

:func:`partial_summary` is the ``report --partial`` synthesis: the
persisted ``summary.json`` when the campaign completed, otherwise the
same scalar rows computed from the checkpointed partial moments with a
``"partial": True`` marker.
"""

import os

import numpy as np

from ..campaign.store import ArtifactStore
from ..errors import CampaignError
from ..uq.statistics import RunningStatistics

#: Store lifecycle states reported by :func:`store_status`.
STATES = ("empty", "in_progress", "complete")


def _as_store(store):
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    return store


def partial_moments(store):
    """Partial Monte Carlo moments from the reducer-state checkpoint.

    Restores the checkpointed :class:`RunningStatistics` of a
    ``"moments"`` reduction and returns its scalar summary rows
    (``count`` samples folded so far, mean/std/error extrema), or
    ``None`` when the store has no checkpoint yet, the reducer is not
    ``"moments"``, or nothing has been folded.
    """
    store = _as_store(store)
    restored = store.read_reducer_state()
    if restored is None:
        return None
    meta, arrays = restored
    reducer = meta.get("reducer") or {}
    if reducer.get("kind") != "moments":
        return None
    statistics = RunningStatistics().load_state_dict({
        key: value for key, value in arrays.items()
        if key != "__parameters__"
    })
    if statistics.count == 0:
        return None
    moments = {
        "count": int(statistics.count),
        "mean_max": float(np.max(statistics.mean)),
        "mean_min": float(np.min(statistics.mean)),
        "argmax_output": int(np.argmax(statistics.mean)),
    }
    if statistics.count > 1:
        moments["std_max"] = float(np.max(statistics.std()))
        moments["error_mc_max"] = float(np.max(statistics.standard_error()))
    return moments


def frontier(store):
    """The folded-chunk frontier: ``next_chunk`` of the checkpointed
    reduction (0 when no reducer state exists)."""
    store = _as_store(store)
    restored = store.read_reducer_state()
    if restored is None:
        return 0
    meta, _ = restored
    return int(meta.get("next_chunk", 0))


def store_status(store):
    """One JSON-serializable status snapshot of a campaign store.

    Works on any store directory -- empty, mid-run, killed, or complete
    -- and degrades gracefully: fields whose source files do not exist
    yet are simply absent.  The ``state`` field is one of
    :data:`STATES`; ``progress`` is the runner's latest
    ``telemetry/progress.json`` heartbeat; ``moments`` the partial
    statistics (see :func:`partial_moments`); ``summary`` the final
    summary once complete.
    """
    store = _as_store(store)
    status = {
        "event": "status",
        "store": os.path.abspath(store.path),
    }
    if not store.exists():
        status["state"] = "empty"
        return status
    spec = store.load_spec()
    completed = store.completed_chunks(validate=False)
    quarantine = store.read_quarantine()
    complete = os.path.isfile(store.summary_path)
    status.update({
        "state": "complete" if complete else "in_progress",
        "campaign": spec.name,
        "kind": spec.kind,
        "problem": spec.scenario.problem,
        "qoi": spec.scenario.qoi,
        "num_samples": int(spec.num_samples),
        "total_chunks": int(spec.num_chunks),
        "chunks_completed": len(completed),
        "chunks_folded": frontier(store),
        "quarantined_chunks": len(quarantine),
        "quarantined_samples": int(sum(
            len(record.get("indices", ()))
            for record in quarantine.values()
        )),
        "locked": os.path.exists(store.lock_path),
    })
    owner = store.lock_owner()
    if owner is not None:
        status["lock_owner"] = owner
    progress = store.read_progress()
    if progress is not None:
        status["progress"] = progress
    moments = partial_moments(store)
    if moments is not None:
        status["moments"] = moments
    if complete:
        status["summary"] = store.read_summary()
    return status


def partial_summary(store):
    """A report-ready summary for a store in *any* state.

    The persisted ``summary.json`` when the campaign completed;
    otherwise a synthesized partial summary (``"partial": True``) from
    the reducer-state checkpoint, quarantine records and progress
    heartbeat.  Raises :class:`CampaignError` only for a store with no
    manifest at all.
    """
    store = _as_store(store)
    if not store.exists():
        raise CampaignError(
            f"no campaign manifest at {store.path!r}; nothing to report"
        )
    if os.path.isfile(store.summary_path):
        return store.read_summary()
    status = store_status(store)
    spec = store.load_spec()
    summary = {
        "partial": True,
        "campaign": spec.name,
        "problem": spec.scenario.problem,
        "qoi": spec.scenario.qoi,
        "num_chunks": int(spec.num_chunks),
        "chunks_completed": status["chunks_completed"],
        "chunks_folded": status["chunks_folded"],
    }
    moments = status.get("moments")
    if moments is not None:
        summary["num_samples"] = moments["count"]
        for key in ("mean_max", "mean_min", "std_max", "error_mc_max",
                    "argmax_output"):
            if key in moments:
                summary[key] = moments[key]
    else:
        summary["num_samples"] = 0
    if status["quarantined_chunks"]:
        summary["num_quarantined_chunks"] = status["quarantined_chunks"]
        summary["num_quarantined_samples"] = status["quarantined_samples"]
    progress = status.get("progress")
    if progress is not None:
        summary["rate_chunks_per_s"] = progress.get("rate_per_s")
    return summary
