"""Stdlib-only HTTP front end over :class:`JobManager`.

Built on ``http.server.ThreadingHTTPServer`` -- no new runtime
dependency -- with a deliberately small JSON API:

====================  ==================================================
``POST /jobs``        Submit ``{"spec": {...}, "tenant": ..,
                      "options": {..}}`` -> ``201`` + the job record.
``GET /jobs``         List job records (``?tenant=``, ``?state=``).
``GET /jobs/<id>``    One status snapshot (queue + store view).
``GET /jobs/<id>/result``  The summary once completed (else ``409``).
``GET /jobs/<id>/watch``   Server-sent JSONL stream
                      (``application/x-ndjson``): one status object per
                      line on every change, closing after the terminal
                      one.
``DELETE /jobs/<id>`` Cancel a queued job.
``GET /healthz``      Liveness + service stats.
====================  ==================================================

Streaming uses newline-delimited JSON rather than SSE framing: every
line is a complete status object, so ``curl -N``-style consumers and
the ``repro-campaign watch`` client need no event-stream parser.

:class:`CampaignService` bundles a manager with a server, binds
(``port=0`` picks a free port -- the resolved address is in
``service.address``) and serves on daemon threads; it is both the
programmatic embedding point and what ``repro-campaign serve`` runs.
"""

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..errors import ReproError, ServiceError
from .manager import JobManager

_MAX_BODY = 8 * 1024 * 1024  # a campaign spec is small; 8 MiB is generous


class _Handler(BaseHTTPRequestHandler):
    """Routes one request to the shared :class:`JobManager`."""

    #: Quiet by default; ``CampaignService(verbose=True)`` restores the
    #: stdlib per-request log lines.
    verbose = False
    protocol_version = "HTTP/1.1"

    @property
    def manager(self):
        return self.server.manager

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if self.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(self, payload, code=200):
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message, code):
        self._send_json({"error": str(message)}, code=code)

    def _read_body_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("request body must be a JSON object")
        if length > _MAX_BODY:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ServiceError(
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return payload

    def _route(self):
        """Split the request path -> (segments, query dict)."""
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        return segments, query

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------
    def do_GET(self):  # noqa: N802 (stdlib naming)
        segments, query = self._route()
        try:
            if segments == ["healthz"]:
                self._send_json({
                    "status": "ok",
                    "version": __version__,
                    **self.manager.stats(),
                })
            elif segments == ["jobs"]:
                jobs = self.manager.jobs(
                    tenant=query.get("tenant"),
                    states=(
                        [query["state"]] if "state" in query else None
                    ),
                )
                self._send_json({"jobs": [job.to_dict() for job in jobs]})
            elif len(segments) == 2 and segments[0] == "jobs":
                self._send_json(self.manager.status(segments[1]))
            elif (len(segments) == 3 and segments[0] == "jobs"
                    and segments[2] == "result"):
                job_id = segments[1]
                job = self.manager.job(job_id)
                if job.state != "completed":
                    self._send_error_json(
                        f"job {job_id!r} is {job.state!r}; no result yet",
                        409,
                    )
                    return
                self._send_json(self.manager.result(job_id))
            elif (len(segments) == 3 and segments[0] == "jobs"
                    and segments[2] == "watch"):
                self._watch(segments[1], query)
            else:
                self._send_error_json(f"no route for {self.path!r}", 404)
        except ServiceError as exc:
            self._send_error_json(exc, 404 if "unknown job" in str(exc)
                                  else 400)
        except ReproError as exc:
            self._send_error_json(exc, 400)

    def do_POST(self):  # noqa: N802
        segments, _ = self._route()
        try:
            if segments == ["jobs"]:
                payload = self._read_body_json()
                spec = payload.get("spec")
                if not isinstance(spec, dict):
                    raise ServiceError(
                        "submission needs a 'spec' object (the campaign "
                        "spec dict)"
                    )
                job = self.manager.submit(
                    spec,
                    tenant=payload.get("tenant", "default"),
                    options=payload.get("options"),
                )
                self._send_json(job.to_dict(), code=201)
            else:
                self._send_error_json(f"no route for {self.path!r}", 404)
        except ReproError as exc:
            self._send_error_json(exc, 400)

    def do_DELETE(self):  # noqa: N802
        segments, _ = self._route()
        try:
            if len(segments) == 2 and segments[0] == "jobs":
                job = self.manager.cancel(segments[1])
                self._send_json(job.to_dict())
            else:
                self._send_error_json(f"no route for {self.path!r}", 404)
        except ServiceError as exc:
            self._send_error_json(exc, 404 if "unknown job" in str(exc)
                                  else 409)
        except ReproError as exc:
            self._send_error_json(exc, 400)

    # ------------------------------------------------------------------
    # Streaming watch
    # ------------------------------------------------------------------
    def _watch(self, job_id, query):
        try:
            interval = float(query.get("interval", 0.2))
            timeout = query.get("timeout")
            timeout = float(timeout) if timeout is not None else None
        except ValueError as exc:
            raise ServiceError(f"bad watch query parameter: {exc}")
        self.manager.job(job_id)  # 404 before committing to a stream
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        # Chunked would need framing; closing the connection delimits
        # the stream instead, exactly like a JSONL file ends.
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for status in self.manager.watch(
                    job_id, interval_s=interval, timeout_s=timeout):
                line = json.dumps(status, sort_keys=True) + "\n"
                self.wfile.write(line.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up; the job keeps running
        except ServiceError:
            pass  # watch timeout: the stream just ends
        self.close_connection = True


class CampaignService:
    """A :class:`JobManager` plus its HTTP server, ready to serve.

    ``port=0`` (default) binds any free port; the resolved ``(host,
    port)`` is available as :attr:`address` immediately after
    construction -- subprocess harnesses print/parse it instead of
    racing for a fixed port.
    """

    def __init__(self, root, host="127.0.0.1", port=0, manager=None,
                 verbose=False, **manager_options):
        self.manager = (
            manager if manager is not None
            else JobManager(root, **manager_options)
        )
        handler = type("_BoundHandler", (_Handler,), {"verbose": verbose})
        self.httpd = ThreadingHTTPServer((host, int(port)), handler)
        self.httpd.daemon_threads = True
        self.httpd.manager = self.manager
        self._thread = None

    @property
    def address(self):
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self):
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self, recover=True):
        """Start manager + server threads; returns recovered jobs."""
        recovered = self.manager.start(recover=recover)
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return recovered

    def stop(self, wait=True):
        """Shut the server down, then the manager (waiting for jobs)."""
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.httpd.server_close()
        self.manager.stop(wait=wait)

    def serve_forever(self):
        """Blocking convenience for ``repro-campaign serve``."""
        self.start()
        try:
            self._thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop(wait=True)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop(wait=True)
        return False

    def __repr__(self):
        return f"CampaignService({self.url!r}, {self.manager!r})"


# ----------------------------------------------------------------------
# Client helpers (urllib, shared by the CLI / smoke / tests)
# ----------------------------------------------------------------------
def _request(url, method="GET", payload=None, timeout=30.0):
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        try:
            detail = json.loads(detail).get("error", detail)
        except json.JSONDecodeError:
            pass
        raise ServiceError(
            f"{method} {url} failed with HTTP {exc.code}: {detail}"
        ) from exc
    except urllib.error.URLError as exc:
        raise ServiceError(f"cannot reach service at {url}: {exc.reason}") \
            from exc


def submit_job(url, spec, tenant="default", options=None, timeout=30.0):
    """POST a campaign spec to a running service; returns the job dict."""
    from ..campaign.spec import CampaignSpec

    if isinstance(spec, CampaignSpec):
        spec = spec.to_dict()
    payload = {"spec": spec, "tenant": tenant}
    if options:
        payload["options"] = dict(options)
    return _request(
        url.rstrip("/") + "/jobs", "POST", payload, timeout=timeout
    )


def job_status(url, job_id, timeout=30.0):
    """GET one status snapshot of a job."""
    return _request(
        f"{url.rstrip('/')}/jobs/{job_id}", timeout=timeout
    )


def job_result(url, job_id, timeout=30.0):
    """GET the summary of a completed job (raises while incomplete)."""
    return _request(
        f"{url.rstrip('/')}/jobs/{job_id}/result", timeout=timeout
    )


def watch_job(url, job_id, interval_s=0.2, timeout=None):
    """Iterate the server-sent JSONL status stream of one job.

    Yields status dicts as the server emits them; the generator ends
    when the job reaches a terminal state (the server closes the
    stream).  ``timeout`` bounds the *total* watch via the server-side
    parameter, and the socket read timeout is set slightly above it.
    """
    query = f"?interval={float(interval_s)}"
    if timeout is not None:
        query += f"&timeout={float(timeout)}"
    request = urllib.request.Request(
        f"{url.rstrip('/')}/jobs/{job_id}/watch{query}"
    )
    socket_timeout = None if timeout is None else float(timeout) + 10.0
    try:
        with urllib.request.urlopen(
                request, timeout=socket_timeout) as response:
            for raw in response:
                line = raw.decode("utf-8").strip()
                if line:
                    yield json.loads(line)
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        raise ServiceError(
            f"watch of {job_id!r} failed with HTTP {exc.code}: {detail}"
        ) from exc
    except urllib.error.URLError as exc:
        raise ServiceError(f"cannot reach service at {url}: {exc.reason}") \
            from exc
