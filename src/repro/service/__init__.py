"""Campaign service layer: queued jobs, multi-tenant stores, live status.

The long-running front end over the campaign engine (the ROADMAP's
"serve heavy traffic from many users" direction): campaigns stop being
one CLI invocation owning one directory and become *jobs* -- submitted
programmatically or over a stdlib-only HTTP API, queued, scheduled
concurrently under a bounded worker budget, namespaced per tenant, and
observable while they run.

* :mod:`~repro.service.jobs` -- :class:`JobQueue` / :class:`JobRecord`:
  the persistent, crash-safe job queue and its lifecycle state machine
  (``queued -> running -> completed/failed``, with killed services
  recovering ``running`` jobs back to the queue);
* :mod:`~repro.service.namespace` -- :class:`Namespace`: the
  ``stores/<tenant>/<job-id>/`` layout with path-safe name validation
  and ``job.json`` provenance links (job id -> spec hash -> store);
* :mod:`~repro.service.manager` -- :class:`JobManager`: the dispatcher
  that runs claimed jobs through the normal
  :func:`~repro.campaign.runner.run_campaign` /
  :func:`~repro.campaign.runner.resume_campaign` path, so jobs inherit
  checkpointing, retry/quarantine and bit-identical kill/resume, and
  in-process jobs share the process-level factorization cache;
* :mod:`~repro.service.status` -- :func:`store_status` /
  :func:`partial_summary`: machine-readable progress from the store's
  small checkpoint files (frontier, quarantine, heartbeat, partial
  moments) -- never from chunk data;
* :mod:`~repro.service.http` -- :class:`CampaignService`: the
  ``http.server``-based JSON API (submit / status / result / JSONL
  streaming watch) plus its urllib client helpers.

Everything here is stdlib-only on top of the existing engine; the
runner itself gained nothing service-specific beyond the store lock
and the ``telemetry/progress.json`` heartbeat file.
"""

from .http import (
    CampaignService,
    job_result,
    job_status,
    submit_job,
    watch_job,
)
from .jobs import JobQueue, JobRecord, spec_hash
from .manager import JobManager
from .namespace import Namespace
from .status import partial_moments, partial_summary, store_status

__all__ = [
    "CampaignService",
    "JobManager",
    "JobQueue",
    "JobRecord",
    "Namespace",
    "job_result",
    "job_status",
    "partial_moments",
    "partial_summary",
    "spec_hash",
    "store_status",
    "submit_job",
    "watch_job",
]
