"""Multi-tenant store layout: ``<root>/stores/<tenant>/<job-id>/``.

Each tenant owns a subtree of campaign stores, one per job, so
concurrent users of one service never collide on disk; the per-store
``lock.json`` (see :class:`~repro.campaign.store.StoreLock`) then
guarantees that even two runners pointed at the *same* job directory
cannot interleave writes.

Names are validated against a conservative path-safe alphabet before
ever touching the filesystem -- a tenant or job id can never traverse
out of the root (``..``, separators, drive prefixes are all rejected).

Every store created through a namespace gets a ``job.json`` provenance
link next to its manifest recording job id -> tenant -> spec hash, so a
store directory found on disk can always be traced back to the job that
produced it.
"""

import os
import re
import time

from ..campaign.store import ArtifactStore
from ..errors import ServiceError

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_MAX_NAME = 128

#: Default tenant for submissions that do not name one.
DEFAULT_TENANT = "default"

_LINK_NAME = "job.json"


def validate_name(name, what="name"):
    """Path-safe tenant / job-id validation; returns the name.

    Accepts ``[A-Za-z0-9][A-Za-z0-9._-]*`` up to 128 characters --
    enough for readable ids, too little for traversal (no separators,
    no leading dot, so ``..`` and hidden files are impossible).
    """
    if not isinstance(name, str) or not name:
        raise ServiceError(f"{what} must be a non-empty string, got {name!r}")
    if len(name) > _MAX_NAME:
        raise ServiceError(
            f"{what} {name[:32]!r}... is longer than {_MAX_NAME} characters"
        )
    if not _NAME_PATTERN.match(name):
        raise ServiceError(
            f"{what} {name!r} is not path-safe; use letters, digits, "
            "'.', '_' or '-' (must start with a letter or digit)"
        )
    return name


class Namespace:
    """Tenant-scoped store directories under one service root."""

    def __init__(self, root):
        self.root = os.path.abspath(str(root))

    @property
    def stores_root(self):
        return os.path.join(self.root, "stores")

    def store_path(self, tenant, job_id):
        """The store directory of one job (validated, not created)."""
        validate_name(tenant, "tenant")
        validate_name(job_id, "job id")
        return os.path.join(self.stores_root, tenant, job_id)

    def store(self, tenant, job_id):
        """The :class:`ArtifactStore` of one job (directory not created
        until the runner initializes it)."""
        return ArtifactStore(self.store_path(tenant, job_id))

    def relative_path(self, path):
        """A store path relative to the service root (for queue records
        that must survive the root being moved)."""
        return os.path.relpath(os.path.abspath(str(path)), self.root)

    def resolve(self, relative):
        """Inverse of :meth:`relative_path`."""
        return os.path.normpath(os.path.join(self.root, relative))

    def tenants(self):
        """Sorted tenant names that currently have at least one store."""
        if not os.path.isdir(self.stores_root):
            return []
        return sorted(
            name for name in os.listdir(self.stores_root)
            if os.path.isdir(os.path.join(self.stores_root, name))
        )

    def jobs(self, tenant):
        """Sorted job ids with a store directory under ``tenant``."""
        directory = os.path.join(self.stores_root, tenant)
        if not os.path.isdir(directory):
            return []
        return sorted(
            name for name in os.listdir(directory)
            if os.path.isdir(os.path.join(directory, name))
        )

    # ------------------------------------------------------------------
    # Provenance link: job id -> spec hash -> store
    # ------------------------------------------------------------------
    def write_link(self, store, job):
        """Record the job -> store provenance link in the store dir."""
        payload = {
            "job_id": job.job_id,
            "tenant": job.tenant,
            "spec_hash": job.spec_hash,
            "created_walltime": time.time(),
        }
        os.makedirs(store.path, exist_ok=True)
        ArtifactStore._write_json(
            os.path.join(store.path, _LINK_NAME), payload
        )
        return payload

    @staticmethod
    def read_link(store):
        """The store's ``job.json`` provenance link, or ``None``."""
        path = os.path.join(store.path, _LINK_NAME)
        if not os.path.isfile(path):
            return None
        return ArtifactStore._read_json(path)
