"""Probability distributions for uncertain inputs.

The paper identifies a normal distribution for the relative elongation
(Fig. 5); this module provides that plus the common alternatives, each with
pdf/cdf/ppf, sampling and moment-based fitting.  The ppf is the bridge from
uniform (quasi-)random streams to distribution samples, which keeps every
sampler (MC, LHS, QMC) reusable for every distribution.
"""

import numpy as np
from scipy import special

from ..errors import DistributionError

_SQRT2 = np.sqrt(2.0)


class Distribution:
    """Abstract base: continuous scalar distribution."""

    def pdf(self, x):
        raise NotImplementedError

    def cdf(self, x):
        raise NotImplementedError

    def ppf(self, q):
        raise NotImplementedError

    @property
    def mean(self):
        raise NotImplementedError

    @property
    def std(self):
        raise NotImplementedError

    def sample(self, size, rng=None):
        """Draw pseudo-random samples through the inverse CDF."""
        if rng is None:
            rng = np.random.default_rng()
        return self.ppf(rng.uniform(size=size))


class NormalDistribution(Distribution):
    """Gaussian N(mu, sigma^2) -- the paper's elongation model."""

    def __init__(self, mu, sigma):
        sigma = float(sigma)
        if sigma <= 0.0:
            raise DistributionError(f"sigma must be positive, got {sigma!r}")
        self.mu = float(mu)
        self.sigma = sigma

    @property
    def mean(self):
        return self.mu

    @property
    def std(self):
        return self.sigma

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.sigma
        return np.exp(-0.5 * z * z) / (self.sigma * np.sqrt(2.0 * np.pi))

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return 0.5 * (1.0 + special.erf((x - self.mu) / (self.sigma * _SQRT2)))

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q <= 0.0) | (q >= 1.0)):
            raise DistributionError("ppf argument must lie strictly in (0, 1)")
        return self.mu + self.sigma * _SQRT2 * special.erfinv(2.0 * q - 1.0)

    def __repr__(self):
        return f"NormalDistribution(mu={self.mu!r}, sigma={self.sigma!r})"


class TruncatedNormalDistribution(Distribution):
    """Normal restricted to [lower, upper] (renormalized).

    Physically safer variant of the elongation model: delta below 0 or
    above 1 is geometrically impossible, and the truncation removes the
    tiny but non-physical tail mass of the plain normal.
    """

    def __init__(self, mu, sigma, lower, upper):
        if not lower < upper:
            raise DistributionError(
                f"need lower < upper, got {lower!r}, {upper!r}"
            )
        self.base = NormalDistribution(mu, sigma)
        self.lower = float(lower)
        self.upper = float(upper)
        self._cdf_lower = float(self.base.cdf(self.lower))
        self._cdf_upper = float(self.base.cdf(self.upper))
        self._mass = self._cdf_upper - self._cdf_lower
        if self._mass <= 0.0:
            raise DistributionError("truncation interval has zero mass")

    @property
    def mean(self):
        # Standard truncated-normal mean formula.
        a = (self.lower - self.base.mu) / self.base.sigma
        b = (self.upper - self.base.mu) / self.base.sigma
        phi = lambda z: np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi)
        return self.base.mu + self.base.sigma * (phi(a) - phi(b)) / self._mass

    @property
    def std(self):
        a = (self.lower - self.base.mu) / self.base.sigma
        b = (self.upper - self.base.mu) / self.base.sigma
        phi = lambda z: np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi)
        term = (a * phi(a) - b * phi(b)) / self._mass
        correction = ((phi(a) - phi(b)) / self._mass) ** 2
        return self.base.sigma * np.sqrt(max(1.0 + term - correction, 0.0))

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (x >= self.lower) & (x <= self.upper)
        return np.where(inside, self.base.pdf(x) / self._mass, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        raw = (self.base.cdf(x) - self._cdf_lower) / self._mass
        return np.clip(raw, 0.0, 1.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q <= 0.0) | (q >= 1.0)):
            raise DistributionError("ppf argument must lie strictly in (0, 1)")
        return self.base.ppf(self._cdf_lower + q * self._mass)

    def __repr__(self):
        return (
            f"TruncatedNormalDistribution(mu={self.base.mu!r}, "
            f"sigma={self.base.sigma!r}, lower={self.lower!r}, "
            f"upper={self.upper!r})"
        )


class UniformDistribution(Distribution):
    """Uniform on [lower, upper]."""

    def __init__(self, lower, upper):
        if not float(lower) < float(upper):
            raise DistributionError(
                f"need lower < upper, got {lower!r}, {upper!r}"
            )
        self.lower = float(lower)
        self.upper = float(upper)

    @property
    def mean(self):
        return 0.5 * (self.lower + self.upper)

    @property
    def std(self):
        return (self.upper - self.lower) / np.sqrt(12.0)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (x >= self.lower) & (x <= self.upper)
        return np.where(inside, 1.0 / (self.upper - self.lower), 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.clip((x - self.lower) / (self.upper - self.lower), 0.0, 1.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise DistributionError("ppf argument must lie in [0, 1]")
        return self.lower + q * (self.upper - self.lower)

    def __repr__(self):
        return f"UniformDistribution({self.lower!r}, {self.upper!r})"


class LogNormalDistribution(Distribution):
    """Log-normal: ln X ~ N(mu_log, sigma_log^2).

    Candidate alternative for strictly positive elongations.
    """

    def __init__(self, mu_log, sigma_log):
        sigma_log = float(sigma_log)
        if sigma_log <= 0.0:
            raise DistributionError(
                f"sigma_log must be positive, got {sigma_log!r}"
            )
        self.mu_log = float(mu_log)
        self.sigma_log = sigma_log
        self._base = NormalDistribution(self.mu_log, self.sigma_log)

    @property
    def mean(self):
        return np.exp(self.mu_log + 0.5 * self.sigma_log**2)

    @property
    def std(self):
        variance = (np.exp(self.sigma_log**2) - 1.0) * np.exp(
            2.0 * self.mu_log + self.sigma_log**2
        )
        return np.sqrt(variance)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        positive = x > 0.0
        safe = np.where(positive, x, 1.0)
        return np.where(positive, self._base.pdf(np.log(safe)) / safe, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        positive = x > 0.0
        safe = np.where(positive, x, 1.0)
        return np.where(positive, self._base.cdf(np.log(safe)), 0.0)

    def ppf(self, q):
        return np.exp(self._base.ppf(q))

    def __repr__(self):
        return (
            f"LogNormalDistribution(mu_log={self.mu_log!r}, "
            f"sigma_log={self.sigma_log!r})"
        )


def fit_normal(samples, ddof=1):
    """Moment fit of a normal distribution (the paper's Fig. 5 step).

    Uses the unbiased sample standard deviation by default; the paper's 12
    measurements yield mu = 0.17, sigma = 0.048.
    """
    samples = np.asarray(samples, dtype=float).ravel()
    if samples.size < 2:
        raise DistributionError(
            f"need at least 2 samples to fit a normal, got {samples.size}"
        )
    mu = float(np.mean(samples))
    sigma = float(np.std(samples, ddof=ddof))
    if sigma <= 0.0:
        raise DistributionError("samples are degenerate (zero spread)")
    return NormalDistribution(mu, sigma)
