"""The Monte Carlo study driver (Section IV-C of the paper).

``MonteCarloStudy`` repeatedly evaluates a model on parameter samples and
accumulates vector-valued outputs with Welford statistics; the result
exposes the paper's estimators: per-output expectation, standard deviation
and the ``sigma / sqrt(M)`` error (eq. (6)).
"""

import numpy as np

from ..errors import SamplingError
from .sampling import map_to_distributions, random_sampler
from .statistics import RunningStatistics


class BlockedModel:
    """Pair a per-sample model with its vectorized block evaluator.

    The campaign executor (and :meth:`MonteCarloStudy.run` with
    ``block_size``) duck-type on a callable ``evaluate_block`` attribute:
    given an ``(S, d)`` parameter block it must return the ``S`` stacked
    outputs ``(S, *output_shape)``.  Plain callables cannot carry
    attributes when they are bound methods, so this tiny wrapper holds
    the pair -- calling it evaluates one sample, ``evaluate_block``
    evaluates a whole block.

    For introspection convenience the wrapped model's ``__self__`` (when
    it is a bound method) is re-exposed, so ``model.__self__`` still
    reaches the owning study.
    """

    def __init__(self, model, evaluate_block, array_backend=None):
        if not callable(model) or not callable(evaluate_block):
            raise SamplingError(
                "BlockedModel needs a callable model and a callable "
                "evaluate_block"
            )
        self._model = model
        self.evaluate_block = evaluate_block
        #: Array-backend name the block evaluator solves through (when
        #: known) -- the campaign executor duck-types on this attribute
        #: to label its block telemetry.
        self.array_backend = array_backend
        owner = getattr(model, "__self__", None)
        if owner is not None:
            self.__self__ = owner

    def __call__(self, parameters):
        return self._model(parameters)

    def __repr__(self):
        return f"BlockedModel({self._model!r})"


def monte_carlo_error(std, num_samples):
    """The paper's eq. (6): ``error_MC = sigma_MC / sqrt(M)``."""
    num_samples = int(num_samples)
    if num_samples < 1:
        raise SamplingError(f"num_samples must be >= 1, got {num_samples}")
    return np.asarray(std, dtype=float) / np.sqrt(num_samples)


class MonteCarloResult:
    """Accumulated statistics of one study.

    Attributes
    ----------
    mean, std:
        Arrays shaped like one model output.
    num_samples:
        The sample count ``M``.
    samples:
        Optional ``(M, *output_shape)`` array of raw outputs (present when
        the study was run with ``keep_samples=True``).
    parameters:
        The ``(M, d)`` parameter matrix actually used.
    """

    def __init__(self, statistics, parameters, samples=None):
        self._stats = statistics
        self.parameters = parameters
        self.samples = samples

    @property
    def num_samples(self):
        return self._stats.count

    @property
    def mean(self):
        return self._stats.mean

    @property
    def std(self):
        return self._stats.std()

    @property
    def minimum(self):
        return self._stats.minimum

    @property
    def maximum(self):
        return self._stats.maximum

    def error(self):
        """``sigma_MC / sqrt(M)`` per output entry (eq. (6))."""
        return monte_carlo_error(self.std, self.num_samples)

    def confidence_band(self, multiple=6.0):
        """``(mean - k sigma, mean + k sigma)``; the paper plots k = 6."""
        mean = self.mean
        spread = multiple * self.std
        return mean - spread, mean + spread

    def quantiles(self, q):
        """Empirical quantiles (requires ``keep_samples=True``)."""
        if self.samples is None:
            raise SamplingError(
                "quantiles need the raw samples; rerun with keep_samples=True"
            )
        return np.quantile(self.samples, q, axis=0)

    def __repr__(self):
        return (
            f"MonteCarloResult(M={self.num_samples}, "
            f"output_shape={np.shape(self.mean)})"
        )


class MonteCarloStudy:
    """Monte Carlo propagation of input uncertainty through a model.

    Parameters
    ----------
    model:
        Callable ``model(parameters) -> array`` mapping one parameter
        vector to one output array (all outputs must share a shape).
    distributions:
        A distribution (applied iid to every dimension -- the paper's
        case: 12 wire elongations) or a list of per-dimension
        distributions.
    dimension:
        Number of uncertain parameters (12 wires in the paper).
    """

    def __init__(self, model, distributions, dimension):
        if not callable(model):
            raise SamplingError("model must be callable")
        dimension = int(dimension)
        if dimension < 1:
            raise SamplingError(f"dimension must be >= 1, got {dimension}")
        self.model = model
        self.distributions = distributions
        self.dimension = dimension

    def run(
        self,
        num_samples,
        seed=None,
        uniform_points=None,
        keep_samples=False,
        callback=None,
        executor=None,
        block_size=None,
    ):
        """Run ``num_samples`` model evaluations.

        Parameters
        ----------
        uniform_points:
            Optional pre-generated unit-cube stream (LHS/QMC ablations);
            overrides ``num_samples``/``seed``.
        keep_samples:
            Store every raw output (needed for quantiles/histograms).
        callback:
            Optional ``callback(index, parameters, output)`` progress hook.
        executor:
            Optional :class:`~repro.campaign.executor.Executor`; when
            given, the evaluation loop is delegated to it (e.g. a process
            pool) instead of running inline.  Outputs are folded into the
            statistics in sample order, so serial and parallel executors
            produce identical results.
        block_size:
            Evaluate samples in blocks of this size through the model's
            ``evaluate_block`` interface (see :class:`BlockedModel`) --
            the sample-blocked fast path.  The model must expose a
            callable ``evaluate_block``; outputs still fold one by one
            in sample order, so statistics and callbacks are unchanged.
            Cannot be combined with ``executor``.
        """
        if uniform_points is None:
            uniform_points = random_sampler(num_samples, self.dimension, seed)
        uniform_points = np.asarray(uniform_points, dtype=float)
        if uniform_points.ndim != 2 or uniform_points.shape[1] != self.dimension:
            raise SamplingError(
                f"uniform_points must be (M, {self.dimension}), got "
                f"{uniform_points.shape}"
            )
        parameters = map_to_distributions(uniform_points, self.distributions)
        statistics = RunningStatistics()
        stored = [] if keep_samples else None
        if executor is not None:
            if block_size is not None:
                raise SamplingError(
                    "block_size cannot be combined with an executor; "
                    "chunked campaigns block inside the executor instead"
                )
            outputs = executor.map(self.model, parameters)
        elif block_size is not None:
            outputs = self._blocked_outputs(parameters, block_size)
        else:
            outputs = (
                self.model(parameters[index])
                for index in range(parameters.shape[0])
            )
        for index, output in enumerate(outputs):
            output = np.asarray(output, dtype=float)
            statistics.update(output)
            if keep_samples:
                stored.append(output)
            if callback is not None:
                callback(index, parameters[index], output)
        samples = np.stack(stored) if keep_samples else None
        return MonteCarloResult(statistics, parameters, samples)

    def _blocked_outputs(self, parameters, block_size):
        """Generator over per-sample outputs via ``evaluate_block``."""
        block_size = int(block_size)
        if block_size < 1:
            raise SamplingError(
                f"block_size must be >= 1, got {block_size}"
            )
        evaluate_block = getattr(self.model, "evaluate_block", None)
        if not callable(evaluate_block):
            raise SamplingError(
                "block_size needs a model with a callable evaluate_block "
                "(see repro.uq.monte_carlo.BlockedModel)"
            )
        for start in range(0, parameters.shape[0], block_size):
            block = parameters[start:start + block_size]
            outputs = np.asarray(evaluate_block(block), dtype=float)
            if outputs.shape[0] != block.shape[0]:
                raise SamplingError(
                    f"evaluate_block returned {outputs.shape[0]} outputs "
                    f"for {block.shape[0]} samples"
                )
            yield from outputs

    def convergence_trace(self, num_samples, seed=None, checkpoints=None):
        """Mean/std estimates at growing sample counts (convergence study).

        Returns ``(counts, means, stds)`` where means/stds are stacked per
        checkpoint.  Used by the sampling ablation to show the 1/sqrt(M)
        decay of eq. (6).
        """
        uniform_points = random_sampler(num_samples, self.dimension, seed)
        parameters = map_to_distributions(uniform_points, self.distributions)
        if checkpoints is None:
            checkpoints = [
                int(round(num_samples * fraction))
                for fraction in (0.1, 0.25, 0.5, 0.75, 1.0)
            ]
        checkpoints = sorted({max(2, int(c)) for c in checkpoints})
        statistics = RunningStatistics()
        counts, means, stds = [], [], []
        for index in range(parameters.shape[0]):
            statistics.update(np.asarray(self.model(parameters[index])))
            if statistics.count in checkpoints:
                counts.append(statistics.count)
                means.append(statistics.mean)
                stds.append(statistics.std())
        return np.asarray(counts), np.stack(means), np.stack(stds)
