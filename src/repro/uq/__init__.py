"""Uncertainty quantification stack (Section IV of the paper).

The paper propagates the uncertain relative wire elongation -- fitted as
N(0.17, 0.048^2) from 12 X-ray samples -- through the coupled solver with
plain Monte Carlo (M = 1000) and reports the expectation, standard
deviation and the sigma/sqrt(M) error estimator (eq. (6)).

Beyond the paper's MC this package provides Latin hypercube and Halton /
Sobol quasi-Monte Carlo sampling, Smolyak sparse-grid stochastic
collocation with Gauss-Hermite nodes, and Saltelli/Sobol sensitivity
indices -- "the application of other methods is straightforward"
(Section IV-C), and these are exactly the methods one would apply.
"""

from .distributions import (
    LogNormalDistribution,
    NormalDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
    fit_normal,
)
from .monte_carlo import MonteCarloResult, MonteCarloStudy, monte_carlo_error
from .collocation import (
    CollocationResult,
    StochasticCollocation,
    gauss_hermite_rule,
    smolyak_nodes,
)
from .sampling import (
    halton_sequence,
    latin_hypercube,
    random_sampler,
    sobol_sequence,
)
from .pce import PolynomialChaosExpansion, total_degree_multi_indices
from .sensitivity import (
    BootstrapInterval,
    GroupIndices,
    JansenEstimates,
    SecondOrderIndices,
    SobolIndices,
    StreamingJansenAccumulator,
    all_pairs,
    jansen_bootstrap,
    jansen_group_indices,
    jansen_indices,
    jansen_second_order,
    saltelli_sample,
    sobol_indices,
)
from .statistics import RunningStatistics, histogram_data

__all__ = [
    "NormalDistribution",
    "LogNormalDistribution",
    "UniformDistribution",
    "TruncatedNormalDistribution",
    "fit_normal",
    "MonteCarloStudy",
    "MonteCarloResult",
    "monte_carlo_error",
    "StochasticCollocation",
    "CollocationResult",
    "gauss_hermite_rule",
    "smolyak_nodes",
    "latin_hypercube",
    "halton_sequence",
    "sobol_sequence",
    "random_sampler",
    "sobol_indices",
    "saltelli_sample",
    "all_pairs",
    "jansen_indices",
    "jansen_second_order",
    "jansen_group_indices",
    "jansen_bootstrap",
    "SobolIndices",
    "SecondOrderIndices",
    "GroupIndices",
    "JansenEstimates",
    "StreamingJansenAccumulator",
    "BootstrapInterval",
    "RunningStatistics",
    "histogram_data",
    "PolynomialChaosExpansion",
    "total_degree_multi_indices",
]
