"""Analytic benchmark functions with closed-form Sobol indices.

The sensitivity subsystem is bitwise-reproducible by construction, but
reproducibility alone cannot prove the estimators point at the right
numbers.  These two classic functions can: the Ishigami function and the
Sobol g-function have exact Sobol indices of every order, so golden
tests (``tests/uq/test_analytic_golden.py``) pin the Jansen estimates --
first-order, total, closed second-order and grouped -- against ground
truth instead of against each other.

Both functions are registered as campaign problems (``"ishigami"`` and
``"sobol-g"``; reference them with
``ScenarioSpec(module="repro.uq.analytic")``), so the full distributed
path -- Saltelli plan, executors, artifact store, streaming reduction --
can be validated end to end against the closed forms.  The optional
``weights`` scenario option turns the scalar output into a vector QoI
(``weights * f``), exercising the per-component reduction including the
zero-variance ``NaN`` contract (a zero weight makes a constant
component).
"""

import math

import numpy as np

from ..errors import SamplingError

#: Paper-standard Ishigami coefficients (Ishigami & Homma 1990).
ISHIGAMI_A = 7.0
ISHIGAMI_B = 0.1

#: Module path for ``ScenarioSpec(module=...)`` resolution in workers.
MODULE = "repro.uq.analytic"


# ----------------------------------------------------------------------
# Ishigami function
# ----------------------------------------------------------------------
def ishigami(point, a=ISHIGAMI_A, b=ISHIGAMI_B):
    """``f = sin x1 + a sin^2 x2 + b x3^4 sin x1`` on ``[-pi, pi]^3``."""
    point = np.asarray(point, dtype=float)
    if point.shape[-1] != 3:
        raise SamplingError(
            f"the Ishigami function takes 3 inputs, got {point.shape[-1]}"
        )
    x1, x2, x3 = point[..., 0], point[..., 1], point[..., 2]
    return np.sin(x1) + a * np.sin(x2) ** 2 + b * x3 ** 4 * np.sin(x1)


def ishigami_indices(a=ISHIGAMI_A, b=ISHIGAMI_B):
    """Closed-form Sobol indices of :func:`ishigami` (iid U(-pi, pi)).

    Returns a dict with ``variance``, ``first_order`` / ``total``
    (``(3,)`` arrays), ``second_order`` / ``closed_second_order``
    (dicts keyed by ``(i, j)`` pairs), and ``group_closed`` /
    ``group_total`` callables mapping a column subset to its index.
    The only non-zero interaction is ``S_13``.
    """
    pi4 = math.pi ** 4
    v1 = 0.5 * (1.0 + b * pi4 / 5.0) ** 2
    v2 = a ** 2 / 8.0
    v13 = 8.0 * b ** 2 * pi4 ** 2 / 225.0
    variance = v1 + v2 + v13
    partial = {(0,): v1, (1,): v2, (2,): 0.0, (0, 1): 0.0, (0, 2): v13,
               (1, 2): 0.0, (0, 1, 2): 0.0}

    def closed_variance(columns):
        columns = tuple(sorted(columns))
        return sum(value for subset, value in partial.items()
                   if set(subset) <= set(columns))

    def group_closed(columns):
        return closed_variance(columns) / variance

    def group_total(columns):
        complement = tuple(i for i in range(3) if i not in set(columns))
        return (variance - closed_variance(complement)) / variance

    return {
        "variance": variance,
        "first_order": np.array([v1, v2, 0.0]) / variance,
        "total": np.array([v1 + v13, v2, v13]) / variance,
        "second_order": {(0, 1): 0.0, (0, 2): v13 / variance, (1, 2): 0.0},
        "closed_second_order": {
            (0, 1): (v1 + v2) / variance,
            (0, 2): (v1 + v13) / variance,
            (1, 2): v2 / variance,
        },
        "group_closed": group_closed,
        "group_total": group_total,
    }


def ishigami_distribution():
    """Spec dict of the iid U(-pi, pi) input marginals."""
    return {"kind": "uniform", "lower": -math.pi, "upper": math.pi}


# ----------------------------------------------------------------------
# Sobol g-function
# ----------------------------------------------------------------------
def sobol_g(point, a):
    """``f = prod_i (|4 x_i - 2| + a_i) / (1 + a_i)`` on ``[0, 1]^d``."""
    point = np.asarray(point, dtype=float)
    a = np.asarray(a, dtype=float)
    if point.shape[-1] != a.shape[0]:
        raise SamplingError(
            f"point has {point.shape[-1]} inputs but a has {a.shape[0]} "
            "coefficients"
        )
    return np.prod(
        (np.abs(4.0 * point - 2.0) + a) / (1.0 + a), axis=-1
    )


def sobol_g_indices(a):
    """Closed-form Sobol indices of :func:`sobol_g` (iid U(0, 1)).

    With ``v_i = 1 / (3 (1 + a_i)^2)`` the closed variance of any group
    is ``prod_{i in g} (1 + v_i) - 1`` and the total variance is the
    full-set closed variance; every index of every order follows.
    """
    a = np.asarray(a, dtype=float)
    dimension = a.shape[0]
    v = 1.0 / (3.0 * (1.0 + a) ** 2)
    variance = float(np.prod(1.0 + v) - 1.0)

    def closed_variance(columns):
        columns = tuple(sorted(set(columns)))
        return float(np.prod(1.0 + v[list(columns)]) - 1.0)

    def group_closed(columns):
        return closed_variance(columns) / variance

    def group_total(columns):
        complement = tuple(
            i for i in range(dimension) if i not in set(columns)
        )
        return (variance - closed_variance(complement)) / variance

    second_order = {}
    closed_second_order = {}
    for i in range(dimension):
        for j in range(i + 1, dimension):
            second_order[(i, j)] = float(v[i] * v[j]) / variance
            closed_second_order[(i, j)] = (
                float(v[i] + v[j] + v[i] * v[j]) / variance
            )
    total = np.array([
        float(v[i] * np.prod(1.0 + np.delete(v, i))) / variance
        for i in range(dimension)
    ])
    return {
        "variance": variance,
        "first_order": v / variance,
        "total": total,
        "second_order": second_order,
        "closed_second_order": closed_second_order,
        "group_closed": group_closed,
        "group_total": group_total,
    }


def sobol_g_distribution():
    """Spec dict of the iid U(0, 1) input marginals."""
    return {"kind": "uniform", "lower": 0.0, "upper": 1.0}


# ----------------------------------------------------------------------
# Campaign problem builders
# ----------------------------------------------------------------------
def _vector_weights(options):
    weights = options.get("weights")
    if weights is None:
        return None
    return np.asarray(weights, dtype=float)


def build_ishigami_model(scenario):
    """``ScenarioSpec -> model`` for the ``"ishigami"`` problem.

    Options: ``a``, ``b`` coefficients and optional ``weights`` (a list
    turning the scalar output into the vector QoI ``weights * f``).
    """
    options = dict(scenario.options)
    a = float(options.pop("a", ISHIGAMI_A))
    b = float(options.pop("b", ISHIGAMI_B))
    weights = _vector_weights(options)
    options.pop("weights", None)
    if options:
        raise SamplingError(
            f"ishigami scenario got unknown options {sorted(options)}"
        )

    def model(parameters):
        value = ishigami(parameters, a=a, b=b)
        if weights is None:
            return np.float64(value)
        return weights * value

    return model


def build_sobol_g_model(scenario):
    """``ScenarioSpec -> model`` for the ``"sobol-g"`` problem.

    Options: ``a`` (list of coefficients, required) and optional
    ``weights`` as for :func:`build_ishigami_model`.
    """
    options = dict(scenario.options)
    if "a" not in options:
        raise SamplingError(
            "sobol-g scenario needs the coefficient list option 'a'"
        )
    a = np.asarray(options.pop("a"), dtype=float)
    weights = _vector_weights(options)
    options.pop("weights", None)
    if options:
        raise SamplingError(
            f"sobol-g scenario got unknown options {sorted(options)}"
        )

    def model(parameters):
        value = sobol_g(parameters, a)
        if weights is None:
            return np.float64(value)
        return weights * value

    return model


def _register():
    from ..campaign.registry import register_problem

    register_problem("ishigami", build_ishigami_model)
    register_problem("sobol-g", build_sobol_g_model)


_register()
