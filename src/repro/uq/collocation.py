"""Stochastic collocation on Gauss-Hermite nodes (tensor and Smolyak).

The paper notes that "the application of other methods is straightforward"
(Section IV-C); stochastic collocation is the canonical alternative for
smooth dependencies like wire-length -> temperature.  For the 12-dimensional
wire problem a full tensor grid is infeasible, so a Smolyak sparse grid with
linear growth is provided; level 2 needs only ``2 d + 1`` model runs and
already captures the first-order behaviour.

Nodes live in standard-normal space; inputs are mapped through
``x = ppf(Phi(z))`` so non-normal marginals work too (for normal marginals
this reduces to ``mu + sigma z`` exactly).
"""

import itertools
import math

import numpy as np
from scipy import special

from ..errors import SamplingError
from .distributions import NormalDistribution


def gauss_hermite_rule(order):
    """Probabilists' Gauss-Hermite rule: exact for N(0,1) moments.

    Returns ``(nodes, weights)`` with weights summing to 1.
    """
    order = int(order)
    if order < 1:
        raise SamplingError(f"order must be >= 1, got {order}")
    nodes, weights = np.polynomial.hermite_e.hermegauss(order)
    weights = weights / np.sqrt(2.0 * np.pi)
    return nodes, weights


def _tensor_rule(orders):
    """Tensor product of 1D Gauss-Hermite rules with the given orders."""
    rules = [gauss_hermite_rule(order) for order in orders]
    nodes = np.array(
        list(itertools.product(*[rule[0] for rule in rules]))
    ).reshape(-1, len(orders))
    weights = np.ones(nodes.shape[0])
    for index in range(len(orders)):
        column = np.array(
            list(itertools.product(*[rule[1] for rule in rules]))
        ).reshape(-1, len(orders))[:, index]
        weights *= column
    return nodes, weights


def smolyak_nodes(dimension, level):
    """Smolyak sparse grid in standard-normal space.

    Combination technique with linear growth (1D rule of index ``i`` has
    ``i`` points):

    ``A(q, d) = sum_{q-d+1 <= |i| <= q} (-1)^(q-|i|) C(d-1, q-|i|) (U_i1 x ... x U_id)``

    with ``q = d + level - 1``.  Level 1 is the single mean point; level 2
    uses ``2 d + 1`` distinct nodes.  Returns ``(nodes, weights)``; weights
    sum to 1 but individual weights may be negative (normal for Smolyak).
    """
    dimension = int(dimension)
    level = int(level)
    if dimension < 1 or level < 1:
        raise SamplingError("dimension and level must be >= 1")
    q = dimension + level - 1
    aggregated = {}
    for total in range(max(dimension, q - dimension + 1), q + 1):
        coefficient = (-1.0) ** (q - total) * math.comb(dimension - 1, q - total)
        if coefficient == 0.0:
            continue
        for index_set in _compositions(total, dimension):
            nodes, weights = _tensor_rule(index_set)
            for node, weight in zip(nodes, weights):
                key = tuple(np.round(node, 12))
                aggregated[key] = aggregated.get(key, 0.0) + coefficient * weight
    nodes = np.array(sorted(aggregated), dtype=float).reshape(-1, dimension)
    weights = np.array([aggregated[tuple(node)] for node in nodes])
    # Drop numerically cancelled nodes.
    keep = np.abs(weights) > 1.0e-14
    return nodes[keep], weights[keep]


def _compositions(total, parts):
    """All tuples of ``parts`` positive integers summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


class CollocationResult:
    """Mean/std estimates from a collocation run."""

    def __init__(self, mean, std, nodes, weights, outputs):
        self.mean = mean
        self.std = std
        self.nodes = nodes
        self.weights = weights
        self.outputs = outputs

    @property
    def num_evaluations(self):
        """Number of model evaluations spent."""
        return self.nodes.shape[0]

    def __repr__(self):
        return (
            f"CollocationResult({self.num_evaluations} evaluations, "
            f"output_shape={np.shape(self.mean)})"
        )


class StochasticCollocation:
    """Sparse-grid collocation estimator for smooth models.

    Parameters
    ----------
    model:
        Callable ``model(parameters) -> array``.
    distributions:
        One distribution (iid over all dimensions) or a per-dimension list.
    dimension:
        Number of uncertain inputs.
    level:
        Smolyak level (1 = mean point, 2 = cross pattern, ...).
    """

    def __init__(self, model, distributions, dimension, level=2):
        self.model = model
        self.dimension = int(dimension)
        self.level = int(level)
        if not isinstance(distributions, (list, tuple)):
            distributions = [distributions] * self.dimension
        if len(distributions) != self.dimension:
            raise SamplingError(
                f"{len(distributions)} distributions for {self.dimension} "
                "dimensions"
            )
        self.distributions = list(distributions)

    def _map_nodes(self, nodes):
        """Standard-normal nodes -> physical parameters via ppf(Phi(z))."""
        mapped = np.empty_like(nodes)
        for d, dist in enumerate(self.distributions):
            if isinstance(dist, NormalDistribution):
                mapped[:, d] = dist.mu + dist.sigma * nodes[:, d]
            else:
                cdf = 0.5 * (1.0 + special.erf(nodes[:, d] / np.sqrt(2.0)))
                cdf = np.clip(cdf, 1.0e-12, 1.0 - 1.0e-12)
                mapped[:, d] = dist.ppf(cdf)
        return mapped

    def run(self, executor=None):
        """Evaluate the model on the sparse grid and return statistics.

        The variance estimate ``E[f^2] - E[f]^2`` with Smolyak weights can
        come out slightly negative for near-deterministic outputs; it is
        clipped at zero.

        ``executor`` optionally delegates the node evaluations to an
        :class:`~repro.campaign.executor.Executor` (outputs keep node
        order, so the quadrature is executor-independent).
        """
        nodes, weights = smolyak_nodes(self.dimension, self.level)
        parameters = self._map_nodes(nodes)
        if executor is not None:
            evaluations = executor.map(self.model, parameters)
        else:
            evaluations = [
                self.model(parameters[i]) for i in range(parameters.shape[0])
            ]
        outputs = np.stack(
            [np.asarray(out, dtype=float) for out in evaluations]
        )
        broadcast = weights.reshape((-1,) + (1,) * (outputs.ndim - 1))
        mean = np.sum(broadcast * outputs, axis=0)
        second = np.sum(broadcast * outputs**2, axis=0)
        variance = np.clip(second - mean**2, 0.0, None)
        return CollocationResult(
            mean=mean,
            std=np.sqrt(variance),
            nodes=parameters,
            weights=weights,
            outputs=outputs,
        )
