"""Sample-stream generators: pseudo-random, LHS, Halton and Sobol QMC.

All generators produce points in the unit hypercube ``[0, 1)^d``; the
distributions' inverse CDFs map them to physical parameters.  Keeping the
streams uniform makes Monte Carlo, Latin hypercube and quasi-Monte Carlo
interchangeable in the study driver (the sampling-strategy ablation).
"""

import numpy as np

from ..errors import SamplingError

_FIRST_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
)


def _validate(num_samples, dimension):
    num_samples = int(num_samples)
    dimension = int(dimension)
    if num_samples < 1:
        raise SamplingError(f"num_samples must be >= 1, got {num_samples}")
    if dimension < 1:
        raise SamplingError(f"dimension must be >= 1, got {dimension}")
    return num_samples, dimension


def random_sampler(num_samples, dimension, seed=None):
    """Plain pseudo-random uniform points (the paper's MC stream)."""
    num_samples, dimension = _validate(num_samples, dimension)
    rng = np.random.default_rng(seed)
    return rng.uniform(size=(num_samples, dimension))


def latin_hypercube(num_samples, dimension, seed=None):
    """Latin hypercube: one sample per row-stratum in every dimension."""
    num_samples, dimension = _validate(num_samples, dimension)
    rng = np.random.default_rng(seed)
    points = np.empty((num_samples, dimension))
    for d in range(dimension):
        permutation = rng.permutation(num_samples)
        points[:, d] = (permutation + rng.uniform(size=num_samples)) / num_samples
    return points


def _van_der_corput(count, base, skip):
    """Van der Corput sequence in the given base (radical inverse)."""
    sequence = np.zeros(count)
    for i in range(count):
        n = i + skip
        value = 0.0
        denominator = 1.0
        while n > 0:
            denominator *= base
            n, remainder = divmod(n, base)
            value += remainder / denominator
        sequence[i] = value
    return sequence


def halton_sequence(num_samples, dimension, skip=20, seed=None):
    """Halton QMC points (one prime base per dimension).

    ``skip`` drops the first points, which are strongly correlated across
    dimensions for larger primes.  Halton is a single deterministic
    sequence, so ``seed`` selects a stream by adding a seed-derived
    32-bit offset to ``skip``: different seeds give distinct but fully
    reproducible point sets (collision odds 2^-32 per seed pair),
    ``seed=None`` keeps the plain skipped sequence.  The radical-inverse
    cost grows only logarithmically with the start index, so the offset
    is essentially free.
    """
    num_samples, dimension = _validate(num_samples, dimension)
    if dimension > len(_FIRST_PRIMES):
        raise SamplingError(
            f"Halton supports up to {len(_FIRST_PRIMES)} dimensions, "
            f"got {dimension}"
        )
    skip = int(skip)
    if seed is not None:
        skip += int(np.random.SeedSequence(int(seed)).generate_state(1)[0])
    points = np.empty((num_samples, dimension))
    for d in range(dimension):
        points[:, d] = _van_der_corput(num_samples, _FIRST_PRIMES[d], skip + 1)
    return points


def sobol_sequence(num_samples, dimension, seed=0):
    """Scrambled Sobol points via scipy's generator.

    ``seed`` drives the scramble: an int gives a reproducible stream,
    ``None`` draws a fresh scramble (matching :func:`random_sampler`'s
    seed semantics).  Falls back to Halton if scipy's ``qmc`` module is
    unavailable (very old scipy); the interface stays identical.
    """
    num_samples, dimension = _validate(num_samples, dimension)
    try:
        from scipy.stats import qmc
    except ImportError:  # pragma: no cover - depends on scipy version
        return halton_sequence(num_samples, dimension, seed=seed)
    sampler = qmc.Sobol(d=dimension, scramble=True, seed=seed)
    return sampler.random(num_samples)


def map_to_distributions(uniform_points, distributions):
    """Map unit-cube points column-wise through ``ppf`` of each distribution.

    ``distributions`` is either a single distribution (applied to every
    column -- the iid case of the paper's 12 wire elongations) or a list of
    per-dimension distributions.
    """
    uniform_points = np.asarray(uniform_points, dtype=float)
    if uniform_points.ndim != 2:
        raise SamplingError("uniform_points must be a 2D (samples, dim) array")
    dimension = uniform_points.shape[1]
    if not isinstance(distributions, (list, tuple)):
        distributions = [distributions] * dimension
    if len(distributions) != dimension:
        raise SamplingError(
            f"{len(distributions)} distributions for {dimension} dimensions"
        )
    # ppf(0) / ppf(1) are infinite for unbounded distributions; nudge the
    # stream into the open interval.
    eps = 1.0e-12
    clipped = np.clip(uniform_points, eps, 1.0 - eps)
    columns = [
        np.asarray(dist.ppf(clipped[:, d]))
        for d, dist in enumerate(distributions)
    ]
    return np.column_stack(columns)
