"""Polynomial chaos expansion (PCE) surrogates by least-squares regression.

A PCE approximates the model response as a series in orthonormal
polynomials of the random inputs,

``f(x) ~ sum_alpha c_alpha Psi_alpha(z)``,

with probabilists' Hermite polynomials on the standard-normal germ ``z``
(non-normal marginals map through ``x = ppf(Phi(z))``).  The coefficients
carry the statistics for free: the mean is ``c_0``, the variance is the
sum of the remaining squared coefficients, and Sobol indices are partial
sums -- a cheap global sensitivity analysis once the surrogate is built.

This complements the stochastic collocation module: collocation prescribes
quadrature nodes, regression PCE works with *any* sample set (e.g. the
Monte Carlo samples already paid for).
"""

import itertools
import math

import numpy as np
from scipy import special

from ..errors import SamplingError
from .distributions import NormalDistribution
from .sampling import random_sampler


def total_degree_multi_indices(dimension, degree):
    """All multi-indices with total degree <= ``degree``.

    Ordered by total degree, then lexicographically; the zero index comes
    first (its coefficient is the mean).
    """
    dimension = int(dimension)
    degree = int(degree)
    if dimension < 1 or degree < 0:
        raise SamplingError("dimension must be >= 1 and degree >= 0")
    indices = []
    for total in range(degree + 1):
        for combo in itertools.combinations_with_replacement(
            range(dimension), total
        ):
            alpha = [0] * dimension
            for position in combo:
                alpha[position] += 1
            indices.append(tuple(alpha))
    # Deduplicate while preserving order (combinations generate unique
    # multisets already, so this is a no-op safeguard).
    seen = set()
    unique = []
    for alpha in indices:
        if alpha not in seen:
            seen.add(alpha)
            unique.append(alpha)
    return unique


def hermite_normalized(order, points):
    """Orthonormal probabilists' Hermite polynomial He_n / sqrt(n!)."""
    points = np.asarray(points, dtype=float)
    coefficients = np.zeros(order + 1)
    coefficients[order] = 1.0
    values = np.polynomial.hermite_e.hermeval(points, coefficients)
    return values / np.sqrt(math.factorial(order))


def legendre_normalized(order, points):
    """Legendre polynomial P_n * sqrt(2n + 1), orthonormal for U(-1, 1)."""
    points = np.asarray(points, dtype=float)
    coefficients = np.zeros(order + 1)
    coefficients[order] = 1.0
    values = np.polynomial.legendre.legval(points, coefficients)
    return values * np.sqrt(2.0 * order + 1.0)


#: Germ bases of the Wiener-Askey scheme supported by
#: :class:`PolynomialChaosExpansion`: the germ distribution and the
#: matching orthonormal 1D polynomial family.
BASES = {
    "hermite": hermite_normalized,
    "legendre": legendre_normalized,
}


class PolynomialChaosExpansion:
    """Least-squares PCE surrogate of a scalar or vector model.

    Parameters
    ----------
    model:
        Callable ``model(parameters) -> array`` (consistent output
        shape), or ``None`` when the expansion is fitted from
        precomputed samples via :meth:`fit_from_samples`.
    distributions:
        One distribution (iid) or a per-dimension list.
    dimension:
        Number of random inputs.
    degree:
        Total polynomial degree of the expansion.
    basis:
        Germ basis: ``"hermite"`` (default; standard-normal germ,
        non-normal marginals map through ``x = ppf(Phi(z))``) or
        ``"legendre"`` (uniform germ on ``[-1, 1]``, marginals map
        through ``x = ppf((z + 1) / 2)``).  Sobol indices are invariant
        under these per-dimension monotone maps, so either basis
        estimates the same indices -- but regression on bounded
        marginals (campaign unit-cube samples) is far better
        conditioned in the Legendre basis.
    """

    def __init__(self, model, distributions, dimension, degree=2,
                 basis="hermite"):
        self.model = model
        self.basis = str(basis)
        if self.basis not in BASES:
            raise SamplingError(
                f"unknown PCE basis {basis!r}; expected one of "
                f"{sorted(BASES)}"
            )
        self.dimension = int(dimension)
        self.degree = int(degree)
        if not isinstance(distributions, (list, tuple)):
            distributions = [distributions] * self.dimension
        if len(distributions) != self.dimension:
            raise SamplingError(
                f"{len(distributions)} distributions for {self.dimension} "
                "dimensions"
            )
        self.distributions = list(distributions)
        self.multi_indices = total_degree_multi_indices(
            self.dimension, self.degree
        )
        self._coefficients = None
        self._output_shape = None

    @property
    def num_terms(self):
        """Number of basis polynomials (binomial(d + p, p))."""
        return len(self.multi_indices)

    # ------------------------------------------------------------------
    # Basis evaluation
    # ------------------------------------------------------------------
    def design_matrix(self, germ_points):
        """Basis values ``Psi_alpha(z)`` for each sample, ``(M, terms)``."""
        germ_points = np.asarray(germ_points, dtype=float)
        if germ_points.ndim != 2 or germ_points.shape[1] != self.dimension:
            raise SamplingError(
                f"germ_points must be (M, {self.dimension}), got "
                f"{germ_points.shape}"
            )
        # Precompute 1D polynomials up to the max order per dimension.
        polynomial = BASES[self.basis]
        columns = []
        one_d = {}
        for order in range(self.degree + 1):
            one_d[order] = np.column_stack(
                [
                    polynomial(order, germ_points[:, d])
                    for d in range(self.dimension)
                ]
            )
        for alpha in self.multi_indices:
            term = np.ones(germ_points.shape[0])
            for d, order in enumerate(alpha):
                if order:
                    term = term * one_d[order][:, d]
            columns.append(term)
        return np.column_stack(columns)

    def _map_germ(self, germ_points):
        mapped = np.empty_like(np.asarray(germ_points, dtype=float))
        germ_points = np.asarray(germ_points, dtype=float)
        for d, dist in enumerate(self.distributions):
            if self.basis == "legendre":
                cdf = np.clip(
                    0.5 * (germ_points[:, d] + 1.0), 1e-12, 1.0 - 1e-12
                )
                mapped[:, d] = dist.ppf(cdf)
            elif isinstance(dist, NormalDistribution):
                mapped[:, d] = dist.mu + dist.sigma * germ_points[:, d]
            else:
                cdf = 0.5 * (1.0 + special.erf(
                    germ_points[:, d] / np.sqrt(2.0)
                ))
                cdf = np.clip(cdf, 1e-12, 1.0 - 1e-12)
                mapped[:, d] = dist.ppf(cdf)
        return mapped

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, num_samples=None, seed=0, oversampling=2.0):
        """Fit the coefficients on fresh Gaussian germ samples.

        ``num_samples`` defaults to ``oversampling * num_terms`` (the
        usual 2x rule for stable least squares).
        """
        if num_samples is None:
            num_samples = int(np.ceil(oversampling * self.num_terms))
        if num_samples < self.num_terms:
            raise SamplingError(
                f"need at least {self.num_terms} samples for "
                f"{self.num_terms} terms, got {num_samples}"
            )
        if self.model is None:
            raise SamplingError(
                "no model attached; use fit_from_samples for precomputed "
                "evaluations"
            )
        uniform = random_sampler(num_samples, self.dimension, seed)
        if self.basis == "legendre":
            germ = 2.0 * uniform - 1.0
        else:
            germ = NormalDistribution(0.0, 1.0).ppf(
                np.clip(uniform, 1e-12, 1.0 - 1e-12)
            )
        parameters = self._map_germ(germ)
        outputs = np.stack(
            [
                np.asarray(self.model(parameters[i]), dtype=float)
                for i in range(num_samples)
            ]
        )
        return self.fit_from_samples(germ, outputs)

    def fit_from_samples(self, germ_points, outputs):
        """Fit the coefficients from precomputed model evaluations.

        Parameters
        ----------
        germ_points:
            ``(M, dimension)`` germ-space sample matrix -- standard
            normal for the Hermite basis, ``2 u - 1`` of unit-cube rows
            ``u`` for the Legendre basis.  Campaign unit points convert
            directly: ``2 * spec.unit_points(indices) - 1``.
        outputs:
            ``(M, *output_shape)`` model outputs of those samples (e.g.
            the checkpointed chunk outputs of a campaign -- no fresh
            solves needed).
        """
        germ_points = np.asarray(germ_points, dtype=float)
        outputs = np.asarray(outputs, dtype=float)
        num_samples = germ_points.shape[0] if germ_points.ndim == 2 else 0
        if outputs.shape[:1] != (num_samples,):
            raise SamplingError(
                f"{outputs.shape[0] if outputs.ndim else 0} outputs for "
                f"{num_samples} germ points"
            )
        if num_samples < self.num_terms:
            raise SamplingError(
                f"need at least {self.num_terms} samples for "
                f"{self.num_terms} terms, got {num_samples}"
            )
        self._output_shape = outputs.shape[1:]
        flat = outputs.reshape(num_samples, -1)
        design = self.design_matrix(germ_points)
        coefficients, *_ = np.linalg.lstsq(design, flat, rcond=None)
        self._coefficients = coefficients
        return self

    def _require_fit(self):
        if self._coefficients is None:
            raise SamplingError("PCE not fitted; call fit() first")

    # ------------------------------------------------------------------
    # Statistics from coefficients
    # ------------------------------------------------------------------
    @property
    def mean(self):
        """Mean = coefficient of the constant polynomial."""
        self._require_fit()
        return self._coefficients[0].reshape(self._output_shape)

    @property
    def variance(self):
        """Variance = sum of squared non-constant coefficients."""
        self._require_fit()
        return (
            np.sum(self._coefficients[1:] ** 2, axis=0)
            .reshape(self._output_shape)
        )

    @property
    def std(self):
        """Standard deviation of the surrogate."""
        return np.sqrt(self.variance)

    def sobol_indices(self):
        """First-order and total Sobol indices from the coefficients.

        Returns ``(first, total)`` arrays of shape
        ``(dimension, *output_shape)``; zero-variance outputs yield zeros.
        """
        self._require_fit()
        squared = self._coefficients**2
        variance = np.sum(squared[1:], axis=0)
        safe_variance = np.where(variance > 0.0, variance, 1.0)
        first = np.zeros((self.dimension,) + squared.shape[1:])
        total = np.zeros_like(first)
        for index, alpha in enumerate(self.multi_indices):
            if index == 0:
                continue
            active = [d for d, order in enumerate(alpha) if order]
            for d in active:
                total[d] += squared[index]
            if len(active) == 1:
                first[active[0]] += squared[index]
        first = first / safe_variance
        total = total / safe_variance
        shape = (self.dimension,) + self._output_shape
        return first.reshape(shape), total.reshape(shape)

    # ------------------------------------------------------------------
    # Surrogate evaluation
    # ------------------------------------------------------------------
    def __call__(self, parameters):
        """Evaluate the surrogate at physical parameter vector(s)."""
        self._require_fit()
        parameters = np.atleast_2d(np.asarray(parameters, dtype=float))
        germ = np.empty_like(parameters)
        for d, dist in enumerate(self.distributions):
            if self.basis == "legendre":
                cdf = np.clip(dist.cdf(parameters[:, d]), 0.0, 1.0)
                germ[:, d] = 2.0 * cdf - 1.0
            elif isinstance(dist, NormalDistribution):
                germ[:, d] = (parameters[:, d] - dist.mu) / dist.sigma
            else:
                cdf = np.clip(dist.cdf(parameters[:, d]), 1e-12, 1 - 1e-12)
                germ[:, d] = NormalDistribution(0.0, 1.0).ppf(cdf)
        design = self.design_matrix(germ)
        flat = design @ self._coefficients
        result = flat.reshape((parameters.shape[0],) + self._output_shape)
        if result.shape[0] == 1:
            return result[0]
        return result
