"""Variance-based global sensitivity analysis (Sobol indices).

The paper investigates "the global sensitivity of the bonding wires'
temperatures w.r.t. their geometric parameters" (Section I).  This module
computes first-order, total, closed second-order and grouped Sobol
indices with the Saltelli sampling scheme and Jansen's estimators,
answering which wire's length uncertainty -- and which wire *pair*
interaction -- drives the hottest-wire temperature variance.

Layering: the estimator core is a pure reduction over already-evaluated
Saltelli blocks and supports vector-valued quantities of interest.  Its
canonical implementation is the :class:`StreamingJansenAccumulator`,
which folds blocks of evaluations into running sums row by row -- the
in-memory entry points (:func:`jansen_indices`,
:func:`jansen_second_order`, :func:`jansen_group_indices`) feed it with
one call, and the distributed campaign
(:mod:`repro.campaign.sensitivity`) feeds it chunk by chunk, so both
paths produce bit-identical indices for the same design regardless of
chunk size, worker count or kill/resume history.  The in-process driver
:func:`sobol_indices` evaluates a scalar model serially on top of the
same core.
"""

import numpy as np

from ..errors import SamplingError
from .sampling import map_to_distributions, random_sampler

#: ``SeedSequence`` spawn key of the bootstrap stream.  Sample streams use
#: ``spawn_key=(sample_index,)``; this constant is far above any sample
#: count, so bootstrap and sample draws never collide for one seed.
_BOOTSTRAP_SPAWN_KEY = 0xB0075


def saltelli_sample(num_base_samples, dimension, seed=None):
    """Saltelli design: matrices ``A``, ``B`` and the ``AB_i`` hybrids.

    Returns ``(a, b, ab)`` with ``ab`` shaped ``(d, M, d)``.  Total model
    cost of a first-order/total Sobol analysis is ``M (d + 2)``
    evaluations; a second-order analysis adds ``AB_ij`` pair blocks
    (``A`` with columns ``i`` and ``j`` from ``B`` -- see
    :func:`sobol_indices` with ``second_order=True`` and the campaign
    :class:`repro.campaign.sensitivity.SaltelliPlan`).
    """
    num_base_samples = int(num_base_samples)
    dimension = int(dimension)
    if num_base_samples < 2:
        raise SamplingError("need at least 2 base samples")
    stream = random_sampler(2 * num_base_samples, dimension, seed)
    a = stream[:num_base_samples]
    b = stream[num_base_samples:]
    ab = np.empty((dimension, num_base_samples, dimension))
    for i in range(dimension):
        ab[i] = a.copy()
        ab[i][:, i] = b[:, i]
    return a, b, ab


def all_pairs(dimension):
    """Every ``(i, j)`` with ``i < j`` in lexicographic order."""
    dimension = int(dimension)
    return [(i, j) for i in range(dimension)
            for j in range(i + 1, dimension)]


def _column_index(entry):
    """``entry`` as an exact column index (no silent float truncation)."""
    if isinstance(entry, bool) or not isinstance(
            entry, (int, np.integer)):
        raise SamplingError(
            f"column index {entry!r} is not an integer"
        )
    return int(entry)


def normalize_pairs(pairs, dimension):
    """Validated list of ``(i, j)`` column pairs (``i < j``, in range)."""
    dimension = int(dimension)
    normalized = []
    seen = set()
    for pair in pairs:
        pair = tuple(_column_index(entry) for entry in pair)
        if len(pair) != 2 or pair[0] >= pair[1]:
            raise SamplingError(
                f"pair {pair} must be two distinct columns (i, j) with "
                "i < j"
            )
        if not (0 <= pair[0] and pair[1] < dimension):
            raise SamplingError(
                f"pair {pair} has columns outside [0, {dimension})"
            )
        if pair in seen:
            raise SamplingError(f"duplicate pair {pair}")
        seen.add(pair)
        normalized.append(pair)
    return normalized


def normalize_groups(groups, dimension):
    """Validated list of factor groups (sorted unique column tuples)."""
    dimension = int(dimension)
    normalized = []
    seen = set()
    for group in groups:
        columns = tuple(sorted(_column_index(entry) for entry in group))
        if not columns:
            raise SamplingError("factor groups must be non-empty")
        if len(set(columns)) != len(columns):
            raise SamplingError(
                f"group {list(group)} repeats a column"
            )
        if columns[0] < 0 or columns[-1] >= dimension:
            raise SamplingError(
                f"group {list(columns)} has columns outside "
                f"[0, {dimension})"
            )
        if columns in seen:
            raise SamplingError(f"duplicate group {list(columns)}")
        seen.add(columns)
        normalized.append(columns)
    return normalized


class SobolIndices:
    """First-order and total Sobol indices per input dimension.

    ``first_order`` and ``total`` are shaped ``(d,)`` for a scalar
    quantity of interest and ``(d, *output_shape)`` for vector-valued
    ones; ``variance`` is a float (scalar QoI) or an ``output_shape``
    array.  ``clipped`` flags entries whose raw first-order estimate
    exceeded the total index (a finite-``M`` sampling artifact); those
    entries are reported clipped to the total index.
    """

    #: Optional :class:`SecondOrderIndices` attached by drivers that
    #: also evaluated the ``AB_ij`` pair blocks.
    second_order = None

    def __init__(self, first_order, total, variance, num_evaluations,
                 clipped=None):
        self.first_order = np.asarray(first_order, dtype=float)
        self.total = np.asarray(total, dtype=float)
        if np.ndim(variance) == 0:
            self.variance = float(variance)
        else:
            self.variance = np.asarray(variance, dtype=float)
        self.num_evaluations = int(num_evaluations)
        if clipped is None:
            clipped = np.zeros(self.first_order.shape, dtype=bool)
        self.clipped = np.asarray(clipped, dtype=bool)

    @property
    def num_clipped(self):
        """How many first-order entries were clipped to their total."""
        return int(np.count_nonzero(self.clipped))

    def ranking(self, component=None):
        """Input dimensions ordered by decreasing total index.

        For a vector QoI pass ``component`` (an index into the flattened
        output) to pick which output entry to rank by.
        """
        return _ranked(self.total, component)

    def __repr__(self):
        return (
            f"SobolIndices(S={np.round(self.first_order, 3).tolist()}, "
            f"ST={np.round(self.total, 3).tolist()})"
        )


class SecondOrderIndices:
    """Closed second-order and interaction Sobol indices per input pair.

    For pair ``(i, j)`` the ``AB_ij`` block (``A`` with columns ``i``
    *and* ``j`` from ``B``) yields, via the same Jansen expressions as
    the first-order path:

    * ``closed``: the closed index ``S^c_ij = V(E[f | x_i, x_j]) / V``,
    * ``total``: the total effect of the pair treated as one group,
    * ``interaction``: the pure interaction ``S_ij = S^c_ij - S_i - S_j``
      (computed from the *raw* first-order estimates, then negative
      finite-``M`` artifacts are clipped to zero and flagged in
      ``clipped``).

    Arrays are shaped ``(num_pairs,)`` for scalar QoIs and
    ``(num_pairs, *output_shape)`` otherwise; zero-variance output
    components report ``NaN`` (the same degeneracy contract as
    :class:`SobolIndices`).
    """

    def __init__(self, pairs, closed, interaction, total, variance,
                 num_evaluations, clipped=None):
        self.pairs = [tuple(int(entry) for entry in pair)
                      for pair in pairs]
        self.closed = np.asarray(closed, dtype=float)
        self.interaction = np.asarray(interaction, dtype=float)
        self.total = np.asarray(total, dtype=float)
        if np.ndim(variance) == 0:
            self.variance = float(variance)
        else:
            self.variance = np.asarray(variance, dtype=float)
        self.num_evaluations = int(num_evaluations)
        if clipped is None:
            clipped = np.zeros(self.interaction.shape, dtype=bool)
        self.clipped = np.asarray(clipped, dtype=bool)

    @property
    def num_pairs(self):
        return len(self.pairs)

    def pair_labels(self):
        """Human-readable pair names (``"x00*x03"``)."""
        return [f"x{i:02d}*x{j:02d}" for i, j in self.pairs]

    def ranking(self, component=None):
        """Pair positions ordered by decreasing interaction index."""
        return _ranked(self.interaction, component)

    def __repr__(self):
        return (
            f"SecondOrderIndices({self.num_pairs} pairs, "
            f"S_ij={np.round(self.interaction, 3).tolist()})"
        )


class GroupIndices:
    """Closed and total Sobol indices of grouped factors.

    Group ``g`` (any column subset) gets one ``AB_g`` block -- ``A``
    with every column in ``g`` from ``B`` -- reduced with the same
    Jansen expressions: ``closed`` is ``V(E[f | x_g]) / V`` and
    ``total`` the total effect of the group.  Arrays are shaped
    ``(num_groups, *output_shape)``; zero-variance output components
    report ``NaN``.
    """

    def __init__(self, groups, closed, total, variance, num_evaluations):
        self.groups = [tuple(int(entry) for entry in group)
                       for group in groups]
        self.closed = np.asarray(closed, dtype=float)
        self.total = np.asarray(total, dtype=float)
        if np.ndim(variance) == 0:
            self.variance = float(variance)
        else:
            self.variance = np.asarray(variance, dtype=float)
        self.num_evaluations = int(num_evaluations)

    @property
    def num_groups(self):
        return len(self.groups)

    def group_labels(self):
        """Human-readable group names (``"{x00,x02}"``)."""
        return ["{" + ",".join(f"x{i:02d}" for i in group) + "}"
                for group in self.groups]

    def ranking(self, component=None):
        """Group positions ordered by decreasing total index."""
        return _ranked(self.total, component)

    def __repr__(self):
        return (
            f"GroupIndices({self.num_groups} groups, "
            f"ST={np.round(self.total, 3).tolist()})"
        )


def _ranked(values, component):
    values = np.asarray(values, dtype=float)
    if values.ndim > 1:
        if component is None:
            raise SamplingError(
                "vector quantity of interest: pass component= to "
                "ranking() to select an output entry"
            )
        values = values.reshape(values.shape[0], -1)[:, int(component)]
    return list(np.argsort(-values))


class JansenEstimates:
    """Everything one finalized Jansen reduction produced.

    Attributes are ``None`` for block families the design did not
    carry: ``first_order`` (:class:`SobolIndices`), ``second_order``
    (:class:`SecondOrderIndices`), ``groups`` (:class:`GroupIndices`).
    """

    def __init__(self, first_order=None, second_order=None, groups=None):
        self.first_order = first_order
        self.second_order = second_order
        self.groups = groups

    def __repr__(self):
        parts = [name for name, value in (
            ("first_order", self.first_order),
            ("second_order", self.second_order),
            ("groups", self.groups),
        ) if value is not None]
        return f"JansenEstimates({', '.join(parts)})"


class StreamingJansenAccumulator:
    """Fold Saltelli evaluations into Jansen running sums, chunk by chunk.

    The canonical Jansen reduction: every entry point (the in-memory
    :func:`jansen_indices` family and the distributed campaign) feeds
    this accumulator, which processes evaluations **row by row in
    global-index order** -- so the floating-point operation sequence is
    a pure function of the design, independent of how the stream was
    chunked.  Feeding chunk sizes 1, 7 or the whole design produces
    bit-identical indices.

    Memory is the point: only the ``A`` and ``B`` blocks (``2 M K``
    floats, needed to pair with later rows) and one ``(K,)`` running sum
    per swap block are retained -- the full
    ``(M (2 + d + pairs + groups), K)`` output matrix of a huge vector
    QoI (e.g. full ``(P, W)`` temperature traces) never materializes.

    Usage::

        acc = StreamingJansenAccumulator(m, d, pairs=[(0, 1)])
        for chunk_indices, chunk_outputs in chunks:  # global-index order
            acc.add(chunk_indices, chunk_outputs)
        estimates = acc.finalize()

    Blocks are laid out ``[A, B, AB_0 .. AB_{d-1}, AB_ij .., AB_g ..]``
    with global index ``(block, row) = divmod(g, M)``, matching
    :class:`repro.campaign.sensitivity.SaltelliPlan`.
    """

    def __init__(self, num_base_samples, dimension, pairs=None, groups=None,
                 include_first_order=True):
        self.num_base_samples = int(num_base_samples)
        self.dimension = int(dimension)
        if self.num_base_samples < 2:
            raise SamplingError("need at least 2 base samples")
        if self.dimension < 1:
            raise SamplingError(
                f"dimension must be >= 1, got {self.dimension}"
            )
        self.include_first_order = bool(include_first_order)
        self.pairs = normalize_pairs(pairs or [], self.dimension)
        self.groups = normalize_groups(groups or [], self.dimension)
        subsets = []
        if self.include_first_order:
            subsets += [(i,) for i in range(self.dimension)]
        subsets += self.pairs
        subsets += list(self.groups)
        if not subsets:
            raise SamplingError(
                "nothing to estimate: enable first-order indices or pass "
                "pairs/groups"
            )
        self._subsets = subsets
        self._next = 0
        self._f_a = None
        self._f_b = None
        self._sums_b = None
        self._sums_a = None
        self._scalar_lists = None
        self._output_shape = None

    @property
    def swap_subsets(self):
        """Column subset of every swap block, in block order.

        The contract shared with :class:`repro.campaign.sensitivity.
        SaltelliPlan` (its ``swap_subsets``): the campaign validates the
        two layouts agree before folding chunks.
        """
        return list(self._subsets)

    @property
    def num_blocks(self):
        """``A``, ``B`` and one swap block per subset."""
        return 2 + len(self._subsets)

    @property
    def num_evaluations(self):
        """Total evaluations the stream must deliver."""
        return self.num_base_samples * self.num_blocks

    @property
    def num_folded(self):
        """Evaluations folded so far."""
        return self._next

    def add(self, indices, outputs):
        """Fold one chunk of evaluations; returns ``self`` for chaining.

        ``indices`` must continue the global stream exactly where the
        previous chunk stopped (the campaign reduce feeds checkpointed
        chunks in chunk-index order, which guarantees this) -- the
        contiguity is what makes the reduction chunk-size invariant
        down to the last bit.
        """
        indices = np.asarray(indices, dtype=int)
        outputs = np.asarray(outputs, dtype=float)
        if indices.ndim != 1 or outputs.shape[:1] != indices.shape:
            raise SamplingError(
                f"chunk outputs shape {outputs.shape} does not match "
                f"{indices.size} indices"
            )
        if indices.size == 0:
            return self
        stop = self._next + indices.size
        if stop > self.num_evaluations or not np.array_equal(
                indices, np.arange(self._next, stop)):
            raise SamplingError(
                f"chunks must arrive in contiguous global-index order: "
                f"expected indices starting at {self._next}, got "
                f"[{indices.min()}, {indices.max()}]"
            )
        if self._output_shape is None:
            self._allocate(outputs.shape[1:])
        elif outputs.shape[1:] != self._output_shape:
            raise SamplingError(
                f"chunk output shape {outputs.shape[1:]} does not match "
                f"earlier chunks {self._output_shape}"
            )
        flat = outputs.reshape(indices.size, -1)
        m = self.num_base_samples
        if self._scalar_lists is not None:
            # Scalar fast path: identical IEEE operations in identical
            # order, on Python floats instead of 1-element arrays
            # (several times less interpreter overhead per row, which
            # dominates the bootstrap's replicate sweeps).
            f_a, f_b, sums_b, sums_a = self._scalar_lists
            values = flat[:, 0].tolist()
            for position in range(indices.size):
                block, row = divmod(self._next + position, m)
                value = values[position]
                if block == 0:
                    f_a[row] = value
                elif block == 1:
                    f_b[row] = value
                else:
                    subset = block - 2
                    diff = f_b[row] - value
                    sums_b[subset] += diff * diff
                    diff = f_a[row] - value
                    sums_a[subset] += diff * diff
        else:
            f_a, f_b = self._f_a, self._f_b
            sums_b, sums_a = self._sums_b, self._sums_a
            for position in range(indices.size):
                block, row = divmod(self._next + position, m)
                value = flat[position]
                if block == 0:
                    f_a[row] = value
                elif block == 1:
                    f_b[row] = value
                else:
                    subset = block - 2
                    diff = f_b[row] - value
                    sums_b[subset] += diff * diff
                    diff = f_a[row] - value
                    sums_a[subset] += diff * diff
        self._next = stop
        return self

    def _allocate(self, output_shape):
        self._output_shape = output_shape
        num_components = int(np.prod(output_shape, dtype=int))
        m = self.num_base_samples
        if num_components == 1:
            self._scalar_lists = (
                [0.0] * m, [0.0] * m,
                [0.0] * len(self._subsets), [0.0] * len(self._subsets),
            )
            return
        self._scalar_lists = None
        self._f_a = np.empty((m, num_components))
        self._f_b = np.empty((m, num_components))
        self._sums_b = np.zeros((len(self._subsets), num_components))
        self._sums_a = np.zeros((len(self._subsets), num_components))

    def state_dict(self):
        """Serializable running state (exact float64 round trip).

        Captures the folded position, retained ``A``/``B`` blocks and the
        per-subset running sums; :meth:`load_state_dict` restores an
        accumulator that continues bit-identically (Python floats and
        float64 arrays round-trip exactly), which is what lets a campaign
        checkpoint its reduction beside the chunk files.
        """
        state = {"num_folded": np.asarray(self._next)}
        if self._output_shape is None:
            return state
        state["output_shape"] = np.asarray(self._output_shape, dtype=int)
        if self._scalar_lists is not None:
            f_a, f_b, sums_b, sums_a = self._scalar_lists
            state["f_a"] = np.asarray(f_a)
            state["f_b"] = np.asarray(f_b)
            state["sums_b"] = np.asarray(sums_b)
            state["sums_a"] = np.asarray(sums_a)
        else:
            state["f_a"] = self._f_a.copy()
            state["f_b"] = self._f_b.copy()
            state["sums_b"] = self._sums_b.copy()
            state["sums_a"] = self._sums_a.copy()
        return state

    def load_state_dict(self, state):
        """Restore :meth:`state_dict` output in place; returns ``self``."""
        self._next = int(np.asarray(state["num_folded"]))
        if "output_shape" not in state:
            self._f_a = self._f_b = self._sums_b = self._sums_a = None
            self._scalar_lists = None
            self._output_shape = None
            return self
        shape = tuple(
            int(v) for v in np.asarray(state["output_shape"]).ravel()
        )
        self._allocate(shape)
        if self._scalar_lists is not None:
            # Scalar fast path: restore the Python-float lists (exact
            # float64 <-> float round trip).
            self._scalar_lists = (
                np.asarray(state["f_a"], dtype=float).ravel().tolist(),
                np.asarray(state["f_b"], dtype=float).ravel().tolist(),
                np.asarray(state["sums_b"], dtype=float).ravel().tolist(),
                np.asarray(state["sums_a"], dtype=float).ravel().tolist(),
            )
        else:
            self._f_a[:] = np.asarray(state["f_a"], dtype=float)
            self._f_b[:] = np.asarray(state["f_b"], dtype=float)
            self._sums_b[:] = np.asarray(state["sums_b"], dtype=float)
            self._sums_a[:] = np.asarray(state["sums_a"], dtype=float)
        return self

    def _materialize_scalar_lists(self):
        """Convert the fast-path Python-float state to the array form
        ``finalize`` reduces (exact: float <-> float64 round-trips)."""
        f_a, f_b, sums_b, sums_a = self._scalar_lists
        self._f_a = np.asarray(f_a).reshape(-1, 1)
        self._f_b = np.asarray(f_b).reshape(-1, 1)
        self._sums_b = np.asarray(sums_b).reshape(-1, 1)
        self._sums_a = np.asarray(sums_a).reshape(-1, 1)
        self._scalar_lists = None

    def finalize(self, num_evaluations=None):
        """Reduce the folded stream into :class:`JansenEstimates`.

        ``S^c_u  = (V - mean((f_B - f_ABu)^2) / 2) / V``
        ``ST_u   = mean((f_A - f_ABu)^2) / (2 V)``

        per swap subset ``u`` and output component, with ``V`` the
        sample variance of the pooled ``A``/``B`` outputs.  A scalar QoI
        with zero variance raises; for vector QoIs only the
        zero-variance components report ``NaN`` (variance 0) -- all of
        them degenerate raises.  ``num_evaluations`` overrides the
        recorded budget (defaults to the stream length).
        """
        if self._next != self.num_evaluations:
            raise SamplingError(
                f"incomplete Saltelli stream: folded {self._next} of "
                f"{self.num_evaluations} evaluations"
            )
        if self._scalar_lists is not None:
            self._materialize_scalar_lists()
        m = self.num_base_samples
        num_components = self._f_a.shape[1]
        variance = np.empty(num_components)
        for component in range(num_components):
            combined = np.concatenate(
                [self._f_a[:, component], self._f_b[:, component]]
            )
            variance[component] = np.var(combined, ddof=1)
        degenerate = variance <= 0.0
        scalar = self._output_shape == ()
        if degenerate.all():
            if scalar:
                raise SamplingError(
                    "model output has zero variance; Sobol indices are "
                    "undefined"
                )
            raise SamplingError(
                "every output component has zero variance; Sobol indices "
                "are undefined"
            )
        variance = np.where(degenerate, 0.0, variance)
        # Masked denominator: degenerate components are overwritten with
        # NaN below, so no division warning can escape.
        safe = np.where(degenerate, 1.0, variance)
        closed = (safe - 0.5 * (self._sums_b / m)) / safe
        total = (0.5 * (self._sums_a / m)) / safe
        closed[:, degenerate] = np.nan
        total[:, degenerate] = np.nan

        if num_evaluations is None:
            num_evaluations = self.num_evaluations
        num_first = self.dimension if self.include_first_order else 0
        num_pairs = len(self.pairs)
        first_raw = closed[:num_first]

        first_order = None
        if self.include_first_order:
            first = np.clip(first_raw, 0.0, None)
            first_total = total[:num_first]
            clipped = first > first_total
            first = np.where(clipped, first_total, first)
            first_order = SobolIndices(
                self._shaped(first, num_first),
                self._shaped(first_total, num_first),
                self._shaped_variance(variance),
                num_evaluations,
                clipped=self._shaped(clipped, num_first),
            )

        second_order = None
        if num_pairs:
            pair_closed = closed[num_first:num_first + num_pairs]
            pair_total = total[num_first:num_first + num_pairs]
            if self.include_first_order:
                interaction_raw = np.stack([
                    pair_closed[p] - first_raw[i] - first_raw[j]
                    for p, (i, j) in enumerate(self.pairs)
                ])
            else:
                interaction_raw = np.full_like(pair_closed, np.nan)
            pair_clipped = interaction_raw < 0.0
            interaction = np.where(pair_clipped, 0.0, interaction_raw)
            second_order = SecondOrderIndices(
                self.pairs,
                self._shaped(pair_closed, num_pairs),
                self._shaped(interaction, num_pairs),
                self._shaped(pair_total, num_pairs),
                self._shaped_variance(variance),
                num_evaluations,
                clipped=self._shaped(pair_clipped, num_pairs),
            )

        groups = None
        if self.groups:
            start = num_first + num_pairs
            groups = GroupIndices(
                self.groups,
                self._shaped(closed[start:], len(self.groups)),
                self._shaped(total[start:], len(self.groups)),
                self._shaped_variance(variance),
                num_evaluations,
            )
        return JansenEstimates(first_order, second_order, groups)

    def _shaped(self, values, leading):
        if self._output_shape == ():
            return values[:, 0]
        return values.reshape((leading,) + self._output_shape)

    def _shaped_variance(self, variance):
        if self._output_shape == ():
            return variance[0]
        return variance.reshape(self._output_shape)

    def __repr__(self):
        return (
            f"StreamingJansenAccumulator(M={self.num_base_samples}, "
            f"d={self.dimension}, pairs={len(self.pairs)}, "
            f"groups={len(self.groups)}, "
            f"folded={self._next}/{self.num_evaluations})"
        )


def _validated_blocks(f_a, f_b, f_swaps, name):
    f_a = np.asarray(f_a, dtype=float)
    f_b = np.asarray(f_b, dtype=float)
    f_swaps = np.asarray(f_swaps, dtype=float)
    if f_a.shape != f_b.shape:
        raise SamplingError(
            f"f_a shape {f_a.shape} does not match f_b shape {f_b.shape}"
        )
    if f_swaps.ndim != f_a.ndim + 1 or f_swaps.shape[1:] != f_a.shape:
        raise SamplingError(
            f"{name} shape {f_swaps.shape} does not match (n, *{f_a.shape})"
        )
    if f_a.shape[0] < 2:
        raise SamplingError("need at least 2 base samples")
    return f_a, f_b, f_swaps


def _feed_blocks(accumulator, f_a, f_b, *swap_families):
    """Feed in-memory blocks through the canonical streaming order."""
    m = f_a.shape[0]
    accumulator.add(np.arange(m), f_a)
    accumulator.add(np.arange(m, 2 * m), f_b)
    offset = 2 * m
    for family in swap_families:
        for block in family:
            accumulator.add(np.arange(offset, offset + m), block)
            offset += m
    return accumulator


def jansen_indices(f_a, f_b, f_ab, num_evaluations=None):
    """Jansen's estimators over already-evaluated Saltelli blocks.

    ``S_i  = (V - mean((f_B - f_ABi)^2) / 2) / V``
    ``ST_i = mean((f_A - f_ABi)^2) / (2 V)``

    Parameters
    ----------
    f_a, f_b:
        Model outputs on the ``A`` / ``B`` matrices, shaped ``(M,)`` for
        a scalar QoI or ``(M, *output_shape)`` for vector-valued ones.
    f_ab:
        Outputs on the hybrid matrices, shaped ``(d, M, *output_shape)``.
    num_evaluations:
        Recorded evaluation budget (defaults to ``M (d + 2)``).

    Negative first-order estimates are clipped at zero; estimates that
    exceed their total index (both possible at finite ``M``) are clipped
    to the total and flagged in :attr:`SobolIndices.clipped`.  The
    reduction delegates to :class:`StreamingJansenAccumulator`, so any
    chunked/distributed evaluation of the same design reproduces these
    indices bit for bit.

    A scalar QoI with zero output variance raises (indices are
    undefined).  For vector QoIs only the zero-variance components are
    undefined -- temperature traces legitimately hold a constant initial
    row -- so those components report ``NaN`` indices and variance 0
    while every varying component still reduces; it raises only when
    *no* component varies.
    """
    f_a, f_b, f_ab = _validated_blocks(f_a, f_b, f_ab, "f_ab")
    accumulator = StreamingJansenAccumulator(
        f_a.shape[0], f_ab.shape[0]
    )
    _feed_blocks(accumulator, f_a, f_b, f_ab)
    return accumulator.finalize(num_evaluations=num_evaluations).first_order


def jansen_second_order(f_a, f_b, f_ab, f_ab_pairs, pairs=None,
                        num_evaluations=None):
    """Closed second-order / interaction indices from ``AB_ij`` blocks.

    ``f_ab`` holds the first-order hybrid blocks (``(d, M, *out)``, as
    for :func:`jansen_indices` -- needed because the interaction
    ``S_ij = S^c_ij - S_i - S_j`` subtracts the raw first-order
    estimates) and ``f_ab_pairs`` the pair blocks
    (``(num_pairs, M, *out)``); ``pairs`` lists the ``(i, j)`` column
    pair of each block (default: every pair in lexicographic order).
    Zero-variance output components report ``NaN`` for every pair
    quantity -- the same degeneracy contract as the first-order path --
    instead of emitting division warnings.
    """
    f_a, f_b, f_ab = _validated_blocks(f_a, f_b, f_ab, "f_ab")
    f_a, f_b, f_ab_pairs = _validated_blocks(
        f_a, f_b, f_ab_pairs, "f_ab_pairs"
    )
    dimension = f_ab.shape[0]
    if pairs is None:
        pairs = all_pairs(dimension)
    pairs = normalize_pairs(pairs, dimension)
    if len(pairs) != f_ab_pairs.shape[0]:
        raise SamplingError(
            f"{f_ab_pairs.shape[0]} pair blocks do not match "
            f"{len(pairs)} pairs"
        )
    accumulator = StreamingJansenAccumulator(
        f_a.shape[0], dimension, pairs=pairs
    )
    _feed_blocks(accumulator, f_a, f_b, f_ab, f_ab_pairs)
    return accumulator.finalize(
        num_evaluations=num_evaluations
    ).second_order


def jansen_group_indices(f_a, f_b, f_ab_groups, groups, dimension=None,
                         num_evaluations=None):
    """Closed/total Sobol indices of factor groups from ``AB_g`` blocks.

    ``f_ab_groups`` is shaped ``(num_groups, M, *out)``; ``groups``
    lists the column subset of each block.  ``dimension`` defaults to
    the highest referenced column + 1.  Zero-variance output components
    report ``NaN``.
    """
    f_a, f_b, f_ab_groups = _validated_blocks(
        f_a, f_b, f_ab_groups, "f_ab_groups"
    )
    groups = list(groups)
    if len(groups) != f_ab_groups.shape[0]:
        raise SamplingError(
            f"{f_ab_groups.shape[0]} group blocks do not match "
            f"{len(groups)} groups"
        )
    if dimension is None:
        dimension = 1 + max(
            (_column_index(column) for group in groups
             for column in group),
            default=0,
        )
    accumulator = StreamingJansenAccumulator(
        f_a.shape[0], dimension, groups=groups, include_first_order=False
    )
    _feed_blocks(accumulator, f_a, f_b, f_ab_groups)
    return accumulator.finalize(num_evaluations=num_evaluations).groups


class BootstrapInterval:
    """Percentile-bootstrap confidence bounds of Sobol estimates.

    First-order/total arrays are shaped like
    :attr:`SobolIndices.first_order`.  When the bootstrap also covered
    second-order or group blocks, the corresponding bounds are shaped
    like :attr:`SecondOrderIndices.interaction` /
    :attr:`GroupIndices.total`; otherwise they are ``None``.
    """

    def __init__(self, first_order_lower, first_order_upper, total_lower,
                 total_upper, num_replicates, confidence,
                 closed_second_order_lower=None,
                 closed_second_order_upper=None,
                 second_order_lower=None, second_order_upper=None,
                 group_closed_lower=None, group_closed_upper=None,
                 group_total_lower=None, group_total_upper=None):
        self.first_order_lower = np.asarray(first_order_lower, dtype=float)
        self.first_order_upper = np.asarray(first_order_upper, dtype=float)
        self.total_lower = np.asarray(total_lower, dtype=float)
        self.total_upper = np.asarray(total_upper, dtype=float)
        self.num_replicates = int(num_replicates)
        self.confidence = float(confidence)
        self.closed_second_order_lower = _optional_array(
            closed_second_order_lower
        )
        self.closed_second_order_upper = _optional_array(
            closed_second_order_upper
        )
        self.second_order_lower = _optional_array(second_order_lower)
        self.second_order_upper = _optional_array(second_order_upper)
        self.group_closed_lower = _optional_array(group_closed_lower)
        self.group_closed_upper = _optional_array(group_closed_upper)
        self.group_total_lower = _optional_array(group_total_lower)
        self.group_total_upper = _optional_array(group_total_upper)

    @property
    def has_second_order(self):
        return self.second_order_lower is not None

    @property
    def has_groups(self):
        return self.group_total_lower is not None

    def __repr__(self):
        return (
            f"BootstrapInterval({self.confidence:.0%}, "
            f"B={self.num_replicates})"
        )


def _optional_array(values):
    if values is None:
        return None
    return np.asarray(values, dtype=float)


def _replicate_estimates(f_a, f_b, f_ab, f_ab_pairs, pairs, f_ab_groups,
                         groups):
    """One vectorized Jansen evaluation of a (resampled) design.

    Same expressions and degeneracy contract as
    :meth:`StreamingJansenAccumulator.finalize`, but with vectorized
    ``np.mean`` reductions: bootstrap replicates only need per-seed
    determinism, not the streaming bit-for-bit property, and the
    vectorized form keeps the replicate sweep out of the per-row Python
    loop (an order of magnitude for vector QoIs).  Raises
    :class:`SamplingError` when every output component is degenerate.
    """
    num_base_samples = f_a.shape[0]
    output_shape = f_a.shape[1:]
    flat_a = f_a.reshape(num_base_samples, -1)
    flat_b = f_b.reshape(num_base_samples, -1)
    num_components = flat_a.shape[1]
    variance = np.var(np.concatenate([flat_a, flat_b]), axis=0, ddof=1)
    degenerate = variance <= 0.0
    if degenerate.all():
        raise SamplingError(
            "every output component has zero variance; Sobol indices "
            "are undefined"
        )
    safe = np.where(degenerate, 1.0, variance)

    def closed_and_total(blocks):
        flat = blocks.reshape(
            blocks.shape[0], num_base_samples, num_components
        )
        mean_b = np.mean((flat_b[np.newaxis] - flat) ** 2, axis=1)
        mean_a = np.mean((flat_a[np.newaxis] - flat) ** 2, axis=1)
        closed = (safe - 0.5 * mean_b) / safe
        total = (0.5 * mean_a) / safe
        closed[:, degenerate] = np.nan
        total[:, degenerate] = np.nan
        return closed, total

    def shaped(values):
        if output_shape == ():
            return values[:, 0]
        return values.reshape((values.shape[0],) + output_shape)

    first_raw, first_total = closed_and_total(f_ab)
    first = np.clip(first_raw, 0.0, None)
    first = np.where(first > first_total, first_total, first)
    estimates = {"first": shaped(first), "total": shaped(first_total)}
    if f_ab_pairs is not None:
        pair_closed, _ = closed_and_total(f_ab_pairs)
        interaction = np.stack([
            pair_closed[position] - first_raw[i] - first_raw[j]
            for position, (i, j) in enumerate(pairs)
        ])
        interaction = np.where(interaction < 0.0, 0.0, interaction)
        estimates["pair_closed"] = shaped(pair_closed)
        estimates["interaction"] = shaped(interaction)
    if f_ab_groups is not None:
        group_closed, group_total = closed_and_total(f_ab_groups)
        estimates["group_closed"] = shaped(group_closed)
        estimates["group_total"] = shaped(group_total)
    return estimates


def jansen_bootstrap(f_a, f_b, f_ab, num_replicates=100, seed=0,
                     confidence=0.95, f_ab_pairs=None, pairs=None,
                     f_ab_groups=None, groups=None):
    """Bootstrap confidence intervals for the Jansen estimators.

    Resamples the ``M`` base-design rows with replacement (the standard
    Saltelli bootstrap: a row carries its ``A``, ``B`` and every swap
    block evaluation, preserving the pairing), re-estimates the indices
    per replicate and returns percentile bounds.  Deterministic for a
    given ``seed``, so a resumed campaign reports the same intervals as
    an uninterrupted one.  (Replicates reduce vectorized -- the
    streaming bit-for-bit guarantee covers the point estimates, not the
    resampled quantile bounds.)

    Pass ``f_ab_pairs``/``pairs`` and/or ``f_ab_groups``/``groups`` (as
    in :func:`jansen_second_order` / :func:`jansen_group_indices`) to
    bootstrap the second-order and group indices in the same replicate
    sweep; zero-variance output components propagate ``NaN`` bounds
    instead of raising or warning.
    """
    f_a, f_b, f_ab = _validated_blocks(f_a, f_b, f_ab, "f_ab")
    num_replicates = int(num_replicates)
    if num_replicates < 1:
        raise SamplingError(
            f"num_replicates must be >= 1, got {num_replicates}"
        )
    if not 0.0 < confidence < 1.0:
        raise SamplingError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    if pairs is not None and f_ab_pairs is None:
        raise SamplingError(
            "pairs= needs the matching f_ab_pairs evaluation blocks"
        )
    if groups is not None and f_ab_groups is None:
        raise SamplingError(
            "groups= needs the matching f_ab_groups evaluation blocks"
        )
    dimension = f_ab.shape[0]
    if f_ab_pairs is not None:
        f_a, f_b, f_ab_pairs = _validated_blocks(
            f_a, f_b, f_ab_pairs, "f_ab_pairs"
        )
        if pairs is None:
            pairs = all_pairs(dimension)
        pairs = normalize_pairs(pairs, dimension)
        if len(pairs) != f_ab_pairs.shape[0]:
            raise SamplingError(
                f"{f_ab_pairs.shape[0]} pair blocks do not match "
                f"{len(pairs)} pairs"
            )
    if f_ab_groups is not None:
        if groups is None:
            raise SamplingError(
                "f_ab_groups needs the matching groups= column subsets"
            )
        f_a, f_b, f_ab_groups = _validated_blocks(
            f_a, f_b, f_ab_groups, "f_ab_groups"
        )
        groups = normalize_groups(groups, dimension)
        if len(groups) != f_ab_groups.shape[0]:
            raise SamplingError(
                f"{f_ab_groups.shape[0]} group blocks do not match "
                f"{len(groups)} groups"
            )

    num_base_samples = f_a.shape[0]
    rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=int(seed), spawn_key=(_BOOTSTRAP_SPAWN_KEY,)
        )
    )
    firsts, totals = [], []
    pair_closeds, interactions = [], []
    group_closeds, group_totals = [], []
    for _ in range(num_replicates):
        rows = rng.integers(0, num_base_samples, size=num_base_samples)
        try:
            estimates = _replicate_estimates(
                f_a[rows], f_b[rows], f_ab[:, rows],
                f_ab_pairs[:, rows] if f_ab_pairs is not None else None,
                pairs,
                f_ab_groups[:, rows] if f_ab_groups is not None else None,
                groups,
            )
        except SamplingError:
            # Degenerate resample (zero variance); draw again implicitly
            # by skipping -- the replicate count below reflects it.
            continue
        firsts.append(estimates["first"])
        totals.append(estimates["total"])
        if f_ab_pairs is not None:
            pair_closeds.append(estimates["pair_closed"])
            interactions.append(estimates["interaction"])
        if f_ab_groups is not None:
            group_closeds.append(estimates["group_closed"])
            group_totals.append(estimates["group_total"])
    if not firsts:
        raise SamplingError(
            "every bootstrap replicate had zero output variance"
        )
    alpha = 0.5 * (1.0 - confidence)

    def bounds(stack):
        if not stack:
            return None, None
        stacked = np.stack(stack)
        return (np.quantile(stacked, alpha, axis=0),
                np.quantile(stacked, 1.0 - alpha, axis=0))

    first_lower, first_upper = bounds(firsts)
    total_lower, total_upper = bounds(totals)
    closed_lower, closed_upper = bounds(pair_closeds)
    interaction_lower, interaction_upper = bounds(interactions)
    group_closed_lower, group_closed_upper = bounds(group_closeds)
    group_total_lower, group_total_upper = bounds(group_totals)
    return BootstrapInterval(
        first_lower, first_upper, total_lower, total_upper,
        len(firsts), confidence,
        closed_second_order_lower=closed_lower,
        closed_second_order_upper=closed_upper,
        second_order_lower=interaction_lower,
        second_order_upper=interaction_upper,
        group_closed_lower=group_closed_lower,
        group_closed_upper=group_closed_upper,
        group_total_lower=group_total_lower,
        group_total_upper=group_total_upper,
    )


def sobol_indices(model, distributions, dimension, num_base_samples=256,
                  seed=None, second_order=False):
    """Estimate Sobol indices of a scalar model output, in process.

    Serial legacy driver: evaluates the full Saltelli design with a
    Python loop and reduces with :func:`jansen_indices`.  With
    ``second_order=True`` the ``AB_ij`` pair blocks are evaluated too
    (cost ``M (d + 2 + d (d - 1) / 2)``) and the returned
    :class:`SobolIndices` carries a :class:`SecondOrderIndices` on its
    ``second_order`` attribute (``None`` otherwise).  Scalar outputs
    only -- vector-valued quantities of interest (and parallel or
    resumable execution) go through the sensitivity campaign
    (:func:`repro.campaign.sensitivity.run_sensitivity_campaign`), which
    reproduces this function bit for bit for the ``"random"`` sampler
    and the same seed.
    """
    num_base_samples = int(num_base_samples)
    dimension = int(dimension)
    a_unit, b_unit, ab_unit = saltelli_sample(num_base_samples, dimension,
                                              seed)
    a = map_to_distributions(a_unit, distributions)
    b = map_to_distributions(b_unit, distributions)

    def evaluate(matrix):
        values = np.empty(matrix.shape[0])
        for row in range(matrix.shape[0]):
            output = np.asarray(model(matrix[row]), dtype=float)
            if output.size != 1:
                raise SamplingError(
                    f"sobol_indices expects a scalar model output, got "
                    f"shape {output.shape}; use the sensitivity campaign "
                    "(repro.campaign.sensitivity) for vector-valued "
                    "quantities of interest"
                )
            values[row] = output.reshape(())
        return values

    f_a = evaluate(a)
    f_b = evaluate(b)
    f_ab = np.empty((dimension, num_base_samples))
    for i in range(dimension):
        f_ab[i] = evaluate(map_to_distributions(ab_unit[i], distributions))
    pairs = all_pairs(dimension) if second_order else []
    if not pairs:
        return jansen_indices(f_a, f_b, f_ab)
    f_ab_pairs = np.empty((len(pairs), num_base_samples))
    for position, (i, j) in enumerate(pairs):
        hybrid = a_unit.copy()
        hybrid[:, i] = b_unit[:, i]
        hybrid[:, j] = b_unit[:, j]
        f_ab_pairs[position] = evaluate(
            map_to_distributions(hybrid, distributions)
        )
    accumulator = StreamingJansenAccumulator(
        num_base_samples, dimension, pairs=pairs
    )
    _feed_blocks(accumulator, f_a, f_b, f_ab, f_ab_pairs)
    estimates = accumulator.finalize()
    indices = estimates.first_order
    indices.second_order = estimates.second_order
    return indices
