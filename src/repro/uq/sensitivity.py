"""Variance-based global sensitivity analysis (Sobol indices).

The paper investigates "the global sensitivity of the bonding wires'
temperatures w.r.t. their geometric parameters" (Section I).  This module
computes first-order and total Sobol indices with the Saltelli sampling
scheme and Jansen's estimators, answering which wire's length uncertainty
drives the hottest-wire temperature variance.

Layering: the estimator core (:func:`jansen_indices`,
:func:`jansen_bootstrap`) is a pure reduction over already-evaluated
Saltelli blocks and supports vector-valued quantities of interest; the
in-process driver :func:`sobol_indices` evaluates a scalar model
serially.  The distributed path -- the ``M (d + 2)`` evaluations streamed
through executors with checkpoint/resume -- lives in
:mod:`repro.campaign.sensitivity` and reduces with the same core, so both
paths produce bit-identical indices for the same design.
"""

import numpy as np

from ..errors import SamplingError
from .sampling import map_to_distributions, random_sampler

#: ``SeedSequence`` spawn key of the bootstrap stream.  Sample streams use
#: ``spawn_key=(sample_index,)``; this constant is far above any sample
#: count, so bootstrap and sample draws never collide for one seed.
_BOOTSTRAP_SPAWN_KEY = 0xB0075


def saltelli_sample(num_base_samples, dimension, seed=None):
    """Saltelli design: matrices ``A``, ``B`` and the ``AB_i`` hybrids.

    Returns ``(a, b, ab)`` with ``ab`` shaped ``(d, M, d)``.  Total model
    cost of a Sobol analysis is ``M (d + 2)`` evaluations.
    """
    num_base_samples = int(num_base_samples)
    dimension = int(dimension)
    if num_base_samples < 2:
        raise SamplingError("need at least 2 base samples")
    stream = random_sampler(2 * num_base_samples, dimension, seed)
    a = stream[:num_base_samples]
    b = stream[num_base_samples:]
    ab = np.empty((dimension, num_base_samples, dimension))
    for i in range(dimension):
        ab[i] = a.copy()
        ab[i][:, i] = b[:, i]
    return a, b, ab


class SobolIndices:
    """First-order and total Sobol indices per input dimension.

    ``first_order`` and ``total`` are shaped ``(d,)`` for a scalar
    quantity of interest and ``(d, *output_shape)`` for vector-valued
    ones; ``variance`` is a float (scalar QoI) or an ``output_shape``
    array.  ``clipped`` flags entries whose raw first-order estimate
    exceeded the total index (a finite-``M`` sampling artifact); those
    entries are reported clipped to the total index.
    """

    def __init__(self, first_order, total, variance, num_evaluations,
                 clipped=None):
        self.first_order = np.asarray(first_order, dtype=float)
        self.total = np.asarray(total, dtype=float)
        if np.ndim(variance) == 0:
            self.variance = float(variance)
        else:
            self.variance = np.asarray(variance, dtype=float)
        self.num_evaluations = int(num_evaluations)
        if clipped is None:
            clipped = np.zeros(self.first_order.shape, dtype=bool)
        self.clipped = np.asarray(clipped, dtype=bool)

    @property
    def num_clipped(self):
        """How many first-order entries were clipped to their total."""
        return int(np.count_nonzero(self.clipped))

    def ranking(self, component=None):
        """Input dimensions ordered by decreasing total index.

        For a vector QoI pass ``component`` (an index into the flattened
        output) to pick which output entry to rank by.
        """
        total = self.total
        if total.ndim > 1:
            if component is None:
                raise SamplingError(
                    "vector quantity of interest: pass component= to "
                    "ranking() to select an output entry"
                )
            total = total.reshape(total.shape[0], -1)[:, int(component)]
        return list(np.argsort(-total))

    def __repr__(self):
        return (
            f"SobolIndices(S={np.round(self.first_order, 3).tolist()}, "
            f"ST={np.round(self.total, 3).tolist()})"
        )


def jansen_indices(f_a, f_b, f_ab, num_evaluations=None):
    """Jansen's estimators over already-evaluated Saltelli blocks.

    ``S_i  = (V - mean((f_B - f_ABi)^2) / 2) / V``
    ``ST_i = mean((f_A - f_ABi)^2) / (2 V)``

    Parameters
    ----------
    f_a, f_b:
        Model outputs on the ``A`` / ``B`` matrices, shaped ``(M,)`` for
        a scalar QoI or ``(M, *output_shape)`` for vector-valued ones.
    f_ab:
        Outputs on the hybrid matrices, shaped ``(d, M, *output_shape)``.
    num_evaluations:
        Recorded evaluation budget (defaults to ``M (d + 2)``).

    Negative first-order estimates are clipped at zero; estimates that
    exceed their total index (both possible at finite ``M``) are clipped
    to the total and flagged in :attr:`SobolIndices.clipped`.  Each
    output component reduces over contiguous 1-D views with an identical
    operation order, so any chunked/distributed evaluation of the same
    design reproduces the serial indices bit for bit.

    A scalar QoI with zero output variance raises (indices are
    undefined).  For vector QoIs only the zero-variance components are
    undefined -- temperature traces legitimately hold a constant initial
    row -- so those components report ``NaN`` indices and variance 0
    while every varying component still reduces; it raises only when
    *no* component varies.
    """
    f_a = np.asarray(f_a, dtype=float)
    f_b = np.asarray(f_b, dtype=float)
    f_ab = np.asarray(f_ab, dtype=float)
    if f_a.shape != f_b.shape:
        raise SamplingError(
            f"f_a shape {f_a.shape} does not match f_b shape {f_b.shape}"
        )
    if f_ab.ndim != f_a.ndim + 1 or f_ab.shape[1:] != f_a.shape:
        raise SamplingError(
            f"f_ab shape {f_ab.shape} does not match (d, *{f_a.shape})"
        )
    num_base_samples = f_a.shape[0]
    if num_base_samples < 2:
        raise SamplingError("need at least 2 base samples")
    dimension = f_ab.shape[0]
    output_shape = f_a.shape[1:]

    flat_a = f_a.reshape(num_base_samples, -1)
    flat_b = f_b.reshape(num_base_samples, -1)
    flat_ab = f_ab.reshape(dimension, num_base_samples, -1)
    num_components = flat_a.shape[1]

    first = np.empty((dimension, num_components))
    total = np.empty((dimension, num_components))
    variance = np.empty(num_components)
    num_degenerate = 0
    for component in range(num_components):
        fa = np.ascontiguousarray(flat_a[:, component])
        fb = np.ascontiguousarray(flat_b[:, component])
        combined = np.concatenate([fa, fb])
        v = float(np.var(combined, ddof=1))
        if v <= 0.0:
            if output_shape == ():
                raise SamplingError(
                    "model output has zero variance; Sobol indices are "
                    "undefined"
                )
            num_degenerate += 1
            variance[component] = 0.0
            first[:, component] = np.nan
            total[:, component] = np.nan
            continue
        variance[component] = v
        for i in range(dimension):
            fab = np.ascontiguousarray(flat_ab[i, :, component])
            first[i, component] = (
                v - 0.5 * float(np.mean((fb - fab) ** 2))
            ) / v
            total[i, component] = 0.5 * float(np.mean((fa - fab) ** 2)) / v
    if num_degenerate == num_components:
        raise SamplingError(
            "every output component has zero variance; Sobol indices "
            "are undefined"
        )
    # NaN (degenerate) entries pass through both clips unchanged: clip
    # keeps NaN and `NaN > NaN` is False.
    first = np.clip(first, 0.0, None)
    clipped = first > total
    first = np.where(clipped, total, first)

    if num_evaluations is None:
        num_evaluations = num_base_samples * (dimension + 2)
    if output_shape == ():
        return SobolIndices(first[:, 0], total[:, 0], variance[0],
                            num_evaluations, clipped=clipped[:, 0])
    return SobolIndices(
        first.reshape((dimension,) + output_shape),
        total.reshape((dimension,) + output_shape),
        variance.reshape(output_shape),
        num_evaluations,
        clipped=clipped.reshape((dimension,) + output_shape),
    )


class BootstrapInterval:
    """Percentile-bootstrap confidence bounds of Sobol estimates.

    Arrays are shaped like :attr:`SobolIndices.first_order`.
    """

    def __init__(self, first_order_lower, first_order_upper, total_lower,
                 total_upper, num_replicates, confidence):
        self.first_order_lower = np.asarray(first_order_lower, dtype=float)
        self.first_order_upper = np.asarray(first_order_upper, dtype=float)
        self.total_lower = np.asarray(total_lower, dtype=float)
        self.total_upper = np.asarray(total_upper, dtype=float)
        self.num_replicates = int(num_replicates)
        self.confidence = float(confidence)

    def __repr__(self):
        return (
            f"BootstrapInterval({self.confidence:.0%}, "
            f"B={self.num_replicates})"
        )


def jansen_bootstrap(f_a, f_b, f_ab, num_replicates=100, seed=0,
                     confidence=0.95):
    """Bootstrap confidence intervals for :func:`jansen_indices`.

    Resamples the ``M`` base-design rows with replacement (the standard
    Saltelli bootstrap: a row carries its ``A``, ``B`` and every
    ``AB_i`` evaluation, preserving the pairing), re-estimates the
    indices per replicate and returns percentile bounds.  Deterministic
    for a given ``seed``, so a resumed campaign reports the same
    intervals as an uninterrupted one.
    """
    f_a = np.asarray(f_a, dtype=float)
    f_b = np.asarray(f_b, dtype=float)
    f_ab = np.asarray(f_ab, dtype=float)
    num_replicates = int(num_replicates)
    if num_replicates < 1:
        raise SamplingError(
            f"num_replicates must be >= 1, got {num_replicates}"
        )
    if not 0.0 < confidence < 1.0:
        raise SamplingError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    num_base_samples = f_a.shape[0]
    rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=int(seed), spawn_key=(_BOOTSTRAP_SPAWN_KEY,)
        )
    )
    firsts = []
    totals = []
    for _ in range(num_replicates):
        rows = rng.integers(0, num_base_samples, size=num_base_samples)
        try:
            replicate = jansen_indices(
                f_a[rows], f_b[rows], f_ab[:, rows]
            )
        except SamplingError:
            # Degenerate resample (zero variance); draw again implicitly
            # by skipping -- the replicate count below reflects it.
            continue
        firsts.append(replicate.first_order)
        totals.append(replicate.total)
    if not firsts:
        raise SamplingError(
            "every bootstrap replicate had zero output variance"
        )
    firsts = np.stack(firsts)
    totals = np.stack(totals)
    alpha = 0.5 * (1.0 - confidence)
    return BootstrapInterval(
        np.quantile(firsts, alpha, axis=0),
        np.quantile(firsts, 1.0 - alpha, axis=0),
        np.quantile(totals, alpha, axis=0),
        np.quantile(totals, 1.0 - alpha, axis=0),
        len(firsts),
        confidence,
    )


def sobol_indices(model, distributions, dimension, num_base_samples=256,
                  seed=None):
    """Estimate Sobol indices of a scalar model output, in process.

    Serial legacy driver: evaluates the full Saltelli design with a
    Python loop and reduces with :func:`jansen_indices`.  Scalar outputs
    only -- vector-valued quantities of interest (and parallel or
    resumable execution) go through the sensitivity campaign
    (:func:`repro.campaign.sensitivity.run_sensitivity_campaign`), which
    reproduces this function bit for bit for the ``"random"`` sampler
    and the same seed.
    """
    num_base_samples = int(num_base_samples)
    dimension = int(dimension)
    a_unit, b_unit, ab_unit = saltelli_sample(num_base_samples, dimension,
                                              seed)
    a = map_to_distributions(a_unit, distributions)
    b = map_to_distributions(b_unit, distributions)

    def evaluate(matrix):
        values = np.empty(matrix.shape[0])
        for row in range(matrix.shape[0]):
            output = np.asarray(model(matrix[row]), dtype=float)
            if output.size != 1:
                raise SamplingError(
                    f"sobol_indices expects a scalar model output, got "
                    f"shape {output.shape}; use the sensitivity campaign "
                    "(repro.campaign.sensitivity) for vector-valued "
                    "quantities of interest"
                )
            values[row] = output.reshape(())
        return values

    f_a = evaluate(a)
    f_b = evaluate(b)
    f_ab = np.empty((dimension, num_base_samples))
    for i in range(dimension):
        f_ab[i] = evaluate(map_to_distributions(ab_unit[i], distributions))
    return jansen_indices(f_a, f_b, f_ab)
