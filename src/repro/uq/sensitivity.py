"""Variance-based global sensitivity analysis (Sobol indices).

The paper investigates "the global sensitivity of the bonding wires'
temperatures w.r.t. their geometric parameters" (Section I).  This module
computes first-order and total Sobol indices with the Saltelli sampling
scheme and Jansen's estimators, answering which wire's length uncertainty
drives the hottest-wire temperature variance.
"""

import numpy as np

from ..errors import SamplingError
from .sampling import map_to_distributions, random_sampler


def saltelli_sample(num_base_samples, dimension, seed=None):
    """Saltelli design: matrices ``A``, ``B`` and the ``AB_i`` hybrids.

    Returns ``(a, b, ab)`` with ``ab`` shaped ``(d, M, d)``.  Total model
    cost of a Sobol analysis is ``M (d + 2)`` evaluations.
    """
    num_base_samples = int(num_base_samples)
    dimension = int(dimension)
    if num_base_samples < 2:
        raise SamplingError("need at least 2 base samples")
    stream = random_sampler(2 * num_base_samples, dimension, seed)
    a = stream[:num_base_samples]
    b = stream[num_base_samples:]
    ab = np.empty((dimension, num_base_samples, dimension))
    for i in range(dimension):
        ab[i] = a.copy()
        ab[i][:, i] = b[:, i]
    return a, b, ab


class SobolIndices:
    """First-order and total Sobol indices per input dimension."""

    def __init__(self, first_order, total, variance, num_evaluations):
        self.first_order = np.asarray(first_order, dtype=float)
        self.total = np.asarray(total, dtype=float)
        self.variance = float(variance)
        self.num_evaluations = int(num_evaluations)

    def ranking(self):
        """Input dimensions ordered by decreasing total index."""
        return list(np.argsort(-self.total))

    def __repr__(self):
        return (
            f"SobolIndices(S={np.round(self.first_order, 3).tolist()}, "
            f"ST={np.round(self.total, 3).tolist()})"
        )


def sobol_indices(model, distributions, dimension, num_base_samples=256, seed=None):
    """Estimate Sobol indices of a scalar model output.

    Uses Jansen's estimators:

    ``S_i  = (V - mean((f_B - f_ABi)^2) / 2) / V``
    ``ST_i = mean((f_A - f_ABi)^2) / (2 V)``

    Negative first-order estimates (possible at finite M for weak inputs)
    are clipped at zero.
    """
    a_unit, b_unit, ab_unit = saltelli_sample(num_base_samples, dimension, seed)
    a = map_to_distributions(a_unit, distributions)
    b = map_to_distributions(b_unit, distributions)

    def evaluate(matrix):
        return np.asarray(
            [float(model(matrix[row])) for row in range(matrix.shape[0])]
        )

    f_a = evaluate(a)
    f_b = evaluate(b)
    combined = np.concatenate([f_a, f_b])
    variance = float(np.var(combined, ddof=1))
    if variance <= 0.0:
        raise SamplingError(
            "model output has zero variance; Sobol indices are undefined"
        )

    first = np.empty(dimension)
    total = np.empty(dimension)
    evaluations = 2 * num_base_samples
    for i in range(dimension):
        ab = map_to_distributions(ab_unit[i], distributions)
        f_ab = evaluate(ab)
        evaluations += num_base_samples
        first[i] = (variance - 0.5 * float(np.mean((f_b - f_ab) ** 2))) / variance
        total[i] = 0.5 * float(np.mean((f_a - f_ab) ** 2)) / variance
    first = np.clip(first, 0.0, None)
    return SobolIndices(first, total, variance, evaluations)
