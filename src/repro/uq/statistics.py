"""Streaming statistics and histogram helpers.

:class:`RunningStatistics` implements Welford's numerically stable online
mean/variance over vector-valued samples, so a Monte Carlo study never has
to hold all samples in memory (it optionally can, for quantiles).
"""

import numpy as np

from ..errors import SamplingError


class RunningStatistics:
    """Welford online mean/variance over equally shaped arrays."""

    def __init__(self):
        self.count = 0
        self._mean = None
        self._m2 = None
        self._min = None
        self._max = None

    def update(self, sample):
        """Fold one sample (scalar or array) into the statistics."""
        sample = np.asarray(sample, dtype=float)
        if self._mean is None:
            self._mean = np.zeros_like(sample)
            self._m2 = np.zeros_like(sample)
            self._min = np.full_like(sample, np.inf)
            self._max = np.full_like(sample, -np.inf)
        elif sample.shape != self._mean.shape:
            raise SamplingError(
                f"sample shape {sample.shape} does not match previous "
                f"{self._mean.shape}"
            )
        self.count += 1
        delta = sample - self._mean
        self._mean = self._mean + delta / self.count
        delta2 = sample - self._mean
        self._m2 = self._m2 + delta * delta2
        self._min = np.minimum(self._min, sample)
        self._max = np.maximum(self._max, sample)

    def merge(self, other):
        """Fold another :class:`RunningStatistics` into this one in place.

        Implements the parallel (Chan et al.) combination of Welford
        accumulators, so per-worker statistics of a distributed study can
        be reduced without revisiting any sample.  Merging in a fixed
        order is deterministic: the same partition always reproduces the
        same mean/variance bit for bit.  Returns ``self`` for chaining.
        """
        if not isinstance(other, RunningStatistics):
            raise SamplingError(
                f"can only merge RunningStatistics, got {type(other).__name__}"
            )
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean.copy()
            self._m2 = other._m2.copy()
            self._min = other._min.copy()
            self._max = other._max.copy()
            return self
        if other._mean.shape != self._mean.shape:
            raise SamplingError(
                f"sample shape {other._mean.shape} does not match previous "
                f"{self._mean.shape}"
            )
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean = self._mean + delta * (other.count / total)
        self._m2 = self._m2 + other._m2 + delta * delta * (
            self.count * other.count / total
        )
        self._min = np.minimum(self._min, other._min)
        self._max = np.maximum(self._max, other._max)
        self.count = total
        return self

    @property
    def mean(self):
        """Running mean (same shape as the samples)."""
        if self.count == 0:
            raise SamplingError("no samples accumulated")
        return self._mean.copy()

    def variance(self, ddof=1):
        """Running variance with the chosen degrees-of-freedom correction."""
        if self.count <= ddof:
            raise SamplingError(
                f"need more than {ddof} samples, have {self.count}"
            )
        return self._m2 / (self.count - ddof)

    def std(self, ddof=1):
        """Running standard deviation."""
        return np.sqrt(self.variance(ddof=ddof))

    @property
    def minimum(self):
        """Element-wise minimum over samples."""
        if self.count == 0:
            raise SamplingError("no samples accumulated")
        return self._min.copy()

    @property
    def maximum(self):
        """Element-wise maximum over samples."""
        if self.count == 0:
            raise SamplingError("no samples accumulated")
        return self._max.copy()

    def standard_error(self):
        """``std / sqrt(count)``: the paper's MC error estimator (eq. (6))."""
        return self.std() / np.sqrt(self.count)

    def state_dict(self):
        """Serializable running state (exact float64 round trip).

        The returned arrays are copies; :meth:`load_state_dict` restores
        an accumulator that continues bit-identically to the original --
        the contract campaign reducer checkpoints rely on.
        """
        if self.count == 0:
            return {"count": np.asarray(0)}
        return {
            "count": np.asarray(self.count),
            "mean": self._mean.copy(),
            "m2": self._m2.copy(),
            "min": self._min.copy(),
            "max": self._max.copy(),
        }

    def load_state_dict(self, state):
        """Restore :meth:`state_dict` output in place; returns ``self``."""
        count = int(np.asarray(state["count"]))
        if count == 0:
            self.count = 0
            self._mean = self._m2 = self._min = self._max = None
            return self
        self.count = count
        self._mean = np.array(state["mean"], dtype=float)
        self._m2 = np.array(state["m2"], dtype=float)
        self._min = np.array(state["min"], dtype=float)
        self._max = np.array(state["max"], dtype=float)
        return self


def histogram_data(samples, num_bins=8, density=True):
    """Histogram as plain arrays ``(bin_edges, heights)`` for reporting.

    Matches the presentation of Fig. 5 of the paper (probability density
    over relative elongation).
    """
    samples = np.asarray(samples, dtype=float).ravel()
    if samples.size == 0:
        raise SamplingError("cannot histogram zero samples")
    heights, edges = np.histogram(samples, bins=int(num_bins), density=density)
    return edges, heights
