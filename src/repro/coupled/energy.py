"""Energy-balance auditing of coupled transients.

A discretization bug (wrong dual volume, lost stamp, sign error in a
boundary term) almost always shows up as a violation of the global energy
balance

``E(t_end) - E(0) = integral( P_joule(t) - P_conv(t) - P_rad(t) ) dt``

with ``E(t) = sum_i C_i T_i(t)`` the stored heat.  This module recomputes
both sides from a stored-fields transient result and reports the residual;
the verification tests require it to vanish to time-discretization
accuracy.
"""

import numpy as np

from ..errors import ReproError


class EnergyAudit:
    """Both sides of the energy balance plus the relative residual.

    Attributes
    ----------
    stored_energy_change:
        ``E(t_end) - E(0)`` [J].
    injected_energy:
        Time integral of the total Joule power [J].
    convective_loss, radiative_loss:
        Time integrals of the boundary losses [J].
    residual:
        ``stored - (injected - losses)`` [J].
    relative_residual:
        Residual normalized by the injected energy (0 when nothing was
        injected).
    """

    def __init__(self, stored_energy_change, injected_energy,
                 convective_loss, radiative_loss):
        self.stored_energy_change = float(stored_energy_change)
        self.injected_energy = float(injected_energy)
        self.convective_loss = float(convective_loss)
        self.radiative_loss = float(radiative_loss)
        self.residual = self.stored_energy_change - (
            self.injected_energy - self.convective_loss - self.radiative_loss
        )
        scale = max(abs(self.injected_energy), 1e-30)
        self.relative_residual = abs(self.residual) / scale

    def __repr__(self):
        return (
            f"EnergyAudit(stored={self.stored_energy_change:.4e} J, "
            f"injected={self.injected_energy:.4e} J, "
            f"conv={self.convective_loss:.4e} J, "
            f"rad={self.radiative_loss:.4e} J, "
            f"relative residual={self.relative_residual:.2e})"
        )


def _trapezoid(values, dt):
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        return 0.0
    return float(dt * (np.sum(values) - 0.5 * (values[0] + values[-1])))


def audit_energy(solver, result):
    """Audit a transient result solved with ``store_fields=True``.

    Parameters
    ----------
    solver:
        The :class:`~repro.coupled.electrothermal.CoupledSolver` that
        produced the result (provides capacitance and boundary metrics).
    result:
        A :class:`~repro.coupled.quantities.TransientResult` carrying
        ``result.fields``.

    Returns
    -------
    :class:`EnergyAudit`

    Notes
    -----
    The implicit Euler scheme evaluates sources at the *new* time level,
    so the consistent quadrature for the power integrals is the
    right-endpoint rule; the trapezoid is used instead because it is what
    a person would check against, making the reported residual an honest
    O(dt) quantity rather than an artificially perfect zero.
    """
    fields = getattr(result, "fields", None)
    if fields is None:
        raise ReproError(
            "energy audit needs result.fields; rerun solve_transient with "
            "store_fields=True"
        )
    capacitance = solver.capacitance
    times = result.times
    if len(fields) != times.size:
        raise ReproError(
            f"{len(fields)} stored fields for {times.size} time points"
        )
    dt = float(times[1] - times[0]) if times.size > 1 else 0.0

    stored = float(
        np.dot(capacitance, fields[-1]) - np.dot(capacitance, fields[0])
    )
    injected = _trapezoid(result.total_power_trace(), dt)

    problem = solver.problem
    dual = solver.discretization.dual
    n_grid = solver.n_grid
    convective = 0.0
    radiative = 0.0
    if problem.convection is not None:
        conv_powers = [
            problem.convection.power(dual, field[:n_grid])
            for field in fields
        ]
        convective = _trapezoid(conv_powers, dt)
    if problem.radiation is not None:
        rad_powers = [
            problem.radiation.power(dual, field[:n_grid])
            for field in fields
        ]
        radiative = _trapezoid(rad_powers, dt)

    return EnergyAudit(stored, injected, convective, radiative)
