"""Result containers and the paper's quantities of interest.

The study's QoI (Section V-C) is the representative temperature of every
wire over time, ``T_bw,j(t) = X_j^T T(t)``, and derived statistics such as
the trace of the hottest wire.  :class:`TransientResult` stores exactly
these per-wire traces (plus the final field for Fig. 8-style exports).
"""

import numpy as np

from ..errors import ReproError


class TransientResult:
    """Outcome of one coupled transient simulation.

    Attributes
    ----------
    times:
        Time points [s], length ``P`` (including t = 0).
    wire_temperatures:
        Array ``(P, W)``: per-wire end-point average temperatures (eq. (5)).
    wire_peak_temperatures:
        Array ``(P, W)``: per-wire maxima over chain nodes (differs from
        the above only for multi-segment wires).
    wire_powers:
        Array ``(P, W)``: per-wire Joule powers [W].
    field_joule_power:
        Array ``(P,)``: total Joule power dissipated in the field [W].
    final_temperatures:
        Full temperature vector at the end time (grid + internal nodes).
    final_potentials:
        Full potential vector at the end time.
    iterations_per_step:
        Fixed-point iteration counts, length ``P - 1``.
    wire_names:
        Labels aligned with the wire axis.
    """

    def __init__(
        self,
        times,
        wire_temperatures,
        wire_peak_temperatures,
        wire_powers,
        field_joule_power,
        final_temperatures,
        final_potentials,
        iterations_per_step,
        wire_names,
    ):
        self.times = np.asarray(times, dtype=float)
        self.wire_temperatures = np.asarray(wire_temperatures, dtype=float)
        self.wire_peak_temperatures = np.asarray(
            wire_peak_temperatures, dtype=float
        )
        self.wire_powers = np.asarray(wire_powers, dtype=float)
        self.field_joule_power = np.asarray(field_joule_power, dtype=float)
        self.final_temperatures = np.asarray(final_temperatures, dtype=float)
        self.final_potentials = np.asarray(final_potentials, dtype=float)
        self.iterations_per_step = list(iterations_per_step)
        self.wire_names = list(wire_names)

    @property
    def num_wires(self):
        """Number of wires ``W``."""
        return self.wire_temperatures.shape[1]

    def wire_trace(self, wire):
        """Temperature trace of one wire (by index or name)."""
        index = self._wire_index(wire)
        return self.wire_temperatures[:, index]

    def _wire_index(self, wire):
        if isinstance(wire, str):
            try:
                return self.wire_names.index(wire)
            except ValueError as exc:
                raise ReproError(
                    f"unknown wire {wire!r}; known: {self.wire_names}"
                ) from exc
        index = int(wire)
        if not 0 <= index < self.num_wires:
            raise ReproError(f"wire index {index} out of range")
        return index

    def hottest_wire_index(self):
        """Index of the wire with the highest temperature at any time."""
        return int(
            np.unravel_index(
                np.argmax(self.wire_temperatures), self.wire_temperatures.shape
            )[1]
        )

    def max_over_wires(self):
        """``max_j T_bw,j(t)``: the per-time maximum over all wires.

        This is the per-sample analog of the paper's ``E_max(t)`` (eq. (7)
        takes the max of the *expected* traces; the Monte Carlo layer does
        that over samples).
        """
        return np.max(self.wire_temperatures, axis=1)

    def final_wire_temperatures(self):
        """Per-wire temperatures at the end time."""
        return self.wire_temperatures[-1]

    def total_power_trace(self):
        """Field plus wire Joule power over time [W]."""
        return self.field_joule_power + np.sum(self.wire_powers, axis=1)

    def summary(self):
        """Human-readable one-paragraph summary."""
        hottest = self.hottest_wire_index()
        return (
            f"transient over {self.times[-1]:g} s, {self.times.size} points; "
            f"hottest wire {self.wire_names[hottest]} reaches "
            f"{float(np.max(self.wire_temperatures[:, hottest])):.2f} K; "
            f"total Joule power at end {self.total_power_trace()[-1]:.4e} W"
        )

    def __repr__(self):
        return f"TransientResult({self.summary()})"


class StationaryResult:
    """Outcome of a steady-state coupled solve."""

    def __init__(
        self,
        temperatures,
        potentials,
        wire_temperatures,
        wire_powers,
        field_joule_power,
        iterations,
        wire_names,
    ):
        self.temperatures = np.asarray(temperatures, dtype=float)
        self.potentials = np.asarray(potentials, dtype=float)
        self.wire_temperatures = np.asarray(wire_temperatures, dtype=float)
        self.wire_powers = np.asarray(wire_powers, dtype=float)
        self.field_joule_power = float(field_joule_power)
        self.iterations = int(iterations)
        self.wire_names = list(wire_names)

    def hottest_wire_index(self):
        """Index of the hottest wire."""
        return int(np.argmax(self.wire_temperatures))

    def total_power(self):
        """Total dissipated power [W]."""
        return self.field_joule_power + float(np.sum(self.wire_powers))

    def __repr__(self):
        hottest = self.hottest_wire_index()
        return (
            f"StationaryResult(hottest {self.wire_names[hottest]} at "
            f"{self.wire_temperatures[hottest]:.2f} K, "
            f"P={self.total_power():.4e} W, {self.iterations} iterations)"
        )
