"""Electroquasistatic (EQS) extension of the electrical sub-problem.

Section II-A of the paper solves the *stationary* current problem and
notes that "a generalization to electroquasistatics is straightforward."
This module is that generalization: keeping the capacitive displacement
current of the Maxwell house (the ``M_eps`` branch of Fig. 1) yields

``S_dual ( M_sigma + d/dt M_eps ) S_dual^T Phi = 0``

with time-dependent Dirichlet contacts.  Implicit Euler gives per step

``(K_sigma + K_eps / dt) Phi_{n+1} = (K_eps / dt) Phi_n + Dirichlet``.

For a homogeneous medium the transient is the classic charge relaxation
with time constant ``tau = eps / sigma`` -- epoxy's ~3.5e-5 s against the
thermal seconds-scale justifies the paper's stationary-current
approximation quantitatively, which is exactly what the EQS bench/test
demonstrates.
"""

import numpy as np

from ..bondwire.lumped import stamp_conductance_matrix
from ..errors import AssemblyError, SolverError
from ..fit.assembly import FITDiscretization
from ..fit.boundary import combine_dirichlet
from ..fit.material_matrices import conductance_diagonal
from ..solvers.linear import LinearSolver
from ..solvers.time_integration import TimeGrid
from .electrical import embed_grid_matrix
from .excitation import as_waveform


class EQSResult:
    """Outcome of an electroquasistatic transient."""

    def __init__(self, times, potentials, terminal_currents, terminal_labels):
        self.times = np.asarray(times, dtype=float)
        #: List of full potential vectors, one per time point.
        self.potentials = potentials
        #: Array (num_points, num_terminals): total terminal currents
        #: (conduction + displacement) [A].
        self.terminal_currents = np.asarray(terminal_currents, dtype=float)
        self.terminal_labels = list(terminal_labels)

    @property
    def final(self):
        """Potential vector at the end time."""
        return self.potentials[-1]

    def relaxation_time_estimate(self, terminal=0):
        """1/e settling time of a terminal current step response [s].

        The decay is measured from the *second* post-switch-on sample: the
        t = 0 entry predates the drive and the first sample carries the
        instantaneous displacement spike (a delta in the continuous limit,
        resolved as one dt-wide pulse), which is not part of the
        exponential relaxation mode.  Returns 0 when the trace is already
        settled.
        """
        trace = self.terminal_currents[:, terminal]
        if trace.size < 4:
            return 0.0
        final = trace[-1]
        start = 2  # skip the pre-drive entry and the displacement spike
        initial_gap = abs(trace[start] - final)
        if initial_gap == 0.0:
            return 0.0
        target = initial_gap / np.e
        for index in range(start, trace.size):
            if abs(trace[index] - final) <= target:
                if index == start:
                    return float(self.times[start] - self.times[start])
                g0 = abs(trace[index - 1] - final)
                g1 = abs(trace[index] - final)
                t0 = self.times[index - 1] - self.times[start]
                t1 = self.times[index] - self.times[start]
                if g0 == g1:
                    return float(t1)
                return float(t0 + (g0 - target) / (g0 - g1) * (t1 - t0))
        return float(self.times[-1] - self.times[start])

    def __repr__(self):
        return (
            f"EQSResult({self.times.size} points, "
            f"{len(self.terminal_labels)} terminals)"
        )


def solve_electroquasistatic(
    problem,
    time_grid,
    waveform=None,
    temperatures=None,
    initial_potentials=None,
    discretization=None,
):
    """Integrate the EQS problem on an electrothermal problem definition.

    Parameters
    ----------
    problem:
        An :class:`~repro.coupled.problem.ElectrothermalProblem`; its
        electrical Dirichlet groups become the driven terminals and its
        bonding wires contribute their (purely conductive) stamps.
    time_grid:
        Time axis -- note EQS relaxation lives on the ``eps/sigma`` scale
        (microseconds for the paper's epoxy), far below the thermal scale.
    waveform:
        Drive scale over time (default: unit step, i.e. constant contacts
        from t = 0 onto a discharged package).
    temperatures:
        Temperature state for the conductivities (default: uniform
        initial temperature).
    initial_potentials:
        Starting potential vector (default: all zero -- the paper's
        ``V_init = 0`` initial condition of Section V-B).

    Returns
    -------
    :class:`EQSResult`
    """
    if not isinstance(time_grid, TimeGrid):
        raise SolverError("time_grid must be a TimeGrid")
    if not problem.electrical_dirichlet:
        raise AssemblyError("EQS needs electrical Dirichlet terminals")
    if discretization is None:
        discretization = FITDiscretization(problem.grid, problem.materials)
    drive = as_waveform(waveform)
    size = problem.total_size
    n_grid = problem.grid.num_nodes

    if temperatures is None:
        temperatures = problem.initial_temperatures()
    temperatures = np.asarray(temperatures, dtype=float)
    cell_t = discretization.cell_temperatures(temperatures[:n_grid])

    sigma_diag = conductance_diagonal(
        discretization.dual, discretization.materials.sigma_cells(cell_t)
    )
    eps_diag = conductance_diagonal(
        discretization.dual, discretization.materials.epsilon_cells()
    )
    k_sigma = embed_grid_matrix(
        discretization.stiffness_from_diagonal(sigma_diag), size
    )
    k_eps = embed_grid_matrix(
        discretization.stiffness_from_diagonal(eps_diag), size
    )
    if problem.topology.num_segments_total:
        g_el = problem.topology.segment_electrical_conductances(temperatures)
        stamps = [stamp for _, stamp in problem.topology.flat_segments]
        k_sigma = k_sigma + stamp_conductance_matrix(size, stamps, g_el)

    fixed, fixed_values = combine_dirichlet(
        problem.electrical_dirichlet, size
    )
    mask = np.ones(size, dtype=bool)
    mask[fixed] = False
    free = np.nonzero(mask)[0]

    dt = time_grid.dt
    system = (k_sigma + k_eps / dt).tocsr()
    a_ff = system[free][:, free].tocsc()
    a_fc = system[free][:, fixed]
    c_full = (k_eps / dt).tocsr()

    if initial_potentials is None:
        phi = np.zeros(size)
    else:
        phi = np.array(initial_potentials, dtype=float, copy=True)
        if phi.size != size:
            raise AssemblyError(
                f"initial potentials have {phi.size} entries, expected {size}"
            )

    solver = LinearSolver()
    times = time_grid.times
    potentials = [phi.copy()]
    labels = [bc.label or f"terminal{i}" for i, bc in
              enumerate(problem.electrical_dirichlet)]

    def currents_of(phi_new, phi_old):
        # Conduction + displacement current into each fixed group.
        residual = k_sigma @ phi_new + k_eps @ (phi_new - phi_old) / dt
        return [
            float(np.sum(residual[bc.nodes]))
            for bc in problem.electrical_dirichlet
        ]

    currents = [currents_of(phi, phi)]
    for step in range(time_grid.num_steps):
        scale = float(drive(times[step + 1]))
        boundary = fixed_values * scale
        rhs = (c_full @ phi)[free] - a_fc @ boundary
        phi_old = phi
        phi = np.empty(size)
        phi[free] = solver.solve(a_ff, rhs)
        phi[fixed] = boundary
        potentials.append(phi.copy())
        currents.append(currents_of(phi, phi_old))

    return EQSResult(times, potentials, currents, labels)


def charge_relaxation_time(material):
    """The homogeneous-medium relaxation constant ``tau = eps / sigma``."""
    sigma = material.electrical_conductivity()
    if sigma <= 0.0:
        raise SolverError("relaxation time needs a conducting material")
    return material.permittivity() / sigma
