"""Time-dependent drive waveforms for the coupled solver.

The paper drives the contacts with a constant voltage.  Real parts see
pulses and duty-cycled loads, and the lumped wire model handles them
without change: the stationary current problem (capacitive effects
neglected, Section II-A) is re-solved at each time level with the scaled
contact potentials.

A waveform is a callable ``w(t) -> float`` scaling every Dirichlet contact
value; the electrical problem is linear in the potentials at a frozen
temperature, so scaling the contacts scales the whole field and quadruples
rules apply to the Joule power automatically.
"""

import numpy as np

from ..errors import SolverError


class Waveform:
    """Base class: a scalar scale factor as a function of time [s]."""

    def __call__(self, time):
        raise NotImplementedError

    def sample(self, times):
        """Vectorized evaluation (loops by default)."""
        return np.asarray([float(self(t)) for t in np.asarray(times)])


class ConstantWaveform(Waveform):
    """The paper's case: always-on drive (scale 1)."""

    def __init__(self, scale=1.0):
        self.scale = float(scale)

    def __call__(self, time):
        return self.scale

    def __repr__(self):
        return f"ConstantWaveform({self.scale!r})"


class StepWaveform(Waveform):
    """Drive switched on at ``t_on`` and off at ``t_off``."""

    def __init__(self, t_on=0.0, t_off=np.inf, scale=1.0):
        t_on = float(t_on)
        t_off = float(t_off)
        if not t_off > t_on:
            raise SolverError(
                f"t_off ({t_off}) must exceed t_on ({t_on})"
            )
        self.t_on = t_on
        self.t_off = t_off
        self.scale = float(scale)

    def __call__(self, time):
        return self.scale if self.t_on <= time < self.t_off else 0.0

    def __repr__(self):
        return (
            f"StepWaveform(t_on={self.t_on!r}, t_off={self.t_off!r}, "
            f"scale={self.scale!r})"
        )


class PulseTrainWaveform(Waveform):
    """Periodic on/off pulses (duty-cycled load)."""

    def __init__(self, period, duty=0.5, scale=1.0, phase=0.0):
        period = float(period)
        duty = float(duty)
        if period <= 0.0:
            raise SolverError(f"period must be positive, got {period!r}")
        if not 0.0 < duty <= 1.0:
            raise SolverError(f"duty must be in (0, 1], got {duty!r}")
        self.period = period
        self.duty = duty
        self.scale = float(scale)
        self.phase = float(phase)

    def __call__(self, time):
        local = (float(time) - self.phase) % self.period
        return self.scale if local < self.duty * self.period else 0.0

    def __repr__(self):
        return (
            f"PulseTrainWaveform(period={self.period!r}, duty={self.duty!r}, "
            f"scale={self.scale!r})"
        )


class RampWaveform(Waveform):
    """Linear soft-start from 0 to ``scale`` over ``rise_time``."""

    def __init__(self, rise_time, scale=1.0):
        rise_time = float(rise_time)
        if rise_time <= 0.0:
            raise SolverError(f"rise_time must be positive, got {rise_time!r}")
        self.rise_time = rise_time
        self.scale = float(scale)

    def __call__(self, time):
        return self.scale * min(max(float(time) / self.rise_time, 0.0), 1.0)

    def __repr__(self):
        return f"RampWaveform(rise_time={self.rise_time!r}, scale={self.scale!r})"


def as_waveform(value):
    """Coerce ``None`` / numbers / callables into a :class:`Waveform`."""
    if value is None:
        return ConstantWaveform(1.0)
    if isinstance(value, Waveform):
        return value
    if callable(value):
        wrapped = value

        class _Callable(Waveform):
            def __call__(self, time):
                return float(wrapped(time))

            def __repr__(self):
                return f"Waveform({wrapped!r})"

        return _Callable()
    try:
        return ConstantWaveform(float(value))
    except (TypeError, ValueError) as exc:
        raise SolverError(
            f"cannot interpret {value!r} as a waveform"
        ) from exc
