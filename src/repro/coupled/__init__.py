"""The coupled electrothermal field-circuit solver (Sections II-III).

* :mod:`repro.coupled.problem` -- :class:`ElectrothermalProblem`: grid,
  materials, boundary conditions and bonding wires in one validated object,
  plus the wire topology (stamps, internal nodes of multi-segment wires),
* :mod:`repro.coupled.electrical` -- the stationary current sub-problem,
* :mod:`repro.coupled.thermal` -- the transient thermal sub-problem
  (standalone, for verification),
* :mod:`repro.coupled.electrothermal` -- the coupled nonlinear transient
  solver with the paper's implicit Euler / successive substitution scheme
  and a Woodbury-accelerated fast path for Monte Carlo,
* :mod:`repro.coupled.quantities` -- results containers and the paper's
  quantities of interest (wire temperatures, E_max(t)).
"""

from .electrical import solve_stationary_current
from .electroquasistatic import (
    EQSResult,
    charge_relaxation_time,
    solve_electroquasistatic,
)
from .energy import EnergyAudit, audit_energy
from .excitation import (
    ConstantWaveform,
    PulseTrainWaveform,
    RampWaveform,
    StepWaveform,
    Waveform,
    as_waveform,
)
from .electrothermal import CoupledSolver
from .problem import ElectrothermalProblem, WireTopology
from .quantities import StationaryResult, TransientResult
from .thermal import solve_thermal_transient

__all__ = [
    "ElectrothermalProblem",
    "WireTopology",
    "CoupledSolver",
    "TransientResult",
    "StationaryResult",
    "solve_stationary_current",
    "solve_thermal_transient",
    "Waveform",
    "ConstantWaveform",
    "StepWaveform",
    "PulseTrainWaveform",
    "RampWaveform",
    "as_waveform",
    "solve_electroquasistatic",
    "EQSResult",
    "charge_relaxation_time",
    "audit_energy",
    "EnergyAudit",
]
