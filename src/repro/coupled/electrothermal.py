"""The coupled nonlinear transient electrothermal solver.

Implements the paper's scheme: implicit Euler in time, successive
substitution (fixed point) over the two-directional nonlinear coupling in
every step:

1. freeze the temperature iterate ``T*``;
2. assemble ``sigma(T*)``, ``lambda(T*)`` and the wire conductances
   ``G_el(T_bw*)``, ``G_th(T_bw*)``;
3. solve the stationary current problem for ``Phi``;
4. compute the Joule sources (field cells + wire elements);
5. solve the thermal step for the new ``T``;
6. repeat until no node moves by more than the tolerance.

Two execution modes:

* ``mode="full"`` -- everything reassembled from the current iterate
  (the reference scheme);
* ``mode="fast"`` -- field material matrices frozen at the initial
  temperature so both base matrices can be LU-factorized *once*; the only
  matrix changes left are the rank-``n_segments`` bonding wire stamps,
  handled by Sherman-Morrison-Woodbury updates, and the radiation
  nonlinearity, which converges through the fixed point on the right-hand
  side.  This is the Monte Carlo fast path: the wire nonlinearities (the
  dominant electrothermal feedback of this application) are retained
  exactly.
"""

from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from ..backends import get_array_backend
from ..errors import AssemblyError, ConvergenceError, SolverError
from ..fit.assembly import FITDiscretization
from ..fit.boundary import apply_dirichlet, combine_dirichlet
from ..fit.joule import joule_cell_power_density
from ..fit.material_matrices import conductance_diagonal
from ..solvers.linear import LinearSolver
from ..solvers.newton import fixed_point
from ..solvers.time_integration import TimeGrid
from ..solvers.woodbury import WoodburySolver
from ..telemetry import MetricsRegistry
from ..telemetry import tracing as telemetry
from .electrical import embed_grid_matrix
from .quantities import StationaryResult, TransientResult

_MODES = ("full", "fast")


class CoupledSolver:
    """Transient/stationary solver bound to one problem instance.

    Parameters
    ----------
    problem:
        The :class:`~repro.coupled.problem.ElectrothermalProblem`.
    mode:
        ``"full"`` (reference) or ``"fast"`` (frozen field materials +
        Woodbury wire updates; see module docstring).
    tolerance:
        Fixed-point tolerance on the temperature update [K].
    max_iterations:
        Fixed-point iteration budget per time step.
    damping:
        Fixed-point relaxation factor.
    factorization_cache:
        Optional :class:`~repro.solvers.cache.FactorizationCache` shared
        across solver instances; fast-mode base LUs are looked up there,
        so rebuilding the solver for the same problem in one process
        (campaign workers, resumed runs) skips the factorization cost.
    max_thermal_solvers:
        Fast-mode bound on the per-``dt`` thermal solver map.  Adaptive
        step doubling alternates between ``dt`` and ``dt/2`` within one
        attempt, so the map must hold at least the handful of distinct
        step sizes in flight (a quantized-dt ladder fits comfortably in
        the default 8); the least recently used solver is evicted first.
    array_backend:
        :class:`~repro.backends.ArrayBackend` (or registered name) the
        fast-mode Woodbury solvers resolve their linear algebra
        through; ``None`` picks the process default (``numpy``).  Only
        the blocked :class:`BlockedCoupledSolver` path crosses the
        device boundary -- assembly and the full-mode path stay on the
        host regardless.
    """

    def __init__(
        self,
        problem,
        mode="full",
        tolerance=1.0e-6,
        max_iterations=40,
        damping=1.0,
        factorization_cache=None,
        max_thermal_solvers=8,
        array_backend=None,
    ):
        if mode not in _MODES:
            raise SolverError(f"unknown mode {mode!r}; expected one of {_MODES}")
        self.problem = problem
        self.mode = mode
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.damping = float(damping)
        self.factorization_cache = factorization_cache
        self.array_backend = get_array_backend(array_backend)

        self.discretization = FITDiscretization(problem.grid, problem.materials)
        self.topology = problem.topology
        n_grid = problem.grid.num_nodes
        self.n_grid = n_grid
        self.total_size = problem.total_size

        # Heat capacitance over all unknowns (grid + internal wire nodes).
        capacitance = np.zeros(self.total_size)
        capacitance[:n_grid] = self.discretization.thermal_capacitance()
        if self.topology.num_extra_nodes:
            capacitance[n_grid:] = self.topology.extra_heat_capacities()
        self.capacitance = capacitance

        # Thermal boundary structures (grid block only).
        dual = self.discretization.dual
        self.conv_diag = np.zeros(self.total_size)
        self.conv_rhs = np.zeros(self.total_size)
        if problem.convection is not None:
            diag, rhs = problem.convection.contributions(dual)
            self.conv_diag[:n_grid] = diag
            self.conv_rhs[:n_grid] = rhs
        self.rad_coeff = np.zeros(self.total_size)
        if problem.radiation is not None:
            self.rad_coeff[:n_grid] = problem.radiation.node_coefficients(dual)
        self.t_ambient_rad = (
            problem.radiation.t_ambient if problem.radiation is not None else 0.0
        )

        # Electrical Dirichlet reduction pattern (constant across solves).
        if not problem.electrical_dirichlet:
            raise AssemblyError(
                "the coupled problem needs electrical Dirichlet (PEC) nodes"
            )
        fixed, fixed_values = combine_dirichlet(
            problem.electrical_dirichlet, self.total_size
        )
        mask = np.ones(self.total_size, dtype=bool)
        mask[fixed] = False
        self.el_fixed = fixed
        self.el_fixed_values = fixed_values
        self.el_free = np.nonzero(mask)[0]

        self._linear_el = LinearSolver()
        self._linear_th = LinearSolver()
        #: Drive scale of the current time level (waveform support).
        self._el_scale = 1.0
        self._fast_state = None
        self.max_thermal_solvers = int(max_thermal_solvers)
        if self.max_thermal_solvers < 1:
            raise SolverError(
                f"max_thermal_solvers must be >= 1, got "
                f"{self.max_thermal_solvers}"
            )
        #: Lifetime cost counters (``thermal_solver_builds``,
        #: ``coupled_steps``); the attribute accessors below are thin
        #: views over this registry, and ``solver_statistics()`` reports
        #: windowed deltas against ``_stats_baseline``.
        self.metrics = MetricsRegistry()
        # The window opens BEFORE fast-mode setup, so the el-base
        # factorization this constructor pays is part of the first
        # window (a shared cache may carry counts from other solvers;
        # those must not leak into this solver's per-run statistics).
        self._stats_baseline = self._lifetime_counters()
        self._fast_th_solvers = OrderedDict()
        if self.mode == "fast":
            self._setup_fast()

    @property
    def thermal_solver_builds(self):
        """Fast-mode per-dt thermal solver constructions so far (one per
        distinct dt not found in the per-dt map; the reuse statistic).
        View over the metrics registry."""
        return int(self.metrics.counter_value("thermal_solver_builds"))

    @property
    def num_steps(self):
        """Coupled implicit Euler steps taken (all modes).  View over
        the metrics registry."""
        return int(self.metrics.counter_value("coupled_steps"))

    # ------------------------------------------------------------------
    # Monte Carlo support
    # ------------------------------------------------------------------
    def set_wire_lengths(self, lengths):
        """Rebind the wire lengths without rebuilding any factorization.

        The wire stamps (and therefore both Woodbury bases, the Dirichlet
        reduction and the FIT operators) are length-independent -- only the
        conductances fed into the solves change.  This makes the per-sample
        cost of a Monte Carlo study a pure solve cost.

        For multi-segment wires the internal node heat capacities scale
        with the segment length, so the thermal base is invalidated in
        that case.
        """
        lengths = np.asarray(lengths, dtype=float).ravel()
        if lengths.size != len(self.topology.wires):
            raise SolverError(
                f"expected {len(self.topology.wires)} wire lengths, got "
                f"{lengths.size}"
            )
        new_wires = [
            wire.with_length(length)
            for wire, length in zip(self.topology.wires, lengths)
        ]
        self.topology.wires = new_wires
        self.problem.wires = new_wires
        if self.topology.num_extra_nodes:
            self.capacitance[self.n_grid:] = (
                self.topology.extra_heat_capacities()
            )
            if self.mode == "fast":
                self._fast_th_solvers.clear()

    # ------------------------------------------------------------------
    # Assembly helpers
    # ------------------------------------------------------------------
    def _field_diagonals(self, grid_temperatures):
        """Per-edge sigma and lambda conductance diagonals at the iterate."""
        cell_t = self.discretization.cell_temperatures(grid_temperatures)
        sigma = self.discretization.materials.sigma_cells(cell_t)
        lam = self.discretization.materials.lambda_cells(cell_t)
        dual = self.discretization.dual
        return (
            conductance_diagonal(dual, sigma),
            conductance_diagonal(dual, lam),
            cell_t,
        )

    def _wire_stamp_matrix(self, conductances):
        """Sparse sum of all segment stamps with the given conductances."""
        from ..bondwire.lumped import stamp_conductance_matrix

        stamps = [stamp for _, stamp in self.topology.flat_segments]
        return stamp_conductance_matrix(self.total_size, stamps, conductances)

    def _reduce_electrical(self, matrix):
        """Apply the (precomputed) electrical Dirichlet reduction.

        The contact values are scaled by the current drive waveform value
        (``1.0`` for the paper's constant drive).
        """
        matrix = matrix.tocsr()
        a_ff = matrix[self.el_free][:, self.el_free]
        a_fc = matrix[self.el_free][:, self.el_fixed]
        rhs = -(a_fc @ (self.el_fixed_values * self._el_scale))
        return a_ff.tocsc(), rhs

    def _expand_electrical(self, free_solution):
        full = np.empty(self.total_size)
        full[self.el_free] = free_solution
        full[self.el_fixed] = self.el_fixed_values * self._el_scale
        return full

    # ------------------------------------------------------------------
    # Fast-path setup
    # ------------------------------------------------------------------
    def _setup_fast(self):
        problem = self.problem
        if problem.thermal_dirichlet:
            raise SolverError(
                "fast mode does not support thermal Dirichlet conditions; "
                "use mode='full'"
            )
        wire_nodes = set()
        for chain in self.topology.wire_nodes:
            wire_nodes.update(chain)
        if wire_nodes.intersection(self.el_fixed.tolist()):
            raise SolverError(
                "fast mode requires wire contact nodes to be free (not PEC "
                "Dirichlet); use mode='full'"
            )
        freeze = np.full(self.n_grid, problem.t_initial)
        sigma_diag, lambda_diag, cell_t = self._field_diagonals(freeze)
        self._fast_sigma_cells = self.discretization.materials.sigma_cells(cell_t)

        k_el = embed_grid_matrix(
            self.discretization.stiffness_from_diagonal(sigma_diag),
            self.total_size,
        )
        if self.topology.num_extra_nodes:
            # The wire-free base matrix has zero rows at the internal wire
            # nodes (their only coupling is through the stamps handled by
            # the Woodbury update).  A shunt ~10 orders of magnitude below
            # the segment conductances keeps the base factorizable while
            # perturbing the solution far below the solver tolerance.
            shunt = np.zeros(self.total_size)
            scale = float(np.max(k_el.diagonal())) if k_el.nnz else 1.0
            shunt[self.n_grid:] = 1.0e-12 * scale
            k_el = k_el + sp.diags(shunt)
        a_el, rhs_el = self._reduce_electrical(k_el)
        u_full = self.topology.segment_incidence_matrix()
        u_el = u_full[self.el_free]
        # Both fast-path bases are symmetric positive definite (FIT
        # stiffness + positive diagonals, Dirichlet-reduced), so the
        # cheaper symmetric factorization mode applies.
        self._fast_el = WoodburySolver(a_el, u_el,
                                       cache=self.factorization_cache,
                                       symmetric=True,
                                       backend=self.array_backend)
        self._fast_el_rhs = rhs_el

        k_th = embed_grid_matrix(
            self.discretization.stiffness_from_diagonal(lambda_diag),
            self.total_size,
        )
        self._fast_state = "ready"
        self._fast_u = u_full
        self._fast_k_th = k_th
        self._fast_th_solvers.clear()  # (re)built per dt on demand

    def _fast_thermal_solver(self, dt):
        """The per-dt thermal Woodbury solver (bounded LRU map).

        Adaptive step doubling alternates ``dt`` and ``dt/2`` inside
        every attempt; a single-slot memo would rebuild (and
        re-fingerprint) the base on each alternation, so the map keeps
        the last ``max_thermal_solvers`` distinct step sizes alive.
        """
        key = float(dt)
        solver = self._fast_th_solvers.get(key)
        if solver is not None:
            self._fast_th_solvers.move_to_end(key)
            return solver
        base = (
            sp.diags(self.capacitance / dt)
            + self._fast_k_th
            + sp.diags(self.conv_diag)
        ).tocsc()
        solver = WoodburySolver(base, self._fast_u,
                                cache=self.factorization_cache,
                                symmetric=True,
                                backend=self.array_backend)
        self.metrics.increment("thermal_solver_builds")
        telemetry.increment("solver.thermal_builds")
        self._fast_th_solvers[key] = solver
        while len(self._fast_th_solvers) > self.max_thermal_solvers:
            self._fast_th_solvers.popitem(last=False)
        return solver

    def _lifetime_counters(self):
        """Raw lifetime totals of every windowed counter."""
        counters = {
            "coupled_steps": self.num_steps,
            "thermal_solver_builds": self.thermal_solver_builds,
        }
        if self.factorization_cache is not None:
            counters["factorization_cache_hits"] = (
                self.factorization_cache.hits
            )
            counters["factorization_cache_misses"] = (
                self.factorization_cache.misses
            )
        return counters

    def begin_statistics_window(self):
        """Open a fresh per-run statistics window.

        After this call, ``solver_statistics()`` reports only what
        happened since -- including factorization-cache hits/misses,
        even on a cache shared with other solvers.  Returns ``self``
        for chaining.
        """
        self._stats_baseline = self._lifetime_counters()
        return self

    def solver_statistics(self, lifetime=False):
        """Reuse/cost counters for reports and benchmarks.

        ``thermal_solver_builds`` counts fast-mode per-dt solver
        constructions (each pays a base-matrix assembly, a fingerprint
        and -- on a factorization-cache miss -- an ``splu``); with the
        quantized-dt adaptive controller it stays O(#ladder rungs)
        instead of O(#solves).  Factorization-cache hit/miss counters
        are included when a cache is attached.

        All counters report the current statistics window -- the delta
        since construction or the latest
        :meth:`begin_statistics_window` call -- so repeated runs and
        shared caches yield per-run numbers; ``lifetime=True`` is the
        escape hatch for raw process-lifetime totals.  Gauges
        (``thermal_solvers_cached``, ``factorization_cache_entries``)
        are instantaneous either way.
        """
        counters = self._lifetime_counters()
        if not lifetime:
            counters = {
                key: value - self._stats_baseline.get(key, 0)
                for key, value in counters.items()
            }
        stats = {
            "mode": self.mode,
            **counters,
            "thermal_solvers_cached": len(self._fast_th_solvers),
        }
        if self.factorization_cache is not None:
            stats["factorization_cache_entries"] = len(
                self.factorization_cache
            )
        return stats

    # ------------------------------------------------------------------
    # Single-iterate physics evaluation
    # ------------------------------------------------------------------
    def _solve_electrical_full(self, t_star):
        sigma_diag, lambda_diag, cell_t = self._field_diagonals(
            t_star[: self.n_grid]
        )
        k_el = embed_grid_matrix(
            self.discretization.stiffness_from_diagonal(sigma_diag),
            self.total_size,
        )
        g_el = self.topology.segment_electrical_conductances(t_star)
        matrix = k_el + self._wire_stamp_matrix(g_el)
        a_ff, rhs = self._reduce_electrical(matrix)
        phi = self._expand_electrical(self._linear_el.solve(a_ff, rhs))
        return phi, cell_t, lambda_diag, g_el

    def _solve_electrical_fast(self, t_star):
        g_el = self.topology.segment_electrical_conductances(t_star)
        phi_free = self._fast_el.solve(
            g_el, self._fast_el_rhs * self._el_scale
        )
        return self._expand_electrical(phi_free), g_el

    def _joule_sources(self, phi, t_star, cell_t=None, fast=False):
        """Field + wire Joule node powers at the iterate."""
        grid_phi = phi[: self.n_grid]
        if fast:
            ex, ey, ez = self.discretization.cell_field_components(grid_phi)
            density = self._fast_sigma_cells * (ex * ex + ey * ey + ez * ez)
        else:
            density = joule_cell_power_density(
                self.discretization, grid_phi, cell_t
            )
        q = np.zeros(self.total_size)
        q[: self.n_grid] = self.discretization.node_power_from_cells(density)
        field_power = float(np.dot(density, self.discretization.cell_volumes))
        q_wire, wire_powers = self.topology.joule_powers(phi, t_star)
        return q + q_wire, wire_powers, field_power

    def _radiation_rhs_explicit(self, t_star):
        """Radiative source evaluated at the iterate (fast mode)."""
        if self.problem.radiation is None:
            return 0.0
        return self.rad_coeff * (self.t_ambient_rad**4 - t_star**4)

    # ------------------------------------------------------------------
    # Time stepping
    # ------------------------------------------------------------------
    def _step_full(self, t_old, dt, guess=None):
        """One implicit Euler step in full mode; returns (T_new, diag)."""
        cache = {}

        def advance(t_star):
            phi, cell_t, lambda_diag, _ = self._solve_electrical_full(t_star)
            q, wire_powers, field_power = self._joule_sources(
                phi, t_star, cell_t=cell_t
            )
            k_th = embed_grid_matrix(
                self.discretization.stiffness_from_diagonal(lambda_diag),
                self.total_size,
            )
            g_th = self.topology.segment_thermal_conductances(t_star)
            k_th = k_th + self._wire_stamp_matrix(g_th)
            diagonal = self.conv_diag.copy()
            rhs_bc = self.conv_rhs.copy()
            if self.problem.radiation is not None:
                rad_diag, rad_rhs = self.problem.radiation.linearized_contributions(
                    self.discretization.dual, t_star[: self.n_grid]
                )
                diagonal[: self.n_grid] += rad_diag
                rhs_bc[: self.n_grid] += rad_rhs
            matrix = (
                sp.diags(self.capacitance / dt) + k_th + sp.diags(diagonal)
            ).tocsr()
            rhs = self.capacitance / dt * t_old + q + rhs_bc
            if self.problem.thermal_dirichlet:
                reduced = apply_dirichlet(
                    matrix, rhs, self.problem.thermal_dirichlet
                )
                t_new = reduced.expand(
                    self._linear_th.solve(reduced.matrix, reduced.rhs)
                )
            else:
                t_new = self._linear_th.solve(matrix.tocsc(), rhs)
            cache["phi"] = phi
            cache["wire_powers"] = wire_powers
            cache["field_power"] = field_power
            return t_new

        result = fixed_point(
            advance,
            t_old if guess is None else guess,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            damping=self.damping,
        )
        self.metrics.increment("coupled_steps")
        telemetry.increment("solver.coupled_steps")
        return result.solution, result.iterations, cache

    def _step_fast(self, t_old, dt, guess=None):
        """One implicit Euler step in fast (Woodbury) mode."""
        thermal = self._fast_thermal_solver(dt)
        cache = {}

        def advance(t_star):
            phi, _ = self._solve_electrical_fast(t_star)
            q, wire_powers, field_power = self._joule_sources(
                phi, t_star, fast=True
            )
            g_th = self.topology.segment_thermal_conductances(t_star)
            rhs = (
                self.capacitance / dt * t_old
                + q
                + self.conv_rhs
                + self._radiation_rhs_explicit(t_star)
            )
            t_new = thermal.solve(g_th, rhs)
            cache["phi"] = phi
            cache["wire_powers"] = wire_powers
            cache["field_power"] = field_power
            return t_new

        result = fixed_point(
            advance,
            t_old if guess is None else guess,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            damping=self.damping,
        )
        self.metrics.increment("coupled_steps")
        telemetry.increment("solver.coupled_steps")
        return result.solution, result.iterations, cache

    def step_once(self, temperatures, dt, drive_scale=1.0, guess=None):
        """One implicit Euler step of the coupled system; the new state.

        The public stepping hook for external time-step controllers
        (e.g. :func:`repro.solvers.adaptive.adaptive_implicit_euler`,
        whose ``step_function(state, dt)`` signature this matches with
        the default constant drive).  Uses the same fixed-point step as
        :meth:`solve_transient`; ``drive_scale`` scales the contact
        potentials for this step (callers integrating a waveform
        evaluate it at the step's new time level themselves).
        ``guess`` warm-starts the fixed point (e.g. the adaptive
        controller's linear predictor) -- the converged solution is the
        same within the fixed-point tolerance, just cheaper to reach.
        """
        self._el_scale = float(drive_scale)
        step = self._step_fast if self.mode == "fast" else self._step_full
        new_state, _, _ = step(
            np.asarray(temperatures, dtype=float), float(dt),
            guess=None if guess is None else np.asarray(guess, dtype=float),
        )
        self._el_scale = 1.0
        return new_state

    def solve_transient(self, time_grid, store_fields=False, waveform=None):
        """Integrate the coupled system over a :class:`TimeGrid`.

        Parameters
        ----------
        time_grid:
            The time axis (paper: 50 s, 51 points).
        store_fields:
            When ``True``, the full temperature field at every time point
            is kept on the result object (``result.fields``).
        waveform:
            Optional drive waveform (a number, callable ``w(t)`` or
            :class:`~repro.coupled.excitation.Waveform`) scaling the
            contact potentials over time; evaluated at the *new* time
            level of each implicit Euler step.  ``None`` is the paper's
            constant drive.

        Returns
        -------
        :class:`~repro.coupled.quantities.TransientResult`
        """
        from .excitation import as_waveform

        if not isinstance(time_grid, TimeGrid):
            raise SolverError("time_grid must be a TimeGrid")
        drive = as_waveform(waveform)
        temperatures = self.problem.initial_temperatures()
        dt = time_grid.dt
        num_wires = len(self.problem.wires)

        wire_t = [self.topology.wire_temperatures(temperatures)]
        wire_peak = [self.topology.wire_peak_temperatures(temperatures)]
        wire_p = [np.zeros(num_wires)]
        field_p = [0.0]
        iterations = []
        fields = [temperatures.copy()] if store_fields else None
        phi = np.zeros(self.total_size)

        step = self._step_fast if self.mode == "fast" else self._step_full
        times = time_grid.times
        for step_index in range(time_grid.num_steps):
            self._el_scale = float(drive(times[step_index + 1]))
            temperatures, n_iter, cache = step(temperatures, dt)
            iterations.append(n_iter)
            phi = cache["phi"]
            wire_t.append(self.topology.wire_temperatures(temperatures))
            wire_peak.append(self.topology.wire_peak_temperatures(temperatures))
            wire_p.append(cache["wire_powers"])
            field_p.append(cache["field_power"])
            if store_fields:
                fields.append(temperatures.copy())
        # Restore the constant drive for any later stationary solve.
        self._el_scale = 1.0

        result = TransientResult(
            times=time_grid.times,
            wire_temperatures=np.vstack(wire_t) if num_wires else
            np.zeros((time_grid.num_points, 0)),
            wire_peak_temperatures=np.vstack(wire_peak) if num_wires else
            np.zeros((time_grid.num_points, 0)),
            wire_powers=np.vstack(wire_p) if num_wires else
            np.zeros((time_grid.num_points, 0)),
            field_joule_power=np.asarray(field_p),
            final_temperatures=temperatures,
            final_potentials=phi,
            iterations_per_step=iterations,
            wire_names=self.problem.wire_names(),
        )
        if store_fields:
            result.fields = fields
        return result

    def solve_stationary(self, max_iterations=200, damping=0.8):
        """Steady state of the coupled system (d/dt = 0).

        Requires a heat escape path (convection, radiation or thermal
        Dirichlet), otherwise the thermal operator is singular.
        """
        problem = self.problem
        if (
            problem.convection is None
            and problem.radiation is None
            and not problem.thermal_dirichlet
        ):
            raise SolverError(
                "steady state needs convection, radiation or a thermal "
                "Dirichlet condition to be well-posed"
            )
        t_old = problem.initial_temperatures()
        cache = {}

        def advance(t_star):
            phi, cell_t, lambda_diag, _ = self._solve_electrical_full(t_star)
            q, wire_powers, field_power = self._joule_sources(
                phi, t_star, cell_t=cell_t
            )
            k_th = embed_grid_matrix(
                self.discretization.stiffness_from_diagonal(lambda_diag),
                self.total_size,
            )
            g_th = self.topology.segment_thermal_conductances(t_star)
            k_th = k_th + self._wire_stamp_matrix(g_th)
            diagonal = self.conv_diag.copy()
            rhs_bc = self.conv_rhs.copy()
            if problem.radiation is not None:
                rad_diag, rad_rhs = problem.radiation.linearized_contributions(
                    self.discretization.dual, t_star[: self.n_grid]
                )
                diagonal[: self.n_grid] += rad_diag
                rhs_bc[: self.n_grid] += rad_rhs
            matrix = (k_th + sp.diags(diagonal)).tocsr()
            rhs = q + rhs_bc
            if problem.thermal_dirichlet:
                reduced = apply_dirichlet(matrix, rhs, problem.thermal_dirichlet)
                t_new = reduced.expand(
                    self._linear_th.solve(reduced.matrix, reduced.rhs)
                )
            else:
                t_new = self._linear_th.solve(matrix.tocsc(), rhs)
            cache["phi"] = phi
            cache["wire_powers"] = wire_powers
            cache["field_power"] = field_power
            return t_new

        result = fixed_point(
            advance,
            t_old,
            tolerance=self.tolerance,
            max_iterations=max_iterations,
            damping=damping,
        )
        temperatures = result.solution
        return StationaryResult(
            temperatures=temperatures,
            potentials=cache["phi"],
            wire_temperatures=self.topology.wire_temperatures(temperatures),
            wire_powers=cache["wire_powers"],
            field_joule_power=cache["field_power"],
            iterations=result.iterations,
            wire_names=problem.wire_names(),
        )


class BlockedTransientResult:
    """Traces of one sample-blocked transient (one chunk of MC samples).

    The per-sample counterpart of
    :class:`~repro.coupled.quantities.TransientResult` carries ``(P, W)``
    arrays; here every array gains a leading sample axis ``S``.

    Attributes
    ----------
    times:
        Time axis, length ``P``.
    wire_temperatures, wire_peak_temperatures, wire_powers:
        ``(S, P, W)`` per-sample traces.
    field_joule_power:
        ``(S, P)`` field dissipation per time point.
    final_temperatures:
        ``(S, n)`` final temperature states.
    iterations_per_step:
        ``(S, P - 1)`` fixed-point iteration counts.
    """

    def __init__(self, times, wire_temperatures, wire_peak_temperatures,
                 wire_powers, field_joule_power, final_temperatures,
                 iterations_per_step, wire_names):
        self.times = np.asarray(times, dtype=float)
        self.wire_temperatures = wire_temperatures
        self.wire_peak_temperatures = wire_peak_temperatures
        self.wire_powers = wire_powers
        self.field_joule_power = field_joule_power
        self.final_temperatures = final_temperatures
        self.iterations_per_step = iterations_per_step
        self.wire_names = list(wire_names)

    @property
    def num_samples(self):
        return self.wire_temperatures.shape[0]

    def __repr__(self):
        return (
            f"BlockedTransientResult(S={self.num_samples}, "
            f"P={self.times.size}, W={len(self.wire_names)})"
        )


class BlockedCoupledSolver:
    """Sample-blocked transients over a fast-mode :class:`CoupledSolver`.

    Advances all ``S`` samples of a Monte Carlo chunk through the same
    time grid simultaneously, carrying an ``(n, S)`` temperature block
    (one column per sample).  Per fixed-point iteration the electrical
    and thermal Woodbury corrections are applied for the whole block at
    once (:meth:`~repro.solvers.woodbury.WoodburySolver.solve_batch`),
    so the per-sample Python loop collapses into BLAS-3 linear algebra
    sharing one factorized base.

    Convergence is tracked per sample with an active-sample mask:
    converged columns stop paying iterations (and their cached
    ``phi`` / wire powers are the ones from their converging iteration,
    matching the per-sample fixed point), while the rest keep iterating.

    Requirements (checked at construction):

    * the wrapped solver runs ``mode="fast"`` (shared frozen bases);
    * single-segment wires only -- multi-segment wires put
      length-dependent heat capacities on internal nodes, which would
      need a per-sample thermal base (callers fall back to the
      per-sample loop for those).

    Only the 12 wire conductances differ between samples, so the block
    shares every factorization with the per-sample path -- including the
    per-``dt`` thermal solver map of the wrapped solver.
    """

    def __init__(self, solver):
        if not isinstance(solver, CoupledSolver):
            raise SolverError(
                f"expected a CoupledSolver, got {type(solver).__name__}"
            )
        if solver.mode != "fast":
            raise SolverError(
                "blocked solves need the fast (Woodbury) mode; "
                "mode='full' reassembles per sample"
            )
        if solver.topology.num_extra_nodes:
            raise SolverError(
                "blocked solves support single-segment wires only "
                "(multi-segment internal heat capacities depend on the "
                "per-sample lengths); use the per-sample path"
            )
        self.solver = solver
        topology = solver.topology
        self.num_wires = len(topology.wires)
        starts, ends, wires = topology.segment_node_indices()
        self._seg_start = starts
        self._seg_end = ends
        self._seg_wire = wires
        self._ep_start, self._ep_end = topology.endpoint_node_indices()
        # Length-invariant wire data (material, cross section, segment
        # count); only the lengths vary per sample.
        self._materials = [wire.material for wire in topology.wires]
        self._areas = np.array(
            [wire.cross_section_area for wire in topology.wires]
        )
        self._num_segments = np.array(
            [wire.num_segments for wire in topology.wires], dtype=int
        )
        self._lengths = None

    # ------------------------------------------------------------------
    # Monte Carlo support
    # ------------------------------------------------------------------
    def set_wire_lengths_block(self, lengths):
        """Bind the ``(S, W)`` per-sample wire lengths for the next solve.

        Like :meth:`CoupledSolver.set_wire_lengths`, this never touches a
        factorization -- lengths only scale the conductances fed into the
        blocked solves.
        """
        lengths = np.asarray(lengths, dtype=float)
        if lengths.ndim != 2 or lengths.shape[1] != self.num_wires:
            raise SolverError(
                f"expected an (S, {self.num_wires}) length block, got "
                f"shape {lengths.shape}"
            )
        if not np.all(lengths > 0.0):
            raise SolverError("wire lengths must be positive")
        self._lengths = lengths

    # ------------------------------------------------------------------
    # Blocked physics evaluation
    # ------------------------------------------------------------------
    def _segment_conductances_block(self, seg_t, lengths, electrical):
        """``(k, S)`` per-segment conductances at the iterate block.

        Matches the scalar ``LumpedBondWire.segment_*_conductance``
        operation order exactly (``sigma * A / L * n_seg``), vectorized
        over the sample axis per wire -- the property models are plain
        ufunc arithmetic, so array evaluation is bitwise identical to
        the per-sample scalar calls.
        """
        conductances = np.empty_like(seg_t)
        for segment in range(self._seg_start.size):
            wire = int(self._seg_wire[segment])
            material = self._materials[wire]
            conductivity = (
                material.electrical_conductivity(seg_t[segment])
                if electrical
                else material.thermal_conductivity(seg_t[segment])
            )
            conductances[segment] = (
                conductivity * self._areas[wire] / lengths[:, wire]
                * self._num_segments[wire]
            )
        return conductances

    def _joule_block(self, phi, g_el):
        """Field + wire Joule node powers for the whole block.

        ``phi`` is ``(n, S)``, ``g_el`` ``(k, S)``; returns the node
        power block ``(n, S)``, per-wire powers ``(W, S)`` and the field
        dissipation ``(S,)``.
        """
        solver = self.solver
        disc = solver.discretization
        n_grid = solver.n_grid
        ex, ey, ez = disc.cell_field_components(phi[:n_grid])
        density = solver._fast_sigma_cells[:, None] * (
            ex * ex + ey * ey + ez * ez
        )
        q = np.zeros((solver.total_size, phi.shape[1]))
        q[:n_grid] = disc.node_power_from_cells(density)
        # Column-wise dots (not one gemv) keep the reduction order of
        # the per-sample ``np.dot(density, cell_volumes)`` bitwise.
        field_power = np.array([
            np.dot(np.ascontiguousarray(density[:, s]), disc.cell_volumes)
            for s in range(phi.shape[1])
        ])
        drop = phi[self._seg_start] - phi[self._seg_end]
        power = g_el * drop * drop
        q_wire = np.zeros_like(q)
        np.add.at(q_wire, self._seg_start, 0.5 * power)
        np.add.at(q_wire, self._seg_end, 0.5 * power)
        wire_power = np.zeros((self.num_wires, phi.shape[1]))
        np.add.at(wire_power, self._seg_wire, power)
        return q + q_wire, wire_power, field_power

    def _radiation_block(self, t_star):
        """Explicit radiative source for the iterate block (or 0.0)."""
        solver = self.solver
        if solver.problem.radiation is None:
            return 0.0
        return solver.rad_coeff[:, None] * (
            solver.t_ambient_rad**4 - t_star**4
        )

    # ------------------------------------------------------------------
    # Time stepping
    # ------------------------------------------------------------------
    def _step_block(self, t_old, dt, scale):
        """One implicit Euler step for the whole ``(n, S)`` block.

        The per-sample fixed point (``x <- x + w (advance(x) - x)``,
        max-norm residual, strict ``< tolerance``) runs with an
        active-sample mask: every iteration only evaluates the columns
        still above tolerance, and a sample's outputs (``phi``, wire
        powers, field power) are frozen at its converging iteration --
        the same "cache from the last advance call" contract as
        :func:`~repro.solvers.newton.fixed_point`.
        """
        solver = self.solver
        thermal = solver._fast_thermal_solver(dt)
        rhs_el = solver._fast_el_rhs * scale
        fixed_phi = solver.el_fixed_values * scale
        capacitance_dt = solver.capacitance / dt
        num_samples = t_old.shape[1]
        current = t_old.copy()
        active = np.arange(num_samples)
        iterations = np.zeros(num_samples, dtype=int)
        phi_out = np.zeros((solver.total_size, num_samples))
        wire_power_out = np.zeros((self.num_wires, num_samples))
        field_power_out = np.zeros(num_samples)
        residual = np.zeros(num_samples)
        for iteration in range(1, solver.max_iterations + 1):
            t_star = current[:, active]
            lengths = self._lengths[active]
            seg_t = 0.5 * (
                t_star[self._seg_start] + t_star[self._seg_end]
            )
            g_el = self._segment_conductances_block(
                seg_t, lengths, electrical=True
            )
            phi_free = solver._fast_el.solve_batch(g_el.T, rhs_el)
            phi = np.empty((solver.total_size, active.size))
            phi[solver.el_free] = phi_free
            phi[solver.el_fixed] = fixed_phi[:, None]
            q, wire_power, field_power = self._joule_block(phi, g_el)
            g_th = self._segment_conductances_block(
                seg_t, lengths, electrical=False
            )
            rhs = (
                capacitance_dt[:, None] * t_old[:, active]
                + q
                + solver.conv_rhs[:, None]
                + self._radiation_block(t_star)
            )
            t_new = thermal.solve_batch(g_th.T, rhs)
            damped = solver.damping * (t_new - t_star)
            current[:, active] = t_star + damped
            step_norm = np.max(np.abs(damped), axis=0)
            # Outputs track the latest advance of every active sample;
            # once a sample converges it leaves ``active`` and its last
            # written values stand.
            phi_out[:, active] = phi
            wire_power_out[:, active] = wire_power
            field_power_out[active] = field_power
            residual[active] = step_norm
            converged = step_norm < solver.tolerance
            iterations[active[converged]] = iteration
            active = active[~converged]
            if not active.size:
                break
        if active.size:
            worst = float(np.max(residual[active]))
            raise ConvergenceError(
                f"fixed-point iteration did not converge within "
                f"{solver.max_iterations} iterations for "
                f"{active.size}/{num_samples} blocked samples "
                f"(worst step norm {worst:.3e}, tol "
                f"{solver.tolerance:.3e})",
                iterations=solver.max_iterations,
                residual=worst,
            )
        solver.metrics.increment("coupled_steps", num_samples)
        telemetry.increment("solver.coupled_steps", num_samples)
        solver.metrics.increment("blocked_steps")
        telemetry.increment("solver.blocked_steps")
        return current, iterations, phi_out, wire_power_out, field_power_out

    def solve_transient_block(self, time_grid, waveform=None):
        """Integrate all bound samples over a :class:`TimeGrid` at once.

        Requires :meth:`set_wire_lengths_block` first.  ``waveform``
        scales the contact potentials exactly like
        :meth:`CoupledSolver.solve_transient` -- the drive is shared by
        every sample, which is what keeps the electrical base backsolve
        a single shared vector per iteration.

        Returns a :class:`BlockedTransientResult` whose sample ``s``
        reproduces the per-sample
        :meth:`CoupledSolver.solve_transient` traces for lengths row
        ``s`` up to floating-point summation-order differences of the
        batched products.
        """
        from .excitation import as_waveform

        if not isinstance(time_grid, TimeGrid):
            raise SolverError("time_grid must be a TimeGrid")
        if self._lengths is None:
            raise SolverError(
                "no sample block bound; call set_wire_lengths_block first"
            )
        drive = as_waveform(waveform)
        solver = self.solver
        num_samples = self._lengths.shape[0]
        temperatures = np.full(
            (solver.total_size, num_samples), solver.problem.t_initial
        )
        ep_start, ep_end = self._ep_start, self._ep_end

        def endpoint_mean(block):
            return 0.5 * (block[ep_start] + block[ep_end])

        def endpoint_peak(block):
            # Single-segment wires: the chain is exactly the two
            # endpoint nodes (enforced at construction).
            return np.maximum(block[ep_start], block[ep_end])

        wire_t = [endpoint_mean(temperatures)]
        wire_peak = [endpoint_peak(temperatures)]
        wire_p = [np.zeros((self.num_wires, num_samples))]
        field_p = [np.zeros(num_samples)]
        iterations = []
        times = time_grid.times
        dt = time_grid.dt
        for step_index in range(time_grid.num_steps):
            scale = float(drive(times[step_index + 1]))
            (temperatures, n_iter, _, wire_power,
             field_power) = self._step_block(temperatures, dt, scale)
            iterations.append(n_iter)
            wire_t.append(endpoint_mean(temperatures))
            wire_peak.append(endpoint_peak(temperatures))
            wire_p.append(wire_power)
            field_p.append(field_power)

        def sample_major(per_step):
            # list of (W, S) per time point -> (S, P, W)
            return np.transpose(np.stack(per_step), (2, 0, 1))

        return BlockedTransientResult(
            times=times,
            wire_temperatures=sample_major(wire_t),
            wire_peak_temperatures=sample_major(wire_peak),
            wire_powers=sample_major(wire_p),
            field_joule_power=np.stack(field_p).T,
            final_temperatures=temperatures.T.copy(),
            iterations_per_step=np.stack(iterations).T,
            wire_names=solver.problem.wire_names(),
        )
